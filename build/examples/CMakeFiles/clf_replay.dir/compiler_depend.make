# Empty compiler generated dependencies file for clf_replay.
# This may be replaced when dependencies are built.
