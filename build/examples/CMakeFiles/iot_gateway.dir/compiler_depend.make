# Empty compiler generated dependencies file for iot_gateway.
# This may be replaced when dependencies are built.
