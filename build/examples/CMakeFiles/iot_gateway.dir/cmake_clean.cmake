file(REMOVE_RECURSE
  "CMakeFiles/iot_gateway.dir/iot_gateway.cpp.o"
  "CMakeFiles/iot_gateway.dir/iot_gateway.cpp.o.d"
  "iot_gateway"
  "iot_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
