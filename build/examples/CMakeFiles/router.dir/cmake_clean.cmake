file(REMOVE_RECURSE
  "CMakeFiles/router.dir/router.cpp.o"
  "CMakeFiles/router.dir/router.cpp.o.d"
  "router"
  "router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
