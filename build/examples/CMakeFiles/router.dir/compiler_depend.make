# Empty compiler generated dependencies file for router.
# This may be replaced when dependencies are built.
