file(REMOVE_RECURSE
  "CMakeFiles/live_threads.dir/live_threads.cpp.o"
  "CMakeFiles/live_threads.dir/live_threads.cpp.o.d"
  "live_threads"
  "live_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
