# Empty compiler generated dependencies file for live_threads.
# This may be replaced when dependencies are built.
