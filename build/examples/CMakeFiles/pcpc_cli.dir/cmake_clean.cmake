file(REMOVE_RECURSE
  "CMakeFiles/pcpc_cli.dir/pcpc_cli.cpp.o"
  "CMakeFiles/pcpc_cli.dir/pcpc_cli.cpp.o.d"
  "pcpc_cli"
  "pcpc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
