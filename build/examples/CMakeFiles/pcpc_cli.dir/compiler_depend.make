# Empty compiler generated dependencies file for pcpc_cli.
# This may be replaced when dependencies are built.
