# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_webserver "/root/repo/build/examples/webserver" "2" "4")
set_tests_properties(example_webserver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runtime_monitor "/root/repo/build/examples/runtime_monitor")
set_tests_properties(example_runtime_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_router "/root/repo/build/examples/router")
set_tests_properties(example_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clf_replay "/root/repo/build/examples/clf_replay")
set_tests_properties(example_clf_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iot_gateway "/root/repo/build/examples/iot_gateway")
set_tests_properties(example_iot_gateway PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pcpc_cli "/root/repo/build/examples/pcpc_cli" "--impl=all" "--seconds=1")
set_tests_properties(example_pcpc_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_threads "/root/repo/build/examples/live_threads" "0.5")
set_tests_properties(example_live_threads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
