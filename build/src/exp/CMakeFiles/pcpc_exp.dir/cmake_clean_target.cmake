file(REMOVE_RECURSE
  "libpcpc_exp.a"
)
