file(REMOVE_RECURSE
  "CMakeFiles/pcpc_exp.dir/analytic.cpp.o"
  "CMakeFiles/pcpc_exp.dir/analytic.cpp.o.d"
  "CMakeFiles/pcpc_exp.dir/experiment.cpp.o"
  "CMakeFiles/pcpc_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/pcpc_exp.dir/paper_setup.cpp.o"
  "CMakeFiles/pcpc_exp.dir/paper_setup.cpp.o.d"
  "CMakeFiles/pcpc_exp.dir/report.cpp.o"
  "CMakeFiles/pcpc_exp.dir/report.cpp.o.d"
  "libpcpc_exp.a"
  "libpcpc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
