# Empty dependencies file for pcpc_exp.
# This may be replaced when dependencies are built.
