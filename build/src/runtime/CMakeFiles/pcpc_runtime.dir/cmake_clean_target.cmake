file(REMOVE_RECURSE
  "libpcpc_runtime.a"
)
