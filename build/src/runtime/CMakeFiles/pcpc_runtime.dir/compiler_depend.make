# Empty compiler generated dependencies file for pcpc_runtime.
# This may be replaced when dependencies are built.
