file(REMOVE_RECURSE
  "CMakeFiles/pcpc_runtime.dir/cpu_meter.cpp.o"
  "CMakeFiles/pcpc_runtime.dir/cpu_meter.cpp.o.d"
  "CMakeFiles/pcpc_runtime.dir/thread_baselines.cpp.o"
  "CMakeFiles/pcpc_runtime.dir/thread_baselines.cpp.o.d"
  "CMakeFiles/pcpc_runtime.dir/thread_pbpl.cpp.o"
  "CMakeFiles/pcpc_runtime.dir/thread_pbpl.cpp.o.d"
  "CMakeFiles/pcpc_runtime.dir/trace_replayer.cpp.o"
  "CMakeFiles/pcpc_runtime.dir/trace_replayer.cpp.o.d"
  "libpcpc_runtime.a"
  "libpcpc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
