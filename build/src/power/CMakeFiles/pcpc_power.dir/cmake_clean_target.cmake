file(REMOVE_RECURSE
  "libpcpc_power.a"
)
