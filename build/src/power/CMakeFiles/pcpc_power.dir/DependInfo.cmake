
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/core_timeline.cpp" "src/power/CMakeFiles/pcpc_power.dir/core_timeline.cpp.o" "gcc" "src/power/CMakeFiles/pcpc_power.dir/core_timeline.cpp.o.d"
  "/root/repo/src/power/cstate.cpp" "src/power/CMakeFiles/pcpc_power.dir/cstate.cpp.o" "gcc" "src/power/CMakeFiles/pcpc_power.dir/cstate.cpp.o.d"
  "/root/repo/src/power/energy_ledger.cpp" "src/power/CMakeFiles/pcpc_power.dir/energy_ledger.cpp.o" "gcc" "src/power/CMakeFiles/pcpc_power.dir/energy_ledger.cpp.o.d"
  "/root/repo/src/power/energy_trace.cpp" "src/power/CMakeFiles/pcpc_power.dir/energy_trace.cpp.o" "gcc" "src/power/CMakeFiles/pcpc_power.dir/energy_trace.cpp.o.d"
  "/root/repo/src/power/powertop.cpp" "src/power/CMakeFiles/pcpc_power.dir/powertop.cpp.o" "gcc" "src/power/CMakeFiles/pcpc_power.dir/powertop.cpp.o.d"
  "/root/repo/src/power/pstate.cpp" "src/power/CMakeFiles/pcpc_power.dir/pstate.cpp.o" "gcc" "src/power/CMakeFiles/pcpc_power.dir/pstate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
