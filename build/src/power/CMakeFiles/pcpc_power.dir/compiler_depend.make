# Empty compiler generated dependencies file for pcpc_power.
# This may be replaced when dependencies are built.
