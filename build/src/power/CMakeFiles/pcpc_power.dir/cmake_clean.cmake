file(REMOVE_RECURSE
  "CMakeFiles/pcpc_power.dir/core_timeline.cpp.o"
  "CMakeFiles/pcpc_power.dir/core_timeline.cpp.o.d"
  "CMakeFiles/pcpc_power.dir/cstate.cpp.o"
  "CMakeFiles/pcpc_power.dir/cstate.cpp.o.d"
  "CMakeFiles/pcpc_power.dir/energy_ledger.cpp.o"
  "CMakeFiles/pcpc_power.dir/energy_ledger.cpp.o.d"
  "CMakeFiles/pcpc_power.dir/energy_trace.cpp.o"
  "CMakeFiles/pcpc_power.dir/energy_trace.cpp.o.d"
  "CMakeFiles/pcpc_power.dir/powertop.cpp.o"
  "CMakeFiles/pcpc_power.dir/powertop.cpp.o.d"
  "CMakeFiles/pcpc_power.dir/pstate.cpp.o"
  "CMakeFiles/pcpc_power.dir/pstate.cpp.o.d"
  "libpcpc_power.a"
  "libpcpc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
