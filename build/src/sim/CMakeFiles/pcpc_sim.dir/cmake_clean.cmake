file(REMOVE_RECURSE
  "CMakeFiles/pcpc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pcpc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pcpc_sim.dir/replay.cpp.o"
  "CMakeFiles/pcpc_sim.dir/replay.cpp.o.d"
  "CMakeFiles/pcpc_sim.dir/simulator.cpp.o"
  "CMakeFiles/pcpc_sim.dir/simulator.cpp.o.d"
  "libpcpc_sim.a"
  "libpcpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
