# Empty dependencies file for pcpc_sim.
# This may be replaced when dependencies are built.
