file(REMOVE_RECURSE
  "libpcpc_sim.a"
)
