file(REMOVE_RECURSE
  "CMakeFiles/pcpc_core.dir/assignment.cpp.o"
  "CMakeFiles/pcpc_core.dir/assignment.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/config_io.cpp.o"
  "CMakeFiles/pcpc_core.dir/config_io.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/consumer.cpp.o"
  "CMakeFiles/pcpc_core.dir/consumer.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/core_manager.cpp.o"
  "CMakeFiles/pcpc_core.dir/core_manager.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/cost.cpp.o"
  "CMakeFiles/pcpc_core.dir/cost.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/latency_guard.cpp.o"
  "CMakeFiles/pcpc_core.dir/latency_guard.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/pbpl_system.cpp.o"
  "CMakeFiles/pcpc_core.dir/pbpl_system.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/rate_predictor.cpp.o"
  "CMakeFiles/pcpc_core.dir/rate_predictor.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/reservation.cpp.o"
  "CMakeFiles/pcpc_core.dir/reservation.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/sim_core.cpp.o"
  "CMakeFiles/pcpc_core.dir/sim_core.cpp.o.d"
  "CMakeFiles/pcpc_core.dir/slot_track.cpp.o"
  "CMakeFiles/pcpc_core.dir/slot_track.cpp.o.d"
  "libpcpc_core.a"
  "libpcpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
