
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cpp" "src/core/CMakeFiles/pcpc_core.dir/assignment.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/assignment.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/pcpc_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/consumer.cpp" "src/core/CMakeFiles/pcpc_core.dir/consumer.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/consumer.cpp.o.d"
  "/root/repo/src/core/core_manager.cpp" "src/core/CMakeFiles/pcpc_core.dir/core_manager.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/core_manager.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/pcpc_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/latency_guard.cpp" "src/core/CMakeFiles/pcpc_core.dir/latency_guard.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/latency_guard.cpp.o.d"
  "/root/repo/src/core/pbpl_system.cpp" "src/core/CMakeFiles/pcpc_core.dir/pbpl_system.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/pbpl_system.cpp.o.d"
  "/root/repo/src/core/rate_predictor.cpp" "src/core/CMakeFiles/pcpc_core.dir/rate_predictor.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/rate_predictor.cpp.o.d"
  "/root/repo/src/core/reservation.cpp" "src/core/CMakeFiles/pcpc_core.dir/reservation.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/reservation.cpp.o.d"
  "/root/repo/src/core/sim_core.cpp" "src/core/CMakeFiles/pcpc_core.dir/sim_core.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/sim_core.cpp.o.d"
  "/root/repo/src/core/slot_track.cpp" "src/core/CMakeFiles/pcpc_core.dir/slot_track.cpp.o" "gcc" "src/core/CMakeFiles/pcpc_core.dir/slot_track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcpc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pcpc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
