# Empty dependencies file for pcpc_core.
# This may be replaced when dependencies are built.
