file(REMOVE_RECURSE
  "libpcpc_core.a"
)
