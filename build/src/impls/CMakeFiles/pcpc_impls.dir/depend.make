# Empty dependencies file for pcpc_impls.
# This may be replaced when dependencies are built.
