file(REMOVE_RECURSE
  "libpcpc_impls.a"
)
