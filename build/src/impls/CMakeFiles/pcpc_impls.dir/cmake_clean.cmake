file(REMOVE_RECURSE
  "CMakeFiles/pcpc_impls.dir/baselines.cpp.o"
  "CMakeFiles/pcpc_impls.dir/baselines.cpp.o.d"
  "CMakeFiles/pcpc_impls.dir/run_result.cpp.o"
  "CMakeFiles/pcpc_impls.dir/run_result.cpp.o.d"
  "CMakeFiles/pcpc_impls.dir/runner.cpp.o"
  "CMakeFiles/pcpc_impls.dir/runner.cpp.o.d"
  "libpcpc_impls.a"
  "libpcpc_impls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_impls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
