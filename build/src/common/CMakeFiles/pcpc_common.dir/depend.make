# Empty dependencies file for pcpc_common.
# This may be replaced when dependencies are built.
