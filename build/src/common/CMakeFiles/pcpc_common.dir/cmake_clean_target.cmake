file(REMOVE_RECURSE
  "libpcpc_common.a"
)
