file(REMOVE_RECURSE
  "CMakeFiles/pcpc_common.dir/csv.cpp.o"
  "CMakeFiles/pcpc_common.dir/csv.cpp.o.d"
  "CMakeFiles/pcpc_common.dir/hypothesis.cpp.o"
  "CMakeFiles/pcpc_common.dir/hypothesis.cpp.o.d"
  "CMakeFiles/pcpc_common.dir/logging.cpp.o"
  "CMakeFiles/pcpc_common.dir/logging.cpp.o.d"
  "CMakeFiles/pcpc_common.dir/stats.cpp.o"
  "CMakeFiles/pcpc_common.dir/stats.cpp.o.d"
  "CMakeFiles/pcpc_common.dir/table.cpp.o"
  "CMakeFiles/pcpc_common.dir/table.cpp.o.d"
  "libpcpc_common.a"
  "libpcpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
