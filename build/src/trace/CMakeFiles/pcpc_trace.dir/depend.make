# Empty dependencies file for pcpc_trace.
# This may be replaced when dependencies are built.
