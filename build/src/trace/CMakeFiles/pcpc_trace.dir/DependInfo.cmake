
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/arrival_process.cpp" "src/trace/CMakeFiles/pcpc_trace.dir/arrival_process.cpp.o" "gcc" "src/trace/CMakeFiles/pcpc_trace.dir/arrival_process.cpp.o.d"
  "/root/repo/src/trace/clf.cpp" "src/trace/CMakeFiles/pcpc_trace.dir/clf.cpp.o" "gcc" "src/trace/CMakeFiles/pcpc_trace.dir/clf.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/pcpc_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/pcpc_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/pcpc_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/pcpc_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "src/trace/CMakeFiles/pcpc_trace.dir/transforms.cpp.o" "gcc" "src/trace/CMakeFiles/pcpc_trace.dir/transforms.cpp.o.d"
  "/root/repo/src/trace/webserver_log.cpp" "src/trace/CMakeFiles/pcpc_trace.dir/webserver_log.cpp.o" "gcc" "src/trace/CMakeFiles/pcpc_trace.dir/webserver_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
