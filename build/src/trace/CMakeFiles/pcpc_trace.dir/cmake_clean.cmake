file(REMOVE_RECURSE
  "CMakeFiles/pcpc_trace.dir/arrival_process.cpp.o"
  "CMakeFiles/pcpc_trace.dir/arrival_process.cpp.o.d"
  "CMakeFiles/pcpc_trace.dir/clf.cpp.o"
  "CMakeFiles/pcpc_trace.dir/clf.cpp.o.d"
  "CMakeFiles/pcpc_trace.dir/trace.cpp.o"
  "CMakeFiles/pcpc_trace.dir/trace.cpp.o.d"
  "CMakeFiles/pcpc_trace.dir/trace_io.cpp.o"
  "CMakeFiles/pcpc_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/pcpc_trace.dir/transforms.cpp.o"
  "CMakeFiles/pcpc_trace.dir/transforms.cpp.o.d"
  "CMakeFiles/pcpc_trace.dir/webserver_log.cpp.o"
  "CMakeFiles/pcpc_trace.dir/webserver_log.cpp.o.d"
  "libpcpc_trace.a"
  "libpcpc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcpc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
