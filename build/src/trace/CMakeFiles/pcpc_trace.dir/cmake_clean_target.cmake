file(REMOVE_RECURSE
  "libpcpc_trace.a"
)
