file(REMOVE_RECURSE
  "CMakeFiles/table_overflow_stats.dir/table_overflow_stats.cpp.o"
  "CMakeFiles/table_overflow_stats.dir/table_overflow_stats.cpp.o.d"
  "table_overflow_stats"
  "table_overflow_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_overflow_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
