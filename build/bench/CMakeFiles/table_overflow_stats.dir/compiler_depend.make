# Empty compiler generated dependencies file for table_overflow_stats.
# This may be replaced when dependencies are built.
