file(REMOVE_RECURSE
  "CMakeFiles/ablation_race_to_idle.dir/ablation_race_to_idle.cpp.o"
  "CMakeFiles/ablation_race_to_idle.dir/ablation_race_to_idle.cpp.o.d"
  "ablation_race_to_idle"
  "ablation_race_to_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_race_to_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
