# Empty dependencies file for ablation_race_to_idle.
# This may be replaced when dependencies are built.
