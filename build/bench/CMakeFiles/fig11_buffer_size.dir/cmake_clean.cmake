file(REMOVE_RECURSE
  "CMakeFiles/fig11_buffer_size.dir/fig11_buffer_size.cpp.o"
  "CMakeFiles/fig11_buffer_size.dir/fig11_buffer_size.cpp.o.d"
  "fig11_buffer_size"
  "fig11_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
