file(REMOVE_RECURSE
  "CMakeFiles/ablation_pbpl.dir/ablation_pbpl.cpp.o"
  "CMakeFiles/ablation_pbpl.dir/ablation_pbpl.cpp.o.d"
  "ablation_pbpl"
  "ablation_pbpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pbpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
