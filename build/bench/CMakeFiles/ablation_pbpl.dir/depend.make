# Empty dependencies file for ablation_pbpl.
# This may be replaced when dependencies are built.
