# Empty compiler generated dependencies file for fig3_profile.
# This may be replaced when dependencies are built.
