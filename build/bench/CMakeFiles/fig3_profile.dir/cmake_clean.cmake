file(REMOVE_RECURSE
  "CMakeFiles/fig3_profile.dir/fig3_profile.cpp.o"
  "CMakeFiles/fig3_profile.dir/fig3_profile.cpp.o.d"
  "fig3_profile"
  "fig3_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
