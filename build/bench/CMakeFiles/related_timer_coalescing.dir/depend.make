# Empty dependencies file for related_timer_coalescing.
# This may be replaced when dependencies are built.
