file(REMOVE_RECURSE
  "CMakeFiles/related_timer_coalescing.dir/related_timer_coalescing.cpp.o"
  "CMakeFiles/related_timer_coalescing.dir/related_timer_coalescing.cpp.o.d"
  "related_timer_coalescing"
  "related_timer_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_timer_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
