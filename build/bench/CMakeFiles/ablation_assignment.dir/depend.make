# Empty dependencies file for ablation_assignment.
# This may be replaced when dependencies are built.
