file(REMOVE_RECURSE
  "CMakeFiles/ablation_assignment.dir/ablation_assignment.cpp.o"
  "CMakeFiles/ablation_assignment.dir/ablation_assignment.cpp.o.d"
  "ablation_assignment"
  "ablation_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
