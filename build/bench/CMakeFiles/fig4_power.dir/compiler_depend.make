# Empty compiler generated dependencies file for fig4_power.
# This may be replaced when dependencies are built.
