# Empty dependencies file for fig9_five_consumers.
# This may be replaced when dependencies are built.
