file(REMOVE_RECURSE
  "CMakeFiles/fig9_five_consumers.dir/fig9_five_consumers.cpp.o"
  "CMakeFiles/fig9_five_consumers.dir/fig9_five_consumers.cpp.o.d"
  "fig9_five_consumers"
  "fig9_five_consumers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_five_consumers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
