# Empty dependencies file for fig1_idle_overhead.
# This may be replaced when dependencies are built.
