file(REMOVE_RECURSE
  "CMakeFiles/fig1_idle_overhead.dir/fig1_idle_overhead.cpp.o"
  "CMakeFiles/fig1_idle_overhead.dir/fig1_idle_overhead.cpp.o.d"
  "fig1_idle_overhead"
  "fig1_idle_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_idle_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
