file(REMOVE_RECURSE
  "CMakeFiles/test_elastic_buffer.dir/test_elastic_buffer.cpp.o"
  "CMakeFiles/test_elastic_buffer.dir/test_elastic_buffer.cpp.o.d"
  "test_elastic_buffer"
  "test_elastic_buffer.pdb"
  "test_elastic_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastic_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
