file(REMOVE_RECURSE
  "CMakeFiles/test_core_timeline.dir/test_core_timeline.cpp.o"
  "CMakeFiles/test_core_timeline.dir/test_core_timeline.cpp.o.d"
  "test_core_timeline"
  "test_core_timeline.pdb"
  "test_core_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
