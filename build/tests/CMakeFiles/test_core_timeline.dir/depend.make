# Empty dependencies file for test_core_timeline.
# This may be replaced when dependencies are built.
