# Empty compiler generated dependencies file for test_energy_trace.
# This may be replaced when dependencies are built.
