file(REMOVE_RECURSE
  "CMakeFiles/test_energy_trace.dir/test_energy_trace.cpp.o"
  "CMakeFiles/test_energy_trace.dir/test_energy_trace.cpp.o.d"
  "test_energy_trace"
  "test_energy_trace.pdb"
  "test_energy_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
