
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_energy_trace.cpp" "tests/CMakeFiles/test_energy_trace.dir/test_energy_trace.cpp.o" "gcc" "tests/CMakeFiles/test_energy_trace.dir/test_energy_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pcpc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/impls/CMakeFiles/pcpc_impls.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcpc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pcpc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
