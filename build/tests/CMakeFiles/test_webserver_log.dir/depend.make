# Empty dependencies file for test_webserver_log.
# This may be replaced when dependencies are built.
