file(REMOVE_RECURSE
  "CMakeFiles/test_webserver_log.dir/test_webserver_log.cpp.o"
  "CMakeFiles/test_webserver_log.dir/test_webserver_log.cpp.o.d"
  "test_webserver_log"
  "test_webserver_log.pdb"
  "test_webserver_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_webserver_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
