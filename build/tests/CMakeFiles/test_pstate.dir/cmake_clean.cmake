file(REMOVE_RECURSE
  "CMakeFiles/test_pstate.dir/test_pstate.cpp.o"
  "CMakeFiles/test_pstate.dir/test_pstate.cpp.o.d"
  "test_pstate"
  "test_pstate.pdb"
  "test_pstate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
