# Empty dependencies file for test_pstate.
# This may be replaced when dependencies are built.
