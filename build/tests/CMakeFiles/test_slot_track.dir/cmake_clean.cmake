file(REMOVE_RECURSE
  "CMakeFiles/test_slot_track.dir/test_slot_track.cpp.o"
  "CMakeFiles/test_slot_track.dir/test_slot_track.cpp.o.d"
  "test_slot_track"
  "test_slot_track.pdb"
  "test_slot_track[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slot_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
