# Empty dependencies file for test_slot_track.
# This may be replaced when dependencies are built.
