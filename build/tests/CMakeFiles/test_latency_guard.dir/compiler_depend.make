# Empty compiler generated dependencies file for test_latency_guard.
# This may be replaced when dependencies are built.
