file(REMOVE_RECURSE
  "CMakeFiles/test_latency_guard.dir/test_latency_guard.cpp.o"
  "CMakeFiles/test_latency_guard.dir/test_latency_guard.cpp.o.d"
  "test_latency_guard"
  "test_latency_guard.pdb"
  "test_latency_guard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
