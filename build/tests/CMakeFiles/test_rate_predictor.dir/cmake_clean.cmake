file(REMOVE_RECURSE
  "CMakeFiles/test_rate_predictor.dir/test_rate_predictor.cpp.o"
  "CMakeFiles/test_rate_predictor.dir/test_rate_predictor.cpp.o.d"
  "test_rate_predictor"
  "test_rate_predictor.pdb"
  "test_rate_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
