file(REMOVE_RECURSE
  "CMakeFiles/test_pbpl_system.dir/test_pbpl_system.cpp.o"
  "CMakeFiles/test_pbpl_system.dir/test_pbpl_system.cpp.o.d"
  "test_pbpl_system"
  "test_pbpl_system.pdb"
  "test_pbpl_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbpl_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
