# Empty dependencies file for test_pbpl_system.
# This may be replaced when dependencies are built.
