# Empty dependencies file for test_clf.
# This may be replaced when dependencies are built.
