file(REMOVE_RECURSE
  "CMakeFiles/test_clf.dir/test_clf.cpp.o"
  "CMakeFiles/test_clf.dir/test_clf.cpp.o.d"
  "test_clf"
  "test_clf.pdb"
  "test_clf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
