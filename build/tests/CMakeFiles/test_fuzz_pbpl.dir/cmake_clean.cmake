file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_pbpl.dir/test_fuzz_pbpl.cpp.o"
  "CMakeFiles/test_fuzz_pbpl.dir/test_fuzz_pbpl.cpp.o.d"
  "test_fuzz_pbpl"
  "test_fuzz_pbpl.pdb"
  "test_fuzz_pbpl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_pbpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
