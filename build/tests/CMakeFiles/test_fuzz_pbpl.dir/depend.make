# Empty dependencies file for test_fuzz_pbpl.
# This may be replaced when dependencies are built.
