// Web-server scenario: the paper's motivating deployment.
//
// A front-end accepts HTTP requests and dispatches them to W worker
// queues (one producer-consumer pair per worker).  Google's observation
// cited by the paper — servers run at 10-50% utilization, rarely idle —
// is exactly the regime where grouping worker wakeups pays off.  This
// example sweeps the worker count and prints how the Mutex, BP and PBPL
// dispatch strategies compare in power, wakeups and response latency.
//
//   $ ./examples/webserver [workers...]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "pcpc/common/table.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/power/energy_ledger.hpp"
#include "pcpc/trace/webserver_log.hpp"

using namespace pcpc;

namespace {

void run_scenario(std::size_t workers, Table& table) {
  // ~1500 requests/s per worker queue; flash crowds included.
  trace::WebWorkloadParams workload;
  workload.duration = seconds(5);
  workload.base_rate_hz = 1500.0;
  workload.burst_amplitude_factor = 3.0;
  const auto traces = trace::make_shifted_workloads(workload, workers);

  impls::ExperimentSetup setup;
  setup.baseline.cores = 2;
  setup.baseline.buffer_capacity = 32;
  // Request handling: parse + route ≈ 5 µs of CPU per request.
  setup.baseline.service.per_item = microseconds(5);
  setup.pbpl.slot_size = milliseconds(10);
  setup.pbpl.max_latency = milliseconds(50);  // interactive latency budget

  const power::EnergyLedger ledger{power::PowerModelParams{}};
  for (const auto kind :
       {impls::ImplKind::Mutex, impls::ImplKind::Batch, impls::ImplKind::Pbpl}) {
    const auto r = impls::run_implementation(kind, traces, workload.duration, setup);
    table.add(static_cast<long long>(workers), impls::impl_name(kind),
              format_double(r.extra_power_w(ledger) * 1e3, 1),
              format_double(r.wakeups_per_s(), 1),
              format_double(r.latency_s.mean() * 1e3, 2),
              format_double(static_cast<double>(r.items) / to_seconds(r.duration), 0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> worker_counts{2, 4, 8};
  if (argc > 1) {
    worker_counts.clear();
    for (int i = 1; i < argc; ++i) {
      worker_counts.push_back(static_cast<std::size_t>(std::atoi(argv[i])));
    }
  }

  Table table({"workers", "dispatch", "power (mW)", "wakeups/s", "latency (ms)",
               "req/s"});
  table.set_title("Web-server request dispatch: Mutex vs BP vs PBPL");
  for (const std::size_t workers : worker_counts) run_scenario(workers, table);
  table.print(std::cout);

  std::printf(
      "\nPBPL groups worker wakeups on the slot track, so the front-end cores see\n"
      "periods of dense request handling followed by real idle windows — the\n"
      "race-to-idle pattern the paper argues suits energy-proportional servers.\n");
  return 0;
}
