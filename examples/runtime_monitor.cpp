// Runtime-monitoring scenario (one of the paper's motivating domains and
// its stated future-work target) — as a live, pcpc_top-style view.
//
// A monitored system emits events (state changes, log records, probe
// hits) at rates that differ wildly per event source; each source feeds
// one runtime-monitor consumer that checks the events against its
// property.  Monitors tolerate a bounded detection latency — exactly
// PBPL's max-latency knob, which doubles as the per-pair Δ budget.
//
// This example runs the real thread host live, replays four
// heterogeneous event sources from producer threads, and refreshes a
// per-pair attribution table while the system runs: items, drops,
// paid/free wakeups, attributed energy, and Δ-budget SLO compliance
// from the sampled lifecycle spans.  It is the obs::build_attribution
// report rendered as a top(1)-style screen.
//
// The elastic fleet controller is armed, so the screen also carries a
// fleet panel: per-core parked/active state, the live placement map
// (which monitor runs on which core), and the migration/park counters.
// Every frame additionally snapshots the runtime counters and checks
// the conservation inequality items + drops <= produced — a snapshot
// taken *while* a consumer is mid-migration must still satisfy it,
// which is exactly what the quiesce protocol guarantees.
//
//   $ ./examples/runtime_monitor [seconds]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/obs/attribution.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

namespace {

/// Event sources with heterogeneous behaviour: a chatty periodic probe, a
/// bursty error channel (MMPP), and two moderate sinusoidal sources.
std::vector<trace::Trace> make_event_sources(SimDuration horizon) {
  std::vector<trace::Trace> traces;
  Rng rng(2024);

  // Source 0: high-frequency heartbeat probe, 5 kHz steady.
  {
    const trace::ConstantRate rate(5000.0);
    traces.push_back(trace::sample_nhpp(rate, horizon, rng));
  }
  // Source 1: error/exception channel — quiet with violent bursts.
  {
    trace::MmppParams mmpp;
    mmpp.low_rate_hz = 50.0;
    mmpp.high_rate_hz = 20000.0;
    mmpp.mean_low_dwell = milliseconds(600);
    mmpp.mean_high_dwell = milliseconds(40);
    traces.push_back(trace::sample_mmpp(mmpp, horizon, rng));
  }
  // Sources 2-3: application event streams with slow load swings.
  for (int i = 0; i < 2; ++i) {
    const trace::SinusoidRate rate(1200.0, 800.0, seconds(3), rng.uniform(0, 6.28));
    traces.push_back(trace::sample_nhpp(rate, horizon, rng));
  }
  return traces;
}

/// One live frame: the attribution report as a per-monitor table.
void render_frame(const obs::AttributionReport& report, double elapsed_s,
                  bool clear_screen) {
  if (clear_screen) std::printf("\033[H\033[2J");
  std::printf("pcpc_top — %zu monitors, Δ = %.0f ms, elapsed %.1f s\n",
              report.pairs.size(), static_cast<double>(report.delta_ns) / 1e6,
              elapsed_s);
  std::printf("totals: %llu items, %llu paid + %llu free wakes, %.1f mJ "
              "(%.1f µJ/item), SLO %llu/%llu met\n",
              static_cast<unsigned long long>(report.items),
              static_cast<unsigned long long>(report.paid),
              static_cast<unsigned long long>(report.free), report.joules * 1e3,
              report.joules_per_item * 1e6,
              static_cast<unsigned long long>(report.slo_samples -
                                              report.slo_violations),
              static_cast<unsigned long long>(report.slo_samples));

  Table table({"monitor", "items", "drops", "paid", "free", "items/wake", "mJ",
               "µJ/item", "slo ok", "slo viol", "min slack (µs)"});
  for (const obs::PairAttribution& row : report.pairs) {
    const double min_slack_us =
        row.slack.count > 0 ? static_cast<double>(row.slack.min_ns) / 1e3 : 0.0;
    table.add("monitor " + std::to_string(row.pair),
              static_cast<long long>(row.items), static_cast<long long>(row.drops),
              static_cast<long long>(row.paid), static_cast<long long>(row.free),
              format_double(row.items_per_paid_wake, 1),
              format_double(row.joules * 1e3, 2),
              format_double(row.joules_per_item * 1e6, 1),
              static_cast<long long>(row.slo_samples - row.slo_violations),
              static_cast<long long>(row.slo_violations),
              format_double(min_slack_us, 0));
  }
  table.print(std::cout);
  std::cout.flush();
}

/// The fleet panel: per-core parked/active state with the placement
/// map, plus the migration/park counters and the live conservation
/// self-check (valid even when the snapshot lands mid-migration).
void render_fleet_panel(runtime::ThreadPbpl& runtime,
                        const runtime::ThreadPbplStats& live, double elapsed_s,
                        bool conserved) {
  const std::vector<std::size_t> placement = runtime.placement();
  const std::vector<bool> parked = runtime.parked_cores();
  const double mig_per_s = elapsed_s > 0
                               ? static_cast<double>(live.migrations) / elapsed_s
                               : 0.0;
  std::printf("fleet: %llu migrations (%.1f/s), %llu parks, %llu unparks\n",
              static_cast<unsigned long long>(live.migrations), mig_per_s,
              static_cast<unsigned long long>(live.core_parks),
              static_cast<unsigned long long>(live.core_unparks));
  for (std::size_t c = 0; c < parked.size(); ++c) {
    std::printf("  core %zu [%s]:", c, parked[c] ? "parked" : "active");
    bool any = false;
    for (std::size_t pair = 0; pair < placement.size(); ++pair) {
      if (placement[pair] == c) {
        std::printf(" monitor-%zu", pair);
        any = true;
      }
    }
    std::printf(any ? "\n" : " (empty)\n");
  }
  std::printf("conservation (live snapshot): items %llu + drops %llu <= "
              "produced %llu — %s\n",
              static_cast<unsigned long long>(live.items),
              static_cast<unsigned long long>(live.dropped()),
              static_cast<unsigned long long>(live.produced),
              conserved ? "ok" : "VIOLATED");
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  const double run_s = argc > 1 ? std::atof(argv[1]) : 2.0;
  if (run_s <= 0) {
    std::fprintf(stderr, "usage: %s [seconds]\n", argv[0]);
    return 2;
  }

  // The sources are sampled over a fixed virtual horizon and replayed
  // compressed into the requested wall-clock run.
  const SimDuration horizon = seconds(5);
  const auto traces = make_event_sources(horizon);
  std::printf("Event sources:\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto stats = traces[i].stats();
    std::printf("  monitor %zu: %6zu events, mean %7.0f ev/s, peak %7.0f ev/s\n", i,
                traces[i].size(), stats.mean_rate_hz, stats.peak_rate_hz);
  }

  // Span sampling armed: the SLO columns come from sampled item
  // lifecycles, the counter columns from the wakeup ledger.
  obs::SessionOptions session_options;
  session_options.span_sample_every = 8;
  obs::Session session(session_options);

  core::PbplConfig config;
  config.cores = 4;
  config.base_buffer = 64;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);  // the detection bound == Δ budget

  obs::AttributionOptions aopt;
  aopt.service.per_item = microseconds(2);  // property check per event
  aopt.delta_ns = config.max_latency;

  // Elastic fleet: the controller re-prices the placement 10×/s, packs
  // the cheap monitors together and parks the cores it empties; the
  // panel below shows the moves as they happen.
  fleet::FleetConfig fleet;
  fleet.mode = fleet::FleetMode::kElastic;
  fleet.control_period = milliseconds(100);
  fleet.cooldown = milliseconds(400);

  runtime::ThreadPbpl runtime(traces.size(), config, {}, nullptr, fleet);

  // Producer threads replay their source compressed to wall time.
  const double scale = run_s / to_seconds(horizon);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(run_s));
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    producers.emplace_back([&, i] {
      for (const SimTime t : traces[i].timestamps()) {
        const auto due =
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(to_seconds(t) * scale));
        std::this_thread::sleep_until(due);
        if (stop.load(std::memory_order_relaxed)) return;
        runtime.produce(i);
      }
    });
  }

  // The live view: refresh the attribution frame until the run ends.
  // Screen clearing only on a real terminal; piped output (the smoke
  // test) gets sequential frames.
  const bool tty = ::isatty(1) == 1;
  bool live_conserved = true;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    render_frame(obs::build_attribution(session, aopt), elapsed, tty);
    // Live conservation self-check.  stats() reads the per-core shards
    // first and the produced counter last, so even a snapshot straddling
    // an in-flight migration must satisfy items + drops <= produced.
    const runtime::ThreadPbplStats live = runtime.stats();
    const bool ok = live.items + live.dropped() <= live.produced;
    live_conserved = live_conserved && ok;
    render_fleet_panel(runtime, live, elapsed, ok);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : producers) t.join();
  runtime.stop();

  // Final frame + the accounting identities the runtime guarantees.
  const obs::AttributionReport report = obs::build_attribution(session, aopt);
  render_frame(report, run_s, /*clear_screen=*/false);

  const runtime::ThreadPbplStats stats = runtime.stats();
  render_fleet_panel(runtime, stats, run_s, live_conserved);
  if (!live_conserved) {
    std::fprintf(stderr, "live conservation self-check failed mid-run\n");
    return 1;
  }
  if (stats.produced != stats.items + stats.dropped()) {
    std::fprintf(stderr, "conservation identity broken: produced %llu != %llu + %llu\n",
                 static_cast<unsigned long long>(stats.produced),
                 static_cast<unsigned long long>(stats.items),
                 static_cast<unsigned long long>(stats.dropped()));
    return 1;
  }
  if (report.items != stats.items || report.drops != stats.dropped()) {
    std::fprintf(stderr,
                 "attribution mismatch: report %llu items / %llu drops, "
                 "runtime %llu / %llu\n",
                 static_cast<unsigned long long>(report.items),
                 static_cast<unsigned long long>(report.drops),
                 static_cast<unsigned long long>(stats.items),
                 static_cast<unsigned long long>(stats.dropped()));
    return 1;
  }
  std::printf("\nconservation holds: produced %llu == consumed %llu + dropped %llu; "
              "attribution rows match the runtime's counters exactly.\n",
              static_cast<unsigned long long>(stats.produced),
              static_cast<unsigned long long>(stats.items),
              static_cast<unsigned long long>(stats.dropped()));
  return 0;
}
