// Runtime-monitoring scenario (one of the paper's motivating domains and
// its stated future-work target).
//
// A monitored system emits events (state changes, log records, probe
// hits) at rates that differ wildly per event source; each source feeds
// one runtime-monitor consumer that checks the events against its
// property.  Monitors tolerate a bounded detection latency, which is
// exactly PBPL's max-latency knob — this example shows the latency/power
// trade as that bound varies.
//
//   $ ./examples/runtime_monitor
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

namespace {

/// Event sources with heterogeneous behaviour: a chatty periodic probe, a
/// bursty error channel (MMPP), and two moderate sinusoidal sources.
std::vector<trace::Trace> make_event_sources(SimDuration horizon) {
  std::vector<trace::Trace> traces;
  Rng rng(2024);

  // Source 0: high-frequency heartbeat probe, 5 kHz steady.
  {
    const trace::ConstantRate rate(5000.0);
    traces.push_back(trace::sample_nhpp(rate, horizon, rng));
  }
  // Source 1: error/exception channel — quiet with violent bursts.
  {
    trace::MmppParams mmpp;
    mmpp.low_rate_hz = 50.0;
    mmpp.high_rate_hz = 20000.0;
    mmpp.mean_low_dwell = milliseconds(600);
    mmpp.mean_high_dwell = milliseconds(40);
    traces.push_back(trace::sample_mmpp(mmpp, horizon, rng));
  }
  // Sources 2-3: application event streams with slow load swings.
  for (int i = 0; i < 2; ++i) {
    const trace::SinusoidRate rate(1200.0, 800.0, seconds(3), rng.uniform(0, 6.28));
    traces.push_back(trace::sample_nhpp(rate, horizon, rng));
  }
  return traces;
}

}  // namespace

int main() {
  const SimDuration horizon = seconds(5);
  const auto traces = make_event_sources(horizon);

  std::printf("Event sources:\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto stats = traces[i].stats();
    std::printf("  monitor %zu: %6zu events, mean %7.0f ev/s, peak %7.0f ev/s\n", i,
                traces[i].size(), stats.mean_rate_hz, stats.peak_rate_hz);
  }

  impls::ExperimentSetup setup;
  setup.baseline.cores = 2;
  setup.baseline.buffer_capacity = 64;
  setup.baseline.service.per_item = microseconds(2);  // property check per event
  setup.pbpl.slot_size = milliseconds(5);

  const power::EnergyLedger ledger{power::PowerModelParams{}};

  Table table({"detection bound", "power (mW)", "wakeups/s", "mean latency (ms)",
               "p-overflows"});
  table.set_title("\nPBPL monitors under different detection-latency bounds");
  for (const SimDuration bound :
       {milliseconds(10), milliseconds(25), milliseconds(50), milliseconds(200)}) {
    auto s = setup;
    s.pbpl.max_latency = bound;
    const auto r = impls::run_implementation(impls::ImplKind::Pbpl, traces, horizon, s);
    table.add(format_double(to_milliseconds(bound), 0) + " ms",
              format_double(r.extra_power_w(ledger) * 1e3, 1),
              format_double(r.wakeups_per_s(), 1),
              format_double(r.latency_s.mean() * 1e3, 2),
              static_cast<long long>(r.overflows));
  }
  table.print(std::cout);

  // Reference: the per-event Mutex monitor every runtime-verification
  // framework ships by default.
  const auto mutex =
      impls::run_implementation(impls::ImplKind::Mutex, traces, horizon, setup);
  std::printf("\nPer-event Mutex monitor for comparison: %.1f mW, %.1f wakeups/s, "
              "%.3f ms latency\n",
              mutex.extra_power_w(ledger) * 1e3, mutex.wakeups_per_s(),
              mutex.latency_s.mean() * 1e3);
  std::printf(
      "Loosening the detection bound first buys power (fewer, larger batches) —\n"
      "until the fixed buffer capacity becomes the binding constraint and\n"
      "overflow wakeups claw the savings back.  The bound is the knob the paper\n"
      "proposes runtime monitors should expose; the buffer budget decides how\n"
      "far it helps.\n");
  return 0;
}
