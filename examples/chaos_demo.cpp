// Chaos demo: the standard fault scenario matrix against the PBPL
// simulation host, then one live thread-host run under combined faults.
//
// Shows the robustness story in one screen: every scenario — ×10 bursts,
// 50 ms producer stalls, a slow consumer, pool pressure, slot-clock
// jitter, and all of them at once — conserves every offered item, and
// the degradation shows up only in the counters (overflow wakeups,
// missed deadlines, tail latency), never as silent loss.
//
// Usage: chaos_demo [seconds] [--trace-out=FILE] [--metrics-out=FILE]
//        (default 2 s of simulated time; .csv metrics extension -> CSV)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/fault/chaos.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/obs/exporters.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

int main(int argc, char** argv) {
  double sim_seconds = 2.0;
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else {
      sim_seconds = std::atof(arg.c_str());
    }
  }
  const auto horizon = static_cast<SimDuration>(sim_seconds * 1e9);

  // Telemetry spans both hosts: the chaos matrix records in virtual
  // time, the live thread run re-anchors the session clock to its epoch.
  std::optional<obs::Session> session;
  if (!trace_out.empty() || !metrics_out.empty()) session.emplace();

  // Four producers with different constant rates.
  std::vector<trace::Trace> traces;
  Rng rng(2014);
  for (int i = 0; i < 4; ++i) {
    Rng stream = rng.fork();
    const trace::ConstantRate rate(400.0 + 300.0 * i);
    traces.push_back(trace::sample_nhpp(rate, horizon, stream));
  }

  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;

  std::printf("== Simulation host: standard chaos scenario matrix ==\n");
  std::printf("%-14s %9s %9s %6s %9s %9s %9s\n", "scenario", "offered",
              "consumed", "lost", "overflow", "p99 ms", "bursts");
  for (const fault::Scenario& scenario : fault::standard_scenarios(42)) {
    fault::FaultInjector injector(scenario.faults);
    const fault::ChaosRunResult r =
        fault::run_pbpl_under_faults(traces, horizon, config, injector);
    std::printf("%-14s %9zu %9llu %6lld %9llu %9.2f %9llu\n",
                scenario.name.c_str(), r.offered_items,
                static_cast<unsigned long long>(r.pbpl.items),
                static_cast<long long>(r.offered_items) -
                    static_cast<long long>(r.pbpl.items),
                static_cast<unsigned long long>(r.pbpl.overflow_wakeups),
                1e3 * r.pbpl.latency_s.p99(),
                static_cast<unsigned long long>(r.faults.bursts));
  }

  // Live run: everything at once, Block policy, watchdog armed.
  std::printf("\n== Thread host: combined faults, block policy, watchdog 3x ==\n");
  config.overflow_policy = core::OverflowPolicy::Block;
  config.watchdog_factor = 3.0;
  fault::FaultConfig faults;
  faults.seed = 42;
  faults.burst_probability = 0.05;
  faults.burst_factor = 10;
  faults.stall_probability = 0.005;
  faults.stall_duration = milliseconds(5);
  faults.slow_handler_probability = 0.2;
  faults.handler_delay = milliseconds(8);
  faults.pool_pressure = 0.5;
  faults.deadline_jitter = milliseconds(1);
  fault::FaultInjector injector(faults);

  runtime::ThreadPbpl live(4, config, {}, &injector);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&live, p] {
      for (int i = 0; i < 150; ++i) {
        live.produce(p);
        if (i % 10 == 9) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (auto& t : producers) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  live.stop();

  const auto s = live.stats();
  const auto fs = injector.stats();
  std::printf("produced %llu (600 offered + %llu burst extras)\n",
              static_cast<unsigned long long>(s.produced),
              static_cast<unsigned long long>(fs.burst_items));
  std::printf("consumed %llu, dropped %llu  ->  %s\n",
              static_cast<unsigned long long>(s.items),
              static_cast<unsigned long long>(s.dropped()),
              s.items == s.produced ? "no item lost" : "LOSS DETECTED");
  std::printf("overflow drains %llu, missed deadlines %llu, p99 %.2f ms\n",
              static_cast<unsigned long long>(s.overflow_wakeups),
              static_cast<unsigned long long>(s.missed_deadlines),
              1e3 * s.latency_s.p99());

  if (session.has_value()) {
    std::string error;
    if (!trace_out.empty() &&
        !obs::write_perfetto_trace(trace_out, *session, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
      return 1;
    }
    if (!metrics_out.empty()) {
      const bool csv = metrics_out.size() >= 4 &&
                       metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
      const bool written = csv ? obs::write_metrics_csv(metrics_out, *session, &error)
                               : obs::write_metrics_json(metrics_out, *session, &error);
      if (!written) {
        std::fprintf(stderr, "metrics export failed: %s\n", error.c_str());
        return 1;
      }
    }
  }
  return s.items == s.produced ? 0 : 1;
}
