// Chaos demo: the standard fault scenario matrix against the PBPL
// simulation host, then one live thread-host run under combined faults.
//
// Shows the robustness story in one screen: every scenario — ×10 bursts,
// 50 ms producer stalls, a slow consumer, pool pressure, slot-clock
// jitter, and all of them at once — conserves every offered item, and
// the degradation shows up only in the counters (overflow wakeups,
// missed deadlines, tail latency), never as silent loss.
//
// Usage: chaos_demo [seconds]   (default 2 s of simulated time)
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "pcpc/fault/chaos.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

int main(int argc, char** argv) {
  const double sim_seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const auto horizon = static_cast<SimDuration>(sim_seconds * 1e9);

  // Four producers with different constant rates.
  std::vector<trace::Trace> traces;
  Rng rng(2014);
  for (int i = 0; i < 4; ++i) {
    Rng stream = rng.fork();
    const trace::ConstantRate rate(400.0 + 300.0 * i);
    traces.push_back(trace::sample_nhpp(rate, horizon, stream));
  }

  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;

  std::printf("== Simulation host: standard chaos scenario matrix ==\n");
  std::printf("%-14s %9s %9s %6s %9s %9s %9s\n", "scenario", "offered",
              "consumed", "lost", "overflow", "p99 ms", "bursts");
  for (const fault::Scenario& scenario : fault::standard_scenarios(42)) {
    fault::FaultInjector injector(scenario.faults);
    const fault::ChaosRunResult r =
        fault::run_pbpl_under_faults(traces, horizon, config, injector);
    std::printf("%-14s %9zu %9llu %6lld %9llu %9.2f %9llu\n",
                scenario.name.c_str(), r.offered_items,
                static_cast<unsigned long long>(r.pbpl.items),
                static_cast<long long>(r.offered_items) -
                    static_cast<long long>(r.pbpl.items),
                static_cast<unsigned long long>(r.pbpl.overflow_wakeups),
                1e3 * r.pbpl.latency_s.p99(),
                static_cast<unsigned long long>(r.faults.bursts));
  }

  // Live run: everything at once, Block policy, watchdog armed.
  std::printf("\n== Thread host: combined faults, block policy, watchdog 3x ==\n");
  config.overflow_policy = core::OverflowPolicy::Block;
  config.watchdog_factor = 3.0;
  fault::FaultConfig faults;
  faults.seed = 42;
  faults.burst_probability = 0.05;
  faults.burst_factor = 10;
  faults.stall_probability = 0.005;
  faults.stall_duration = milliseconds(5);
  faults.slow_handler_probability = 0.2;
  faults.handler_delay = milliseconds(8);
  faults.pool_pressure = 0.5;
  faults.deadline_jitter = milliseconds(1);
  fault::FaultInjector injector(faults);

  runtime::ThreadPbpl live(4, config, {}, &injector);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&live, p] {
      for (int i = 0; i < 150; ++i) {
        live.produce(p);
        if (i % 10 == 9) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (auto& t : producers) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  live.stop();

  const auto s = live.stats();
  const auto fs = injector.stats();
  std::printf("produced %llu (600 offered + %llu burst extras)\n",
              static_cast<unsigned long long>(s.produced),
              static_cast<unsigned long long>(fs.burst_items));
  std::printf("consumed %llu, dropped %llu  ->  %s\n",
              static_cast<unsigned long long>(s.items),
              static_cast<unsigned long long>(s.dropped()),
              s.items == s.produced ? "no item lost" : "LOSS DETECTED");
  std::printf("overflow drains %llu, missed deadlines %llu, p99 %.2f ms\n",
              static_cast<unsigned long long>(s.overflow_wakeups),
              static_cast<unsigned long long>(s.missed_deadlines),
              1e3 * s.latency_s.p99());
  return s.items == s.produced ? 0 : 1;
}
