// Live-threads demo: the PBPL runtime on real std::thread, racing the
// classic per-item Mutex implementation on the same replayed workload.
//
// Unlike the simulation benches this runs on the wall clock, counts real
// condvar wakeups and measures real CPU time — the closest this library
// gets to the paper's board measurements without the board.
//
//   $ ./examples/live_threads [seconds]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "pcpc/core/config.hpp"
#include "pcpc/runtime/thread_baselines.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/runtime/trace_replayer.hpp"
#include "pcpc/trace/webserver_log.hpp"

using namespace pcpc;

int main(int argc, char** argv) {
  const double run_seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const SimDuration horizon = from_seconds(run_seconds);
  const std::size_t pairs = 4;

  // A gentle live workload: ~400 requests/s per pair (real threads on a
  // shared machine; the simulation benches handle the hot regimes).
  trace::WebWorkloadParams workload;
  workload.duration = horizon;
  workload.base_rate_hz = 400.0;
  const auto traces = trace::make_shifted_workloads(workload, pairs);
  std::size_t total_items = 0;
  for (const auto& t : traces) total_items += t.size();
  std::printf("Replaying %zu requests over %.1f s across %zu pairs...\n", total_items,
              run_seconds, pairs);

  // Round 1: per-item Mutex signaling.
  runtime::ThreadBaselineStats mutex_stats;
  {
    runtime::ThreadBaseline mutex(pairs, 64, runtime::SignalPolicy::PerItem);
    runtime::TraceReplayer replayer(traces, horizon,
                                    [&](std::size_t p) { mutex.produce(p); });
    replayer.wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    mutex.stop();
    mutex_stats = mutex.stats();
  }

  // Round 2: PBPL with a 10 ms slot track on one manager "core".
  core::PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(100);
  config.base_buffer = 64;
  config.pool_segment = 8;
  runtime::ThreadPbplStats pbpl_stats;
  {
    runtime::ThreadPbpl pbpl(pairs, config);
    runtime::TraceReplayer replayer(traces, horizon,
                                    [&](std::size_t p) { pbpl.produce(p); });
    replayer.wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    pbpl.stop();
    pbpl_stats = pbpl.stats();
  }

  const double mutex_wakeups = static_cast<double>(mutex_stats.consumer_wakeups);
  const double pbpl_wakeups =
      static_cast<double>(pbpl_stats.scheduled_wakeups + pbpl_stats.overflow_wakeups);

  std::printf("\n%-28s %12s %12s\n", "", "Mutex", "PBPL");
  std::printf("%-28s %12llu %12llu\n", "items consumed",
              static_cast<unsigned long long>(mutex_stats.items),
              static_cast<unsigned long long>(pbpl_stats.items));
  std::printf("%-28s %12llu %12llu\n", "consumer invocations",
              static_cast<unsigned long long>(mutex_stats.invocations),
              static_cast<unsigned long long>(pbpl_stats.invocations));
  std::printf("%-28s %12.0f %12.0f\n", "thread wakeups", mutex_wakeups, pbpl_wakeups);
  std::printf("%-28s %12.1f %12.1f\n", "mean batch (items)",
              mutex_stats.batch_sizes.mean(), pbpl_stats.batch_sizes.mean());
  std::printf("%-28s %12.2f %12.2f\n", "mean latency (ms)",
              mutex_stats.latency_s.mean() * 1e3, pbpl_stats.latency_s.mean() * 1e3);
  std::printf("%-28s %12.2f %12.2f\n", "consumer CPU (ms)",
              static_cast<double>(mutex_stats.consumer_cpu_ns) * 1e-6,
              static_cast<double>(pbpl_stats.manager_cpu_ns) * 1e-6);
  if (pbpl_stats.reservations > 0) {
    std::printf("%-28s %12s %11.0f%%\n", "latched reservations", "-",
                100.0 * static_cast<double>(pbpl_stats.latched_reservations) /
                    static_cast<double>(pbpl_stats.reservations));
  }
  std::printf("\nwakeup reduction: %.1f%% — every avoided wakeup is an idle window the\n"
              "CPU can spend in a deep C-state (the quantity the paper's scope measured\n"
              "as board power).\n",
              100.0 * (mutex_wakeups - pbpl_wakeups) / mutex_wakeups);
  return 0;
}
