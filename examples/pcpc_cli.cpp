// Generic experiment driver: run any implementation on any synthetic
// workload with any PBPL configuration, straight from the command line.
//
//   $ ./examples/pcpc_cli [options] [pbpl key=value ...]
//
//   --impl=NAME        bw|yield|mutex|sem|bp|pbp|spbp|cpbp|pbpl|all|ipc  [pbpl]
//   --pairs=M          producer-consumer pairs                        [5]
//   --rate=HZ          mean production rate per pair                  [2000]
//   --seconds=S        horizon                                        [5]
//   --buffer=B         per-pair buffer capacity                       [25]
//   --cores=A          cores                                          [2]
//   --workload=KIND    web|poisson|mmpp|pareto                        [web]
//   --config=FILE      PBPL config file (key=value lines)
//   --ipc-name=/NAME   shm channel name for --impl=ipc             [/pcpc_cli]
//   --ipc-role=ROLE    both|consumer|producer for --impl=ipc           [both]
//   --trace-out=FILE   write a Perfetto-loadable trace.json
//   --metrics-out=FILE write run metrics (.csv extension -> CSV, else JSON)
//   --snapshot-ms=N    PowerTop-style stderr snapshot every N ms
//   --span-every=N     sample every Nth item's lifecycle span          [0=off]
//   --payload-bytes=N|min:max  arm the varlen payload plane: every item
//                      carries a record of N (or seeded in [min,max])
//                      payload bytes.  The thread host moves real bytes
//                      through produce_record, --impl=ipc moves them
//                      cross-process through push_record, and the fleet
//                      run prices the same byte stream; bytes/s and
//                      joules/MB land in --slo-report / --fleet-report
//   --slo-report=FILE  write the wakeup→energy attribution + per-pair
//                      Δ-budget SLO report (one JSON object)
//   --fleet=MODE       off|static|elastic placement management          [off]
//                      static packs the placement once at startup;
//                      elastic arms the live controller (migration +
//                      core parking) for an extra fleet-scoped run
//   --fleet-report=FILE  write the fleet run's outcome (one JSON object:
//                      mode, migrations, paid wakeups, joules/item,
//                      final placement, predicted per-pair rates)
//   key=value          any pcpc::core::config_io key, applied last
//
// Examples:
//   ./examples/pcpc_cli --impl=all --pairs=10 --rate=1500
//   ./examples/pcpc_cli --workload=pareto latency_guard=1 slot_size_us=5000
//   ./examples/pcpc_cli --trace-out=trace.json --metrics-out=metrics.json
//   ./examples/pcpc_cli --fleet=elastic --fleet-report=fleet.json --cores=4
//   ./examples/pcpc_cli --impl=ipc --ipc-role=consumer --ipc-name=/demo &
//   ./examples/pcpc_cli --impl=ipc --ipc-role=producer --ipc-name=/demo
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/core/config_io.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/fleet/sim_driver.hpp"
#include "pcpc/ipc/channel.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/obs/attribution.hpp"
#include "pcpc/obs/exporters.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/trace/arrival_process.hpp"
#include "pcpc/trace/webserver_log.hpp"

using namespace pcpc;

namespace {

struct CliOptions {
  std::string impl = "pbpl";
  std::size_t pairs = 5;
  double rate_hz = 2000.0;
  double seconds_d = 5.0;
  std::size_t buffer = 25;
  std::size_t cores = 2;
  std::string workload = "web";
  std::string config_file;
  std::string ipc_name = "/pcpc_cli";
  std::string ipc_role = "both";
  std::string trace_out;
  std::string metrics_out;
  std::string slo_report;
  std::string fleet = "off";
  std::string fleet_report;
  std::int64_t snapshot_ms = 0;
  std::uint64_t span_every = 0;
  std::uint32_t payload_min = 0;  ///< varlen plane armed when payload_max > 0
  std::uint32_t payload_max = 0;
  std::vector<std::string> config_options;

  double mean_payload() const { return (payload_min + payload_max) / 2.0; }

  bool wants_telemetry() const {
    return !trace_out.empty() || !metrics_out.empty() || !slo_report.empty() ||
           snapshot_ms > 0 || span_every > 0;
  }
};

/// Writes the requested telemetry artifacts; shared by all harnesses'
/// exit paths.  Extension picks the metrics format: .csv -> CSV, else
/// JSON.
bool export_telemetry(obs::Session& session, const std::string& trace_out,
                      const std::string& metrics_out) {
  std::string error;
  bool ok = true;
  if (!trace_out.empty()) {
    if (obs::write_perfetto_trace(trace_out, session, &error)) {
      std::fprintf(stderr, "[pcpc obs] trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "[pcpc obs] trace export failed: %s\n", error.c_str());
      ok = false;
    }
  }
  if (!metrics_out.empty()) {
    const bool csv = metrics_out.size() >= 4 &&
                     metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
    const bool written = csv ? obs::write_metrics_csv(metrics_out, session, &error)
                             : obs::write_metrics_json(metrics_out, session, &error);
    if (written) {
      std::fprintf(stderr, "[pcpc obs] metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "[pcpc obs] metrics export failed: %s\n", error.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Writes the --slo-report artifact (no-op when the flag is unset).
bool export_slo_report(const obs::AttributionReport& report, const std::string& path) {
  if (path.empty()) return true;
  std::string error;
  if (obs::write_slo_report(path, report, &error)) {
    std::fprintf(stderr, "[pcpc obs] slo report written to %s\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "[pcpc obs] slo report export failed: %s\n", error.c_str());
  return false;
}

/// Energy model + Δ budget for attribution, from the paper-calibrated
/// spec (the same defaults every other artifact uses).
obs::AttributionOptions attribution_options(const exp::ExperimentSpec& spec) {
  obs::AttributionOptions opt;
  opt.power = spec.power;
  opt.service = spec.setup.pbpl.service;
  opt.delta_ns = spec.setup.pbpl.max_latency;
  return opt;
}

/// Seeded record size in [payload_min, payload_max].
std::uint32_t draw_payload_size(const CliOptions& options, Rng& rng) {
  return options.payload_min +
         static_cast<std::uint32_t>(
             rng.next_below(options.payload_max - options.payload_min + 1));
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      const std::size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) == 0) return arg.substr(n);
      return std::nullopt;
    };
    if (const auto v = value_of("--impl=")) options.impl = *v;
    else if (const auto v2 = value_of("--pairs=")) options.pairs = std::stoul(*v2);
    else if (const auto v3 = value_of("--rate=")) options.rate_hz = std::stod(*v3);
    else if (const auto v4 = value_of("--seconds=")) options.seconds_d = std::stod(*v4);
    else if (const auto v5 = value_of("--buffer=")) options.buffer = std::stoul(*v5);
    else if (const auto v6 = value_of("--cores=")) options.cores = std::stoul(*v6);
    else if (const auto v7 = value_of("--workload=")) options.workload = *v7;
    else if (const auto v8 = value_of("--config=")) options.config_file = *v8;
    else if (const auto v9 = value_of("--trace-out=")) options.trace_out = *v9;
    else if (const auto v10 = value_of("--metrics-out=")) options.metrics_out = *v10;
    else if (const auto v11 = value_of("--snapshot-ms=")) options.snapshot_ms = std::stol(*v11);
    else if (const auto v12 = value_of("--ipc-name=")) options.ipc_name = *v12;
    else if (const auto v13 = value_of("--ipc-role=")) options.ipc_role = *v13;
    else if (const auto v14 = value_of("--span-every=")) options.span_every = std::stoull(*v14);
    else if (const auto v15 = value_of("--slo-report=")) options.slo_report = *v15;
    else if (const auto v16 = value_of("--fleet=")) options.fleet = *v16;
    else if (const auto v17 = value_of("--fleet-report=")) options.fleet_report = *v17;
    else if (const auto v18 = value_of("--payload-bytes=")) {
      const std::size_t colon = v18->find(':');
      options.payload_min = static_cast<std::uint32_t>(
          std::stoul(colon == std::string::npos ? *v18 : v18->substr(0, colon)));
      options.payload_max = static_cast<std::uint32_t>(
          colon == std::string::npos ? options.payload_min
                                     : std::stoul(v18->substr(colon + 1)));
      if (options.payload_min == 0 || options.payload_max < options.payload_min) {
        std::fprintf(stderr, "bad --payload-bytes range '%s'\n", v18->c_str());
        return false;
      }
    }
    else if (arg.find('=') != std::string::npos && arg.rfind("--", 0) != 0) {
      options.config_options.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  fleet::FleetMode mode;
  if (!fleet::parse_fleet_mode(options.fleet.c_str(), &mode)) {
    std::fprintf(stderr, "unknown --fleet mode '%s' (off|static|elastic)\n",
                 options.fleet.c_str());
    return false;
  }
  return options.pairs > 0 && options.rate_hz > 0 && options.seconds_d > 0;
}

std::optional<impls::ImplKind> kind_of(const std::string& name) {
  if (name == "bw") return impls::ImplKind::BusyWait;
  if (name == "yield") return impls::ImplKind::Yield;
  if (name == "mutex") return impls::ImplKind::Mutex;
  if (name == "sem") return impls::ImplKind::Semaphore;
  if (name == "bp") return impls::ImplKind::Batch;
  if (name == "pbp") return impls::ImplKind::PeriodicBatch;
  if (name == "spbp") return impls::ImplKind::SignalPeriodicBatch;
  if (name == "cpbp") return impls::ImplKind::CoalescedPeriodicBatch;
  if (name == "pbpl") return impls::ImplKind::Pbpl;
  return std::nullopt;
}

std::vector<trace::Trace> make_workload(const CliOptions& options, SimDuration horizon) {
  std::vector<trace::Trace> traces;
  Rng rng(0xC11);
  for (std::size_t i = 0; i < options.pairs; ++i) {
    Rng stream = rng.fork();
    if (options.workload == "poisson") {
      const trace::ConstantRate rate(options.rate_hz);
      traces.push_back(trace::sample_nhpp(rate, horizon, stream));
    } else if (options.workload == "mmpp") {
      trace::MmppParams mmpp;
      mmpp.low_rate_hz = options.rate_hz * 0.2;
      mmpp.high_rate_hz = options.rate_hz * 4.0;
      traces.push_back(trace::sample_mmpp(mmpp, horizon, stream));
    } else if (options.workload == "pareto") {
      trace::ParetoOnOffParams pareto;
      pareto.on_rate_hz = options.rate_hz * 3.0;
      traces.push_back(trace::sample_pareto_on_off(pareto, horizon, stream));
    } else {  // web
      trace::WebWorkloadParams web;
      web.duration = horizon;
      web.base_rate_hz = options.rate_hz;
      web.seed = stream.next_u64();
      traces.push_back(trace::make_web_workload(web));
    }
  }
  return traces;
}

/// Fleet-scoped run (--fleet=static|elastic): replays the same traces on
/// the simulation host with placement management armed.  `static` packs
/// the pairs once at startup from the traces' mean rates (first-fit-
/// decreasing under the utilization cap) and never revisits the mapping;
/// `elastic` starts from the configured assignment and lets the live
/// controller migrate pairs and empty cores as the predicted rates move.
/// Prints a summary line and, with --fleet-report=FILE, writes the
/// outcome as one JSON object.
int run_fleet(fleet::FleetMode mode, std::span<const trace::Trace> traces,
              SimDuration horizon, const exp::ExperimentSpec& spec,
              const CliOptions& options) {
  const std::string& report_path = options.fleet_report;
  core::PbplConfig config = spec.setup.synchronized_pbpl();

  // Expected core share of each pair, from the offered trace itself —
  // what a load-aware startup placement would know.
  std::vector<double> utilization;
  utilization.reserve(traces.size());
  for (const auto& t : traces) {
    utilization.push_back(t.stats().mean_rate_hz * to_seconds(config.service.per_item));
  }
  if (mode == fleet::FleetMode::kStatic) {
    config.assignment = core::AssignmentPolicy::Packed;
  }

  sim::Simulator simulator;
  core::PbplSystem system(simulator, traces.size(), config, utilization);

  fleet::FleetConfig fc;
  fc.mode = mode;
  fc.cost.slot = config.resolved_slot_size();
  fc.cost.max_latency = config.max_latency;
  fc.cost.buffer_items = config.base_buffer;
  fc.cost.service = config.service;
  fc.cost.manager_overhead = config.manager_overhead;
  fc.cost.utilization_cap = config.utilization_cap;
  fleet::FleetController controller(traces.size(), config.cores, fc);
  fleet::SimFleetDriver driver(simulator, system, controller);

  system.start();
  if (mode == fleet::FleetMode::kElastic) driver.start();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    core::PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, traces[i].timestamps(), horizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  simulator.run_until(horizon);
  driver.stop();
  const std::vector<std::size_t> placement = system.placement();
  const core::PbplResult result = system.finish(horizon);

  const power::EnergyLedger ledger(spec.power);
  double joules = 0.0;
  for (const auto& timeline : result.timelines) {
    joules += ledger.energy_joules(timeline) - ledger.baseline_joules(timeline);
  }
  joules += static_cast<double>(result.items) * ledger.params().item_transport_energy_j +
            static_cast<double>(result.paid_wakeups) * ledger.params().wakeup_energy_j;
  const double horizon_s = to_seconds(horizon);
  const double paid_per_s = static_cast<double>(result.paid_wakeups) / horizon_s;
  const double uj_per_item =
      result.items > 0 ? joules / static_cast<double>(result.items) * 1e6 : 0.0;
  // With --payload-bytes armed, the sim host prices the same byte stream
  // the real hosts move: every item carries the configured mean payload.
  const double payload_bytes =
      static_cast<double>(result.items) * options.mean_payload();
  const double joules_per_mb =
      payload_bytes > 0 ? joules / (payload_bytes / 1e6) : 0.0;

  std::string placement_str;
  for (const std::size_t core : placement) {
    if (!placement_str.empty()) placement_str += ' ';
    placement_str += std::to_string(core);
  }
  std::printf("\nfleet (%s): %.1f paid wakeups/s, %.2f uJ/item, "
              "%llu migrations over %llu ticks, placement [%s]\n",
              fleet_mode_name(mode), paid_per_s, uj_per_item,
              static_cast<unsigned long long>(driver.migrations()),
              static_cast<unsigned long long>(driver.ticks()), placement_str.c_str());
  if (options.payload_max > 0) {
    std::printf("fleet payload: %.2f MB/s priced at %.4f J/MB\n",
                payload_bytes / horizon_s / 1e6, joules_per_mb);
  }

  if (report_path.empty()) return 0;
  FILE* out = std::fopen(report_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write fleet report to %s\n", report_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"mode\":\"%s\",\"pairs\":%zu,\"cores\":%zu,"
               "\"migrations\":%llu,\"ticks\":%llu,\"items\":%llu,"
               "\"paid_wakeups\":%llu,\"paid_per_s\":%.3f,"
               "\"joules_per_item\":%.9g,",
               fleet_mode_name(mode), traces.size(),
               static_cast<std::size_t>(config.cores),
               static_cast<unsigned long long>(driver.migrations()),
               static_cast<unsigned long long>(driver.ticks()),
               static_cast<unsigned long long>(result.items),
               static_cast<unsigned long long>(result.paid_wakeups), paid_per_s,
               uj_per_item * 1e-6);
  if (options.payload_max > 0) {
    std::fprintf(out,
                 "\"payload_bytes\":%.0f,\"payload_bytes_per_s\":%.3f,"
                 "\"joules_per_mb\":%.9g,",
                 payload_bytes, payload_bytes / horizon_s, joules_per_mb);
  }
  std::fprintf(out, "\"placement\":[");
  for (std::size_t i = 0; i < placement.size(); ++i) {
    std::fprintf(out, "%s%zu", i > 0 ? "," : "", placement[i]);
  }
  std::fprintf(out, "],\"predicted_rates_hz\":[");
  const std::vector<double>& rates = controller.rates();
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::fprintf(out, "%s%.3f", i > 0 ? "," : "", rates[i]);
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
  std::fprintf(stderr, "[pcpc fleet] report written to %s\n", report_path.c_str());
  return 0;
}

/// Cross-process host (--impl=ipc): real producer processes over one shm
/// channel.  --ipc-role picks this process's part:
///   both      create the channel here and fork --pairs producer processes
///   consumer  create the channel and drain for --seconds
///   producer  attach with retry/backoff, push --rate * --seconds items
/// Returns a process exit code, or -1 to request graceful fallback to
/// the in-process thread host (no futex support, or shm attach gave up).
int run_ipc(const CliOptions& options) {
  if (options.ipc_role != "both" && options.ipc_role != "consumer" &&
      options.ipc_role != "producer") {
    std::fprintf(stderr, "unknown --ipc-role '%s'\n", options.ipc_role.c_str());
    return 2;
  }
  if (!ipc::kFutexSupported) {
    std::fprintf(stderr, "[pcpc ipc] futex wakeups unsupported on this platform\n");
    return -1;
  }
  const std::uint64_t per_producer =
      static_cast<std::uint64_t>(options.rate_hz * options.seconds_d);
  const auto ull = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };

  std::optional<obs::Session> session;
  if (options.wants_telemetry()) {
    obs::SessionOptions obs_options;
    obs_options.snapshot_period_ms = options.snapshot_ms;
    obs_options.span_sample_every = options.span_every;
    session.emplace(obs_options);
  }
  std::string error;

  if (options.ipc_role == "producer") {
    ipc::ProducerConfig pcfg;
    pcfg.attach.attempts = 50;  // a consumer may still be starting: ~25 s budget
    auto producer = ipc::Producer::attach(options.ipc_name, pcfg, &error);
    if (!producer.has_value()) {
      std::fprintf(stderr, "[pcpc ipc] attach to %s gave up: %s\n",
                   options.ipc_name.c_str(), error.c_str());
      return -1;
    }
    if (session.has_value()) {
      // All ipc-side events live in the segment-epoch clock domain; put
      // this process's local events on the same timeline.
      session->set_clock([epoch = producer->header().epoch_mono_ns] {
        return ipc::now_ns() - epoch;
      });
    }
    // Records need the channel's payload plane; a plain channel falls
    // back to item pushes rather than tripping the plane assertion.
    const bool varlen =
        options.payload_max > 0 && producer->header().payload_ring_bytes > 0 &&
        producer->header().payload_max_record >= options.payload_max;
    if (options.payload_max > 0 && !varlen) {
      std::fprintf(stderr,
                   "[pcpc ipc] channel %s has no fitting payload plane; "
                   "ignoring --payload-bytes\n",
                   options.ipc_name.c_str());
    }
    std::uint64_t acked = 0;
    std::uint64_t dropped = 0;
    Rng rng(static_cast<std::uint64_t>(::getpid()));
    std::vector<std::byte> staging(options.payload_max);
    for (std::uint64_t i = 0; i < per_producer; ++i) {
      ipc::PushResult r;
      if (varlen) {
        r = producer->push_record(std::span<const std::byte>(
            staging.data(), draw_payload_size(options, rng)));
      } else {
        r = producer->push(i);
      }
      if (r == ipc::PushResult::kOk) {
        ++acked;
        continue;
      }
      ++dropped;
      if (r == ipc::PushResult::kConsumerDead) {
        std::fprintf(stderr,
                     "[pcpc ipc] consumer is dead after %llu acked pushes; stopping\n",
                     ull(acked));
        break;
      }
    }
    std::printf("[pcpc ipc] producer %d done on %s: %llu acked, %llu dropped\n",
                static_cast<int>(::getpid()), options.ipc_name.c_str(), ull(acked),
                ull(dropped));
    if (session.has_value() &&
        !export_telemetry(*session, options.trace_out, options.metrics_out)) {
      return 1;
    }
    return 0;
  }

  // consumer / both: this process owns the channel and drains it.
  ipc::ChannelConfig cfg;
  cfg.capacity = options.buffer;
  cfg.span_sample_every = options.span_every;
  if (options.payload_max > 0) {
    // Arm the varlen plane: per-producer byte rings sized for a healthy
    // in-flight window of max-size records.
    cfg.payload_max_record = options.payload_max;
    cfg.payload_ring_bytes = std::max<std::size_t>(
        64u << 10, 16 * queue::var_record_bytes(options.payload_max));
  }
  auto consumer = ipc::Consumer::create(options.ipc_name, cfg, &error);
  if (!consumer.has_value()) {
    std::fprintf(stderr, "[pcpc ipc] channel create at %s failed: %s\n",
                 options.ipc_name.c_str(), error.c_str());
    return -1;
  }
  if (session.has_value()) {
    // Merged-trace clock domain: the segment epoch is time zero for every
    // process on this channel (producers' span stamps arrive rebased).
    session->set_clock([epoch = consumer->header().epoch_mono_ns] {
      return ipc::now_ns() - epoch;
    });
  }
  std::printf("[pcpc ipc] channel %s up: capacity %zu, role %s\n",
              options.ipc_name.c_str(), options.buffer, options.ipc_role.c_str());

  std::vector<pid_t> children;
  if (options.ipc_role == "both") {
    for (std::size_t p = 0; p < options.pairs; ++p) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        auto child = ipc::Producer::attach(consumer->shm_name());
        if (!child.has_value()) _exit(2);
        if (options.payload_max > 0) {
          Rng rng(0xCB1ull * 1000 + p);
          std::vector<std::byte> staging(options.payload_max);
          for (std::uint64_t i = 0; i < per_producer; ++i) {
            const std::uint32_t size = draw_payload_size(options, rng);
            while (child->push_record(std::span<const std::byte>(
                       staging.data(), size)) == ipc::PushResult::kFull) {
            }
          }
        } else {
          for (std::uint64_t i = 0; i < per_producer; ++i) {
            while (child->push(i) == ipc::PushResult::kFull) {
            }
          }
        }
        child->detach();
        _exit(0);
      }
      if (pid < 0) {
        std::perror("[pcpc ipc] fork");
        break;
      }
      children.push_back(pid);
    }
  }

  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  // `both` runs to completion (children gone, ring drained) under a
  // generous wedge deadline; `consumer` serves the wall-clock horizon.
  const auto deadline =
      start + std::chrono::duration_cast<clock::duration>(
                  std::chrono::duration<double>(
                      options.seconds_d + (children.empty() ? 0.0 : 60.0)));
  std::uint64_t consumed_items = 0;
  std::uint64_t consumed_bytes = 0;
  while (true) {
    if (options.payload_max > 0) {
      consumed_items += consumer->drain_records(
          [&consumed_bytes](std::span<const std::byte> payload) {
            consumed_bytes += payload.size();
          });
    } else {
      consumed_items += consumer->drain([](std::uint64_t) {});
    }
    consumer->reap();
    for (auto it = children.begin(); it != children.end();) {
      int status = 0;
      if (::waitpid(*it, &status, WNOHANG) == *it) {
        it = children.erase(it);
      } else {
        ++it;
      }
    }
    if (options.ipc_role == "both") {
      if (children.empty() && consumer->report().residue == 0) break;
      if (clock::now() >= deadline) {
        std::fprintf(stderr, "[pcpc ipc] wedge: residue left past the deadline\n");
        return 1;
      }
    } else if (clock::now() >= deadline) {
      break;
    }
    if (!consumer->has_visible_work()) consumer->wait(/*timeout_ns=*/1'000'000);
  }
  const double elapsed = std::chrono::duration<double>(clock::now() - start).count();

  const ipc::ConservationReport rep = consumer->report();
  std::printf(
      "[pcpc ipc] drained %llu items in %.2f s (%.2f Mitems/s): "
      "%llu reclaimed, %llu peers reaped, %llu paid wakes (%.4f/item)\n",
      ull(consumed_items), elapsed,
      static_cast<double>(consumed_items) / elapsed / 1e6, ull(rep.reclaimed),
      ull(rep.peers_reaped), ull(rep.futex_wakes),
      consumed_items > 0
          ? static_cast<double>(rep.futex_wakes) / static_cast<double>(consumed_items)
          : 0.0);
  if (rep.admitted != rep.consumed + rep.reclaimed + rep.residue) {
    std::fprintf(stderr, "[pcpc ipc] conservation identity broken\n");
    return 1;
  }
  if (options.payload_max > 0) {
    std::printf("[pcpc ipc] payload: %llu records, %.2f MB at %.2f MB/s\n",
                ull(rep.var_delivered_records),
                static_cast<double>(consumed_bytes) / 1e6,
                static_cast<double>(consumed_bytes) / elapsed / 1e6);
    if (rep.var_admitted_bytes != rep.var_consumed_bytes + rep.var_reclaimed_bytes +
                                      rep.var_padding_bytes + rep.var_residue_bytes) {
      std::fprintf(stderr, "[pcpc ipc] varlen byte conservation broken\n");
      return 1;
    }
  }
  if (session.has_value()) {
    // Sweep any span events still sitting in live peers' shm rings into
    // the local session before exporting.
    consumer->drain_telemetry();
    if (!options.slo_report.empty()) {
      obs::AttributionReport report;
      report.spans = obs::fold_spans(session->events());
      // Pair rows come from the shm telemetry region, not a local
      // ledger: each live producer registry slot is one pair, and
      // whatever already detached or was reaped sits in the retired
      // fold — kept as one aggregate row so the report's totals remain
      // the channel's exact cross-process totals.
      const ipc::TelemetrySnapshot tel = consumer->telemetry();
      std::uint64_t live_items = 0, live_drops = 0, live_paid = 0, live_free = 0;
      for (const ipc::PeerTelemetrySnapshot& peer : tel.live) {
        obs::PairAttribution row;
        row.pair = static_cast<std::uint32_t>(peer.index);
        row.items = peer.pushed;
        row.drops = peer.dropped;
        row.paid = peer.paid_wakes;
        row.free = peer.doorbells_free;
        live_items += peer.pushed;
        live_drops += peer.dropped;
        live_paid += peer.paid_wakes;
        live_free += peer.doorbells_free;
        report.pairs.push_back(row);
      }
      if (tel.pushed > live_items || tel.dropped > live_drops ||
          tel.paid_wakes > live_paid || tel.doorbells_free > live_free) {
        obs::PairAttribution retired;
        retired.pair = 0xffffffffu;  // the retired-peers aggregate
        retired.items = tel.pushed - live_items;
        retired.drops = tel.dropped - live_drops;
        retired.paid = tel.paid_wakes - live_paid;
        retired.free = tel.doorbells_free - live_free;
        report.pairs.push_back(retired);
      }
      const exp::ExperimentSpec spec =
          exp::multi_pair_spec(options.pairs, options.buffer);
      obs::finalize_attribution(report, attribution_options(spec));
      if (consumed_bytes > 0) {
        report.payload_records = consumed_items;
        report.payload_bytes = consumed_bytes;
        report.payload_bytes_per_s = static_cast<double>(consumed_bytes) / elapsed;
        report.joules_per_mb =
            report.joules / (static_cast<double>(consumed_bytes) / 1e6);
      }
      if (!export_slo_report(report, options.slo_report)) return 1;
    }
    if (!export_telemetry(*session, options.trace_out, options.metrics_out)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_cli(argc, argv, options)) return 2;

  // The cross-process host handles its own run loop; everything else
  // goes through the simulation harness below.  A failed shm setup (or a
  // platform without futexes) degrades to the in-process thread host
  // rather than erroring out.
  if (options.impl == "ipc") {
    const int rc = run_ipc(options);
    if (rc >= 0) return rc;
    std::fprintf(stderr,
                 "[pcpc ipc] falling back to the in-process thread host "
                 "(--impl=pbpl)\n");
    options.impl = "pbpl";
  }

  // Assemble the setup from the calibrated defaults, then user overrides.
  exp::ExperimentSpec spec = exp::multi_pair_spec(options.pairs, options.buffer);
  spec.setup.baseline.cores = options.cores;
  std::string error;
  if (!options.config_file.empty()) {
    const auto loaded = core::load_config_file(options.config_file, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "config error: %s\n", error.c_str());
      return 2;
    }
    spec.setup.pbpl = *loaded;
  }
  if (!core::apply_options(spec.setup.pbpl, options.config_options, &error)) {
    std::fprintf(stderr, "config error: %s\n", error.c_str());
    return 2;
  }

  const SimDuration horizon = from_seconds(options.seconds_d);
  const auto traces = make_workload(options, horizon);
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  std::printf("workload '%s': %zu pairs, %zu items over %.1f s\n\n",
              options.workload.c_str(), options.pairs, total, options.seconds_d);

  std::vector<impls::ImplKind> kinds;
  if (options.impl == "all") {
    kinds = {impls::ImplKind::Mutex, impls::ImplKind::Semaphore, impls::ImplKind::Batch,
             impls::ImplKind::SignalPeriodicBatch, impls::ImplKind::Pbpl};
  } else if (const auto kind = kind_of(options.impl)) {
    kinds = {*kind};
  } else {
    std::fprintf(stderr, "unknown --impl '%s'\n", options.impl.c_str());
    return 2;
  }

  // Telemetry capture: all requested implementations record into one
  // session (the trace separates them in time).
  std::optional<obs::Session> session;
  if (options.wants_telemetry()) {
    obs::SessionOptions obs_options;
    obs_options.snapshot_period_ms = options.snapshot_ms;
    obs_options.span_sample_every = options.span_every;
    session.emplace(obs_options);
  }

  const power::EnergyLedger ledger(spec.power);
  Table table({"impl", "power (mW)", "wakeups/s", "usage (ms/s)", "overflows",
               "latency (ms)"});
  for (const auto kind : kinds) {
    const auto r = impls::run_implementation(kind, traces, horizon, spec.setup);
    table.add(impls::impl_name(kind), format_double(r.extra_power_w(ledger) * 1e3, 1),
              format_double(r.wakeups_per_s(), 1), format_double(r.usage_ms_per_s(), 1),
              static_cast<long long>(r.overflows),
              format_double(r.latency_s.mean() * 1e3, 2));
  }
  table.print(std::cout);

  if (options.impl == "pbpl" || options.impl == "all") {
    std::printf("\nPBPL configuration used:\n%s", core::describe(spec.setup.synchronized_pbpl()).c_str());
  }

  // --payload-bytes: move the workload's byte stream through the REAL
  // thread host's varlen plane (produce_record → in-ring records →
  // zero-copy handler views), as fast as the ring admits — a byte-
  // granular throughput run alongside the simulated table above.
  std::uint64_t payload_records = 0, payload_bytes_total = 0;
  double payload_bytes_per_s = 0.0, payload_joules_per_mb = 0.0;
  if (options.payload_max > 0) {
    core::PbplConfig vcfg = spec.setup.synchronized_pbpl();
    vcfg.payload_max_bytes = options.payload_max;
    const std::uint64_t per_pair =
        static_cast<std::uint64_t>(options.rate_hz * options.seconds_d);
    std::atomic<std::uint64_t> handled_bytes{0};
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    runtime::ThreadPbplStats stats;
    {
      runtime::ThreadPbpl host(options.pairs, vcfg);
      host.set_record_handler(
          [&handled_bytes](std::size_t, std::span<const std::byte> payload) {
            handled_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
          });
      std::vector<std::thread> producers;
      for (std::size_t pair = 0; pair < options.pairs; ++pair) {
        producers.emplace_back([&host, &options, pair, per_pair] {
          Rng rng(0xCB1ull * 7919 + pair);
          std::vector<std::byte> staging(options.payload_max);
          for (std::uint64_t i = 0; i < per_pair; ++i) {
            host.produce_record(pair, std::span<const std::byte>(
                                          staging.data(),
                                          draw_payload_size(options, rng)));
          }
        });
      }
      for (auto& t : producers) t.join();
      host.stop();  // drains leftovers before the managers exit
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
      stats = host.stats();
    }
    payload_records = stats.items;
    payload_bytes_total = stats.consumed_bytes;
    payload_bytes_per_s = static_cast<double>(payload_bytes_total) / elapsed;
    const double joules =
        ledger.params().wakeup_energy_j *
            static_cast<double>(stats.scheduled_wakeups + stats.overflow_wakeups) +
        ledger.params().item_transport_energy_j * static_cast<double>(stats.items);
    payload_joules_per_mb =
        payload_bytes_total > 0
            ? joules / (static_cast<double>(payload_bytes_total) / 1e6)
            : 0.0;
    std::printf(
        "\nvarlen (thread host): %llu records, %.2f MB at %.2f MB/s, "
        "%.4f J/MB (%llu dropped)\n",
        static_cast<unsigned long long>(payload_records),
        static_cast<double>(payload_bytes_total) / 1e6, payload_bytes_per_s / 1e6,
        payload_joules_per_mb, static_cast<unsigned long long>(stats.dropped()));
    if (stats.produced_bytes != stats.consumed_bytes + stats.dropped_bytes) {
      std::fprintf(stderr, "varlen byte conservation broken on the thread host\n");
      return 1;
    }
    if (handled_bytes.load() != stats.consumed_bytes) {
      std::fprintf(stderr, "varlen handler byte tally disagrees with the host\n");
      return 1;
    }
  }

  fleet::FleetMode fleet_mode = fleet::FleetMode::kOff;
  fleet::parse_fleet_mode(options.fleet.c_str(), &fleet_mode);
  if (fleet_mode != fleet::FleetMode::kOff) {
    const int rc = run_fleet(fleet_mode, traces, horizon, spec, options);
    if (rc != 0) return rc;
  }

  if (session.has_value()) {
    if (!options.slo_report.empty()) {
      obs::AttributionReport report =
          obs::build_attribution(*session, attribution_options(spec));
      report.payload_records = payload_records;
      report.payload_bytes = payload_bytes_total;
      report.payload_bytes_per_s = payload_bytes_per_s;
      report.joules_per_mb = payload_joules_per_mb;
      if (!export_slo_report(report, options.slo_report)) return 1;
    }
    if (!export_telemetry(*session, options.trace_out, options.metrics_out)) {
      return 1;
    }
  }
  return 0;
}
