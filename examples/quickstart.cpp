// Quickstart: the smallest complete PBPL program.
//
// Builds a two-core PBPL system with four producer-consumer pairs fed by
// a synthetic web workload, runs it for five virtual seconds, and prints
// the power report next to a plain Mutex baseline.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>
#include <vector>

#include "pcpc/core/config.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/power/powertop.hpp"
#include "pcpc/trace/webserver_log.hpp"

int main() {
  using namespace pcpc;

  // 1. A workload: four phase-shifted replays of a synthetic web log
  //    (~2000 requests/s each, bursty and time-varying).
  trace::WebWorkloadParams workload;
  workload.duration = seconds(5);
  workload.base_rate_hz = 2000.0;
  const std::vector<trace::Trace> traces = trace::make_shifted_workloads(workload, 4);

  // 2. A PBPL configuration: 2 cores, 10 ms slot track, 25-item buffers
  //    over a shared elastic pool, moving-average rate prediction.
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(100);
  config.base_buffer = 25;

  // 3. Run it.
  core::PbplResult result = core::run_pbpl(traces, workload.duration, config);

  std::printf("PBPL consumed %llu items in %llu invocations\n",
              static_cast<unsigned long long>(result.items),
              static_cast<unsigned long long>(result.invocations));
  std::printf("  scheduled wakeups: %llu   overflow wakeups: %llu   latched: %llu/%llu\n",
              static_cast<unsigned long long>(result.scheduled_wakeups),
              static_cast<unsigned long long>(result.overflow_wakeups),
              static_cast<unsigned long long>(result.latched_reservations),
              static_cast<unsigned long long>(result.reservations));
  std::printf("  mean batch: %.1f items   mean latency: %.2f ms\n\n",
              result.batch_sizes.mean(), result.latency_s.mean() * 1e3);

  // 4. Score it against a Mutex implementation on the same workload,
  //    using the Arndale-flavoured power model.
  impls::ExperimentSetup setup;
  setup.baseline.cores = config.cores;
  setup.pbpl = config;
  const impls::RunResult mutex =
      impls::run_implementation(impls::ImplKind::Mutex, traces, workload.duration, setup);
  const impls::RunResult pbpl =
      impls::run_implementation(impls::ImplKind::Pbpl, traces, workload.duration, setup);

  const power::EnergyLedger ledger{power::PowerModelParams{}};
  std::vector<power::PowerTopRow> rows;
  rows.push_back(power::powertop_row("Mutex", mutex.timelines, ledger));
  rows.push_back(power::powertop_row("PBPL", pbpl.timelines, ledger));
  std::cout << power::render_report(rows, "PowerTop-style report (core-side only)");

  const double mutex_w = mutex.extra_power_w(ledger);
  const double pbpl_w = pbpl.extra_power_w(ledger);
  std::printf("\nTotal extra power (incl. item transport): Mutex %.1f mW, PBPL %.1f mW"
              " (%.1f%% saved)\n",
              mutex_w * 1e3, pbpl_w * 1e3, 100.0 * (mutex_w - pbpl_w) / mutex_w);
  return 0;
}
