// Network-router scenario: bursty packet queues and elastic buffers.
//
// A router's line cards deliver packets into per-port ingress queues
// (paper Section I: "data packets received from the network need to be
// removed and processed from internal buffers").  Port traffic is
// on/off-bursty (MMPP), which is the worst case for statically sized
// buffers: size for the burst and waste memory, size for the average and
// overflow.  PBPL's global pool lets a bursting port borrow capacity
// from quiet ones — this example makes that visible.
//
//   $ ./examples/router
#include <cstdio>
#include <iostream>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

namespace {

std::vector<trace::Trace> make_port_traffic(std::size_t ports, SimDuration horizon) {
  std::vector<trace::Trace> traces;
  Rng rng(777);
  for (std::size_t p = 0; p < ports; ++p) {
    trace::MmppParams mmpp;
    mmpp.low_rate_hz = 300.0;
    mmpp.high_rate_hz = 12000.0;
    mmpp.mean_low_dwell = milliseconds(400);
    mmpp.mean_high_dwell = milliseconds(60);
    Rng port_rng = rng.fork();
    traces.push_back(trace::sample_mmpp(mmpp, horizon, port_rng));
  }
  return traces;
}

}  // namespace

int main() {
  const SimDuration horizon = seconds(5);
  const std::size_t ports = 6;
  const auto traces = make_port_traffic(ports, horizon);

  std::printf("Port traffic (two-state MMPP, 300 Hz quiet / 12 kHz bursts):\n");
  for (std::size_t p = 0; p < ports; ++p) {
    const auto stats = traces[p].stats();
    std::printf("  port %zu: %6zu packets, mean %6.0f pkt/s, CV %.2f\n", p,
                traces[p].size(), stats.mean_rate_hz, stats.interarrival_cv);
  }

  impls::ExperimentSetup setup;
  setup.baseline.cores = 2;
  setup.baseline.buffer_capacity = 40;  // per-port descriptor ring
  setup.baseline.service.per_item = microseconds(1);  // forwarding decision
  setup.pbpl.slot_size = milliseconds(5);
  setup.pbpl.max_latency = milliseconds(20);  // forwarding-latency budget
  setup.pbpl.pool_segment = 8;

  const power::EnergyLedger ledger{power::PowerModelParams{}};

  Table table({"strategy", "power (mW)", "wakeups/s", "overflow drains",
               "mean latency (ms)", "avg ring size"});
  table.set_title("\nPacket-queue servicing strategies, 6 ports on 2 cores");
  for (const auto kind :
       {impls::ImplKind::Mutex, impls::ImplKind::Batch, impls::ImplKind::Pbpl}) {
    const auto r = impls::run_implementation(kind, traces, horizon, setup);
    table.add(impls::impl_name(kind), format_double(r.extra_power_w(ledger) * 1e3, 1),
              format_double(r.wakeups_per_s(), 1), static_cast<long long>(r.overflows),
              format_double(r.latency_s.mean() * 1e3, 2),
              r.buffer_capacity.count() > 0 ? format_double(r.buffer_capacity.mean(), 1)
                                            : std::string("40.0 (static)"));
  }
  table.print(std::cout);

  // Show the elastic pool absorbing bursts: compare PBPL with and
  // without dynamic resizing under identical traffic.
  auto rigid = setup;
  rigid.pbpl.dynamic_resize = false;
  rigid.pbpl.emergency_borrow = false;
  const auto elastic =
      impls::run_implementation(impls::ImplKind::Pbpl, traces, horizon, setup);
  const auto fixed =
      impls::run_implementation(impls::ImplKind::Pbpl, traces, horizon, rigid);
  std::printf(
      "\nElastic vs fixed rings under the same bursts:\n"
      "  elastic: %llu overflow drains, %llu pool borrows\n"
      "  fixed:   %llu overflow drains\n"
      "The pool converts burst overflows into borrowed capacity, keeping ports\n"
      "latched onto shared slot wakeups (Section V-C dynamic resizing).\n",
      static_cast<unsigned long long>(elastic.overflows),
      static_cast<unsigned long long>(elastic.emergency_borrows),
      static_cast<unsigned long long>(fixed.overflows));
  return 0;
}
