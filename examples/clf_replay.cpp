// Replay a real web-server access log (Common Log Format) through the
// producer-consumer implementations — the paper's own methodology with
// your own data.
//
//   $ ./examples/clf_replay [access.log [time_scale [workers]]]
//
// With no argument a small synthetic CLF log in the spirit of the 1998
// World Cup dataset is generated on the fly, so the example always runs.
// `time_scale` compresses the log's wall time (0.001 replays an hour in
// 3.6 s).  The log's single request stream is split across `workers`
// queues round-robin, as a load balancer would.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include <cmath>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/trace/clf.hpp"
#include "pcpc/trace/transforms.hpp"

using namespace pcpc;

int main(int argc, char** argv) {
  trace::ClfParseResult parsed;
  const double time_scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  const std::size_t workers = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;

  if (argc > 1) {
    bool ok = false;
    parsed = trace::parse_clf_file(argv[1], time_scale, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::printf("parsed %zu/%zu lines from %s (%zu malformed)\n", parsed.parsed,
                parsed.lines, argv[1], parsed.malformed);
  } else {
    // Generate a synthetic minute of CLF and parse it through the same
    // code path a real file would take.
    std::ostringstream log;
    Rng rng(1998);
    for (int second = 0; second < 60; ++second) {
      const int burst =
          50 + static_cast<int>(30.0 * std::sin(static_cast<double>(second) * 0.2));
      for (int i = 0; i < burst; ++i) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "host%llu - - [26/Jun/1998:12:00:%02d +0000] "
                      "\"GET /scores HTTP/1.0\" 200 %llu\n",
                      static_cast<unsigned long long>(rng.next_below(100)), second,
                      static_cast<unsigned long long>(rng.next_below(9000) + 100));
        log << line;
      }
    }
    std::istringstream in(log.str());
    parsed = trace::parse_clf(in, time_scale);
    std::printf("no log given; generated a synthetic minute of CLF "
                "(%zu requests, replayed %.0fx faster)\n",
                parsed.parsed, 1.0 / time_scale);
  }

  if (parsed.trace.size() < 10) {
    std::fprintf(stderr, "log too small to replay\n");
    return 1;
  }

  // CLF timestamps have one-second resolution: spread each second's
  // requests uniformly inside it so the replay is not a pulse train.
  Rng jitter_rng(7);
  const trace::Trace smoothed = trace::jitter(
      parsed.trace, from_seconds(0.5 * time_scale), jitter_rng);
  const SimDuration horizon = smoothed.end_time() + milliseconds(1);
  const auto queues = trace::split_round_robin(smoothed, workers);

  const auto stats = smoothed.stats();
  std::printf("replay: %zu requests over %.2f s (mean %.0f req/s, peak %.0f)\n\n",
              smoothed.size(), to_seconds(horizon), stats.mean_rate_hz,
              stats.peak_rate_hz);

  impls::ExperimentSetup setup;
  setup.baseline.cores = 2;
  setup.baseline.buffer_capacity = 32;
  setup.pbpl.slot_size = milliseconds(10);
  setup.pbpl.max_latency = milliseconds(100);
  const power::EnergyLedger ledger{power::PowerModelParams{}};

  Table table({"dispatch", "power (mW)", "wakeups/s", "latency (ms)"});
  table.set_title("Replaying the log through " + std::to_string(workers) +
                  " worker queues");
  for (const auto kind :
       {impls::ImplKind::Mutex, impls::ImplKind::Batch, impls::ImplKind::Pbpl}) {
    const auto r = impls::run_implementation(kind, queues, horizon, setup);
    table.add(impls::impl_name(kind), format_double(r.extra_power_w(ledger) * 1e3, 1),
              format_double(r.wakeups_per_s(), 1),
              format_double(r.latency_s.mean() * 1e3, 2));
  }
  table.print(std::cout);
  return 0;
}
