// Capstone scenario: an IoT gateway aggregating heterogeneous sensors.
//
// Twelve sensor streams with wildly different rates and burst profiles
// feed one 4-core gateway that must stay within a power envelope while
// meeting per-stream staleness bounds.  The example composes everything
// the library offers on top of the paper's algorithm:
//   * packed core assignment   — park two cores permanently (f : C → α);
//   * Kalman rate prediction   — the paper's future-work estimator;
//   * the adaptive latency guard — staleness enforcement under bursts;
//   * elastic buffers          — camera bursts borrow from quiet sensors.
//
//   $ ./examples/iot_gateway
#include <cstdio>
#include <iostream>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/core/config_io.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

namespace {

struct Sensor {
  const char* kind;
  trace::Trace trace;
};

std::vector<Sensor> make_sensors(SimDuration horizon) {
  std::vector<Sensor> sensors;
  Rng rng(0x107);
  // 4 slow environment sensors: ~20 Hz telemetry.
  for (int i = 0; i < 4; ++i) {
    const trace::ConstantRate rate(20.0);
    Rng stream = rng.fork();
    sensors.push_back({"env-20Hz", trace::sample_nhpp(rate, horizon, stream)});
  }
  // 4 medium accelerometers: 400 Hz with slow drift.
  for (int i = 0; i < 4; ++i) {
    const trace::SinusoidRate rate(400.0, 150.0, seconds(4), rng.uniform(0, 6.28));
    Rng stream = rng.fork();
    sensors.push_back({"accel-400Hz", trace::sample_nhpp(rate, horizon, stream)});
  }
  // 2 event cameras: heavy-tailed ON/OFF bursts.
  for (int i = 0; i < 2; ++i) {
    trace::ParetoOnOffParams camera;
    camera.on_rate_hz = 8000.0;
    camera.min_on = milliseconds(15);
    camera.min_off = milliseconds(80);
    Rng stream = rng.fork();
    sensors.push_back({"camera-burst", trace::sample_pareto_on_off(camera, horizon, stream)});
  }
  // 2 network event streams: MMPP.
  for (int i = 0; i < 2; ++i) {
    trace::MmppParams net;
    net.low_rate_hz = 100.0;
    net.high_rate_hz = 3000.0;
    Rng stream = rng.fork();
    sensors.push_back({"net-mmpp", trace::sample_mmpp(net, horizon, stream)});
  }
  return sensors;
}

}  // namespace

int main() {
  const SimDuration horizon = seconds(5);
  auto sensors = make_sensors(horizon);

  std::printf("Gateway ingest (%zu sensors):\n", sensors.size());
  std::vector<trace::Trace> traces;
  for (const auto& sensor : sensors) {
    const auto stats = sensor.trace.stats();
    std::printf("  %-12s %7zu samples, mean %6.0f /s, CV %.2f\n", sensor.kind,
                sensor.trace.size(), stats.mean_rate_hz, stats.interarrival_cv);
    traces.push_back(sensor.trace);
  }

  // Gateway configuration, written the way an operator would ship it.
  core::PbplConfig config;
  std::string error;
  const std::vector<std::string> tuning{
      "cores=4",
      "slot_size_us=5000",       // 5 ms track
      "max_latency_us=50000",    // 50 ms staleness bound
      "base_buffer=48",
      "pool_segment=8",
      "predictor=kalman",        // the paper's future-work estimator
      "latency_guard=1",         // enforce the staleness bound under bursts
      "assignment=packed",       // park unneeded cores
      "utilization_cap=0.6",
  };
  if (!core::apply_options(config, tuning, &error)) {
    std::fprintf(stderr, "config error: %s\n", error.c_str());
    return 1;
  }

  impls::ExperimentSetup setup;
  setup.baseline.cores = config.cores;
  setup.baseline.buffer_capacity = config.base_buffer;
  setup.pbpl = config;
  const power::EnergyLedger ledger{power::PowerModelParams{}};

  Table table({"ingest strategy", "power (mW)", "wakeups/s", "mean latency (ms)",
               "overflow drains"});
  table.set_title("\nGateway ingest strategies");
  impls::RunResult pbpl_run;
  for (const auto kind :
       {impls::ImplKind::Mutex, impls::ImplKind::Batch, impls::ImplKind::Pbpl}) {
    auto r = impls::run_implementation(kind, traces, horizon, setup);
    table.add(impls::impl_name(kind), format_double(r.extra_power_w(ledger) * 1e3, 1),
              format_double(r.wakeups_per_s(), 1),
              format_double(r.latency_s.mean() * 1e3, 2),
              static_cast<long long>(r.overflows));
    if (kind == impls::ImplKind::Pbpl) pbpl_run = std::move(r);
  }
  table.print(std::cout);

  std::size_t cores_awake = 0;
  for (const auto& tl : pbpl_run.timelines) cores_awake += (tl.wakeups() > 0);
  std::printf(
      "\nPBPL internals: %zu of %zu cores ever woke; %llu/%llu reservations latched;\n"
      "%llu pool borrows absorbed camera bursts; worst staleness %.1f ms.\n"
      "(The 50 ms bound applies beyond the predicted inter-arrival gap — the\n"
      "20 Hz sensors legitimately wait up to ~1/r + L = 100 ms, more when the\n"
      "estimator lags; the latency guard then reels the horizon back in.)\n",
      cores_awake, pbpl_run.timelines.size(),
      static_cast<unsigned long long>(pbpl_run.latched_reservations),
      static_cast<unsigned long long>(pbpl_run.reservations),
      static_cast<unsigned long long>(pbpl_run.emergency_borrows),
      pbpl_run.latency_s.max() * 1e3);
  return 0;
}
