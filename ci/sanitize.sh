#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy suites.
#
# Builds the tree twice — once under ThreadSanitizer, once under
# AddressSanitizer+UBSan — and runs the chaos/runtime/fuzz suites under
# each.  These are the tests that exercise real threads, the overflow
# drain paths, the watchdog and the stop() races, i.e. exactly the code
# where a data race or lifetime bug would hide from the regular build.
#
# Usage: ci/sanitize.sh [build-dir-prefix]     (default: build-san)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"

# The suites worth the sanitizer slowdown: every test that spawns real
# threads or drives the fault injector.  IpcCrash forks real producer
# processes — it self-skips under TSan (fork + shm atomics are outside
# TSan's model) and runs fully under ASan/UBSan.
suite_regex='ChaosRuntime|ChaosBaseline|ChaosSim|FaultInjector|ApplyProducerFaults|ThreadPbpl|ThreadBaseline|TraceReplayer|RuntimeChaosFuzz|RuntimeSharding|BufferPool|ElasticBuffer|QueueDifferential|QueueFuzz|IpcCrash|ObsIpc|ObsAttribution|Registry|TraceRing|Session|WakeupLedger|Fleet|example_chaos_demo|example_live_threads'

run_pass() {
  local name="$1" sanitize="$2"
  local dir="${prefix}-${name}"
  echo "=== ${name}: configure (${sanitize}) ==="
  cmake -B "${dir}" -S . -DPCPC_SANITIZE="${sanitize}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "$(nproc)" \
    --target test_chaos_runtime test_fault_injection test_runtime \
             test_runtime_sharding test_fleet \
             test_fuzz_pbpl test_elastic_buffer test_obs test_obs_ledger \
             test_queue_differential test_queue_fuzz test_ipc_crash \
             test_obs_ipc chaos_demo live_threads
  echo "=== ${name}: test ==="
  ctest --test-dir "${dir}" --output-on-failure -R "${suite_regex}"
}

# TSan and ASan cannot be combined in one binary; run two passes.
run_pass tsan thread
run_pass asan address,undefined

echo "sanitize: all passes clean"
