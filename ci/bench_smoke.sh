#!/usr/bin/env bash
# Telemetry smoke gate.
#
# Runs the instrumented overhead bench: the identical sim-host workload
# with and without a recording pcpc::obs session, timed in back-to-back
# pairs on process CPU time.  Fails when recording costs more than 5%
# (median paired ratio), when the wakeup ledger's Σ w(τ) disagrees with
# the simulator's own paid-wakeup counter, or when the exported
# metrics.json is missing/empty.  Then runs the queue_floor backend
# throughput gate and the shard_scaling runtime gate (4 cores must drain
# a saturated handler-bound workload at >= 1.8x the 1-core rate without
# minting wakeups beyond the slot schedule), the varlen_floor zero-copy
# record gate (in-ring reserve/commit + in-place drain vs the
# staging-copy path), and the ipc_floor
# cross-process gate (forked producers over the shm channel: throughput
# floor, futex-wake frugality, exact no-fault conservation), and the
# fleet_parking elastic-autoscaler gate (at ~10% utilization the
# controller must cut paid wakeups >= 30% and joules/item vs the static
# placement with zero Δ-SLO violations).  Also smoke-runs the chaos
# bench with exporters armed so the trace/metrics plumbing on the thread
# host stays exercised.
#
# Every gate appends one JSON line to BENCH_<gate>.json at the repo
# root — timestamp, git sha, and the gate's headline numbers — so the
# benches keep a trajectory across commits instead of only gating.
#
# Usage: ci/bench_smoke.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
out="${build}/bench_smoke"
mkdir -p "${out}"

stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
# record <gate> <json-fields>: append one trajectory line for this run.
record() {
  printf '{"utc":"%s","git":"%s",%s}\n' "${stamp}" "${sha}" "$2" >> "BENCH_$1.json"
}

if [[ ! -x "${build}/bench/obs_overhead" ]]; then
  echo "bench_smoke: ${build}/bench/obs_overhead not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target obs_overhead chaos_overload'" >&2
  exit 2
fi

echo "=== obs_overhead: 5% telemetry gate (spans armed too) ==="
# This is a cost *measurement* on a possibly-shared host: neighbour
# contention can only inflate the estimate, never push it below the true
# cost, so any clean attempt certifies the bound.  Retry a stomped run
# before declaring a regression.
obs_ok=false
for attempt in 1 2 3; do
  if "${build}/bench/obs_overhead" \
      --metrics-out="${out}/metrics.json" \
      --max-overhead=1.05 \
      --repeats=9 --seconds=30 --pairs=8 --span-every=64 | tee "${out}/obs_overhead.txt"; then
    obs_ok=true
    break
  fi
  echo "bench_smoke: obs_overhead attempt ${attempt} over the gate; retrying" >&2
done
if ! ${obs_ok}; then
  echo "bench_smoke: obs_overhead failed all 3 attempts" >&2
  exit 1
fi
overhead_pct="$(grep -oE 'paired ratios\): -?[0-9.]+' "${out}/obs_overhead.txt" | grep -oE '\-?[0-9.]+$' || echo null)"
span_overhead_pct="$(grep -oE 'span ratios\): -?[0-9.]+' "${out}/obs_overhead.txt" | grep -oE '\-?[0-9.]+$' || echo null)"
record obs_overhead "\"overhead_pct\":${overhead_pct},\"span_overhead_pct\":${span_overhead_pct},\"gate_pct\":5.0,\"pass\":true"

if [[ ! -s "${out}/metrics.json" ]]; then
  echo "bench_smoke: ${out}/metrics.json missing or empty" >&2
  exit 1
fi
grep -q '"wakeups"' "${out}/metrics.json" || {
  echo "bench_smoke: metrics.json has no wakeup ledger" >&2
  exit 1
}

echo "=== queue_floor: backend throughput gate ==="
if [[ ! -x "${build}/bench/queue_floor" ]]; then
  echo "bench_smoke: ${build}/bench/queue_floor not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target queue_floor'" >&2
  exit 2
fi
"${build}/bench/queue_floor" | tee "${out}/queue_floor.txt"
spsc_x="$(grep -oE '\([0-9.]+x\)' "${out}/queue_floor.txt" | head -1 | tr -d '()x')"
mpsc_x="$(grep -oE '\([0-9.]+x\)' "${out}/queue_floor.txt" | tail -1 | tr -d '()x')"
record queue_floor "\"spsc_vs_mutex_1p\":${spsc_x:-null},\"mpsc_vs_mutex_4p\":${mpsc_x:-null},\"pass\":true"

echo "=== shard_scaling: per-core runtime scaling gate ==="
if [[ ! -x "${build}/bench/shard_scaling" ]]; then
  echo "bench_smoke: ${build}/bench/shard_scaling not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target shard_scaling'" >&2
  exit 2
fi
"${build}/bench/shard_scaling" --items=2000 --trials=3 | tee "${out}/shard_scaling.txt"
scaling_x="$(grep -oE 'throughput: [0-9.]+x' "${out}/shard_scaling.txt" | grep -oE '[0-9.]+')"
record shard_scaling "\"four_core_vs_one\":${scaling_x:-null},\"gate\":1.8,\"pass\":true"

echo "=== varlen_floor: zero-copy record plane gate ==="
if [[ ! -x "${build}/bench/varlen_floor" ]]; then
  echo "bench_smoke: ${build}/bench/varlen_floor not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target varlen_floor'" >&2
  exit 2
fi
# In-ring reserve/commit + in-place drain vs the staging-copy path:
# >= 1.5x at 4 KiB SPSC, >= 1.2x with 4 MPSC producers.  Bandwidth
# ratios on one box are stable, but a noisy neighbour can stomp either
# side of a pair; retry a stomped run before declaring a regression.
varlen_ok=false
for attempt in 1 2 3; do
  if "${build}/bench/varlen_floor" --bytes=$((16 << 20)) --trials=3 \
      --json-out="${out}/varlen_floor.json" | tee "${out}/varlen_floor.txt"; then
    varlen_ok=true
    break
  fi
  echo "bench_smoke: varlen_floor attempt ${attempt} under the floor; retrying" >&2
done
if ! ${varlen_ok}; then
  echo "bench_smoke: varlen_floor failed all 3 attempts" >&2
  exit 1
fi
# The bench already emits its record as JSON; fold it into the trajectory.
record varlen_floor "$(sed 's/^{//;s/}$//' "${out}/varlen_floor.json")"

echo "=== ipc_floor: cross-process host gate ==="
if [[ ! -x "${build}/bench/ipc_floor" ]]; then
  echo "bench_smoke: ${build}/bench/ipc_floor not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target ipc_floor'" >&2
  exit 2
fi
"${build}/bench/ipc_floor" --json-out="${out}/ipc_floor.json" | tee "${out}/ipc_floor.txt"
# The bench already emits its record as JSON; fold it into the trajectory.
record ipc_floor "$(sed 's/^{//;s/}$//' "${out}/ipc_floor.json")"

echo "=== fleet_parking: elastic autoscaler gate ==="
if [[ ! -x "${build}/bench/fleet_parking" ]]; then
  echo "bench_smoke: ${build}/bench/fleet_parking not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target fleet_parking'" >&2
  exit 2
fi
# At the ~10% utilization point the elastic controller must cut paid
# wakeups >= 30% and joules/item vs the static placement with zero Δ-SLO
# violations.  Deterministic sim replay: no retry needed.
"${build}/bench/fleet_parking" | tee "${out}/fleet_parking.txt"
# The bench's last line is its JSON record; fold it into the trajectory.
record fleet_parking "$(tail -1 "${out}/fleet_parking.txt" | sed 's/^{//;s/}$//')"

echo "=== chaos_overload: exporter smoke (thread host) ==="
"${build}/bench/chaos_overload" "${out}/chaos.csv" \
  --trace-out="${out}/chaos_trace.json" \
  --metrics-out="${out}/chaos_metrics.json" > /dev/null
for f in chaos.csv chaos_trace.json chaos_metrics.json; do
  [[ -s "${out}/${f}" ]] || { echo "bench_smoke: ${out}/${f} missing" >&2; exit 1; }
done

echo "=== trajectory files: every BENCH_*.json line must parse ==="
# Malformed lines (a gate interpolating an empty capture, a half-written
# record from a crashed run) silently poison the trajectory history, so
# validate every line of every trajectory file: it must parse as one
# JSON object carrying at least utc/git/pass keys.
python3 - BENCH_*.json <<'PY'
import json, sys

bad = 0
for path in sys.argv[1:]:
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"bench_smoke: {path}:{lineno}: not JSON ({err})", file=sys.stderr)
                bad += 1
                continue
            if not isinstance(rec, dict):
                print(f"bench_smoke: {path}:{lineno}: not a JSON object", file=sys.stderr)
                bad += 1
                continue
            missing = [k for k in ("utc", "git", "pass") if k not in rec]
            if missing:
                print(f"bench_smoke: {path}:{lineno}: missing keys {missing}",
                      file=sys.stderr)
                bad += 1
sys.exit(1 if bad else 0)
PY

echo "bench_smoke: all gates clean (artifacts in ${out}/)"
