#!/usr/bin/env bash
# Telemetry smoke gate.
#
# Runs the instrumented overhead bench: the identical sim-host workload
# with and without a recording pcpc::obs session, timed in back-to-back
# pairs on process CPU time.  Fails when recording costs more than 5%
# (median paired ratio), when the wakeup ledger's Σ w(τ) disagrees with
# the simulator's own paid-wakeup counter, or when the exported
# metrics.json is missing/empty.  Then runs the queue_floor backend
# throughput gate and the shard_scaling runtime gate (4 cores must drain
# a saturated handler-bound workload at >= 1.8x the 1-core rate without
# minting wakeups beyond the slot schedule).  Also smoke-runs the chaos
# bench with exporters armed so the trace/metrics plumbing on the thread
# host stays exercised.
#
# Usage: ci/bench_smoke.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
out="${build}/bench_smoke"
mkdir -p "${out}"

if [[ ! -x "${build}/bench/obs_overhead" ]]; then
  echo "bench_smoke: ${build}/bench/obs_overhead not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target obs_overhead chaos_overload'" >&2
  exit 2
fi

echo "=== obs_overhead: 5% telemetry gate ==="
"${build}/bench/obs_overhead" \
  --metrics-out="${out}/metrics.json" \
  --max-overhead=1.05 \
  --repeats=9 --seconds=30 --pairs=8

if [[ ! -s "${out}/metrics.json" ]]; then
  echo "bench_smoke: ${out}/metrics.json missing or empty" >&2
  exit 1
fi
grep -q '"wakeups"' "${out}/metrics.json" || {
  echo "bench_smoke: metrics.json has no wakeup ledger" >&2
  exit 1
}

echo "=== queue_floor: backend throughput gate ==="
if [[ ! -x "${build}/bench/queue_floor" ]]; then
  echo "bench_smoke: ${build}/bench/queue_floor not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target queue_floor'" >&2
  exit 2
fi
"${build}/bench/queue_floor" | tee "${out}/queue_floor.txt"

echo "=== shard_scaling: per-core runtime scaling gate ==="
if [[ ! -x "${build}/bench/shard_scaling" ]]; then
  echo "bench_smoke: ${build}/bench/shard_scaling not built" >&2
  echo "bench_smoke: run 'cmake --build ${build} --target shard_scaling'" >&2
  exit 2
fi
"${build}/bench/shard_scaling" --items=2000 --trials=3 | tee "${out}/shard_scaling.txt"

echo "=== chaos_overload: exporter smoke (thread host) ==="
"${build}/bench/chaos_overload" "${out}/chaos.csv" \
  --trace-out="${out}/chaos_trace.json" \
  --metrics-out="${out}/chaos_metrics.json" > /dev/null
for f in chaos.csv chaos_trace.json chaos_metrics.json; do
  [[ -s "${out}/${f}" ]] || { echo "bench_smoke: ${out}/${f} missing" >&2; exit 1; }
done

echo "bench_smoke: all gates clean (artifacts in ${out}/)"
