// Property sweeps over the reservation cost function: invariants that
// must hold for any rate, capacity, latency bound and reservation layout.
#include <gtest/gtest.h>

#include <tuple>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/cost.hpp"

namespace pcpc::core {
namespace {

using Param = std::tuple<double /*rate*/, std::size_t /*capacity*/, long /*latency_ms*/>;

class ChooseSlotSweep : public ::testing::TestWithParam<Param> {
 protected:
  SlotTrack track{milliseconds(10)};
  EnergyCosts costs;
};

TEST_P(ChooseSlotSweep, ChoiceIsFutureAndWithinBounds) {
  const auto [rate, capacity, latency_ms] = GetParam();
  const ReservationTable empty;
  SlotQuery query;
  query.predicted_rate_hz = rate;
  query.buffer_capacity = capacity;
  query.max_latency = milliseconds(latency_ms);
  for (SimTime now = 0; now < milliseconds(100); now += microseconds(3137)) {
    query.now = now;
    const SlotChoice choice = choose_slot(track, empty, query, costs);
    // Always strictly in the future.
    ASSERT_GT(track.start_of(choice.slot), now);
    if (rate > 0.0) {
      // Never past the buffer-fill horizon (with tolerance) nor the
      // first-item latency cap, whichever is sooner; and never more than
      // one slot before it (floor quantization).
      const double horizon_s =
          std::min(query.fill_tolerance * static_cast<double>(capacity) / rate,
                   1.0 / rate + to_seconds(query.max_latency));
      const SimTime horizon = now + from_seconds(horizon_s);
      ASSERT_LE(track.start_of(choice.slot), std::max(horizon, track.start_of(track.next_after(now))));
      // Expected items consistent with the slot distance.
      ASSERT_NEAR(choice.expected_items,
                  rate * to_seconds(track.start_of(choice.slot) - now), 1e-6);
    }
  }
}

TEST_P(ChooseSlotSweep, LatchingNeverCostsMoreThanIgnoringReservations) {
  // With reservations visible, the chosen ρ is never worse than the
  // reservation-blind fill slot's ρ (latching is an optimization).
  const auto [rate, capacity, latency_ms] = GetParam();
  if (rate <= 0.0) return;
  Rng rng(rate > 0 ? static_cast<std::uint64_t>(rate) + capacity : 1);
  ReservationTable reservations;
  for (ConsumerId c = 0; c < 6; ++c) {
    reservations.reserve(c, static_cast<SlotIndex>(1 + rng.next_below(30)));
  }
  SlotQuery query;
  query.predicted_rate_hz = rate;
  query.buffer_capacity = capacity;
  query.max_latency = milliseconds(latency_ms);
  for (SimTime now = 0; now < milliseconds(60); now += microseconds(7411)) {
    query.now = now;
    const SlotChoice with = choose_slot(track, reservations, query, costs);
    const SlotChoice without = fill_slot(track, query, costs);
    ASSERT_LE(with.cost, without.cost + 1e-18);
  }
}

TEST_P(ChooseSlotSweep, ChoiceCostIsMinimalOverItsOwnCandidates) {
  // Exhaustive check: no slot in the feasible window beats the chosen one
  // under ρ (the backtracking shortcut must not skip a better slot).
  const auto [rate, capacity, latency_ms] = GetParam();
  if (rate <= 0.0) return;
  ReservationTable reservations;
  reservations.reserve(1, 2);
  reservations.reserve(2, 5);
  reservations.reserve(3, 9);
  SlotQuery query;
  query.predicted_rate_hz = rate;
  query.buffer_capacity = capacity;
  query.max_latency = milliseconds(latency_ms);
  query.now = microseconds(1500);
  const SlotChoice choice = choose_slot(track, reservations, query, costs);

  const SlotIndex first = track.next_after(query.now);
  const double horizon_s =
      std::min(query.fill_tolerance * static_cast<double>(capacity) / rate,
               1.0 / rate + to_seconds(query.max_latency));
  SlotIndex last = track.index_of(query.now + from_seconds(horizon_s));
  last = std::max(last, first);
  for (SlotIndex s = first; s <= last; ++s) {
    const double n = rate * to_seconds(track.start_of(s) - query.now);
    if (n <= 0.0) continue;
    const double cost = rho(n, reservations.slot_reserved(s), costs);
    ASSERT_GE(cost, choice.cost - 1e-18)
        << "slot " << s << " beats chosen slot " << choice.slot;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChooseSlotSweep,
    ::testing::Combine(::testing::Values(0.0, 13.0, 800.0, 2000.0, 50000.0),
                       ::testing::Values(std::size_t{1}, std::size_t{25},
                                         std::size_t{500}),
                       ::testing::Values(5L, 100L, 5000L)));

}  // namespace
}  // namespace pcpc::core
