// Tests for the Trace container and its transformations.
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/trace/trace.hpp"

namespace pcpc::trace {
namespace {

TEST(Trace, SortsUnorderedInput) {
  Trace t({milliseconds(3), milliseconds(1), milliseconds(2)});
  EXPECT_EQ(t.at(0), milliseconds(1));
  EXPECT_EQ(t.at(2), milliseconds(3));
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.end_time(), 0);
  EXPECT_EQ(t.count_in(0, seconds(1)), 0u);
  const TraceStats s = t.stats();
  EXPECT_EQ(s.items, 0u);
  EXPECT_EQ(s.mean_rate_hz, 0.0);
}

TEST(Trace, CountInHalfOpenInterval) {
  const Trace t = uniform_trace(10, milliseconds(1));  // 0, 1ms, ..., 9ms
  EXPECT_EQ(t.count_in(0, milliseconds(10)), 10u);
  EXPECT_EQ(t.count_in(milliseconds(1), milliseconds(3)), 2u);  // 1ms, 2ms
  EXPECT_EQ(t.count_in(milliseconds(3), milliseconds(3)), 0u);
  EXPECT_EQ(t.count_in(milliseconds(9), milliseconds(100)), 1u);
}

TEST(Trace, UniformStats) {
  const Trace t = uniform_trace(1001, milliseconds(1));
  const TraceStats s = t.stats();
  EXPECT_EQ(s.items, 1001u);
  EXPECT_EQ(s.duration, seconds(1));
  EXPECT_NEAR(s.mean_rate_hz, 1001.0, 2.0);
  EXPECT_NEAR(s.interarrival_cv, 0.0, 1e-9);  // perfectly regular
  EXPECT_NEAR(s.peak_rate_hz, 1000.0, 11.0);
}

TEST(Trace, SliceRebasesToZero) {
  const Trace t = uniform_trace(10, milliseconds(1));
  const Trace s = t.slice(milliseconds(3), milliseconds(7));
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.at(0), 0);
  EXPECT_EQ(s.at(3), milliseconds(3));
}

TEST(Trace, PhaseShiftPreservesItemCount) {
  const Trace t = uniform_trace(100, milliseconds(7), milliseconds(1));
  const SimDuration total = seconds(1);
  for (const SimDuration offset :
       {SimDuration(0), milliseconds(100), milliseconds(777), total}) {
    const Trace shifted = t.phase_shift(offset, total);
    EXPECT_EQ(shifted.size(), t.size()) << "offset " << offset;
  }
}

TEST(Trace, PhaseShiftRotation) {
  // Items at 100ms and 600ms in a 1s window, shifted by 500ms:
  // 600 -> 100, 100 -> 600.
  const Trace t({milliseconds(100), milliseconds(600)});
  const Trace shifted = t.phase_shift(milliseconds(500), seconds(1));
  ASSERT_EQ(shifted.size(), 2u);
  EXPECT_EQ(shifted.at(0), milliseconds(100));
  EXPECT_EQ(shifted.at(1), milliseconds(600));
}

TEST(Trace, PhaseShiftWrapsModuloDuration) {
  const Trace t({milliseconds(100)});
  const Trace a = t.phase_shift(milliseconds(200), seconds(1));
  const Trace b = t.phase_shift(milliseconds(200) + seconds(1), seconds(1));
  EXPECT_EQ(a.at(0), b.at(0));
  EXPECT_EQ(a.at(0), milliseconds(900));
}

TEST(Trace, MergeSortsAcrossInputs) {
  const Trace a({milliseconds(1), milliseconds(5)});
  const Trace b({milliseconds(2), milliseconds(4)});
  const std::vector<Trace> both{a, b};
  const Trace merged = merge(both);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.at(0), milliseconds(1));
  EXPECT_EQ(merged.at(1), milliseconds(2));
  EXPECT_EQ(merged.at(3), milliseconds(5));
}

TEST(Trace, BurstyStatsHaveHighCv) {
  // Pairs of items close together with long gaps: CV should exceed 1.
  std::vector<SimTime> ts;
  for (int i = 0; i < 100; ++i) {
    ts.push_back(milliseconds(10 * i));
    ts.push_back(milliseconds(10 * i) + microseconds(10));
  }
  const TraceStats s = Trace(std::move(ts)).stats();
  EXPECT_GT(s.interarrival_cv, 0.9);
}

TEST(UniformTrace, StartOffset) {
  const Trace t = uniform_trace(3, milliseconds(2), milliseconds(10));
  EXPECT_EQ(t.at(0), milliseconds(10));
  EXPECT_EQ(t.at(2), milliseconds(14));
}

}  // namespace
}  // namespace pcpc::trace
