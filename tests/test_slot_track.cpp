// Tests for the slot track (Section V-A time discretization).
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/core/slot_track.hpp"

namespace pcpc::core {
namespace {

TEST(SlotTrack, IndexAndStartAreInverse) {
  const SlotTrack track(milliseconds(10));
  for (SlotIndex i : {-5, -1, 0, 1, 7, 1000}) {
    EXPECT_EQ(track.index_of(track.start_of(i)), i);
  }
}

TEST(SlotTrack, GIsLatestSlotAtOrBefore) {
  const SlotTrack track(milliseconds(10));
  EXPECT_EQ(track.g(0), 0);
  EXPECT_EQ(track.g(milliseconds(10)), milliseconds(10));  // boundary belongs to slot
  EXPECT_EQ(track.g(milliseconds(19)), milliseconds(10));
  EXPECT_EQ(track.g(milliseconds(20)), milliseconds(20));
}

TEST(SlotTrack, GNeverExceedsInput) {
  // The paper's Equation 6 invariant: g(τ) ≤ τ.
  const SlotTrack track(microseconds(777));
  for (SimTime t = 0; t < milliseconds(10); t += microseconds(131)) {
    EXPECT_LE(track.g(t), t);
    EXPECT_GT(track.g(t) + track.slot_size(), t);
  }
}

TEST(SlotTrack, NegativeTimesFloorCorrectly) {
  const SlotTrack track(milliseconds(10));
  EXPECT_EQ(track.index_of(-1), -1);
  EXPECT_EQ(track.index_of(milliseconds(-10)), -1);
  EXPECT_EQ(track.index_of(milliseconds(-10) - 1), -2);
  EXPECT_EQ(track.g(-1), milliseconds(-10));
}

TEST(SlotTrack, NextAfterIsStrictlyLater) {
  const SlotTrack track(milliseconds(10));
  EXPECT_EQ(track.next_after(0), 1);  // slot 0 starts exactly at 0
  EXPECT_EQ(track.next_after(milliseconds(5)), 1);
  EXPECT_EQ(track.next_after(milliseconds(10)), 2);
  for (SimTime t = 0; t < milliseconds(50); t += microseconds(313)) {
    EXPECT_GT(track.start_of(track.next_after(t)), t);
  }
}

TEST(SlotTrack, OriginOffset) {
  const SlotTrack track(milliseconds(10), milliseconds(3));
  EXPECT_EQ(track.start_of(0), milliseconds(3));
  EXPECT_EQ(track.index_of(milliseconds(3)), 0);
  EXPECT_EQ(track.index_of(milliseconds(2)), -1);
}

class SlotTrackParamTest : public ::testing::TestWithParam<SimDuration> {};

TEST_P(SlotTrackParamTest, SlotPartitionIsExactForAnyDelta) {
  const SlotTrack track(GetParam());
  for (SimTime t = 0; t < GetParam() * 20; t += GetParam() / 7 + 1) {
    const SlotIndex i = track.index_of(t);
    EXPECT_LE(track.start_of(i), t);
    EXPECT_GT(track.start_of(i + 1), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, SlotTrackParamTest,
                         ::testing::Values(microseconds(100), milliseconds(1),
                                           milliseconds(10), milliseconds(33),
                                           seconds(1)));

TEST(SlotTrack, DefaultSlotSizeIsMinLatency) {
  const std::vector<SimDuration> latencies{milliseconds(50), milliseconds(10),
                                           milliseconds(20)};
  EXPECT_EQ(SlotTrack::default_slot_size(latencies), milliseconds(10));
}

TEST(SlotTrackDeath, RejectsBadArguments) {
  EXPECT_DEATH(SlotTrack(0), "positive");
  const std::vector<SimDuration> bad{milliseconds(10), 0};
  EXPECT_DEATH(SlotTrack::default_slot_size(bad), "positive");
}

}  // namespace
}  // namespace pcpc::core
