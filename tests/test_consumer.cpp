// Tests for the PBPL consumer: batching, prediction, reservation,
// dynamic resizing and the overflow path (Section V-C).
#include <gtest/gtest.h>

#include "pcpc/core/consumer.hpp"
#include "pcpc/core/pbpl_system.hpp"

namespace pcpc::core {
namespace {

struct ConsumerFixture : ::testing::Test {
  PbplConfig config = [] {
    PbplConfig c;
    c.cores = 1;
    c.slot_size = milliseconds(10);
    c.max_latency = milliseconds(100);
    c.base_buffer = 25;
    c.pool_segment = 5;
    c.predictor_window = 4;
    return c;
  }();
  sim::Simulator sim;
};

TEST_F(ConsumerFixture, StartMakesInitialReservation) {
  PbplSystem system(sim, /*consumers=*/1, config);
  system.start();
  EXPECT_EQ(system.manager(0).reservations().size(), 1u);
  // No rate information yet: the consumer polls at the latency horizon.
  EXPECT_EQ(system.manager(0).reservations().reservation_of(0),
            std::optional<SlotIndex>(10));
}

TEST_F(ConsumerFixture, DrainsWholeBufferAsOneBatch) {
  PbplSystem system(sim, 1, config);
  system.start();
  PbplConsumer& consumer = system.consumer(0);
  for (int i = 0; i < 10; ++i) {
    sim.at(milliseconds(i), [&](SimTime t) { consumer.produce(t); });
  }
  sim.run_until(milliseconds(100));  // the poll slot fires at 100ms
  EXPECT_EQ(consumer.stats().items, 10u);
  EXPECT_GE(consumer.stats().invocations, 1u);
  EXPECT_FALSE(consumer.has_pending());
}

TEST_F(ConsumerFixture, ObservedRateDrivesNextReservation) {
  PbplSystem system(sim, 1, config);
  system.start();
  PbplConsumer& consumer = system.consumer(0);
  // 1000 items/s for 100 ms: first drain at the 100 ms poll slot sees
  // rate 1000/s → fill time for B=25 is 25 ms → next slots come quickly.
  for (int i = 0; i < 100; ++i) {
    sim.at(microseconds(1000 * i), [&](SimTime t) { consumer.produce(t); });
  }
  sim.run_until(milliseconds(100));
  const auto first_drain_invocations = consumer.stats().invocations;
  EXPECT_GE(first_drain_invocations, 1u);
  EXPECT_GT(consumer.predictor().predict(), 0.0);
  const auto reservation = system.manager(0).reservations().reservation_of(0);
  ASSERT_TRUE(reservation.has_value());
  // Reservation within a couple of slots, not at the 100 ms horizon.
  EXPECT_LE(*reservation, system.manager(0).track().index_of(sim.now()) + 3);
}

TEST_F(ConsumerFixture, DynamicResizeShrinksTowardPrediction) {
  PbplSystem system(sim, 2, config);  // pool has spare space
  system.start();
  PbplConsumer& consumer = system.consumer(0);
  // Slow producer: 100 items/s → expected batch per 10 ms slot is ~1-2.
  for (int i = 0; i < 50; ++i) {
    sim.at(milliseconds(10 * i), [&](SimTime t) { consumer.produce(t); });
  }
  sim.run_until(milliseconds(500));
  EXPECT_LT(consumer.buffer().capacity(), 25u);
}

TEST_F(ConsumerFixture, NoResizeWhenDisabled) {
  config.dynamic_resize = false;
  PbplSystem system(sim, 2, config);
  system.start();
  PbplConsumer& consumer = system.consumer(0);
  for (int i = 0; i < 50; ++i) {
    sim.at(milliseconds(10 * i), [&](SimTime t) { consumer.produce(t); });
  }
  sim.run_until(milliseconds(500));
  EXPECT_EQ(consumer.buffer().capacity(), 25u);
}

TEST_F(ConsumerFixture, OverflowTriggersEmergencyBorrow) {
  // Bg = B0·M is fully allocated at start; free pool space appears only
  // after a consumer downsizes.  Give consumer 1 a trickle so its first
  // invocation shrinks its buffer, then flood consumer 0 past capacity.
  PbplSystem system(sim, 2, config);
  system.start();
  PbplConsumer& slow = system.consumer(1);
  sim.at(milliseconds(1), [&](SimTime t) { slow.produce(t); });
  sim.run_until(milliseconds(150));  // past the 100 ms poll: consumer 1 downsized
  ASSERT_LT(slow.buffer().capacity(), 25u);

  PbplConsumer& consumer = system.consumer(0);
  for (int i = 0; i < 30; ++i) {
    sim.at(milliseconds(150) + microseconds(i), [&](SimTime t) { consumer.produce(t); });
  }
  sim.run_until(milliseconds(151));
  EXPECT_GE(consumer.stats().emergency_borrows, 1u);
  EXPECT_EQ(consumer.stats().overflow_wakeups, 0u);
  EXPECT_EQ(consumer.buffer().size(), 30u);
}

TEST_F(ConsumerFixture, OverflowWithoutBorrowRaisesUnscheduledWakeup) {
  config.emergency_borrow = false;
  config.dynamic_resize = false;
  PbplSystem system(sim, 1, config);  // Bg == B0: no spare pool space
  system.start();
  PbplConsumer& consumer = system.consumer(0);
  for (int i = 0; i < 30; ++i) {
    sim.at(microseconds(i), [&](SimTime t) { consumer.produce(t); });
  }
  sim.run_until(milliseconds(1));
  EXPECT_GE(consumer.stats().overflow_wakeups, 1u);
  EXPECT_EQ(consumer.stats().items, 25u);  // the overflow drain consumed a full batch
  EXPECT_EQ(system.manager(0).unscheduled_invocations(), 1u);
}

TEST_F(ConsumerFixture, LatencyIsRecordedPerItem) {
  PbplSystem system(sim, 1, config);
  system.start();
  PbplConsumer& consumer = system.consumer(0);
  sim.at(milliseconds(40), [&](SimTime t) { consumer.produce(t); });
  sim.run_until(milliseconds(200));
  ASSERT_EQ(consumer.stats().latency_s.count(), 1u);
  // Produced at 40 ms, drained at the 100 ms poll slot.
  EXPECT_NEAR(consumer.stats().latency_s.mean(), 0.060, 1e-9);
}

TEST_F(ConsumerFixture, TwoConsumersOnOneCoreLatch) {
  config.cores = 1;
  PbplSystem system(sim, 2, config);
  system.start();
  // Equal steady producers.
  for (std::size_t c = 0; c < 2; ++c) {
    PbplConsumer& consumer = system.consumer(c);
    for (int i = 0; i < 2000; ++i) {
      sim.at(microseconds(500 * i), [&consumer](SimTime t) { consumer.produce(t); });
    }
  }
  sim.run_until(seconds(1));
  const auto result = system.finish(seconds(1));
  EXPECT_GT(result.latched_reservations, 0u);
  EXPECT_EQ(result.items, 4000u);
  // Latching means fewer core activations than total invocations.
  EXPECT_LT(result.scheduled_wakeups, result.invocations);
}

}  // namespace
}  // namespace pcpc::core
