// Tests for the pcpc::obs building blocks: the sharded metrics registry
// (merge across writer threads), the SPSC trace ring (overflow drop
// accounting), and the session arming / hot-path lifecycle.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pcpc/obs/metrics.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/obs/trace_ring.hpp"

namespace pcpc::obs {
namespace {

TEST(Registry, CounterAddAndCollect) {
  Registry registry;
  const Registry::Id hits = registry.counter("hits");
  const Registry::Id misses = registry.counter("misses");
  registry.add(hits, 3);
  registry.add(hits);
  registry.add(misses, 10);
  const auto snapshot = registry.collect();
  EXPECT_EQ(snapshot.counter_value("hits"), 4u);
  EXPECT_EQ(snapshot.counter_value("misses"), 10u);
  EXPECT_EQ(snapshot.counter_value("absent"), 0u);
}

TEST(Registry, NamesAreInternedIdempotently) {
  Registry registry;
  EXPECT_EQ(registry.counter("a"), registry.counter("a"));
  EXPECT_NE(registry.counter("a"), registry.counter("b"));
  EXPECT_EQ(registry.histogram("h"), registry.histogram("h"));
}

TEST(Registry, MergesShardsAcrossThreads) {
  Registry registry;
  const Registry::Id total = registry.counter("total");
  const Registry::Id hist = registry.histogram("samples");
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, total, hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.add(total);
        registry.observe(hist, static_cast<std::int64_t>(i % 1024));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.collect();
  EXPECT_EQ(snapshot.counter_value("total"), kThreads * kPerThread);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].total, kThreads * kPerThread);
  // One shard per writer thread (the main thread never wrote).
  EXPECT_EQ(registry.shard_count(), kThreads);
}

TEST(Registry, GaugeKeepsMostRecentWriteAcrossShards) {
  Registry registry;
  const Registry::Id depth = registry.gauge("depth");
  registry.set_gauge(depth, 5);
  std::thread([&registry, depth] { registry.set_gauge(depth, 42); }).join();
  const auto snapshot = registry.collect();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 42);
}

TEST(Registry, Log2BinClampsAndCovers) {
  EXPECT_EQ(Registry::log2_bin(-5), 0u);
  EXPECT_EQ(Registry::log2_bin(0), 0u);
  EXPECT_EQ(Registry::log2_bin(1), 0u);
  EXPECT_EQ(Registry::log2_bin(2), 1u);
  EXPECT_EQ(Registry::log2_bin(1023), 9u);
  EXPECT_EQ(Registry::log2_bin(1024), 10u);
  EXPECT_LT(Registry::log2_bin(INT64_MAX), Registry::kHistogramBins);
}

TEST(TraceRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, OverflowDropsAreCountedNotSilent) {
  TraceRing ring(8);
  Event e;
  for (int i = 0; i < 20; ++i) {
    e.ts_ns = i;
    ring.push(e);
  }
  // 8 accepted, 12 dropped — every offered event is accounted somewhere.
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.pushed(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.pushed() + ring.dropped(), 20u);

  // The survivors are the *oldest* 20 (ring refuses when full, it does
  // not overwrite): timestamps 0..7 in order.
  std::vector<std::int64_t> seen;
  ring.drain([&seen](const Event& ev) { seen.push_back(ev.ts_ns); });
  ASSERT_EQ(seen.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(TraceRing, PushResumesAfterDrainFreesSpace) {
  TraceRing ring(8);
  Event e;
  for (int i = 0; i < 8; ++i) ring.push(e);
  EXPECT_FALSE(ring.push(e));  // full
  EXPECT_EQ(ring.drain([](const Event&) {}), 8u);
  // The producer's cached view of the consumer's tail refreshes on the
  // full path, so space freed by drain() is observed.
  EXPECT_TRUE(ring.push(e));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.pushed(), 9u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(Session, ArmsAndDisarmsTheGlobalFlag) {
  EXPECT_FALSE(enabled());
  EXPECT_EQ(Session::current(), nullptr);
  {
    Session session;
    EXPECT_TRUE(enabled());
    EXPECT_EQ(Session::current(), &session);
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(Session::current(), nullptr);
}

TEST(Session, NoteCallsWithoutSessionAreNoOps) {
  // Must not crash or leak state into the next session.
  note_wakeup(0, 0, 0, true, true, 123);
  note_slot_batch(0, 0, 0, 5, 123, 456);
  count_sim_events(10);

  Session session;
  EXPECT_EQ(session.ledger().paid_total(), 0u);
  EXPECT_EQ(session.registry().collect().counter_value("wakeups.paid"), 0u);
}

TEST(Session, HotPathRebindsAcrossConsecutiveSessions) {
  // The thread-local hot-path cache must not bleed counts from a dead
  // session into its successor (generation check).
  {
    Session first;
    note_wakeup(0, 1, 7, /*paid=*/true, /*scheduled=*/true, 10);
    EXPECT_EQ(first.ledger().paid_total(), 1u);
  }
  {
    Session second;
    note_wakeup(0, 1, 7, /*paid=*/false, /*scheduled=*/true, 20);
    EXPECT_EQ(second.ledger().paid_total(), 0u);
    EXPECT_EQ(second.ledger().free_total(), 1u);
    EXPECT_EQ(second.registry().collect().counter_value("wakeups.free"), 1u);
  }
}

TEST(Session, RingOverflowIsCountedThroughTheSession) {
  SessionOptions options;
  options.ring_capacity = 8;
  Session session(options);
  for (int i = 0; i < 50; ++i) {
    note_reservation(0, 0, i, /*latched=*/false, /*ts_ns=*/i);
  }
  // Counters never drop; only the trace ring sheds load.
  EXPECT_EQ(session.registry().collect().counter_value("consumer.reservations"), 50u);
  EXPECT_EQ(session.total_events_recorded(), 8u);
  EXPECT_EQ(session.ring_dropped(), 42u);
  EXPECT_EQ(session.events().size(), 8u);
}

TEST(Session, EventsAreSortedByTimestampAcrossRings) {
  Session session;
  std::thread([&] {
    note_wakeup(1, 1, 0, true, true, 200);
    note_wakeup(1, 1, 0, false, true, 400);
  }).join();
  note_wakeup(0, 0, 0, true, true, 300);
  note_wakeup(0, 0, 0, true, true, 100);
  const auto events = session.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(Session, BulkSimEventCountMatchesSingles) {
  Session session;
  count_sim_events(1000);
  for (int i = 0; i < 24; ++i) count_sim_event();
  EXPECT_EQ(session.registry().collect().counter_value("sim.events_dispatched"),
            1024u);
}

}  // namespace
}  // namespace pcpc::obs
