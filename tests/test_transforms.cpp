// Tests for trace transformations.
#include <gtest/gtest.h>

#include "pcpc/trace/transforms.hpp"

namespace pcpc::trace {
namespace {

TEST(Thin, KeepsRoughlyTheRequestedFraction) {
  const Trace base = uniform_trace(10000, microseconds(100));
  Rng rng(5);
  const Trace thinned = thin(base, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(thinned.size()), 3000.0, 150.0);
}

TEST(Thin, EdgeProbabilities) {
  const Trace base = uniform_trace(100, microseconds(10));
  Rng rng(5);
  EXPECT_EQ(thin(base, 0.0, rng).size(), 0u);
  EXPECT_EQ(thin(base, 1.0, rng).size(), 100u);
}

TEST(Thin, PreservesTimestamps) {
  const Trace base = uniform_trace(1000, microseconds(10));
  Rng rng(7);
  const Trace thinned = thin(base, 0.5, rng);
  // Every surviving timestamp exists in the base trace (multiples of 10 µs).
  for (const SimTime t : thinned.timestamps()) {
    EXPECT_EQ(t % microseconds(10), 0);
  }
}

TEST(TimeScale, CompressesAndStretches) {
  const Trace base({seconds(1), seconds(2)});
  const Trace fast = time_scale(base, 0.5);
  EXPECT_EQ(fast.at(0), milliseconds(500));
  EXPECT_EQ(fast.at(1), seconds(1));
  const Trace slow = time_scale(base, 2.0);
  EXPECT_EQ(slow.at(1), seconds(4));
}

TEST(TimeScale, DoublesRate) {
  const Trace base = uniform_trace(1000, milliseconds(1));
  const Trace fast = time_scale(base, 0.5);
  EXPECT_NEAR(fast.stats().mean_rate_hz, 2.0 * base.stats().mean_rate_hz,
              base.stats().mean_rate_hz * 0.01);
}

TEST(Jitter, StaysWithinBoundsAndNonNegative) {
  const Trace base = uniform_trace(1000, microseconds(50));
  Rng rng(9);
  const Trace jittered = jitter(base, microseconds(20), rng);
  ASSERT_EQ(jittered.size(), base.size());
  // Sorted order may change pairwise, but every timestamp is within the
  // jitter bound of *some* original item; check the end-to-end span.
  EXPECT_GE(jittered.at(0), 0);
  EXPECT_LE(jittered.end_time(), base.end_time() + microseconds(20));
}

TEST(Jitter, ZeroMagnitudeIsIdentity) {
  const Trace base = uniform_trace(100, microseconds(50));
  Rng rng(9);
  const Trace same = jitter(base, 0, rng);
  for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(same.at(i), base.at(i));
}

TEST(SplitRoundRobin, DealsEvenly) {
  const Trace base = uniform_trace(10, milliseconds(1));
  const auto parts = split_round_robin(base, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);  // items 0, 3, 6, 9
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  EXPECT_EQ(parts[0].at(0), 0);
  EXPECT_EQ(parts[1].at(0), milliseconds(1));
}

TEST(SplitRoundRobin, ConservesItems) {
  const Trace base = uniform_trace(997, microseconds(123));
  const auto parts = split_round_robin(base, 4);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, base.size());
}

TEST(SplitRandom, ConservesItemsAndBalances) {
  const Trace base = uniform_trace(8000, microseconds(10));
  Rng rng(3);
  const auto parts = split_random(base, 4, rng);
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    EXPECT_NEAR(static_cast<double>(p.size()), 2000.0, 200.0);
  }
  EXPECT_EQ(total, base.size());
}

TEST(Repeat, CyclicReplay) {
  const Trace base({milliseconds(1), milliseconds(3)});
  const Trace repeated = repeat(base, milliseconds(10), milliseconds(35));
  // Periods at 0, 10, 20, 30 ms; the last period only fits the 31 ms item.
  ASSERT_EQ(repeated.size(), 8u);
  EXPECT_EQ(repeated.at(0), milliseconds(1));
  EXPECT_EQ(repeated.at(2), milliseconds(11));
  EXPECT_EQ(repeated.at(7), milliseconds(33));
}

TEST(Repeat, EmptyBase) {
  EXPECT_TRUE(repeat(Trace{}, milliseconds(10), seconds(1)).empty());
}

TEST(RepeatDeath, BaseMustFitPeriod) {
  const Trace base({milliseconds(15)});
  EXPECT_DEATH(repeat(base, milliseconds(10), seconds(1)), "fit");
}

}  // namespace
}  // namespace pcpc::trace
