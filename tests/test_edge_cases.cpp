// Edge cases across modules that the mainline suites don't reach:
// boundary times, degenerate configurations, and pathological workloads.
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/impls/baselines.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/sim/simulator.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc {
namespace {

TEST(EdgeSim, EventAtTimeZeroRuns) {
  sim::Simulator sim;
  bool fired = false;
  sim.at(0, [&](SimTime t) {
    EXPECT_EQ(t, 0);
    fired = true;
  });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EdgeSim, RunUntilZeroFiresZeroTimeEvents) {
  sim::Simulator sim;
  int fired = 0;
  sim.at(0, [&](SimTime) { ++fired; });
  sim.at(1, [&](SimTime) { ++fired; });
  sim.run_until(0);
  EXPECT_EQ(fired, 1);
}

TEST(EdgeSim, CancelInsideCallback) {
  sim::Simulator sim;
  bool second_fired = false;
  sim::EventId second = 0;
  sim.at(10, [&](SimTime) { sim.cancel(second); });
  second = sim.at(20, [&](SimTime) { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(EdgePbpl, SingleItemWorkload) {
  std::vector<trace::Trace> traces{trace::Trace({milliseconds(3)})};
  core::PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(20);
  const auto result = core::run_pbpl(traces, milliseconds(100), config);
  EXPECT_EQ(result.items, 1u);
  // Drained at a slot within the latency horizon of the poll cycle.
  EXPECT_LE(result.latency_s.max(), to_seconds(milliseconds(40)));
}

TEST(EdgePbpl, ItemAtTimeZero) {
  std::vector<trace::Trace> traces{trace::Trace({SimTime{0}})};
  core::PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(10);
  const auto result = core::run_pbpl(traces, milliseconds(50), config);
  EXPECT_EQ(result.items, 1u);
}

TEST(EdgePbpl, MoreCoresThanConsumers) {
  std::vector<trace::Trace> traces{trace::uniform_trace(100, milliseconds(1), 500)};
  core::PbplConfig config;
  config.cores = 4;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(50);
  const auto result = core::run_pbpl(traces, milliseconds(200), config);
  EXPECT_EQ(result.items, 100u);
  ASSERT_EQ(result.timelines.size(), 4u);
  // Three cores never host a consumer and never wake.
  std::size_t silent = 0;
  for (const auto& tl : result.timelines) silent += (tl.wakeups() == 0);
  EXPECT_EQ(silent, 3u);
}

TEST(EdgePbpl, TinySlotTrack) {
  // Δ = 1 µs: thousands of slots between items; the manager must still
  // only wake at reserved ones.
  std::vector<trace::Trace> traces{trace::uniform_trace(20, milliseconds(1), 100)};
  core::PbplConfig config;
  config.cores = 1;
  config.slot_size = microseconds(1);
  config.max_latency = milliseconds(5);
  const auto result = core::run_pbpl(traces, milliseconds(50), config);
  EXPECT_EQ(result.items, 20u);
  EXPECT_LT(result.scheduled_wakeups, 200u);  // nowhere near 50k slots
}

TEST(EdgePbpl, BufferOfOne) {
  std::vector<trace::Trace> traces{trace::uniform_trace(50, milliseconds(1), 333)};
  core::PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(2);
  config.max_latency = milliseconds(10);
  config.base_buffer = 1;
  config.pool_segment = 1;
  const auto result = core::run_pbpl(traces, milliseconds(100), config);
  EXPECT_EQ(result.items, 50u);
}

TEST(EdgePbpl, HorizonBeforeFirstItem) {
  std::vector<trace::Trace> traces{trace::Trace({seconds(10)})};
  core::PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(50);
  const auto result = core::run_pbpl(traces, seconds(1), config);
  EXPECT_EQ(result.items, 0u);  // the item lies beyond the horizon
}

TEST(EdgeBaselines, SimultaneousArrivalsOnOnePair) {
  // Many items with the identical timestamp: one wakeup, one batch.
  std::vector<SimTime> ts(40, milliseconds(5));
  std::vector<trace::Trace> traces{trace::Trace(std::move(ts))};
  impls::BaselineParams params;
  params.cores = 1;
  params.buffer_capacity = 100;
  const auto r = impls::run_signaled(impls::ImplKind::Mutex, traces, milliseconds(50),
                                     params);
  EXPECT_EQ(r.items, 40u);
  EXPECT_EQ(r.paid_wakeups, 1u);
}

TEST(EdgeBaselines, BatchWithBufferOne) {
  std::vector<trace::Trace> traces{trace::uniform_trace(30, milliseconds(1), 777)};
  impls::BaselineParams params;
  params.cores = 1;
  params.buffer_capacity = 1;  // degenerates into per-item batching
  const auto r = impls::run_batch(traces, milliseconds(100), params);
  EXPECT_EQ(r.items, 30u);
  EXPECT_EQ(r.invocations, 30u);
}

TEST(EdgeBaselines, PeriodLongerThanHorizon) {
  std::vector<trace::Trace> traces{trace::uniform_trace(10, milliseconds(1), 100)};
  impls::BaselineParams params;
  params.cores = 1;
  params.buffer_capacity = 64;
  params.period = seconds(10);  // the timer never fires inside the run
  const auto r = impls::run_periodic(impls::ImplKind::SignalPeriodicBatch, traces,
                                     milliseconds(50), params);
  EXPECT_EQ(r.items, 10u);  // final drain still collects everything
  EXPECT_EQ(r.scheduled_wakeups, 0u);
}

TEST(EdgeBaselines, EmptyWorkloadAllImpls) {
  std::vector<trace::Trace> traces(3);
  impls::ExperimentSetup setup;
  setup.baseline.cores = 2;
  for (const auto kind :
       {impls::ImplKind::BusyWait, impls::ImplKind::Mutex, impls::ImplKind::Batch,
        impls::ImplKind::SignalPeriodicBatch, impls::ImplKind::Pbpl}) {
    const auto r = impls::run_implementation(kind, traces, milliseconds(100), setup);
    EXPECT_EQ(r.items, 0u) << impls::impl_name(kind);
  }
}

}  // namespace
}  // namespace pcpc
