// End-to-end regression tests pinning the paper's qualitative claims —
// the shapes of Figures 3/4/9/10/11 and the Section VI-C counters.
// Shorter horizons than the benches keep the suite fast; the assertions
// are directional (orderings, crossovers), not absolute values.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pcpc/common/stats.hpp"
#include "pcpc/exp/paper_setup.hpp"

namespace pcpc::exp {
namespace {

ReplicateMetrics quick(ImplKind kind, ExperimentSpec spec) {
  spec.horizon = seconds(4);
  return run_replicate(kind, spec, 0);
}

struct SingleStudy : ::testing::Test {
  static const std::map<ImplKind, ReplicateMetrics>& results() {
    static const auto cached = [] {
      std::map<ImplKind, ReplicateMetrics> r;
      for (const auto kind : kSingleStudyImpls) r[kind] = quick(kind, single_pair_spec());
      return r;
    }();
    return cached;
  }
};

TEST_F(SingleStudy, SpinningImplementationsBurnTheMostPower) {
  const auto& r = results();
  const double worst_idling = std::max(
      {r.at(ImplKind::Mutex).power_w, r.at(ImplKind::Semaphore).power_w,
       r.at(ImplKind::Batch).power_w, r.at(ImplKind::PeriodicBatch).power_w,
       r.at(ImplKind::SignalPeriodicBatch).power_w});
  EXPECT_GT(r.at(ImplKind::BusyWait).power_w, worst_idling);
  EXPECT_GT(r.at(ImplKind::Yield).power_w, worst_idling);
}

TEST_F(SingleStudy, YieldSavesALittleOverBusyWait) {
  EXPECT_LT(results().at(ImplKind::Yield).power_w,
            results().at(ImplKind::BusyWait).power_w);
}

TEST_F(SingleStudy, BatchFamilyBeatsPerItemSignaling) {
  // Paper Section III-C3: the batch implementations are the most power
  // efficient; Mutex/Sem are the least efficient among the idling five.
  const auto& r = results();
  for (const auto batch_kind : {ImplKind::Batch, ImplKind::PeriodicBatch,
                                ImplKind::SignalPeriodicBatch}) {
    EXPECT_LT(r.at(batch_kind).power_w, r.at(ImplKind::Mutex).power_w);
    EXPECT_LT(r.at(batch_kind).power_w, r.at(ImplKind::Semaphore).power_w);
    EXPECT_LT(r.at(batch_kind).wakeups_per_s, r.at(ImplKind::Mutex).wakeups_per_s);
  }
}

TEST_F(SingleStudy, SpbpSavesSubstantiallyOverMutex) {
  // Paper: 33% reduction; we accept anything in the 20-55% band.
  const auto& r = results();
  const double reduction = (r.at(ImplKind::Mutex).power_w -
                            r.at(ImplKind::SignalPeriodicBatch).power_w) /
                           r.at(ImplKind::Mutex).power_w;
  EXPECT_GT(reduction, 0.20);
  EXPECT_LT(reduction, 0.55);
}

TEST_F(SingleStudy, BusyWaitHasFewestWakeupsButHighestUsage) {
  const auto& r = results();
  EXPECT_LT(r.at(ImplKind::BusyWait).wakeups_per_s,
            r.at(ImplKind::Batch).wakeups_per_s);
  EXPECT_NEAR(r.at(ImplKind::BusyWait).usage_ms_per_s, 1000.0, 1.0);
  EXPECT_GT(r.at(ImplKind::BusyWait).usage_ms_per_s,
            3.0 * r.at(ImplKind::Mutex).usage_ms_per_s);
}

TEST_F(SingleStudy, JitterCausesMoreOverflowsInPbpThanSpbp) {
  // Paper III-C3: sleep() jitter causes more buffer overflows and thus
  // more (raw) wakeups for PBP than SPBP.
  const auto& r = results();
  EXPECT_GT(r.at(ImplKind::PeriodicBatch).overflows,
            r.at(ImplKind::SignalPeriodicBatch).overflows);
}

TEST_F(SingleStudy, WakeupsCorrelateWithPowerAmongIdlingImpls) {
  // The paper's central hypothesis (accepted at 99% confidence): wakeups
  // have a significant positive effect on power among the idling five.
  std::vector<double> wakeups, power;
  for (const auto kind : {ImplKind::Mutex, ImplKind::Semaphore, ImplKind::Batch,
                          ImplKind::PeriodicBatch, ImplKind::SignalPeriodicBatch}) {
    wakeups.push_back(results().at(kind).wakeups_per_s);
    power.push_back(results().at(kind).power_w);
  }
  EXPECT_GT(pearson_correlation(wakeups, power), 0.5);
}

struct MultiEval : ::testing::Test {
  static ReplicateMetrics get(ImplKind kind, std::size_t pairs, std::size_t buffer) {
    static std::map<std::tuple<ImplKind, std::size_t, std::size_t>, ReplicateMetrics>
        cache;
    const auto key = std::make_tuple(kind, pairs, buffer);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const auto value = quick(kind, multi_pair_spec(pairs, buffer));
    cache.emplace(key, value);
    return value;
  }
};

TEST_F(MultiEval, PbplBeatsMutexAndSemOnPowerAndWakeups) {
  const auto pbpl = get(ImplKind::Pbpl, 5, 25);
  for (const auto kind : {ImplKind::Mutex, ImplKind::Semaphore}) {
    const auto other = get(kind, 5, 25);
    EXPECT_LT(pbpl.power_w, other.power_w);
    EXPECT_LT(pbpl.wakeups_per_s, other.wakeups_per_s);
  }
}

TEST_F(MultiEval, PbplBeatsBpAtFiveConsumers) {
  // Figure 9's headline: PBPL below BP on both axes at M=5, B=25.
  const auto pbpl = get(ImplKind::Pbpl, 5, 25);
  const auto bp = get(ImplKind::Batch, 5, 25);
  EXPECT_LT(pbpl.power_w, bp.power_w);
  EXPECT_LT(pbpl.wakeups_per_s, bp.wakeups_per_s);
}

TEST_F(MultiEval, PbplAdvantageOverBpGrowsWithConsumers) {
  // Figure 10: PBPL "prospers when there are more consumers and more
  // possibilities for latching".
  const auto gap = [&](std::size_t pairs) {
    const double bp = get(ImplKind::Batch, pairs, 25).power_w;
    const double pbpl = get(ImplKind::Pbpl, pairs, 25).power_w;
    return (bp - pbpl) / bp;
  };
  EXPECT_GT(gap(10), gap(2));
  EXPECT_GT(gap(5), gap(2));
}

TEST_F(MultiEval, PowerGrowsWithConsumerCount) {
  // Figure 10: "power consumption increases consistently with increasing
  // the number of consumers".
  for (const auto kind : kMultiEvalImpls) {
    EXPECT_LT(get(kind, 2, 25).power_w, get(kind, 5, 25).power_w);
    EXPECT_LT(get(kind, 5, 25).power_w, get(kind, 10, 25).power_w);
  }
}

TEST_F(MultiEval, BiggerBuffersLowerWakeupsAndPower) {
  // Figure 11: increasing the buffer size decreases both metrics for the
  // batch-based implementations.
  for (const auto kind : {ImplKind::Batch, ImplKind::Pbpl}) {
    EXPECT_GT(get(kind, 5, 25).wakeups_per_s, get(kind, 5, 100).wakeups_per_s);
    EXPECT_GT(get(kind, 5, 25).power_w, get(kind, 5, 100).power_w);
  }
}

TEST_F(MultiEval, PbplBpGapNarrowsWithBufferSize) {
  // Figure 11: "the gap between PBPL and BP decreases as the buffer size
  // increases" (saturation).
  const auto gap = [&](std::size_t buffer) {
    return get(ImplKind::Batch, 5, buffer).power_w -
           get(ImplKind::Pbpl, 5, buffer).power_w;
  };
  EXPECT_GT(gap(25), gap(100));
}

TEST_F(MultiEval, PbplConvertsMostOverflowsIntoScheduledWakeups) {
  // Section VI-C: BP's wakeups are all overflows; PBPL converts the bulk
  // into scheduled slot wakeups (paper: 82.5% conversion).
  const auto bp = get(ImplKind::Batch, 5, 50);
  const auto pbpl = get(ImplKind::Pbpl, 5, 50);
  EXPECT_GT(bp.overflows, 0.0);
  EXPECT_LT(pbpl.overflows, 0.5 * bp.overflows);
  EXPECT_GT(pbpl.scheduled_wakeups, pbpl.overflows);
}

TEST_F(MultiEval, DynamicResizingUsesLessThanTheFullBuffer) {
  // Section VI-C: PBPL's average buffer size stays below the allocated
  // B (paper: 43 of 50).
  const auto pbpl = get(ImplKind::Pbpl, 5, 50);
  EXPECT_GT(pbpl.mean_buffer_capacity, 10.0);
  EXPECT_LT(pbpl.mean_buffer_capacity, 50.0);
}

TEST_F(MultiEval, LatchingFractionGrowsWithConsumerDensity) {
  EXPECT_GT(get(ImplKind::Pbpl, 10, 25).latched_fraction,
            get(ImplKind::Pbpl, 5, 25).latched_fraction);
}

}  // namespace
}  // namespace pcpc::exp
