// Tests for the experiment harness and the calibrated paper setups.
#include <gtest/gtest.h>

#include "pcpc/exp/experiment.hpp"
#include "pcpc/exp/paper_setup.hpp"

namespace pcpc::exp {
namespace {

ExperimentSpec quick_spec() {
  ExperimentSpec spec = multi_pair_spec(3, 25);
  spec.horizon = seconds(2);
  spec.replicates = 2;
  return spec;
}

TEST(Experiment, ReplicateIsDeterministic) {
  const auto spec = quick_spec();
  const auto a = run_replicate(ImplKind::Batch, spec, 0);
  const auto b = run_replicate(ImplKind::Batch, spec, 0);
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.wakeups_per_s, b.wakeups_per_s);
  EXPECT_DOUBLE_EQ(a.items, b.items);
}

TEST(Experiment, ReplicatesShareTheItemSet) {
  // The paper replays the same dataset; replicates only rotate its phase.
  const auto spec = quick_spec();
  const auto r0 = run_replicate(ImplKind::Mutex, spec, 0);
  const auto r1 = run_replicate(ImplKind::Mutex, spec, 1);
  EXPECT_DOUBLE_EQ(r0.items, r1.items);
}

TEST(Experiment, ImplementationsShareTheItemSet) {
  const auto spec = quick_spec();
  const auto mutex = run_replicate(ImplKind::Mutex, spec, 0);
  const auto pbpl = run_replicate(ImplKind::Pbpl, spec, 0);
  EXPECT_DOUBLE_EQ(mutex.items, pbpl.items);
}

TEST(Experiment, SummaryAggregatesReplicates) {
  const auto spec = quick_spec();
  const auto replicates = run_replicates(ImplKind::Batch, spec);
  ASSERT_EQ(replicates.size(), 2u);
  const MetricSummary summary = summarize(replicates);
  EXPECT_EQ(summary.replicates, 2u);
  EXPECT_NEAR(summary.power_mw.mean,
              (replicates[0].power_w + replicates[1].power_w) * 1e3 / 2.0, 1e-9);
  EXPECT_GE(summary.power_mw.ci95, 0.0);
}

TEST(PaperSetup, SinglePairSpecShape) {
  const auto spec = single_pair_spec();
  EXPECT_EQ(spec.pairs, 1u);
  EXPECT_EQ(spec.replicates, 3u);
  EXPECT_EQ(spec.setup.baseline.cores, 1u);
  EXPECT_EQ(spec.setup.baseline.buffer_capacity, 50u);
  EXPECT_GT(spec.workload.base_rate_hz, 0.0);
}

TEST(PaperSetup, MultiPairSpecShape) {
  const auto spec = multi_pair_spec(5, 25);
  EXPECT_EQ(spec.pairs, 5u);
  EXPECT_EQ(spec.setup.baseline.cores, 2u);
  EXPECT_EQ(spec.setup.baseline.buffer_capacity, 25u);
  EXPECT_EQ(spec.setup.pbpl.slot_size, milliseconds(10));
  // PBPL decision constants mirror the power model.
  EXPECT_GT(spec.setup.pbpl.costs.wakeup_j, spec.power.wakeup_energy_j);
  EXPECT_NEAR(spec.setup.pbpl.costs.per_item_j,
              spec.power.active_power_w * to_seconds(spec.setup.baseline.service.per_item),
              1e-12);
}

TEST(PaperSetup, EffectiveWakeupCostIncludesFragmentation) {
  // On a deep C-state ladder the fragmentation term dominates the raw ω.
  const auto spec = multi_pair_spec(5, 25);
  EXPECT_GT(spec.setup.pbpl.costs.wakeup_j, 5.0 * spec.power.wakeup_energy_j);
}

TEST(Experiment, LatchedFractionOnlyForPbpl) {
  const auto spec = quick_spec();
  const auto mutex = run_replicate(ImplKind::Mutex, spec, 0);
  EXPECT_EQ(mutex.latched_fraction, 0.0);
  const auto pbpl = run_replicate(ImplKind::Pbpl, spec, 0);
  EXPECT_GE(pbpl.latched_fraction, 0.0);
  EXPECT_LE(pbpl.latched_fraction, 1.0);
}

}  // namespace
}  // namespace pcpc::exp
