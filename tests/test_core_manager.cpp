// Tests for the core manager's slot scheduling (Section V-B), using a
// scripted fake consumer.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "pcpc/core/core_manager.hpp"

namespace pcpc::core {
namespace {

/// Scripted consumer: records invocations and runs a per-invocation hook
/// (used to re-reserve, as the real consumer does).
class FakeConsumer final : public Invocable {
 public:
  SimDuration on_invoked(SimTime now, bool scheduled) override {
    invocations.push_back({now, scheduled});
    if (hook) hook(now);
    return busy;
  }
  bool has_pending() const override { return pending; }

  struct Invocation {
    SimTime time;
    bool scheduled;
  };
  std::vector<Invocation> invocations;
  std::function<void(SimTime)> hook;
  SimDuration busy = microseconds(10);
  bool pending = false;
};

struct ManagerFixture : ::testing::Test {
  sim::Simulator sim;
  SimCore core{sim};
  SlotTrack track{milliseconds(10)};
  CoreManager manager{sim, core, track, microseconds(3)};
};

TEST_F(ManagerFixture, FiresReservedSlotAtItsStart) {
  FakeConsumer consumer;
  manager.register_consumer(1, &consumer);
  manager.reserve(1, 2);
  sim.run();
  ASSERT_EQ(consumer.invocations.size(), 1u);
  EXPECT_EQ(consumer.invocations[0].time, milliseconds(20));
  EXPECT_TRUE(consumer.invocations[0].scheduled);
  EXPECT_EQ(manager.scheduled_wakeups(), 1u);
  EXPECT_EQ(manager.slot_invocations(), 1u);
}

TEST_F(ManagerFixture, SkipsEmptySlots) {
  FakeConsumer consumer;
  manager.register_consumer(1, &consumer);
  manager.reserve(1, 5);  // slots 1-4 have no reservations
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(50) + microseconds(13));  // one wakeup only
  EXPECT_EQ(manager.scheduled_wakeups(), 1u);
}

TEST_F(ManagerFixture, GroupsConsumersOnOneSlot) {
  FakeConsumer a, b, c;
  manager.register_consumer(1, &a);
  manager.register_consumer(2, &b);
  manager.register_consumer(3, &c);
  manager.reserve(1, 3);
  manager.reserve(2, 3);
  manager.reserve(3, 3);
  sim.run();
  EXPECT_EQ(manager.scheduled_wakeups(), 1u);  // one wakeup serves all three
  EXPECT_EQ(manager.slot_invocations(), 3u);
  EXPECT_EQ(core.wakeups(), 1u);
  ASSERT_EQ(a.invocations.size(), 1u);
  EXPECT_EQ(a.invocations[0].time, milliseconds(30));
}

TEST_F(ManagerFixture, EarlierReservationRetargetsPendingWakeup) {
  FakeConsumer a, b;
  manager.register_consumer(1, &a);
  manager.register_consumer(2, &b);
  manager.reserve(1, 5);
  manager.reserve(2, 2);  // earlier: the pending event must move
  sim.run();
  ASSERT_EQ(b.invocations.size(), 1u);
  EXPECT_EQ(b.invocations[0].time, milliseconds(20));
  ASSERT_EQ(a.invocations.size(), 1u);
  EXPECT_EQ(a.invocations[0].time, milliseconds(50));
  EXPECT_EQ(manager.scheduled_wakeups(), 2u);
}

TEST_F(ManagerFixture, MovedReservationDoesNotFireTwice) {
  FakeConsumer a;
  manager.register_consumer(1, &a);
  manager.reserve(1, 2);
  manager.reserve(1, 4);  // move later
  sim.run();
  ASSERT_EQ(a.invocations.size(), 1u);
  EXPECT_EQ(a.invocations[0].time, milliseconds(40));
  EXPECT_EQ(manager.scheduled_wakeups(), 1u);
}

TEST_F(ManagerFixture, ConsumersCanReReserveDuringInvocation) {
  FakeConsumer a;
  manager.register_consumer(1, &a);
  a.hook = [&](SimTime now) {
    if (a.invocations.size() < 3) {
      manager.reserve(1, track.next_after(now) + 1);
    }
  };
  manager.reserve(1, 1);
  sim.run();
  ASSERT_EQ(a.invocations.size(), 3u);
  EXPECT_EQ(a.invocations[0].time, milliseconds(10));
  EXPECT_EQ(a.invocations[1].time, milliseconds(30));
  EXPECT_EQ(a.invocations[2].time, milliseconds(50));
  EXPECT_EQ(manager.scheduled_wakeups(), 3u);
}

TEST_F(ManagerFixture, UnscheduledInvokeRunsImmediately) {
  FakeConsumer a;
  manager.register_consumer(1, &a);
  manager.reserve(1, 5);
  sim.at(milliseconds(12), [&](SimTime t) { manager.unscheduled_invoke(1, t); });
  sim.run();
  ASSERT_EQ(a.invocations.size(), 1u);  // reservation was cancelled by the overflow
  EXPECT_EQ(a.invocations[0].time, milliseconds(12));
  EXPECT_FALSE(a.invocations[0].scheduled);
  EXPECT_EQ(manager.unscheduled_invocations(), 1u);
  EXPECT_EQ(manager.scheduled_wakeups(), 0u);
}

TEST_F(ManagerFixture, UnscheduledInvokeWithReReservation) {
  FakeConsumer a;
  manager.register_consumer(1, &a);
  a.hook = [&](SimTime now) {
    if (a.invocations.size() == 1) manager.reserve(1, track.next_after(now));
  };
  manager.reserve(1, 5);
  sim.at(milliseconds(12), [&](SimTime t) { manager.unscheduled_invoke(1, t); });
  sim.run();
  ASSERT_EQ(a.invocations.size(), 2u);
  EXPECT_EQ(a.invocations[1].time, milliseconds(20));  // re-reserved slot 2
  EXPECT_TRUE(a.invocations[1].scheduled);
}

TEST_F(ManagerFixture, DrainAllInvokesOnlyPendingConsumers) {
  FakeConsumer with_items, without_items;
  with_items.pending = true;
  manager.register_consumer(1, &with_items);
  manager.register_consumer(2, &without_items);
  manager.reserve(1, 100);
  manager.reserve(2, 100);
  sim.run_until(milliseconds(50));
  manager.drain_all(milliseconds(50));
  EXPECT_EQ(with_items.invocations.size(), 1u);
  EXPECT_TRUE(without_items.invocations.empty());
  EXPECT_TRUE(manager.reservations().empty());
  sim.run();
  // The slot-100 wakeup was cancelled.
  EXPECT_EQ(with_items.invocations.size(), 1u);
}

TEST_F(ManagerFixture, ChargesCoreForManagerOverheadPlusBatches) {
  FakeConsumer a, b;
  a.busy = microseconds(10);
  b.busy = microseconds(20);
  manager.register_consumer(1, &a);
  manager.register_consumer(2, &b);
  manager.reserve(1, 1);
  manager.reserve(2, 1);
  sim.run();
  core.finalize(sim.now());
  EXPECT_EQ(core.timeline().active_time(), microseconds(33));  // 3 overhead + 10 + 20
}

TEST_F(ManagerFixture, TrackAccessor) {
  EXPECT_EQ(manager.track().slot_size(), milliseconds(10));
  EXPECT_EQ(manager.consumer_count(), 0u);
}

TEST(CoreManagerDeath, ReserveFromUnknownConsumerAborts) {
  sim::Simulator sim;
  SimCore core(sim);
  CoreManager manager(sim, core, SlotTrack(milliseconds(10)), 0);
  EXPECT_DEATH(manager.reserve(9, 1), "unknown");
}

TEST(CoreManagerDeath, PastSlotReservationAborts) {
  sim::Simulator sim;
  SimCore core(sim);
  CoreManager manager(sim, core, SlotTrack(milliseconds(10)), 0);
  FakeConsumer a;
  manager.register_consumer(1, &a);
  EXPECT_DEATH(manager.reserve(1, 0), "future");
}

}  // namespace
}  // namespace pcpc::core
