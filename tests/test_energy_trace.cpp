// Tests for the power time series and residency analytics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>

#include "pcpc/power/energy_trace.hpp"

namespace pcpc::power {
namespace {

PowerModelParams simple_params() {
  PowerModelParams p = PowerModelParams::simplified(1.0, 0.1, 1e-5);
  return p;
}

TEST(PowerTrace, SampleCountMatchesResolution) {
  CoreTimeline t;
  t.finalize(milliseconds(10));
  const auto samples = sample_power(t, simple_params(), milliseconds(1));
  EXPECT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples.front().time, 0);
  EXPECT_EQ(samples.back().time, milliseconds(9));
}

TEST(PowerTrace, ActiveAndIdleLevels) {
  CoreTimeline t;
  t.wake(milliseconds(2));
  t.sleep(milliseconds(5));
  t.finalize(milliseconds(10));
  const auto samples = sample_power(t, simple_params(), milliseconds(1));
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_NEAR(samples[0].watts, 0.1, 1e-9);  // idle before
  EXPECT_NEAR(samples[3].watts, 1.0, 1e-9);  // active plateau
  EXPECT_NEAR(samples[7].watts, 0.1, 1e-9);  // idle after
  // The sample containing the wakeup carries the transition energy.
  EXPECT_GT(samples[2].watts, 1.0);
}

TEST(PowerTrace, IntegralApproximatesLedgerEnergy) {
  PowerModelParams params;  // full ladder
  CoreTimeline t;
  t.wake(milliseconds(3));
  t.sleep(milliseconds(4));
  t.wake(milliseconds(20));
  t.sleep(milliseconds(23));
  t.finalize(milliseconds(50));
  const EnergyLedger ledger(params);
  const auto samples = sample_power(t, params, microseconds(10));
  double integral = 0.0;
  for (const auto& s : samples) integral += s.watts * to_seconds(microseconds(10));
  EXPECT_NEAR(integral, ledger.energy_joules(t), 0.03 * ledger.energy_joules(t));
}

TEST(PowerTrace, LadderDescendsInsideLongGap) {
  PowerModelParams params;  // arndale ladder
  CoreTimeline t;
  t.wake(0);
  t.sleep(milliseconds(1));
  t.finalize(milliseconds(100));
  const auto samples = sample_power(t, params, milliseconds(1));
  // Early idle (shallow state) draws more than late idle (deep state).
  EXPECT_GT(samples[1].watts, samples[80].watts);
}

TEST(PowerTrace, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace.csv";
  std::vector<PowerSample> samples{{0, 1.0}, {milliseconds(1), 0.5}};
  ASSERT_TRUE(save_power_trace(samples, path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,watts");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "0,1");
  std::remove(path.c_str());
}

TEST(Residency, SplitsGapAlongTheLadder) {
  const CStateModel ladder({CState{"shallow", 0.2, 0, 0},
                            CState{"deep", 0.05, milliseconds(1), 0}});
  CoreTimeline t;
  t.wake(milliseconds(5));
  t.sleep(milliseconds(6));
  t.finalize(milliseconds(10));  // gaps: 5 ms before + 4 ms after
  const auto residency = idle_residency(t, ladder);
  ASSERT_EQ(residency.size(), 3u);
  EXPECT_EQ(residency[0].state, "C0-active");
  EXPECT_EQ(residency[0].time, milliseconds(1));
  // Each gap spends 1 ms shallow, the rest deep: shallow 2 ms, deep 7 ms.
  EXPECT_EQ(residency[1].time, milliseconds(2));
  EXPECT_EQ(residency[2].time, milliseconds(7));
  EXPECT_NEAR(residency[1].fraction_of_idle, 2.0 / 9.0, 1e-9);
  EXPECT_NEAR(residency[2].fraction_of_idle, 7.0 / 9.0, 1e-9);
}

TEST(Residency, FragmentedIdleNeverReachesDeepStates) {
  const CStateModel ladder = CStateModel::arndale_like();
  CoreTimeline fragmented;
  for (int i = 0; i < 100; ++i) {
    fragmented.wake(microseconds(100 * i));
    fragmented.sleep(microseconds(100 * i + 50));
  }
  fragmented.finalize(milliseconds(10));
  const auto residency = idle_residency(fragmented, ladder);
  // 50 µs gaps stay in C1 (C2 needs 80 µs).
  EXPECT_NEAR(residency[1].fraction_of_idle, 1.0, 1e-2);
  EXPECT_EQ(residency[3].time, 0);
  EXPECT_EQ(residency[4].time, 0);
}

TEST(GapDistribution, BucketsByLength) {
  CoreTimeline t;
  t.wake(microseconds(50));          // 50 µs gap before
  t.sleep(microseconds(60));
  t.wake(microseconds(560));         // 500 µs gap
  t.sleep(microseconds(600));
  t.wake(milliseconds(5));           // ~4.4 ms gap
  t.sleep(milliseconds(6));
  t.finalize(seconds(1));            // ~994 ms tail gap
  const auto buckets = idle_gap_distribution(t);
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0].count, 1u);  // < 100 µs
  EXPECT_EQ(buckets[1].count, 1u);  // 100 µs – 1 ms
  EXPECT_EQ(buckets[2].count, 1u);  // 1 – 10 ms
  EXPECT_EQ(buckets[3].count, 0u);
  EXPECT_EQ(buckets[4].count, 1u);  // ≥ 100 ms
}

}  // namespace
}  // namespace pcpc::power
