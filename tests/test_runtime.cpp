// Tests for the real-thread host (short wall-clock runs; the logical
// behaviour is identical to the simulation host, which the deterministic
// suites cover exhaustively).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "pcpc/core/config.hpp"
#include "pcpc/runtime/cpu_meter.hpp"
#include "pcpc/runtime/thread_baselines.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/runtime/trace_replayer.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::runtime {
namespace {

core::PbplConfig quick_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(50);
  config.base_buffer = 32;
  config.pool_segment = 8;
  return config;
}

TEST(CpuMeter, ThreadCpuAdvancesUnderWork) {
  const auto before = thread_cpu_ns();
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  EXPECT_GT(thread_cpu_ns(), before);
  EXPECT_GE(process_cpu_ns(), thread_cpu_ns());
}

TEST(CpuMeter, ScopedTimerAccumulates) {
  std::int64_t sink = 0;
  {
    const ScopedCpuTimer timer(sink);
    volatile double x = 0.0;
    for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  }
  EXPECT_GT(sink, 0);
}

TEST(ThreadPbpl, StartsAndStopsCleanly) {
  ThreadPbpl runtime(4, quick_config());
  EXPECT_EQ(runtime.consumer_count(), 4u);
  EXPECT_EQ(runtime.core_count(), 2u);
  runtime.stop();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.items, 0u);
}

TEST(ThreadPbpl, ConsumesEverythingProduced) {
  ThreadPbpl runtime(2, quick_config());
  for (int round = 0; round < 20; ++round) {
    runtime.produce(0);
    runtime.produce(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  runtime.stop();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.items, 40u);
  EXPECT_GT(stats.invocations, 0u);
  EXPECT_GT(stats.scheduled_wakeups, 0u);
}

TEST(ThreadPbpl, BatchHandlerSeesEveryItem) {
  std::atomic<std::uint64_t> handled{0};
  {
    ThreadPbpl runtime(2, quick_config(),
                       [&](std::size_t, std::size_t batch) { handled += batch; });
    for (int i = 0; i < 30; ++i) runtime.produce(static_cast<std::size_t>(i % 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    runtime.stop();
    EXPECT_EQ(handled.load(), 30u);
  }
}

TEST(ThreadPbpl, OverflowIsAbsorbedOrDrained) {
  auto config = quick_config();
  config.base_buffer = 8;
  config.pool_segment = 4;
  ThreadPbpl runtime(2, config);
  // Flood one consumer far past its base capacity.
  for (int i = 0; i < 200; ++i) runtime.produce(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  runtime.stop();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.items, 200u);
  EXPECT_GT(stats.emergency_borrows + stats.overflow_wakeups, 0u);
}

TEST(ThreadPbpl, GroupsInvocationsAcrossConsumers) {
  auto config = quick_config();
  config.cores = 1;  // all four consumers share one slot track
  ThreadPbpl runtime(4, config);
  for (int round = 0; round < 15; ++round) {
    for (std::size_t c = 0; c < 4; ++c) runtime.produce(c);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  runtime.stop();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.items, 60u);
  // Latching: strictly fewer core wakeups than consumer invocations.
  EXPECT_LT(stats.scheduled_wakeups + stats.overflow_wakeups, stats.invocations);
  EXPECT_GT(stats.latched_reservations, 0u);
}

TEST(ThreadPbpl, LatencyRespectsRoughBound) {
  auto config = quick_config();
  config.max_latency = milliseconds(30);
  ThreadPbpl runtime(1, config);
  for (int i = 0; i < 10; ++i) {
    runtime.produce(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  runtime.stop();
  const auto stats = runtime.stats();
  ASSERT_EQ(stats.items, 10u);
  // Scheduling jitter on a loaded CI box is real; allow 4x headroom.
  EXPECT_LT(stats.latency_s.max(), 0.120);
}

TEST(ThreadBaseline, MutexConsumesPerItem) {
  ThreadBaseline baseline(2, 16, SignalPolicy::PerItem);
  for (int i = 0; i < 50; ++i) {
    baseline.produce(0);
    baseline.produce(1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  baseline.stop();
  const auto stats = baseline.stats();
  EXPECT_EQ(stats.items, 100u);
  EXPECT_GT(stats.consumer_wakeups, 0u);
  EXPECT_LT(stats.latency_s.mean(), 0.05);
}

TEST(ThreadBaseline, BatchWaitsForFullBuffer) {
  ThreadBaseline baseline(1, 10, SignalPolicy::OnFull);
  for (int i = 0; i < 25; ++i) baseline.produce(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  baseline.stop();
  const auto stats = baseline.stats();
  EXPECT_EQ(stats.items, 25u);
  // Two full batches of 10 plus the final 5-item drain.
  EXPECT_LE(stats.invocations, 4u);
  EXPECT_GE(stats.batch_sizes.max(), 10.0);
}

TEST(ThreadBaseline, PeriodicDrainsOnTimer) {
  // Slow trickle: the 20 ms timer wakes the consumer regardless of items.
  ThreadBaseline baseline(1, 64, SignalPolicy::Periodic, milliseconds(20));
  for (int i = 0; i < 10; ++i) {
    baseline.produce(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  baseline.stop();
  const auto stats = baseline.stats();
  EXPECT_EQ(stats.items, 10u);
  // ~150 ms of run / 20 ms period: several timer fires, far fewer than
  // the 10 per-item wakeups Mutex would take.
  EXPECT_GE(stats.consumer_wakeups, 4u);
  EXPECT_LE(stats.consumer_wakeups, 12u);
  EXPECT_GT(stats.batch_sizes.mean(), 1.0);
}

TEST(ThreadBaseline, PeriodicOverflowForcesEarlyDrain) {
  ThreadBaseline baseline(1, 8, SignalPolicy::Periodic, seconds(5));
  for (int i = 0; i < 30; ++i) baseline.produce(0);  // fills 8 repeatedly
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  baseline.stop();
  const auto stats = baseline.stats();
  EXPECT_EQ(stats.items, 30u);
  EXPECT_GE(stats.batch_sizes.max(), 8.0);
}

TEST(ThreadBaseline, ProducerBackpressureNeverDropsItems) {
  ThreadBaseline baseline(1, 4, SignalPolicy::PerItem);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 500; ++i) {
      baseline.produce(0);
      ++produced;
    }
  });
  producer.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  baseline.stop();
  EXPECT_EQ(baseline.stats().items, static_cast<std::uint64_t>(produced.load()));
}

TEST(TraceReplayer, DeliversAtRoughlyTheRightTimes) {
  std::vector<trace::Trace> traces;
  traces.push_back(trace::uniform_trace(10, milliseconds(5)));
  std::atomic<int> delivered{0};
  const auto start = std::chrono::steady_clock::now();
  TraceReplayer replayer(std::move(traces), seconds(1),
                         [&](std::size_t) { ++delivered; });
  replayer.wait();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(delivered.load(), 10);
  EXPECT_GE(elapsed, std::chrono::milliseconds(45));
}

TEST(TraceReplayer, HorizonCutsTheTail) {
  std::vector<trace::Trace> traces;
  traces.push_back(trace::uniform_trace(100, milliseconds(5)));
  std::atomic<int> delivered{0};
  TraceReplayer replayer(std::move(traces), milliseconds(26),
                         [&](std::size_t) { ++delivered; });
  replayer.wait();
  EXPECT_EQ(delivered.load(), 6);  // 0,5,10,15,20,25 ms
}

TEST(TraceReplayer, StopIsPrompt) {
  std::vector<trace::Trace> traces;
  traces.push_back(trace::uniform_trace(1000, milliseconds(10)));
  std::atomic<int> delivered{0};
  TraceReplayer replayer(std::move(traces), seconds(10),
                         [&](std::size_t) { ++delivered; });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto before = std::chrono::steady_clock::now();
  replayer.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - before, std::chrono::milliseconds(500));
  EXPECT_LT(delivered.load(), 100);
}

TEST(EndToEnd, PbplBeatsMutexOnWakeupsWithRealThreads) {
  // The thread-host headline: same workload, PBPL takes far fewer
  // consumer wakeups than per-item signaling.
  const std::size_t pairs = 4;
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < pairs; ++i) {
    traces.push_back(trace::uniform_trace(60, milliseconds(3), milliseconds(1)));
  }

  ThreadBaseline mutex(pairs, 32, SignalPolicy::PerItem);
  {
    TraceReplayer replayer(traces, milliseconds(250),
                           [&](std::size_t p) { mutex.produce(p); });
    replayer.wait();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mutex.stop();

  auto config = quick_config();
  config.cores = 1;
  ThreadPbpl pbpl(pairs, config);
  {
    TraceReplayer replayer(traces, milliseconds(250),
                           [&](std::size_t p) { pbpl.produce(p); });
    replayer.wait();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  pbpl.stop();

  const auto mutex_stats = mutex.stats();
  const auto pbpl_stats = pbpl.stats();
  EXPECT_EQ(mutex_stats.items, pbpl_stats.items);
  EXPECT_LT(pbpl_stats.scheduled_wakeups + pbpl_stats.overflow_wakeups,
            mutex_stats.consumer_wakeups / 2);
}

}  // namespace
}  // namespace pcpc::runtime
