// Tests for the Common Log Format parser.
#include <gtest/gtest.h>

#include <sstream>

#include "pcpc/trace/clf.hpp"

namespace pcpc::trace {
namespace {

TEST(ClfTimestamp, ParsesReferenceExample) {
  // The canonical CLF documentation example.
  const auto t = parse_clf_timestamp("10/Oct/2000:13:55:36 -0700");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 971211336);  // UTC epoch seconds
}

TEST(ClfTimestamp, HandlesPositiveZone) {
  const auto utc = parse_clf_timestamp("01/Jan/1998:00:00:00 +0000");
  const auto plus2 = parse_clf_timestamp("01/Jan/1998:02:00:00 +0200");
  ASSERT_TRUE(utc.has_value());
  ASSERT_TRUE(plus2.has_value());
  EXPECT_EQ(*utc, *plus2);
  EXPECT_EQ(*utc, 883612800);
}

TEST(ClfTimestamp, WorldCupEra) {
  // The paper's dataset: summer 1998.
  const auto t = parse_clf_timestamp("26/Jun/1998:12:00:00 +0000");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 898862400);
}

TEST(ClfTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_clf_timestamp("").has_value());
  EXPECT_FALSE(parse_clf_timestamp("10-Oct-2000:13:55:36 -0700").has_value());
  EXPECT_FALSE(parse_clf_timestamp("10/Xxx/2000:13:55:36 -0700").has_value());
  EXPECT_FALSE(parse_clf_timestamp("99/Oct/2000:13:55:36 -0700").has_value());
  EXPECT_FALSE(parse_clf_timestamp("10/Oct/2000:25:55:36 -0700").has_value());
  EXPECT_FALSE(parse_clf_timestamp("10/Oct/2000:13:55:36 ~0700").has_value());
}

TEST(ClfLine, ExtractsBracketedField) {
  const auto t = parse_clf_line(
      R"(host.example.com - frank [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 200 2326)");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 971211336);
}

TEST(ClfLine, RejectsLinesWithoutBrackets) {
  EXPECT_FALSE(parse_clf_line("no brackets here").has_value());
  EXPECT_FALSE(parse_clf_line("half [open").has_value());
}

TEST(ClfStream, BuildsRebasedTrace) {
  std::istringstream log(
      R"(a - - [26/Jun/1998:12:00:00 +0000] "GET /a HTTP/1.0" 200 1
b - - [26/Jun/1998:12:00:01 +0000] "GET /b HTTP/1.0" 200 1
c - - [26/Jun/1998:12:00:03 +0000] "GET /c HTTP/1.0" 404 0
)");
  const ClfParseResult result = parse_clf(log);
  EXPECT_EQ(result.lines, 3u);
  EXPECT_EQ(result.parsed, 3u);
  EXPECT_EQ(result.malformed, 0u);
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_EQ(result.trace.at(0), 0);
  EXPECT_EQ(result.trace.at(1), seconds(1));
  EXPECT_EQ(result.trace.at(2), seconds(3));
}

TEST(ClfStream, TimeScaleCompressesReplay) {
  std::istringstream log(
      R"(a - - [26/Jun/1998:12:00:00 +0000] "GET / HTTP/1.0" 200 1
b - - [26/Jun/1998:13:00:00 +0000] "GET / HTTP/1.0" 200 1
)");
  const ClfParseResult result = parse_clf(log, /*time_scale=*/0.001);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.at(1), from_seconds(3.6));  // one hour → 3.6 s
}

TEST(ClfStream, CountsMalformedLines) {
  std::istringstream log(
      R"(good - - [26/Jun/1998:12:00:00 +0000] "GET / HTTP/1.0" 200 1
this line is garbage
another [not/a/date] garbage
)");
  const ClfParseResult result = parse_clf(log);
  EXPECT_EQ(result.parsed, 1u);
  EXPECT_EQ(result.malformed, 2u);
}

TEST(ClfStream, ToleratesOutOfOrderLines) {
  std::istringstream log(
      R"(b - - [26/Jun/1998:12:00:05 +0000] "GET / HTTP/1.0" 200 1
a - - [26/Jun/1998:12:00:00 +0000] "GET / HTTP/1.0" 200 1
)");
  const ClfParseResult result = parse_clf(log);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.at(0), 0);
  EXPECT_EQ(result.trace.at(1), seconds(5));
}

TEST(ClfFile, MissingFileSetsError) {
  bool ok = true;
  const auto result = parse_clf_file("/nonexistent/access.log", 1.0, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(result.trace.empty());
}

}  // namespace
}  // namespace pcpc::trace
