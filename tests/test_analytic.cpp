// Cross-validation: the discrete-event simulator must agree with the
// closed-form predictions on analytically tractable (constant-rate)
// workloads.  Agreement here certifies the machinery — event ordering,
// busy-window accounting, the energy integral — behind the bursty cases
// no closed form covers.
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/exp/analytic.hpp"
#include "pcpc/impls/baselines.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::exp {
namespace {

constexpr SimDuration kHorizon = seconds(10);

/// A constant-rate trace that divides the horizon exactly.
std::vector<trace::Trace> constant_rate(double rate_hz) {
  const auto gap = static_cast<SimDuration>(1e9 / rate_hz);
  const auto items = static_cast<std::size_t>(to_seconds(kHorizon) * rate_hz);
  return {trace::uniform_trace(items, gap, gap / 2)};
}

impls::BaselineParams params() {
  impls::BaselineParams p;
  p.cores = 1;
  p.buffer_capacity = 50;
  p.period = milliseconds(2);
  p.sigalrm_jitter_sigma = 1e-9;  // effectively jitter-free
  return p;
}

class AnalyticRateTest : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticRateTest, MutexMatchesClosedForm) {
  const double rate = GetParam();
  const auto traces = constant_rate(rate);
  const power::PowerModelParams power;
  const auto predicted = predict_signaled(rate, params(), power, /*mutex=*/true);
  const auto measured =
      impls::run_signaled(impls::ImplKind::Mutex, traces, kHorizon, params());
  const power::EnergyLedger ledger(power);

  EXPECT_NEAR(measured.wakeups_per_s(), predicted.wakeups_per_s,
              0.01 * predicted.wakeups_per_s + 1.0);
  EXPECT_NEAR(measured.usage_ms_per_s(), predicted.usage_ms_per_s,
              0.01 * predicted.usage_ms_per_s + 0.01);
  EXPECT_NEAR(measured.extra_power_w(ledger), predicted.extra_power_w,
              0.02 * predicted.extra_power_w + 1e-4);
  EXPECT_NEAR(measured.latency_s.mean(), predicted.mean_latency_s, 1e-9);
}

TEST_P(AnalyticRateTest, BatchMatchesClosedForm) {
  const double rate = GetParam();
  const auto traces = constant_rate(rate);
  const power::PowerModelParams power;
  const auto predicted = predict_batch(rate, params(), power);
  const auto measured = impls::run_batch(traces, kHorizon, params());
  const power::EnergyLedger ledger(power);

  EXPECT_NEAR(measured.wakeups_per_s(), predicted.wakeups_per_s,
              0.03 * predicted.wakeups_per_s + 0.2);
  EXPECT_NEAR(measured.usage_ms_per_s(), predicted.usage_ms_per_s,
              0.03 * predicted.usage_ms_per_s + 0.01);
  EXPECT_NEAR(measured.extra_power_w(ledger), predicted.extra_power_w,
              0.02 * predicted.extra_power_w + 1e-4);
  EXPECT_NEAR(measured.latency_s.mean(), predicted.mean_latency_s,
              0.02 * predicted.mean_latency_s + 1e-6);
}

TEST_P(AnalyticRateTest, PeriodicMatchesClosedForm) {
  const double rate = GetParam();
  if (rate * to_seconds(params().period) >=
      static_cast<double>(params().buffer_capacity)) {
    GTEST_SKIP() << "outside the timer-dominated regime";
  }
  const auto traces = constant_rate(rate);
  const power::PowerModelParams power;
  const auto predicted = predict_periodic(rate, params(), power);
  const auto measured = impls::run_periodic(impls::ImplKind::SignalPeriodicBatch,
                                            traces, kHorizon, params());
  const power::EnergyLedger ledger(power);

  EXPECT_NEAR(measured.wakeups_per_s(), predicted.wakeups_per_s,
              0.02 * predicted.wakeups_per_s + 1.0);
  EXPECT_NEAR(measured.usage_ms_per_s(), predicted.usage_ms_per_s,
              0.03 * predicted.usage_ms_per_s + 0.02);
  EXPECT_NEAR(measured.extra_power_w(ledger), predicted.extra_power_w,
              0.02 * predicted.extra_power_w + 1e-4);
  EXPECT_NEAR(measured.latency_s.mean(), predicted.mean_latency_s,
              0.03 * predicted.mean_latency_s + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Rates, AnalyticRateTest,
                         ::testing::Values(500.0, 2000.0, 8000.0));

TEST(Analytic, BusyWaitMatchesClosedForm) {
  const double rate = 2000.0;
  const auto traces = constant_rate(rate);
  const power::PowerModelParams power;
  const auto predicted = predict_busy_wait(rate, params(), power);
  const auto measured = impls::run_busy_wait(traces, kHorizon, params());
  const power::EnergyLedger ledger(power);
  EXPECT_NEAR(measured.usage_ms_per_s(), predicted.usage_ms_per_s, 1e-6);
  EXPECT_NEAR(measured.extra_power_w(ledger), predicted.extra_power_w,
              0.01 * predicted.extra_power_w);
}

TEST(Analytic, OrderingMatchesThePaper) {
  // The closed forms alone already imply the paper's ordering.
  const impls::BaselineParams p = params();
  const power::PowerModelParams power;
  const double rate = 20000.0;
  const auto mutex = predict_signaled(rate, p, power, true);
  const auto batch = predict_batch(rate, p, power);
  const auto bw = predict_busy_wait(rate, p, power);
  EXPECT_GT(bw.extra_power_w, mutex.extra_power_w);
  EXPECT_GT(mutex.extra_power_w, batch.extra_power_w);
}

TEST(AnalyticDeath, SparseFormulaRejectsSaturation) {
  const power::PowerModelParams power;
  impls::BaselineParams p = params();
  p.service.per_item = microseconds(200);
  EXPECT_DEATH(predict_signaled(20000.0, p, power, true), "sparse");
}

}  // namespace
}  // namespace pcpc::exp
