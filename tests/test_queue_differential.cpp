// Differential harness for the queue backends (mutex / SPSC ring / MPSC
// segments).
//
// The backends promise *identical observable semantics* behind the
// Handoff interface: same admission decisions, same elastic-capacity
// clamping against the pool, same drop accounting.  So the strongest test
// is differential — drive every backend through an identical seeded
// workload and demand bit-identical outcomes, not merely plausible ones:
//
//   - the consumed item sequence (FIFO order, not just the multiset),
//   - the sequence of dropped item values, per overflow policy,
//   - the capacity trajectory after every elastic resize,
//   - the overflow counter, and
//   - the conservation identity produced == consumed + dropped + residue.
//
// A second tier runs the real thread host (ThreadPbpl) per backend ×
// overflow policy and checks the identity the runtime keeps exactly even
// under racy stop(): produced == items + dropped().
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/ipc/shm.hpp"
#include "pcpc/queue/handoff.hpp"
#include "pcpc/runtime/thread_baselines.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"

namespace pcpc::queue {
namespace {

using core::OverflowPolicy;

constexpr BackendKind kBackends[] = {BackendKind::Mutex, BackendKind::SpscRing,
                                     BackendKind::MpscSeg};
constexpr OverflowPolicy kPolicies[] = {OverflowPolicy::Block,
                                        OverflowPolicy::DropOldest,
                                        OverflowPolicy::DropNewest,
                                        OverflowPolicy::EmergencyBorrow};

const char* policy_name(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::Block: return "Block";
    case OverflowPolicy::DropOldest: return "DropOldest";
    case OverflowPolicy::DropNewest: return "DropNewest";
    case OverflowPolicy::EmergencyBorrow: return "EmergencyBorrow";
  }
  return "?";
}

/// Everything observable about one driver run; two backends agree iff
/// these compare equal field by field.
struct Outcome {
  std::vector<std::uint64_t> consumed;     ///< items drained, in order
  std::vector<std::uint64_t> dropped;      ///< item values lost, in order
  std::vector<std::uint64_t> residue;      ///< items still queued at the end
  std::vector<std::size_t> capacities;     ///< capacity after each resize
  std::uint64_t produced = 0;
  std::uint64_t forced_drains = 0;         ///< Block/Borrow overflow wakeups
  std::uint64_t borrows = 0;               ///< successful emergency upsizes
  std::uint64_t rejected_pushes = 0;       ///< what overflows() must equal
};

/// Single-threaded reference driver: one seeded op stream (pushes,
/// partial drains, elastic resizes) against a caller-supplied hand-off,
/// applying one overflow policy exactly the way the hosts do.  Taking
/// the hand-off as a parameter is what lets the same op stream run
/// against heap-placed and shm-placed storage of the same backend.
void drive_handoff(Handoff<std::uint64_t>& handoff, OverflowPolicy policy,
                   std::uint64_t seed, Outcome& out) {
  Handoff<std::uint64_t>* queue = &handoff;
  Rng rng(seed);
  std::uint64_t next_item = 1;

  auto push_with_policy = [&](std::uint64_t item) {
    ++out.produced;
    if (queue->try_push(item)) return;
    ++out.rejected_pushes;
    switch (policy) {
      case OverflowPolicy::DropNewest:
        out.dropped.push_back(item);
        return;
      case OverflowPolicy::DropOldest: {
        if (auto victim = queue->try_pop()) out.dropped.push_back(*victim);
        const bool stored = queue->try_push(item);
        ASSERT_TRUE(stored) << "retry after evicting the oldest must succeed";
        return;
      }
      case OverflowPolicy::EmergencyBorrow: {
        const std::size_t cap = queue->capacity();
        queue->resize(cap + std::max<std::size_t>(1, cap / 4));
        out.capacities.push_back(queue->capacity());
        if (queue->try_push(item)) {
          ++out.borrows;
          return;
        }
        ++out.rejected_pushes;
        [[fallthrough]];
      }
      case OverflowPolicy::Block: {
        // The hosts turn a blocked producer into a forced drain (the
        // paper's unscheduled overflow wakeup); single-threaded that is
        // an inline full drain.
        ++out.forced_drains;
        while (auto drained = queue->try_pop()) out.consumed.push_back(*drained);
        const bool stored = queue->try_push(item);
        ASSERT_TRUE(stored) << "push after a full drain must succeed";
        return;
      }
    }
  };

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 70) {
      push_with_policy(next_item++);
    } else if (op < 85) {
      // Partial consumer drain of 1..6 items.
      const std::uint64_t burst = 1 + rng.next_below(6);
      for (std::uint64_t i = 0; i < burst; ++i) {
        auto item = queue->try_pop();
        if (!item) break;
        out.consumed.push_back(*item);
      }
    } else if (op < 95) {
      // Elastic resize toward a random target (the per-invocation
      // downsize/upsize of Section V-C).
      queue->resize(1 + static_cast<std::size_t>(rng.next_below(64)));
      out.capacities.push_back(queue->capacity());
    } else {
      queue->flush();  // SPSC publication batching; no-op elsewhere
    }
  }

  while (auto item = queue->try_pop()) out.residue.push_back(*item);
  EXPECT_EQ(queue->overflows(), out.rejected_pushes);
}

/// Heap-placed run: two consumers' worth of pool so there is headroom to
/// borrow, but only one hand-off — the second share is the free pool the
/// elastic wall moves against.
Outcome drive(BackendKind kind, OverflowPolicy policy, std::uint64_t seed) {
  BufferPool<std::uint64_t> pool(/*consumers=*/2, /*base_capacity=*/24,
                                 /*segment_size=*/8);
  auto queue = make_pool_handoff<std::uint64_t>(kind, pool, /*consumer=*/0);
  Outcome out;
  drive_handoff(*queue, policy, seed, out);
  return out;
}

/// Same workload, but the backend's slot array lives in a real
/// MAP_SHARED shared-memory mapping (OffsetSlots placement) — the
/// storage the pcpc::ipc host uses.  Placement must be semantically
/// invisible: heap and shm runs must produce bit-identical outcomes.
Outcome drive_in_shm(BackendKind kind, OverflowPolicy policy, std::uint64_t seed) {
  BufferPool<std::uint64_t> pool(/*consumers=*/2, /*base_capacity=*/24,
                                 /*segment_size=*/8);
  const std::size_t bytes = placed_handoff_bytes(kind, pool);
  const std::string name =
      "/pcpc_diff_" + std::to_string(::getpid()) + "_" + std::to_string(seed);
  std::string error;
  ipc::ShmSegment segment = ipc::ShmSegment::create(name, bytes, &error);
  Outcome out;
  EXPECT_TRUE(segment.valid()) << error;
  if (!segment.valid()) return out;
  auto queue = make_placed_pool_handoff<std::uint64_t>(
      kind, pool, /*consumer=*/0, Placement{segment.payload(), bytes});
  EXPECT_NE(queue, nullptr);
  if (queue != nullptr) drive_handoff(*queue, policy, seed, out);
  queue.reset();  // destroy slots before the mapping goes away
  segment.unlink();
  return out;
}

void expect_same(const Outcome& a, const Outcome& b, const std::string& label) {
  EXPECT_EQ(a.consumed, b.consumed) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
  EXPECT_EQ(a.residue, b.residue) << label;
  EXPECT_EQ(a.capacities, b.capacities) << label;
  EXPECT_EQ(a.produced, b.produced) << label;
  EXPECT_EQ(a.forced_drains, b.forced_drains) << label;
  EXPECT_EQ(a.borrows, b.borrows) << label;
  EXPECT_EQ(a.rejected_pushes, b.rejected_pushes) << label;
}

TEST(QueueDifferential, BackendsAgreeUnderEveryPolicy) {
  const std::uint64_t kSeeds[] = {1, 42, 0xdecafbadULL, 987654321};
  for (const auto policy : kPolicies) {
    for (const std::uint64_t seed : kSeeds) {
      const Outcome reference = drive(BackendKind::Mutex, policy, seed);
      // Conservation holds on the reference run itself.
      EXPECT_EQ(reference.produced, reference.consumed.size() +
                                        reference.dropped.size() +
                                        reference.residue.size());
      for (const auto kind : kBackends) {
        if (kind == BackendKind::Mutex) continue;
        std::ostringstream label;
        label << backend_name(kind) << " vs mutex, " << policy_name(policy)
              << ", seed " << seed;
        expect_same(reference, drive(kind, policy, seed), label.str());
      }
    }
  }
}

TEST(QueueDifferential, HeapAndShmPlacementsAgreeBitForBit) {
  // Mutex is excluded by design: deque storage has no placed variant.
  const std::uint64_t kSeeds[] = {3, 0xfeedULL, 271828};
  for (const auto kind : {BackendKind::SpscRing, BackendKind::MpscSeg}) {
    for (const auto policy : kPolicies) {
      for (const std::uint64_t seed : kSeeds) {
        std::ostringstream label;
        label << backend_name(kind) << " heap vs shm, " << policy_name(policy)
              << ", seed " << seed;
        expect_same(drive(kind, policy, seed), drive_in_shm(kind, policy, seed),
                    label.str());
      }
    }
  }
}

TEST(QueueDifferential, LosslessPoliciesDropNothing) {
  for (const auto kind : kBackends) {
    for (const auto policy : {OverflowPolicy::Block, OverflowPolicy::EmergencyBorrow}) {
      const Outcome out = drive(kind, policy, /*seed=*/7);
      EXPECT_TRUE(out.dropped.empty())
          << backend_name(kind) << "/" << policy_name(policy);
      // Lossless means the full produced sequence 1..N comes back out in
      // order: consumed then residue.
      std::vector<std::uint64_t> all = out.consumed;
      all.insert(all.end(), out.residue.begin(), out.residue.end());
      ASSERT_EQ(all.size(), out.produced);
      for (std::uint64_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i + 1);
    }
  }
}

TEST(QueueDifferential, DroppingPoliciesKeepFifoOfSurvivors) {
  for (const auto kind : kBackends) {
    for (const auto policy : {OverflowPolicy::DropOldest, OverflowPolicy::DropNewest}) {
      const Outcome out = drive(kind, policy, /*seed=*/1234);
      EXPECT_FALSE(out.dropped.empty())
          << "workload too tame to exercise " << policy_name(policy);
      std::vector<std::uint64_t> survivors = out.consumed;
      survivors.insert(survivors.end(), out.residue.begin(), out.residue.end());
      for (std::size_t i = 1; i < survivors.size(); ++i) {
        ASSERT_LT(survivors[i - 1], survivors[i])
            << backend_name(kind) << "/" << policy_name(policy)
            << ": survivors out of FIFO order at index " << i;
      }
    }
  }
}

// --- Varlen tier: the record rings promise the same cross-backend
// determinism at byte granularity.  One seeded op stream (records of
// seeded sizes via reserve/commit or try_push_record, partial claim/
// release drains, elastic byte resizes, policy-driven evictions) runs
// against every VarHandoff kind; the byte trajectories — the (size,
// checksum) sequence of every record consumed, dropped and left as
// residue, plus the capacity walk — must be bit-identical across
// backends × overflow policies and across heap vs shm placement. ------

/// One record's observable identity: payload size and a fold of every
/// payload byte.  Two runs agree iff the full sequences match.
using VarRecordId = std::pair<std::uint32_t, std::uint64_t>;

struct VarOutcome {
  std::vector<VarRecordId> consumed;   ///< records drained, in order
  std::vector<std::uint32_t> dropped;  ///< payload sizes evicted, in order
  std::vector<VarRecordId> residue;    ///< records still ringed at the end
  std::vector<std::size_t> capacities; ///< capacity_bytes after each resize
  std::uint64_t produced_records = 0;
  std::uint64_t produced_bytes = 0;
  std::uint64_t rejected_reserves = 0;
  std::uint64_t forced_drains = 0;
  std::uint64_t borrows = 0;
};

std::uint64_t var_payload_checksum(std::span<const std::byte> payload) {
  std::uint64_t sum = 0x9e3779b97f4a7c15ull + payload.size();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    sum = sum * 131 + static_cast<std::uint8_t>(payload[i]);
  }
  return sum;
}

void drive_var_handoff(VarHandoff& handoff, OverflowPolicy policy,
                       std::uint64_t seed, VarOutcome& out) {
  Rng rng(seed);
  std::uint64_t next_seq = 1;

  auto consume_claimed = [&](std::size_t max_records) {
    std::size_t n = 0;
    while (n < max_records) {
      auto view = handoff.claim_front();
      if (!view.has_value()) break;
      out.consumed.emplace_back(
          view->size,
          var_payload_checksum(std::span<const std::byte>(view->data, view->size)));
      ++n;
    }
    if (n > 0) handoff.release_until(handoff.claim_offset());
    return n;
  };

  auto fill = [&](std::byte* dst, std::uint32_t size, std::uint64_t seq) {
    for (std::uint32_t i = 0; i < size; ++i) {
      dst[i] = static_cast<std::byte>(seq * 131 + i);
    }
  };

  auto push_with_policy = [&](std::uint32_t size) {
    const std::uint64_t seq = next_seq++;
    ++out.produced_records;
    out.produced_bytes += size;
    std::vector<std::byte> staging(size);
    const bool zero_copy = rng.next_below(2) == 0;
    auto offer = [&]() -> bool {
      if (zero_copy) {
        VarReservation r;
        if (!handoff.try_reserve(size, r)) return false;
        fill(r.data, size, seq);
        return handoff.commit(r);
      }
      fill(staging.data(), size, seq);
      return handoff.try_push_record(std::span<const std::byte>(staging));
    };
    if (offer()) return;
    ++out.rejected_reserves;
    switch (policy) {
      case OverflowPolicy::DropNewest:
        out.dropped.push_back(size);
        return;
      case OverflowPolicy::DropOldest: {
        // Evict at record granularity until the newcomer fits; when the
        // ring runs out of victims first (a record bigger than all queued
        // bytes), the newcomer itself is the drop (the thread host's
        // rule).
        std::uint64_t footprint = 0;
        std::uint32_t victim = 0;
        for (;;) {
          if (!handoff.drop_oldest(footprint, victim)) {
            out.dropped.push_back(size);
            return;
          }
          out.dropped.push_back(victim);
          if (offer()) return;
          ++out.rejected_reserves;
        }
      }
      case OverflowPolicy::EmergencyBorrow: {
        const std::size_t cap = handoff.capacity_bytes();
        handoff.resize_bytes(cap + std::max<std::size_t>(64, cap / 4));
        out.capacities.push_back(handoff.capacity_bytes());
        if (offer()) {
          ++out.borrows;
          return;
        }
        ++out.rejected_reserves;
        [[fallthrough]];
      }
      case OverflowPolicy::Block: {
        // Single-threaded stand-in for the blocked producer's forced
        // drain: consume everything, then the record must fit.
        ++out.forced_drains;
        consume_claimed(SIZE_MAX);
        const bool stored = offer();
        ASSERT_TRUE(stored) << "push after a full drain must succeed";
        return;
      }
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 65) {
      // Sizes sweep 1..max_record_payload with a bias toward small
      // records so several live in the ring at once.
      const std::uint32_t max_payload = handoff.max_record_payload();
      const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.next_below(
          rng.next_below(4) == 0 ? max_payload : 47));
      push_with_policy(size);
    } else if (op < 85) {
      consume_claimed(1 + rng.next_below(4));
    } else {
      // Elastic resize toward a random byte target, never below one
      // max-size record's footprint — the Block policy's "full drain
      // then the record must fit" invariant needs that floor, exactly
      // like the item pools never shrink below one slot.
      const std::size_t floor_bytes = static_cast<std::size_t>(
          var_record_bytes(handoff.max_record_payload()));
      handoff.resize_bytes(floor_bytes + 64 * rng.next_below(24));
      out.capacities.push_back(handoff.capacity_bytes());
    }
  }

  // Whatever is still ringed at the end is the residue trajectory.
  for (;;) {
    auto view = handoff.claim_front();
    if (!view.has_value()) break;
    out.residue.emplace_back(
        view->size,
        var_payload_checksum(std::span<const std::byte>(view->data, view->size)));
  }
  handoff.release_until(handoff.claim_offset());
}

/// Heap-placed varlen run.
VarOutcome var_drive(BackendKind kind, OverflowPolicy policy, std::uint64_t seed) {
  auto handoff = make_var_handoff(kind, /*capacity_bytes=*/1 << 10,
                                  /*max_bytes=*/4 << 10, /*max_record_payload=*/256);
  VarOutcome out;
  drive_var_handoff(*handoff, policy, seed, out);
  EXPECT_EQ(handoff->overflows(), out.rejected_reserves);
  return out;
}

/// Same workload with the ring storage in a real MAP_SHARED mapping.
VarOutcome var_drive_in_shm(BackendKind kind, OverflowPolicy policy,
                            std::uint64_t seed) {
  const std::size_t bytes =
      placed_var_handoff_bytes(kind, /*max_bytes=*/4 << 10, /*max_record_payload=*/256);
  const std::string name =
      "/pcpc_vdiff_" + std::to_string(::getpid()) + "_" + std::to_string(seed);
  std::string error;
  ipc::ShmSegment segment = ipc::ShmSegment::create(name, bytes, &error);
  VarOutcome out;
  EXPECT_TRUE(segment.valid()) << error;
  if (!segment.valid()) return out;
  auto handoff = make_placed_var_handoff(kind, /*capacity_bytes=*/1 << 10,
                                         /*max_bytes=*/4 << 10,
                                         /*max_record_payload=*/256,
                                         Placement{segment.payload(), bytes});
  EXPECT_NE(handoff, nullptr);
  if (handoff != nullptr) {
    drive_var_handoff(*handoff, policy, seed, out);
    EXPECT_EQ(handoff->overflows(), out.rejected_reserves);
  }
  handoff.reset();  // destroy the ring before the mapping goes away
  segment.unlink();
  return out;
}

void expect_same_var(const VarOutcome& a, const VarOutcome& b,
                     const std::string& label) {
  EXPECT_EQ(a.consumed, b.consumed) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
  EXPECT_EQ(a.residue, b.residue) << label;
  EXPECT_EQ(a.capacities, b.capacities) << label;
  EXPECT_EQ(a.produced_records, b.produced_records) << label;
  EXPECT_EQ(a.produced_bytes, b.produced_bytes) << label;
  EXPECT_EQ(a.rejected_reserves, b.rejected_reserves) << label;
  EXPECT_EQ(a.forced_drains, b.forced_drains) << label;
  EXPECT_EQ(a.borrows, b.borrows) << label;
}

TEST(QueueDifferential, VarlenBackendsAgreeUnderEveryPolicy) {
  const std::uint64_t kSeeds[] = {1, 42, 0xdecafbadULL, 987654321};
  for (const auto policy : kPolicies) {
    for (const std::uint64_t seed : kSeeds) {
      const VarOutcome reference = var_drive(BackendKind::Mutex, policy, seed);
      // Byte conservation holds on the reference run itself.
      std::uint64_t consumed_bytes = 0;
      for (const auto& [size, sum] : reference.consumed) consumed_bytes += size;
      std::uint64_t dropped_bytes = 0;
      for (const auto size : reference.dropped) dropped_bytes += size;
      std::uint64_t residue_bytes = 0;
      for (const auto& [size, sum] : reference.residue) residue_bytes += size;
      EXPECT_EQ(reference.produced_bytes,
                consumed_bytes + dropped_bytes + residue_bytes)
          << policy_name(policy) << ", seed " << seed;
      for (const auto kind : kBackends) {
        if (kind == BackendKind::Mutex) continue;
        std::ostringstream label;
        label << "varlen " << backend_name(kind) << " vs mutex, "
              << policy_name(policy) << ", seed " << seed;
        expect_same_var(reference, var_drive(kind, policy, seed), label.str());
      }
    }
  }
}

TEST(QueueDifferential, VarlenHeapAndShmPlacementsAgreeBitForBit) {
  const std::uint64_t kSeeds[] = {3, 0xfeedULL, 271828};
  for (const auto kind : kBackends) {
    for (const auto policy : kPolicies) {
      for (const std::uint64_t seed : kSeeds) {
        std::ostringstream label;
        label << "varlen " << backend_name(kind) << " heap vs shm, "
              << policy_name(policy) << ", seed " << seed;
        expect_same_var(var_drive(kind, policy, seed),
                        var_drive_in_shm(kind, policy, seed), label.str());
      }
    }
  }
}

TEST(QueueDifferential, VarlenLosslessPoliciesDropNothing) {
  for (const auto kind : kBackends) {
    for (const auto policy :
         {OverflowPolicy::Block, OverflowPolicy::EmergencyBorrow}) {
      const VarOutcome out = var_drive(kind, policy, /*seed=*/7);
      EXPECT_TRUE(out.dropped.empty())
          << backend_name(kind) << "/" << policy_name(policy);
      EXPECT_EQ(out.consumed.size() + out.residue.size(), out.produced_records)
          << backend_name(kind) << "/" << policy_name(policy);
    }
  }
}

// --- Tier 2: the real thread host keeps produced == items + dropped()
// exactly, per backend × policy, with concurrent producers. -------------

core::PbplConfig runtime_config(BackendKind kind, OverflowPolicy policy) {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 8;
  config.overflow_policy = policy;
  config.queue_backend = kind;
  return config;
}

TEST(QueueDifferential, ThreadHostConservesItemsPerBackendAndPolicy) {
  constexpr std::size_t kConsumers = 2;
  constexpr std::size_t kProducersPerConsumer = 2;
  constexpr std::uint64_t kItems = 400;
  for (const auto kind : kBackends) {
    for (const auto policy : kPolicies) {
      // The SPSC ring's contract is one producer thread per consumer.
      const std::size_t producers =
          kind == BackendKind::SpscRing ? 1 : kProducersPerConsumer;
      runtime::ThreadPbpl host(kConsumers, runtime_config(kind, policy));
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < kConsumers; ++c) {
        for (std::size_t p = 0; p < producers; ++p) {
          threads.emplace_back([&host, c] {
            for (std::uint64_t i = 0; i < kItems; ++i) host.produce(c);
          });
        }
      }
      for (auto& t : threads) t.join();
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      host.stop();
      const auto stats = host.stats();
      const std::string label = std::string(backend_name(kind)) + "/" +
                                policy_name(policy);
      EXPECT_EQ(stats.produced, kConsumers * producers * kItems) << label;
      EXPECT_EQ(stats.produced, stats.items + stats.dropped()) << label;
      if (policy == OverflowPolicy::Block || policy == OverflowPolicy::EmergencyBorrow) {
        // Lossless policies may only lose items to the stop() race, and
        // those are accounted as dropped_on_stop — never silently.
        EXPECT_EQ(stats.dropped_oldest, 0u) << label;
        EXPECT_EQ(stats.dropped_newest, 0u) << label;
      }
    }
  }
}

TEST(QueueDifferential, BaselineHostConservesItemsPerBackend) {
  constexpr std::size_t kPairs = 2;
  constexpr std::uint64_t kItems = 300;
  for (const auto kind : kBackends) {
    for (const auto policy :
         {runtime::SignalPolicy::PerItem, runtime::SignalPolicy::OnFull}) {
      runtime::ThreadBaseline host(kPairs, /*buffer_capacity=*/16, policy,
                                   milliseconds(10), /*injector=*/nullptr, kind);
      std::vector<std::thread> producers;
      for (std::size_t pair = 0; pair < kPairs; ++pair) {
        producers.emplace_back([&host, pair] {
          for (std::uint64_t i = 0; i < kItems; ++i) host.produce(pair);
        });
      }
      for (auto& t : producers) t.join();
      host.stop();
      // Baselines block producers instead of dropping: every item lands.
      EXPECT_EQ(host.stats().items, kPairs * kItems) << backend_name(kind);
    }
  }
}

}  // namespace
}  // namespace pcpc::queue
