// Wakeup-attribution tests: the obs ledger's Σ w(τ) must agree exactly
// with the simulator's internal paid-wakeup count on a deterministic
// replay, stay self-consistent across its per-consumer / per-core
// breakdowns, and obey the same paid/free semantics on the thread host
// (first invocation of a wake group pays, latched consumers ride free).
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fault/chaos.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/thread_baselines.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/trace/arrival_process.hpp"

namespace pcpc {
namespace {

core::PbplConfig small_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;
  return config;
}

std::vector<trace::Trace> poisson_traces(std::size_t producers, SimDuration horizon,
                                         std::uint64_t seed) {
  std::vector<trace::Trace> traces;
  Rng rng(seed);
  for (std::size_t i = 0; i < producers; ++i) {
    Rng stream = rng.fork();
    const trace::ConstantRate rate(800.0 + 300.0 * static_cast<double>(i));
    traces.push_back(trace::sample_nhpp(rate, horizon, stream));
  }
  return traces;
}

struct LedgerTotals {
  std::uint64_t paid = 0;
  std::uint64_t free = 0;
};

LedgerTotals run_sim_once(std::uint64_t seed, std::uint64_t* sim_paid = nullptr) {
  const SimDuration horizon = seconds(2);
  const auto traces = poisson_traces(4, horizon, seed);
  obs::Session session;
  const auto result = core::run_pbpl(traces, horizon, small_config());
  if (sim_paid != nullptr) *sim_paid = result.paid_wakeups;
  return {session.ledger().paid_total(), session.ledger().free_total()};
}

TEST(WakeupLedger, MatchesSimulatorPaidCountExactly) {
  std::uint64_t sim_paid = 0;
  const LedgerTotals totals = run_sim_once(0x5eed, &sim_paid);
  EXPECT_GT(sim_paid, 0u);
  EXPECT_EQ(totals.paid, sim_paid);
  // PBPL exists to latch consumers onto shared wakeups: the free column
  // must be populated on a multi-consumer workload.
  EXPECT_GT(totals.free, 0u);
}

TEST(WakeupLedger, DeterministicReplayReproducesTheLedger) {
  std::uint64_t first_sim = 0;
  std::uint64_t second_sim = 0;
  const LedgerTotals first = run_sim_once(0xabcd, &first_sim);
  const LedgerTotals second = run_sim_once(0xabcd, &second_sim);
  EXPECT_EQ(first.paid, second.paid);
  EXPECT_EQ(first.free, second.free);
  EXPECT_EQ(first_sim, second_sim);
}

TEST(WakeupLedger, BreakdownsSumToTotals) {
  const SimDuration horizon = seconds(2);
  const auto traces = poisson_traces(4, horizon, 0x77);
  obs::Session session;
  (void)core::run_pbpl(traces, horizon, small_config());

  const std::uint64_t paid = session.ledger().paid_total();
  const std::uint64_t free = session.ledger().free_total();

  LedgerTotals by_consumer;
  for (const auto& a : session.ledger().per_consumer()) {
    by_consumer.paid += a.paid;
    by_consumer.free += a.free;
  }
  LedgerTotals by_core;
  for (const auto& a : session.ledger().per_core()) {
    by_core.paid += a.paid;
    by_core.free += a.free;
  }
  EXPECT_EQ(by_consumer.paid, paid);
  EXPECT_EQ(by_consumer.free, free);
  EXPECT_EQ(by_core.paid, paid);
  EXPECT_EQ(by_core.free, free);
  // The registry's counters are fed by the same instrumentation point.
  const auto snapshot = session.registry().collect();
  EXPECT_EQ(snapshot.counter_value("wakeups.paid"), paid);
  EXPECT_EQ(snapshot.counter_value("wakeups.free"), free);
}

TEST(WakeupLedger, WakeGroupsCarryAtMostOnePaidInvocation) {
  // Group the trace's wakeup events by (core, timestamp): the consumer
  // that actually pulls the core out of idle pays ω, everyone latching
  // on is free — so a group carries at most one paid record (zero when
  // the core was still awake from earlier work).  This is the paper's
  // w(τ) stated as a trace invariant, checked on the sim host where
  // timestamps are exact virtual time.
  const SimDuration horizon = seconds(1);
  const auto traces = poisson_traces(4, horizon, 0x1234);
  obs::Session session;
  (void)core::run_pbpl(traces, horizon, small_config());

  std::map<std::pair<std::uint16_t, std::int64_t>, std::uint64_t> paid_per_group;
  std::uint64_t wakeup_events = 0;
  for (const auto& event : session.events()) {
    if (event.kind != obs::EventKind::kWakeup) continue;
    ++wakeup_events;
    paid_per_group[{event.core, event.ts_ns}] += event.paid() ? 1 : 0;
  }
  ASSERT_GT(wakeup_events, 0u);
  // No ring drops: every wakeup made it into the trace, so the group
  // counts are exhaustive.
  ASSERT_EQ(session.ring_dropped(), 0u);
  std::uint64_t paid_groups = 0;
  for (const auto& [group, paid] : paid_per_group) {
    EXPECT_LE(paid, 1u) << "core " << group.first << " ts " << group.second;
    paid_groups += paid;
  }
  // Both populations exist on this workload: wakes that paid and wakes
  // that latched onto a still-busy core.
  EXPECT_GT(paid_groups, 0u);
  EXPECT_LT(paid_groups, paid_per_group.size());
  EXPECT_EQ(paid_groups, session.ledger().paid_total());
}

TEST(WakeupLedger, ChaosReplayStillBalances) {
  const SimDuration horizon = seconds(2);
  const auto traces = poisson_traces(3, horizon, 0x9e1);
  fault::FaultConfig fault_config;
  fault_config.seed = 3;
  fault_config.burst_probability = 0.05;
  fault_config.burst_factor = 8;
  fault_config.slow_handler_probability = 0.1;
  fault_config.handler_delay = milliseconds(2);

  std::uint64_t paid_ledger = 0;
  std::uint64_t paid_sim = 0;
  {
    fault::FaultInjector injector(fault_config);
    obs::Session session;
    const auto result =
        fault::run_pbpl_under_faults(traces, horizon, small_config(), injector);
    paid_ledger = session.ledger().paid_total();
    paid_sim = result.pbpl.paid_wakeups;
    EXPECT_GT(session.registry().collect().counter_value("faults.injected"), 0u);
  }
  EXPECT_GT(paid_sim, 0u);
  EXPECT_EQ(paid_ledger, paid_sim);
}

TEST(WakeupLedger, ThreadHostAttributionIsConsistent) {
  obs::Session session;
  std::uint64_t produced = 0;
  runtime::ThreadPbplStats stats;
  {
    runtime::ThreadPbpl runtime(4, small_config());
    for (int round = 0; round < 200; ++round) {
      for (std::size_t consumer = 0; consumer < 4; ++consumer) {
        runtime.produce(consumer);
        ++produced;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    runtime.stop();
    stats = runtime.stats();
  }
  EXPECT_EQ(stats.produced, produced);

  const std::uint64_t paid = session.ledger().paid_total();
  const std::uint64_t free = session.ledger().free_total();
  EXPECT_GT(paid, 0u);
  // Same identities as the sim host: ledger totals equal the registry's
  // paid/free counters and the per-consumer breakdown re-sums to them.
  const auto snapshot = session.registry().collect();
  EXPECT_EQ(snapshot.counter_value("wakeups.paid"), paid);
  EXPECT_EQ(snapshot.counter_value("wakeups.free"), free);
  LedgerTotals by_consumer;
  for (const auto& a : session.ledger().per_consumer()) {
    by_consumer.paid += a.paid;
    by_consumer.free += a.free;
  }
  EXPECT_EQ(by_consumer.paid, paid);
  EXPECT_EQ(by_consumer.free, free);
  // Each ledger record is one consumer invocation; the stop()-drain of
  // leftovers is the only invocation path outside a manager wakeup.
  EXPECT_LE(paid + free, stats.invocations);
}

TEST(WakeupLedger, BaselinesPayEveryWakeup) {
  // One thread per pair means no latching: the baseline hosts tag every
  // wakeup paid — this is exactly the cost PBPL amortises away.
  obs::Session session;
  {
    runtime::ThreadBaseline baseline(3, /*buffer_capacity=*/64,
                                     runtime::SignalPolicy::Periodic,
                                     milliseconds(2));
    for (int round = 0; round < 100; ++round) {
      for (std::size_t pair = 0; pair < 3; ++pair) baseline.produce(pair);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    baseline.stop();
  }
  EXPECT_GT(session.ledger().paid_total(), 0u);
  EXPECT_EQ(session.ledger().free_total(), 0u);
}

}  // namespace
}  // namespace pcpc
