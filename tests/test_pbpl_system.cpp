// Integration tests of the assembled PBPL system (Figure 5).
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/trace/webserver_log.hpp"

namespace pcpc::core {
namespace {

PbplConfig test_config() {
  PbplConfig c;
  c.cores = 2;
  c.slot_size = milliseconds(10);
  c.max_latency = milliseconds(100);
  c.base_buffer = 25;
  c.pool_segment = 5;
  return c;
}

std::vector<trace::Trace> uniform_producers(std::size_t count, double rate_hz,
                                            SimDuration horizon) {
  std::vector<trace::Trace> traces;
  const auto gap = static_cast<SimDuration>(1e9 / rate_hz);
  const auto items = static_cast<std::size_t>(to_seconds(horizon) * rate_hz);
  for (std::size_t i = 0; i < count; ++i) {
    traces.push_back(trace::uniform_trace(items, gap, static_cast<SimTime>(i) * 100));
  }
  return traces;
}

TEST(PbplSystem, ConsumesEveryItem) {
  const auto traces = uniform_producers(5, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), test_config());
  std::size_t expected = 0;
  for (const auto& t : traces) expected += t.size();
  EXPECT_EQ(result.items, expected);
}

TEST(PbplSystem, TimelinesMatchCoresAndHorizon) {
  const auto traces = uniform_producers(5, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), test_config());
  ASSERT_EQ(result.timelines.size(), 2u);
  for (const auto& t : result.timelines) {
    EXPECT_TRUE(t.finalized());
    EXPECT_GE(t.duration(), seconds(1));
    EXPECT_LE(t.active_time(), t.duration());
    EXPECT_GT(t.wakeups(), 0u);
  }
}

TEST(PbplSystem, DeterministicAcrossRuns) {
  const auto traces = uniform_producers(3, 1500.0, seconds(1));
  const PbplResult a = run_pbpl(traces, seconds(1), test_config());
  const PbplResult b = run_pbpl(traces, seconds(1), test_config());
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.scheduled_wakeups, b.scheduled_wakeups);
  EXPECT_EQ(a.overflow_wakeups, b.overflow_wakeups);
  EXPECT_EQ(a.paid_wakeups, b.paid_wakeups);
  EXPECT_DOUBLE_EQ(a.latency_s.mean(), b.latency_s.mean());
}

TEST(PbplSystem, PaidWakeupsNeverExceedRaisedWakeups) {
  const auto traces = uniform_producers(5, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), test_config());
  EXPECT_LE(result.paid_wakeups, result.scheduled_wakeups + result.overflow_wakeups);
  EXPECT_GT(result.scheduled_wakeups, 0u);
}

TEST(PbplSystem, LatchingHappensWithSharedCores) {
  auto config = test_config();
  config.cores = 1;  // everyone shares one slot track
  const auto traces = uniform_producers(5, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), config);
  EXPECT_GT(result.latched_reservations, result.reservations / 4);
}

TEST(PbplSystem, NoLatchingPossibleWithOneConsumerPerCore) {
  auto config = test_config();
  config.cores = 2;
  const auto traces = uniform_producers(2, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), config);
  EXPECT_EQ(result.latched_reservations, 0u);
}

TEST(PbplSystem, LatchingReducesWakeupsOnWebWorkload) {
  trace::WebWorkloadParams w;
  w.duration = seconds(2);
  w.base_rate_hz = 2000.0;
  const auto traces = trace::make_shifted_workloads(w, 6);

  auto with = test_config();
  with.cores = 1;
  auto without = with;
  without.latching = false;

  const PbplResult latched = run_pbpl(traces, seconds(2), with);
  const PbplResult unlatched = run_pbpl(traces, seconds(2), without);
  EXPECT_EQ(latched.items, unlatched.items);
  EXPECT_LT(latched.paid_wakeups, unlatched.paid_wakeups);
}

TEST(PbplSystem, MeanLatencyStaysReasonable) {
  const auto traces = uniform_producers(5, 2000.0, seconds(1));
  auto config = test_config();
  const PbplResult result = run_pbpl(traces, seconds(1), config);
  // Items wait at most roughly a buffer-fill (12.5 ms at B=25, 2 kHz).
  EXPECT_LT(result.latency_s.mean(), 0.030);
  EXPECT_GT(result.latency_s.mean(), 0.0005);
}

TEST(PbplSystem, BufferCapacityMetricIsPopulated) {
  const auto traces = uniform_producers(5, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), test_config());
  EXPECT_GT(result.buffer_capacity.count(), 0u);
  EXPECT_GT(result.buffer_capacity.mean(), 0.0);
  EXPECT_LE(result.buffer_capacity.mean(), 25.0 * 5);
}

TEST(PbplSystem, EmptyTraceProducesNoItems) {
  std::vector<trace::Trace> traces(2);
  const PbplResult result = run_pbpl(traces, seconds(1), test_config());
  EXPECT_EQ(result.items, 0u);
  // The consumers still poll at the latency horizon.
  EXPECT_GT(result.scheduled_wakeups, 0u);
  EXPECT_EQ(result.overflow_wakeups, 0u);
}

TEST(PbplSystem, KalmanPredictorRunsEndToEnd) {
  auto config = test_config();
  config.predictor = PredictorKind::Kalman;
  const auto traces = uniform_producers(3, 2000.0, seconds(1));
  const PbplResult result = run_pbpl(traces, seconds(1), config);
  EXPECT_EQ(result.items, traces[0].size() * 3);
}

TEST(PbplSystem, SlotSizeDefaultsToLatencyBound) {
  auto config = test_config();
  config.slot_size = 0;
  config.max_latency = milliseconds(7);
  EXPECT_EQ(config.resolved_slot_size(), milliseconds(7));
}

TEST(PbplSystem, RoundRobinCoreAssignment) {
  sim::Simulator sim;
  auto config = test_config();
  config.cores = 3;
  PbplSystem system(sim, 7, config);
  EXPECT_EQ(system.core_count(), 3u);
  EXPECT_EQ(system.manager(0).consumer_count(), 3u);  // consumers 0, 3, 6
  EXPECT_EQ(system.manager(1).consumer_count(), 2u);
  EXPECT_EQ(system.manager(2).consumer_count(), 2u);
}

}  // namespace
}  // namespace pcpc::core
