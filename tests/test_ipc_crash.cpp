// Kill-chaos harness for the pcpc::ipc cross-process host.
//
// Forks REAL producer processes against a consumer in the test process
// and SIGKILLs/SIGSTOPs them at seeded protocol points (after-claim,
// mid-publish, after-publish — drawn from the same FaultInjector streams
// as every other chaos suite).  The properties are the channel's whole
// reason to exist:
//
//   - conservation: admitted tickets == consumed + reclaimed, exactly,
//     no matter where producers die (the ticket word is the ground truth
//     the attempt-level counters are then bounded against);
//   - no wedge: the consumer always finishes draining within a deadline
//     after the last producer dies — dead leases and holes are reclaimed,
//     never waited on forever;
//   - SIGSTOP is not death: a suspended producer's lease is honored (no
//     reclaim) and its publish completes after SIGCONT;
//   - paid-wakeup exactness: the obs ledger's paid total equals the
//     channel's futex-wake counter identically;
//   - graceful degradation: a producer facing a dead consumer gets
//     kConsumerDead from bounded retry, not a hang.
//
// Fork-based: runs under ASan/UBSan; skipped under TSan, whose runtime
// does not survive fork-without-exec in multithreaded images.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/ipc/channel.hpp"
#include "pcpc/obs/obs.hpp"

#if defined(__SANITIZE_THREAD__)
#define PCPC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCPC_TSAN 1
#endif
#endif
#ifndef PCPC_TSAN
#define PCPC_TSAN 0
#endif

#define PCPC_SKIP_UNDER_TSAN()                                              \
  do {                                                                      \
    if (PCPC_TSAN) GTEST_SKIP() << "fork-based harness incompatible with TSan"; \
  } while (0)

namespace pcpc::ipc {
namespace {

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return "/pcpc_" + std::string(tag) + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::uint64_t tag_item(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 32) | seq;
}

ChannelConfig chaos_config() {
  ChannelConfig cfg;
  cfg.capacity = 256;
  cfg.lease_ns = 2'000'000;            // 2 ms hole aging
  cfg.heartbeat_period_ns = 500'000;   // 0.5 ms Delta
  cfg.heartbeat_timeout_ns = 4'000'000;
  cfg.wake_threshold = 8;
  return cfg;
}

ProducerConfig child_producer_config() {
  ProducerConfig cfg;
  cfg.attach.attempts = 100;
  cfg.attach.initial_backoff_ms = 1;
  cfg.attach.max_backoff_ms = 20;
  cfg.full_retries = 1000;
  return cfg;
}

/// Child body: attach, push `n_items` tagged values, self-SIGKILL at the
/// injector-chosen crash point when the seed says so.  Children must
/// _exit — never return into gtest.
[[noreturn]] void chaos_producer_child(const std::string& name, std::uint64_t child_idx,
                                       std::uint64_t seed, std::uint64_t n_items) {
  fault::FaultConfig fault_cfg;
  fault_cfg.seed = seed * 1000003 + child_idx;
  fault_cfg.kill_probability = 0.001;  // ~45% of children die per run
  fault::FaultInjector injector(fault_cfg);

  auto producer = Producer::attach(name, child_producer_config());
  if (!producer.has_value()) _exit(2);
  for (std::uint64_t seq = 0; seq < n_items; ++seq) {
    const int crash_point = injector.process_crash_point();
    if (crash_point >= 0) {
      producer->set_crash_hook([crash_point](CrashPoint point) {
        if (static_cast<int>(point) == crash_point) ::kill(::getpid(), SIGKILL);
      });
    } else {
      producer->set_crash_hook(nullptr);
    }
    producer->push(tag_item(child_idx, seq));
  }
  producer->detach();
  _exit(0);
}

struct ChaosOutcome {
  std::size_t killed = 0;
  std::size_t clean = 0;
  std::uint64_t consumed_items = 0;
  ConservationReport report;
};

/// One seeded schedule: 3 forked producers vs the in-test consumer.
/// Fills *outcome; fails the test on conservation/order violations.
void run_chaos_schedule(std::uint64_t seed, ChaosOutcome* outcome) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kItems = 600;
  const std::string name = unique_name("chaos");

  auto consumer = Consumer::create(name, chaos_config());
  ASSERT_TRUE(consumer.has_value());

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < kProducers; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) chaos_producer_child(name, i, seed, kItems);
    ASSERT_GT(pid, 0) << "fork failed";
    children.push_back(pid);
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::size_t order_violations = 0;
  auto on_item = [&](std::uint64_t value) {
    const std::uint64_t idx = value >> 32;
    const std::uint64_t seq = value & 0xffffffffULL;
    if (idx >= kProducers || seq < next_seq[idx]) {
      ++order_violations;
    } else {
      next_seq[idx] = seq + 1;  // gaps allowed (drops); regressions are not
    }
    ++outcome->consumed_items;
  };

  std::size_t live = children.size();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (true) {
    consumer->drain(on_item);
    consumer->reap();
    for (pid_t& pid : children) {
      if (pid == 0) continue;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ++outcome->killed;
        if (WIFEXITED(status)) {
          EXPECT_EQ(WEXITSTATUS(status), 0) << "producer child failed to attach";
          ++outcome->clean;
        }
        pid = 0;
        --live;
      }
    }
    if (live == 0) {
      consumer->drain(on_item);
      consumer->reap();
      const ConservationReport rep = consumer->report();
      if (rep.residue == 0) break;
    }
    consumer->wait(/*timeout_ns=*/500'000);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "consumer wedged: residue=" << consumer->report().residue
        << " after all producers exited (seed " << seed << ")";
  }

  outcome->report = consumer->report();
  EXPECT_EQ(order_violations, 0u) << "seed " << seed;

  // The conservation identity, exact: every admitted ticket resolved.
  EXPECT_EQ(outcome->report.admitted,
            outcome->report.consumed + outcome->report.reclaimed)
      << "seed " << seed;
  // Published items are never reclaimed, so producer-acked pushes bound
  // consumed from below; a producer dying between its publish CAS and
  // its counter bump accounts for at most one item per kill.
  EXPECT_LE(outcome->report.acked_pushes, outcome->report.consumed)
      << "seed " << seed;
  EXPECT_LE(outcome->report.consumed,
            outcome->report.acked_pushes + outcome->killed)
      << "seed " << seed;
  // Each producer holds at most one unresolved ticket when it dies.
  EXPECT_LE(outcome->report.reclaimed, outcome->killed) << "seed " << seed;
  EXPECT_EQ(outcome->consumed_items, outcome->report.consumed) << "seed " << seed;
}

TEST(IpcCrash, KillChaosConservationAcrossSeededSchedules) {
  PCPC_SKIP_UNDER_TSAN();
  constexpr std::uint64_t kSchedules = 100;
  std::size_t total_killed = 0;
  std::size_t total_clean = 0;
  std::uint64_t total_reclaimed = 0;
  for (std::uint64_t seed = 1; seed <= kSchedules; ++seed) {
    if (testing::Test::HasFatalFailure()) break;
    ChaosOutcome outcome;
    run_chaos_schedule(seed, &outcome);
    total_killed += outcome.killed;
    total_clean += outcome.clean;
    total_reclaimed += outcome.report.reclaimed;
  }
  // The schedule mix must actually exercise both fates, or the suite is
  // testing nothing: with kill_probability 0.001 over 600 pushes about
  // half the children die, spread across all three crash points.
  EXPECT_GE(total_killed, kSchedules / 2);
  EXPECT_GE(total_clean, kSchedules / 2);
  // And some deaths must have left work to reclaim (holes/leases).
  EXPECT_GT(total_reclaimed, 0u);
}

TEST(IpcCrash, SigstopHolderKeepsLeaseUntilCont) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("stop");
  ChannelConfig cfg = chaos_config();
  auto consumer = Consumer::create(name, cfg);
  ASSERT_TRUE(consumer.has_value());

  const pid_t pid = ::fork();
  if (pid == 0) {
    auto producer = Producer::attach(name, child_producer_config());
    if (!producer.has_value()) _exit(2);
    // Self-suspend while holding the write lease of item 5 (the sixth
    // publish): the stopped process is alive, so the consumer must
    // honor the lease while items 0..4 drain normally.
    producer->set_crash_hook([](CrashPoint point) {
      static int publishes = 0;
      if (point == CrashPoint::kMidPublish && ++publishes == 6) ::raise(SIGSTOP);
    });
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
      producer->push(tag_item(0, seq));
    }
    producer->detach();
    _exit(0);
  }
  ASSERT_GT(pid, 0);

  // Consume items 0..4, then observe the held lease for several lease
  // periods: head must block WITHOUT reclaiming (the holder is alive).
  std::uint64_t consumed = 0;
  const auto stall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumed < 5) {
    consumed += consumer->drain([](std::uint64_t) {});
    consumer->wait(500'000);
    ASSERT_LT(std::chrono::steady_clock::now(), stall_deadline);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // >> lease_ns
  consumer->drain([](std::uint64_t) {});
  consumer->reap();
  EXPECT_EQ(consumer->report().reclaimed, 0u)
      << "reclaimed a SIGSTOPped (alive) producer's lease";

  ::kill(pid, SIGCONT);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumed < 10) {
    consumed += consumer->drain([](std::uint64_t) {});
    consumer->wait(500'000);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "publish did not resume after SIGCONT";
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const ConservationReport rep = consumer->report();
  EXPECT_EQ(rep.admitted, rep.consumed);
  EXPECT_EQ(rep.reclaimed, 0u);
}

TEST(IpcCrash, PaidWakeupsMatchFutexWakeCountExactly) {
  PCPC_SKIP_UNDER_TSAN();
  if (!kFutexSupported) GTEST_SKIP() << "no futex on this platform";
  const std::string name = unique_name("futex");
  ChannelConfig cfg = chaos_config();
  cfg.wake_threshold = 1;  // every published item may ring
  auto consumer = Consumer::create(name, cfg);
  ASSERT_TRUE(consumer.has_value());

  obs::Session session;
  constexpr std::uint64_t kItems = 5000;
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto producer = Producer::attach(name, child_producer_config());
    if (!producer.has_value()) _exit(2);
    for (std::uint64_t seq = 0; seq < kItems; ++seq) {
      while (producer->push(seq) != PushResult::kOk) {
      }
    }
    producer->detach();
    _exit(0);
  }
  ASSERT_GT(pid, 0);

  std::uint64_t consumed = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (consumed < kItems) {
    consumed += consumer->drain([](std::uint64_t) {});
    if (consumed < kItems) consumer->wait(2'000'000);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  const ConservationReport rep = consumer->report();
  EXPECT_EQ(rep.consumed, kItems);
  // The exactness claim: every paid wake the ledger attributes is one
  // producer-counted futex_wake, one-to-one, not approximately.
  EXPECT_EQ(session.ledger().paid_total(), rep.futex_wakes);
  EXPECT_GT(rep.futex_wakes, 0u);
}

TEST(IpcCrash, ProducerDegradesWhenConsumerDies) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("deadcons");
  // The child owns the consumer; tell the parent the pid so it can kill it.
  const pid_t pid = ::fork();
  if (pid == 0) {
    ChannelConfig cfg = chaos_config();
    auto consumer = Consumer::create(name, cfg);
    if (!consumer.has_value()) _exit(2);
    for (;;) {
      consumer->drain([](std::uint64_t) {});
      consumer->wait(1'000'000);
    }
  }
  ASSERT_GT(pid, 0);

  ProducerConfig pcfg = child_producer_config();
  pcfg.full_retries = 50;
  std::string error;
  std::optional<Producer> producer;
  const auto attach_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!producer.has_value()) {
    producer = Producer::attach(name, pcfg, &error);
    ASSERT_LT(std::chrono::steady_clock::now(), attach_deadline) << error;
  }
  EXPECT_EQ(producer->push(1), PushResult::kOk);

  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  // Bounded degradation: within the heartbeat timeout the registry
  // proves the consumer dead and pushes fail fast instead of hanging.
  const auto t0 = std::chrono::steady_clock::now();
  PushResult last = PushResult::kOk;
  const auto degrade_deadline = t0 + std::chrono::seconds(10);
  while (last != PushResult::kConsumerDead) {
    last = producer->push(2);
    ASSERT_LT(std::chrono::steady_clock::now(), degrade_deadline)
        << "push never surfaced kConsumerDead; last=" << push_result_name(last);
  }
  // Subsequent pushes fail immediately (no full retry loop burned).
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_EQ(producer->push(3), PushResult::kConsumerDead);
  EXPECT_LT(std::chrono::steady_clock::now() - t1, std::chrono::seconds(1));

  producer->detach();
  ::shm_unlink(name.c_str());  // the killed child never unlinked
}

TEST(IpcCrash, RegistrySlotReusableAfterReap) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("reuse");
  auto consumer = Consumer::create(name, chaos_config());
  ASSERT_TRUE(consumer.has_value());

  // Kill a producer mid-publish so it dies holding a lease.
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto producer = Producer::attach(name, child_producer_config());
    if (!producer.has_value()) _exit(2);
    producer->push(1);
    producer->set_crash_hook([](CrashPoint point) {
      if (point == CrashPoint::kMidPublish) ::kill(::getpid(), SIGKILL);
    });
    producer->push(2);
    _exit(3);  // unreachable
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Recovery: drain + reap until the lease is reclaimed AND the reaper
  // has retired the dead registry entry (head-of-ring reclaim can beat
  // the heartbeat-staleness bound; the registry slot frees only via reap).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumer->report().residue != 0 || consumer->report().peers_reaped == 0) {
    consumer->drain([](std::uint64_t) {});
    consumer->reap();
    consumer->wait(500'000);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "lease never reclaimed";
  }
  ConservationReport rep = consumer->report();
  EXPECT_EQ(rep.consumed, 1u);
  EXPECT_EQ(rep.reclaimed, 1u);
  EXPECT_EQ(rep.peers_reaped, 1u);

  // The freed registry slot must accept a new producer, and the channel
  // must keep flowing.
  auto producer = Producer::attach(name, child_producer_config());
  ASSERT_TRUE(producer.has_value());
  EXPECT_EQ(producer->push(7), PushResult::kOk);
  std::uint64_t got = 0;
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumer->drain([&](std::uint64_t v) { got = v; }) == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), drain_deadline);
  }
  EXPECT_EQ(got, 7u);
  rep = consumer->report();
  EXPECT_EQ(rep.admitted, rep.consumed + rep.reclaimed);
}

// ---------------------------------------------------------------------------
// Varlen payload plane under kill chaos
// ---------------------------------------------------------------------------

ChannelConfig varlen_chaos_config() {
  ChannelConfig cfg = chaos_config();
  cfg.payload_ring_bytes = 64u << 10;
  cfg.payload_max_record = 4096;
  return cfg;
}

/// Deterministic record body for (producer, seq): the tag in the first
/// 8 bytes, then a keyed byte pattern — so the consumer can verify
/// no-tear per record without any side channel.
std::uint32_t varlen_size_of(std::uint64_t child_idx, std::uint64_t seq) {
  return 8 + static_cast<std::uint32_t>((seq * 2654435761ull + child_idx * 97) % 2040);
}

void fill_varlen_payload(std::vector<std::byte>& buf, std::uint64_t child_idx,
                         std::uint64_t seq) {
  const std::uint32_t size = varlen_size_of(child_idx, seq);
  const std::uint64_t key = tag_item(child_idx, seq);
  buf.resize(size);
  std::memcpy(buf.data(), &key, sizeof(key));
  for (std::uint32_t i = 8; i < size; ++i) {
    buf[i] = static_cast<std::byte>((key * 131 + i) & 0xff);
  }
}

[[noreturn]] void varlen_producer_child(const std::string& name, std::uint64_t child_idx,
                                        std::uint64_t seed, std::uint64_t n_items) {
  fault::FaultConfig fault_cfg;
  fault_cfg.seed = seed * 7001 + child_idx;
  fault_cfg.kill_probability = 0.002;
  fault::FaultInjector injector(fault_cfg);

  auto producer = Producer::attach(name, child_producer_config());
  if (!producer.has_value()) _exit(2);
  std::vector<std::byte> buf;
  for (std::uint64_t seq = 0; seq < n_items; ++seq) {
    const int crash_point = injector.process_crash_point();
    if (crash_point >= 0) {
      // The injector draws over the three control-path points; fold the
      // two varlen-only points (kAfterReserve=3, kAfterCommit=4) in so
      // deaths land on every step of the record protocol too.
      producer->set_crash_hook([crash_point](CrashPoint point) {
        const int p = static_cast<int>(point);
        if (p == crash_point || p == crash_point + 3) ::kill(::getpid(), SIGKILL);
      });
    } else {
      producer->set_crash_hook(nullptr);
    }
    fill_varlen_payload(buf, child_idx, seq);
    producer->push_record(std::span<const std::byte>(buf.data(), buf.size()));
  }
  producer->detach();
  _exit(0);
}

struct VarlenChaosOutcome {
  std::size_t killed = 0;
  std::size_t clean = 0;
  std::uint64_t delivered = 0;
  std::uint64_t tears = 0;
  ConservationReport report;
};

void run_varlen_chaos_schedule(std::uint64_t seed, VarlenChaosOutcome* outcome) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kItems = 400;
  const std::string name = unique_name("varchaos");

  auto consumer = Consumer::create(name, varlen_chaos_config());
  ASSERT_TRUE(consumer.has_value());

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < kProducers; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) varlen_producer_child(name, i, seed, kItems);
    ASSERT_GT(pid, 0) << "fork failed";
    children.push_back(pid);
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::size_t order_violations = 0;
  auto on_record = [&](std::span<const std::byte> payload) {
    ++outcome->delivered;
    if (payload.size() < 8) {
      ++outcome->tears;
      return;
    }
    std::uint64_t key = 0;
    std::memcpy(&key, payload.data(), sizeof(key));
    const std::uint64_t idx = key >> 32;
    const std::uint64_t seq = key & 0xffffffffULL;
    if (idx >= kProducers || payload.size() != varlen_size_of(idx, seq)) {
      ++outcome->tears;
      return;
    }
    for (std::size_t i = 8; i < payload.size(); ++i) {
      if (payload[i] != static_cast<std::byte>((key * 131 + i) & 0xff)) {
        ++outcome->tears;
        return;
      }
    }
    if (seq < next_seq[idx]) {
      ++order_violations;
    } else {
      next_seq[idx] = seq + 1;  // gaps allowed (drops/losses); regressions not
    }
  };

  std::size_t live = children.size();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (true) {
    consumer->drain_records(on_record);
    consumer->reap();
    for (pid_t& pid : children) {
      if (pid == 0) continue;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ++outcome->killed;
        if (WIFEXITED(status)) {
          EXPECT_EQ(WEXITSTATUS(status), 0) << "producer child failed to attach";
          ++outcome->clean;
        }
        pid = 0;
        --live;
      }
    }
    if (live == 0) {
      consumer->drain_records(on_record);
      consumer->reap();
      const ConservationReport rep = consumer->report();
      if (rep.residue == 0 && rep.var_residue_bytes == 0) break;
    }
    consumer->wait(/*timeout_ns=*/500'000);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "consumer wedged: residue=" << consumer->report().residue
        << " var_residue_bytes=" << consumer->report().var_residue_bytes
        << " after all producers exited (seed " << seed << ")";
  }

  outcome->report = consumer->report();
  const ConservationReport& rep = outcome->report;
  EXPECT_EQ(order_violations, 0u) << "seed " << seed;
  EXPECT_EQ(outcome->tears, 0u) << "seed " << seed;

  // Ticket conservation still exact on the control plane.
  EXPECT_EQ(rep.admitted, rep.consumed + rep.reclaimed) << "seed " << seed;
  // Byte conservation, exact: every byte any producer ever claimed in a
  // payload ring resolved to consumed, reclaimed, or wrap padding.
  EXPECT_EQ(rep.var_admitted_bytes, rep.var_consumed_bytes + rep.var_reclaimed_bytes +
                                        rep.var_padding_bytes)
      << "seed " << seed;
  EXPECT_EQ(rep.var_residue_bytes, 0u) << "seed " << seed;
  // Every drained control item was an announcement: it either delivered
  // its record or counted a loss (record died with its producer).
  EXPECT_EQ(rep.var_delivered_records + rep.var_lost_records, rep.consumed)
      << "seed " << seed;
  EXPECT_EQ(outcome->delivered, rep.var_delivered_records) << "seed " << seed;
  if (outcome->killed == 0) {
    EXPECT_EQ(rep.var_lost_records, 0u) << "seed " << seed;
  }
}

TEST(IpcCrash, VarlenKillChaosByteConservationAcrossSeededSchedules) {
  PCPC_SKIP_UNDER_TSAN();
  constexpr std::uint64_t kSchedules = 60;
  std::size_t total_killed = 0;
  std::size_t total_clean = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_reclaimed_bytes = 0;
  for (std::uint64_t seed = 1; seed <= kSchedules; ++seed) {
    if (testing::Test::HasFatalFailure()) break;
    VarlenChaosOutcome outcome;
    run_varlen_chaos_schedule(seed, &outcome);
    total_killed += outcome.killed;
    total_clean += outcome.clean;
    total_delivered += outcome.delivered;
    total_reclaimed_bytes += outcome.report.var_reclaimed_bytes;
  }
  // The mix must exercise both fates and actually reclaim record bytes,
  // or the byte-granular recovery path went untested.
  EXPECT_GE(total_killed, kSchedules / 3);
  EXPECT_GE(total_clean, kSchedules / 3);
  EXPECT_GT(total_delivered, 0u);
  EXPECT_GT(total_reclaimed_bytes, 0u);
}

TEST(IpcCrash, VarlenSlotReuseAfterCommitCrashKeepsCorrespondence) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("varreuse");
  auto consumer = Consumer::create(name, varlen_chaos_config());
  ASSERT_TRUE(consumer.has_value());

  // Child A: 3 announced records, then dies with a 4th committed but
  // never announced (the worst case for record<->announcement skew).
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto producer = Producer::attach(name, child_producer_config());
    if (!producer.has_value()) _exit(2);
    std::vector<std::byte> buf;
    for (std::uint64_t seq = 0; seq < 3; ++seq) {
      fill_varlen_payload(buf, 0, seq);
      producer->push_record(std::span<const std::byte>(buf.data(), buf.size()));
    }
    producer->set_crash_hook([](CrashPoint point) {
      if (point == CrashPoint::kAfterCommit) ::kill(::getpid(), SIGKILL);
    });
    fill_varlen_payload(buf, 0, 3);
    producer->push_record(std::span<const std::byte>(buf.data(), buf.size()));
    _exit(3);  // unreachable
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Recover: the 3 announced records must deliver intact, the orphan must
  // be reclaimed (bytes, not a loss — it was never announced), and the
  // registry slot must free.
  std::uint64_t delivered = 0;
  std::uint64_t bad = 0;
  auto on_record = [&](std::span<const std::byte> payload) {
    std::uint64_t key = 0;
    if (payload.size() >= 8) std::memcpy(&key, payload.data(), sizeof(key));
    if (payload.size() != varlen_size_of(key >> 32, key & 0xffffffffULL)) ++bad;
    ++delivered;
  };
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumer->report().var_residue_bytes != 0 ||
         consumer->report().peers_reaped == 0) {
    consumer->drain_records(on_record);
    consumer->reap();
    consumer->wait(500'000);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "orphan never resolved";
  }
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(bad, 0u);
  ConservationReport rep = consumer->report();
  EXPECT_EQ(rep.var_lost_records, 0u);
  EXPECT_GT(rep.var_reclaimed_bytes, 0u);

  // Slot reuse: a successor on the same registry index must interleave
  // cleanly with the predecessor's resolved ring.
  auto producer = Producer::attach(name, child_producer_config());
  ASSERT_TRUE(producer.has_value());
  std::vector<std::byte> buf;
  for (std::uint64_t seq = 10; seq < 12; ++seq) {
    fill_varlen_payload(buf, 0, seq);
    ASSERT_EQ(producer->push_record(std::span<const std::byte>(buf.data(), buf.size())),
              PushResult::kOk);
  }
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (delivered < 5) {
    consumer->drain_records(on_record);
    ASSERT_LT(std::chrono::steady_clock::now(), drain_deadline);
  }
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(bad, 0u);
  rep = consumer->report();
  EXPECT_EQ(rep.var_admitted_bytes - rep.var_residue_bytes,
            rep.var_consumed_bytes + rep.var_reclaimed_bytes + rep.var_padding_bytes);
}

TEST(IpcCrash, VarlenAnnouncedUndrainedRecordCountsAsLoss) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("varloss");
  auto consumer = Consumer::create(name, varlen_chaos_config());
  ASSERT_TRUE(consumer.has_value());

  // Child publishes record 0 fully, then dies right after record 1's
  // announcement (control publish done, producer counters not bumped).
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto producer = Producer::attach(name, child_producer_config());
    if (!producer.has_value()) _exit(2);
    std::vector<std::byte> buf;
    fill_varlen_payload(buf, 0, 0);
    producer->push_record(std::span<const std::byte>(buf.data(), buf.size()));
    producer->set_crash_hook([](CrashPoint point) {
      if (point == CrashPoint::kAfterPublish) ::kill(::getpid(), SIGKILL);
    });
    fill_varlen_payload(buf, 0, 1);
    producer->push_record(std::span<const std::byte>(buf.data(), buf.size()));
    _exit(3);  // unreachable
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Reap BEFORE draining: the dead producer's ring is resolved first, so
  // record 1's dangling announcement must resolve as a counted loss, and
  // record 0 (announced earlier, also resolved by the reaper) too —
  // announced-but-undrained records do not survive their producer.
  const auto reap_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumer->report().peers_reaped == 0) {
    consumer->reap();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_LT(std::chrono::steady_clock::now(), reap_deadline) << "never reaped";
  }
  std::uint64_t delivered = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumer->report().residue != 0 ||
         consumer->report().var_residue_bytes != 0) {
    consumer->drain_records([&](std::span<const std::byte>) { ++delivered; });
    consumer->reap();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  const ConservationReport rep = consumer->report();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(rep.var_delivered_records, 0u);
  EXPECT_EQ(rep.var_lost_records, rep.consumed);
  EXPECT_GE(rep.var_lost_records, 1u);
  EXPECT_EQ(rep.var_admitted_bytes,
            rep.var_consumed_bytes + rep.var_reclaimed_bytes + rep.var_padding_bytes);
}

TEST(IpcCrash, AttachBacksOffUntilCreationAndGivesUpCleanly) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("attach");

  // Attach launched BEFORE the segment exists must succeed once the
  // consumer shows up within the backoff budget.
  std::optional<Consumer> consumer;
  std::thread creator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    consumer = Consumer::create(name, chaos_config());
  });
  ProducerConfig pcfg;
  pcfg.attach.attempts = 50;
  pcfg.attach.initial_backoff_ms = 2;
  pcfg.attach.max_backoff_ms = 20;
  std::string error;
  auto producer = Producer::attach(name, pcfg, &error);
  creator.join();
  ASSERT_TRUE(producer.has_value()) << error;
  ASSERT_TRUE(consumer.has_value());
  EXPECT_EQ(producer->push(42), PushResult::kOk);

  // A name nobody ever creates fails after bounded attempts, with the
  // reason in the error string (the CLI logs this before falling back).
  ProducerConfig missing;
  missing.attach.attempts = 3;
  missing.attach.initial_backoff_ms = 1;
  missing.attach.max_backoff_ms = 2;
  error.clear();
  const auto t0 = std::chrono::steady_clock::now();
  auto nope = Producer::attach(unique_name("never"), missing, &error);
  EXPECT_FALSE(nope.has_value());
  EXPECT_NE(error.find("gave up"), std::string::npos) << error;
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

TEST(IpcCrash, AttachRejectsAbiMismatch) {
  PCPC_SKIP_UNDER_TSAN();
  const std::string name = unique_name("abi");
  auto consumer = Consumer::create(name, chaos_config());
  ASSERT_TRUE(consumer.has_value());
  // Corrupt the guard in place: a producer built against a different
  // layout must refuse to attach rather than scribble on the ring.
  auto* hdr = const_cast<ChannelHeader*>(&consumer->header());
  hdr->abi_guard ^= 0xdeadbeef;
  std::string error;
  ProducerConfig pcfg;
  pcfg.attach.attempts = 2;
  pcfg.attach.initial_backoff_ms = 1;
  auto producer = Producer::attach(name, pcfg, &error);
  EXPECT_FALSE(producer.has_value());
  EXPECT_NE(error.find("ABI"), std::string::npos) << error;
}

}  // namespace
}  // namespace pcpc::ipc
