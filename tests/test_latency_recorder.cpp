// Tests for the latency recorder (moments + tail percentiles).
#include <gtest/gtest.h>

#include "pcpc/common/latency_recorder.hpp"

namespace pcpc {
namespace {

TEST(LatencyRecorder, EmptyDefaults) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.max(), 0.0);
  EXPECT_EQ(r.min(), 0.0);
}

TEST(LatencyRecorder, MomentsMatchOnlineStats) {
  LatencyRecorder r;
  for (double v : {0.010, 0.020, 0.030}) r.add(v);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_NEAR(r.mean(), 0.020, 1e-12);
  EXPECT_NEAR(r.min(), 0.010, 1e-12);
  EXPECT_NEAR(r.max(), 0.030, 1e-12);
}

TEST(LatencyRecorder, PercentilesOfUniformRamp) {
  LatencyRecorder r;
  for (int i = 0; i < 1000; ++i) r.add(i * 0.001);  // 0 .. 0.999 s
  EXPECT_NEAR(r.p50(), 0.500, 0.01);
  EXPECT_NEAR(r.p95(), 0.950, 0.01);
  EXPECT_NEAR(r.p99(), 0.990, 0.01);
}

TEST(LatencyRecorder, TailSeparatesFromMean) {
  // 99% of items at 1 ms, 1% at 500 ms: the mean hides the tail, p99
  // exposes it.
  LatencyRecorder r;
  for (int i = 0; i < 990; ++i) r.add(0.001);
  for (int i = 0; i < 10; ++i) r.add(0.500);
  EXPECT_LT(r.mean(), 0.010);
  EXPECT_GT(r.p99(), 0.40);
}

TEST(LatencyRecorder, MergeIsExact) {
  LatencyRecorder a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double v = i * 0.002;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.p95(), all.p95(), 1e-12);
  EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(LatencyRecorder, QuantilesMonotone) {
  LatencyRecorder r;
  for (int i = 0; i < 100; ++i) r.add(0.001 * (i % 17));
  EXPECT_LE(r.p50(), r.p95());
  EXPECT_LE(r.p95(), r.p99());
}

TEST(LatencyRecorder, SubMillisecondResolution) {
  // Log-spaced bins give ~0.9% relative resolution at every scale: a
  // population of 50 µs latencies with a 900 µs tail must keep the two
  // modes apart — a linear [0, 10 s] grid would collapse both into bin 0.
  LatencyRecorder r;
  for (int i = 0; i < 990; ++i) r.add(50e-6);
  for (int i = 0; i < 10; ++i) r.add(900e-6);
  EXPECT_NEAR(r.p50(), 50e-6, 5e-6);
  EXPECT_NEAR(r.p99(), 900e-6, 90e-6);
  EXPECT_GT(r.p99(), 10.0 * r.p50());
}

TEST(LatencyRecorder, RelativeErrorBoundedAcrossScales) {
  // One sample per decade from 1 µs to 1 s: each quantile must land
  // within a few percent of the exact sample it names.
  for (const double v : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
    LatencyRecorder r;
    for (int i = 0; i < 100; ++i) r.add(v);
    EXPECT_NEAR(r.p50() / v, 1.0, 0.03) << "scale " << v;
    EXPECT_NEAR(r.p99() / v, 1.0, 0.03) << "scale " << v;
  }
}

TEST(LatencyRecorder, MergePreservesSubMillisecondTail) {
  LatencyRecorder fast, slow, all;
  for (int i = 0; i < 500; ++i) {
    fast.add(20e-6);
    slow.add(400e-6);
    all.add(20e-6);
    all.add(400e-6);
  }
  fast.merge(slow);
  EXPECT_EQ(fast.count(), all.count());
  EXPECT_NEAR(fast.p50(), all.p50(), 1e-9);
  EXPECT_NEAR(fast.p99(), all.p99(), 1e-9);
  EXPECT_NEAR(fast.p99(), 400e-6, 40e-6);
}

}  // namespace
}  // namespace pcpc
