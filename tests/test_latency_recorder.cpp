// Tests for the latency recorder (moments + tail percentiles).
#include <gtest/gtest.h>

#include "pcpc/common/latency_recorder.hpp"

namespace pcpc {
namespace {

TEST(LatencyRecorder, EmptyDefaults) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.max(), 0.0);
  EXPECT_EQ(r.min(), 0.0);
}

TEST(LatencyRecorder, MomentsMatchOnlineStats) {
  LatencyRecorder r;
  for (double v : {0.010, 0.020, 0.030}) r.add(v);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_NEAR(r.mean(), 0.020, 1e-12);
  EXPECT_NEAR(r.min(), 0.010, 1e-12);
  EXPECT_NEAR(r.max(), 0.030, 1e-12);
}

TEST(LatencyRecorder, PercentilesOfUniformRamp) {
  LatencyRecorder r;
  for (int i = 0; i < 1000; ++i) r.add(i * 0.001);  // 0 .. 0.999 s
  EXPECT_NEAR(r.p50(), 0.500, 0.01);
  EXPECT_NEAR(r.p95(), 0.950, 0.01);
  EXPECT_NEAR(r.p99(), 0.990, 0.01);
}

TEST(LatencyRecorder, TailSeparatesFromMean) {
  // 99% of items at 1 ms, 1% at 500 ms: the mean hides the tail, p99
  // exposes it.
  LatencyRecorder r;
  for (int i = 0; i < 990; ++i) r.add(0.001);
  for (int i = 0; i < 10; ++i) r.add(0.500);
  EXPECT_LT(r.mean(), 0.010);
  EXPECT_GT(r.p99(), 0.40);
}

TEST(LatencyRecorder, MergeIsExact) {
  LatencyRecorder a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double v = i * 0.002;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.p95(), all.p95(), 1e-12);
  EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(LatencyRecorder, QuantilesMonotone) {
  LatencyRecorder r;
  for (int i = 0; i < 100; ++i) r.add(0.001 * (i % 17));
  EXPECT_LE(r.p50(), r.p95());
  EXPECT_LE(r.p95(), r.p99());
}

}  // namespace
}  // namespace pcpc
