// Tests for the adaptive latency guard (Section VIII future-work
// instantiation).
#include <gtest/gtest.h>

#include "pcpc/core/latency_guard.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::core {
namespace {

TEST(LatencyGuard, StartsAtFullScale) {
  const LatencyGuard guard(milliseconds(10));
  EXPECT_DOUBLE_EQ(guard.horizon_scale(), 1.0);
  EXPECT_EQ(guard.violations(), 0u);
}

TEST(LatencyGuard, ViolationShrinksScale) {
  LatencyGuard guard(milliseconds(10), /*shrink=*/0.5);
  guard.observe(milliseconds(15));
  guard.end_batch();
  EXPECT_DOUBLE_EQ(guard.horizon_scale(), 0.5);
  EXPECT_EQ(guard.violations(), 1u);
  EXPECT_EQ(guard.violated_batches(), 1u);
}

TEST(LatencyGuard, CleanBatchesRecoverSlowly) {
  LatencyGuard guard(milliseconds(10), 0.5, /*grow=*/1.05);
  guard.observe(milliseconds(15));
  guard.end_batch();
  const double after_violation = guard.horizon_scale();
  for (int i = 0; i < 3; ++i) {
    guard.observe(milliseconds(2));
    guard.end_batch();
  }
  EXPECT_GT(guard.horizon_scale(), after_violation);
  EXPECT_LT(guard.horizon_scale(), 1.0);
}

TEST(LatencyGuard, ScaleIsClampedBelow) {
  LatencyGuard guard(milliseconds(10), 0.5, 1.05, /*min_scale=*/0.25);
  for (int i = 0; i < 10; ++i) {
    guard.observe(milliseconds(100));
    guard.end_batch();
  }
  EXPECT_DOUBLE_EQ(guard.horizon_scale(), 0.25);
}

TEST(LatencyGuard, ScaleIsClampedAtOne) {
  LatencyGuard guard(milliseconds(10));
  for (int i = 0; i < 100; ++i) {
    guard.observe(milliseconds(1));
    guard.end_batch();
  }
  EXPECT_DOUBLE_EQ(guard.horizon_scale(), 1.0);
}

TEST(LatencyGuard, MultipleViolationsInOneBatchCountOnce) {
  LatencyGuard guard(milliseconds(10), 0.5);
  guard.observe(milliseconds(20));
  guard.observe(milliseconds(30));
  guard.end_batch();
  EXPECT_EQ(guard.violations(), 2u);
  EXPECT_EQ(guard.violated_batches(), 1u);
  EXPECT_DOUBLE_EQ(guard.horizon_scale(), 0.5);  // shrunk once, not twice
}

TEST(LatencyGuardDeath, RejectsBadParameters) {
  EXPECT_DEATH(LatencyGuard(0), "positive");
  EXPECT_DEATH(LatencyGuard(milliseconds(1), 1.5), "shrink");
  EXPECT_DEATH(LatencyGuard(milliseconds(1), 0.5, 0.9), "grow");
}

// End-to-end: the guard trades power (more wakeups) for a tail-latency
// profile that respects the bound far better than the open-loop system
// when the predictor is systematically wrong.
TEST(LatencyGuardIntegration, ReducesTailLatencyOnRateDrops) {
  // A square-wave producer: bursts of 2 kHz for 200 ms, then 200 ms of
  // silence — the moving average persistently overestimates during the
  // silences, so open-loop PBPL parks items far past their deadline.
  std::vector<SimTime> ts;
  for (SimTime window = 0; window < seconds(4); window += milliseconds(400)) {
    for (SimTime t = 0; t < milliseconds(200); t += microseconds(500)) {
      ts.push_back(window + t);
    }
  }
  const std::vector<trace::Trace> traces{trace::Trace(std::move(ts))};

  PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 100;  // big enough that overflow never forces a drain

  PbplConfig guarded = config;
  guarded.latency_guard = true;

  const PbplResult open_loop = run_pbpl(traces, seconds(4), config);
  const PbplResult closed_loop = run_pbpl(traces, seconds(4), guarded);

  EXPECT_EQ(open_loop.items, closed_loop.items);
  EXPECT_EQ(open_loop.latency_violations, 0u);  // guard off: not counted
  // The guard is reactive: the first violation of each kind still lands,
  // so the max is similar — but recurrence is suppressed, which shows up
  // as a lower mean latency bought with extra scheduled wakeups.
  EXPECT_LT(closed_loop.latency_s.mean(), 0.9 * open_loop.latency_s.mean());
  EXPECT_GT(closed_loop.scheduled_wakeups, open_loop.scheduled_wakeups);
  // And the guard's violation counter is live.
  EXPECT_GT(closed_loop.latency_violations, 0u);
}

TEST(LatencyGuardIntegration, NoEffectOnSteadyTraffic) {
  const auto trace = trace::uniform_trace(2000, microseconds(500));
  const std::vector<trace::Trace> traces{trace};
  PbplConfig config;
  config.cores = 1;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(50);
  config.base_buffer = 25;
  PbplConfig guarded = config;
  guarded.latency_guard = true;

  const PbplResult open_loop = run_pbpl(traces, seconds(1), config);
  const PbplResult closed_loop = run_pbpl(traces, seconds(1), guarded);
  EXPECT_EQ(closed_loop.items, open_loop.items);
  // Steady traffic never violates, so the guard stays at scale 1 and the
  // wakeup counts stay close.
  EXPECT_NEAR(static_cast<double>(closed_loop.scheduled_wakeups),
              static_cast<double>(open_loop.scheduled_wakeups),
              0.15 * static_cast<double>(open_loop.scheduled_wakeups) + 3.0);
}

}  // namespace
}  // namespace pcpc::core
