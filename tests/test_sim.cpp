// Tests for the discrete-event engine: event queue, simulator, replay.
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/sim/event_queue.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/sim/simulator.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(300, [&](SimTime) { order.push_back(3); });
  q.schedule(100, [&](SimTime) { order.push_back(1); });
  q.schedule(200, [&](SimTime) { order.push_back(2); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn(fired.time);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i](SimTime) { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPending) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(100, [&](SimTime) { fired = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // double cancel
}

TEST(EventQueue, CancelFiredIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1, [](SimTime) {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(10, [](SimTime) {});
  q.schedule(20, [](SimTime) {});
  EXPECT_EQ(q.next_time(), 10);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, NextTimeOnEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [](SimTime) {});
  q.schedule(2, [](SimTime) {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(1, [](SimTime) {});
  q.schedule(2, [](SimTime) {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(Simulator, AdvancesTimeMonotonically) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.at(50, [&](SimTime t) { times.push_back(t); });
  sim.at(10, [&](SimTime t) { times.push_back(t); });
  sim.after(30, [&](SimTime t) { times.push_back(t); });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 30, 50}));
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.dispatched(), 3u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void(SimTime)> chain = [&](SimTime) {
    if (++depth < 5) sim.after(10, chain);
  };
  sim.after(10, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&](SimTime) { ++fired; });
  sim.at(100, [&](SimTime) { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);  // clock advances to the bound
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.at(50, [&](SimTime) { fired = true; });
  sim.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(10, [&](SimTime) { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&](SimTime) { ++fired; });
  sim.at(2, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorDeath, SchedulingInThePastAborts) {
  Simulator sim;
  sim.at(100, [](SimTime) {});
  sim.run();
  EXPECT_DEATH(sim.at(50, [](SimTime) {}), "past");
}

TEST(Replay, DeliversAllEventsInOrder) {
  Simulator sim;
  const auto trace = trace::uniform_trace(100, microseconds(10));
  std::vector<SimTime> seen;
  replay(sim, trace.timestamps(), seconds(1), [&](SimTime t) { seen.push_back(t); });
  sim.run();
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], trace.at(i));
}

TEST(Replay, RespectsHorizon) {
  Simulator sim;
  const auto trace = trace::uniform_trace(100, milliseconds(1));  // up to 99ms
  int count = 0;
  replay(sim, trace.timestamps(), milliseconds(50), [&](SimTime) { ++count; });
  sim.run();
  EXPECT_EQ(count, 50);  // 0..49ms
}

TEST(Replay, OnePendingEventAtATime) {
  Simulator sim;
  const auto trace = trace::uniform_trace(1000, microseconds(1));
  replay(sim, trace.timestamps(), seconds(1), [](SimTime) {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.step();
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Replay, EmptyTraceIsFine) {
  Simulator sim;
  const trace::Trace empty;
  replay(sim, empty.timestamps(), seconds(1), [](SimTime) { FAIL(); });
  sim.run();
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(Replay, InterleavesWithOtherEvents) {
  Simulator sim;
  const auto trace = trace::uniform_trace(10, milliseconds(10));  // 0,10,...,90ms
  std::vector<std::pair<char, SimTime>> log;
  replay(sim, trace.timestamps(), seconds(1),
         [&](SimTime t) { log.push_back({'r', t}); });
  sim.at(milliseconds(35), [&](SimTime t) { log.push_back({'x', t}); });
  sim.run();
  ASSERT_EQ(log.size(), 11u);
  EXPECT_EQ(log[4].first, 'x');  // after 0,10,20,30 and before 40
}

}  // namespace
}  // namespace pcpc::sim
