// Randomized property tests: PBPL and the baselines must hold their
// global invariants on *any* workload and configuration, not just the
// calibrated ones.  Each seed generates a random workload (mixing NHPP,
// MMPP and silence), a random configuration, runs the system, and checks
// every invariant the design promises.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/trace/arrival_process.hpp"
#include "pcpc/trace/webserver_log.hpp"

namespace pcpc {
namespace {

struct FuzzCase {
  std::vector<trace::Trace> traces;
  core::PbplConfig config;
  SimDuration horizon = 0;
  std::size_t total_items = 0;
};

FuzzCase make_case(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fuzz;
  fuzz.horizon = milliseconds(500 + static_cast<long>(rng.next_below(1500)));

  const std::size_t pairs = 1 + rng.next_below(8);
  for (std::size_t i = 0; i < pairs; ++i) {
    Rng stream = rng.fork();
    const double style = rng.next_double();
    if (style < 0.2) {
      fuzz.traces.emplace_back();  // silent producer
    } else if (style < 0.6) {
      const trace::ConstantRate rate(rng.uniform(50.0, 8000.0));
      fuzz.traces.push_back(trace::sample_nhpp(rate, fuzz.horizon, stream));
    } else {
      trace::MmppParams mmpp;
      mmpp.low_rate_hz = rng.uniform(0.0, 500.0);
      mmpp.high_rate_hz = rng.uniform(2000.0, 20000.0);
      mmpp.mean_low_dwell = milliseconds(20 + static_cast<long>(rng.next_below(400)));
      mmpp.mean_high_dwell = milliseconds(5 + static_cast<long>(rng.next_below(100)));
      fuzz.traces.push_back(trace::sample_mmpp(mmpp, fuzz.horizon, stream));
    }
    fuzz.total_items += fuzz.traces.back().size();
  }

  auto& config = fuzz.config;
  config.cores = 1 + rng.next_below(3);
  config.slot_size = milliseconds(1 + static_cast<long>(rng.next_below(20)));
  config.max_latency =
      config.slot_size * static_cast<long>(2 + rng.next_below(20));
  config.base_buffer = 4 + rng.next_below(100);
  config.pool_segment = 1 + rng.next_below(10);
  config.predictor_window = 1 + rng.next_below(16);
  config.predictor = static_cast<core::PredictorKind>(rng.next_below(3));
  config.latching = rng.bernoulli(0.8);
  config.dynamic_resize = rng.bernoulli(0.8);
  config.emergency_borrow = rng.bernoulli(0.8);
  config.latency_guard = rng.bernoulli(0.3);
  config.resize_headroom = rng.uniform(1.0, 1.6);
  config.fill_tolerance = rng.uniform(1.0, 1.3);
  return fuzz;
}

class PbplFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbplFuzz, InvariantsHoldOnRandomWorkloads) {
  const FuzzCase fuzz = make_case(GetParam());
  const core::PbplResult result =
      core::run_pbpl(fuzz.traces, fuzz.horizon, fuzz.config);

  // 1. Item conservation: every produced item is consumed exactly once.
  EXPECT_EQ(result.items, fuzz.total_items);

  // 2. One finalized, internally consistent timeline per core.
  ASSERT_EQ(result.timelines.size(), fuzz.config.cores);
  for (const auto& tl : result.timelines) {
    ASSERT_TRUE(tl.finalized());
    EXPECT_GE(tl.duration(), fuzz.horizon);
    EXPECT_LE(tl.active_time(), tl.duration());
    EXPECT_EQ(tl.active_time() + tl.idle_time(), tl.duration());
    SimTime cursor = tl.start_time();
    for (const auto& interval : tl.intervals()) {
      EXPECT_EQ(interval.begin, cursor);
      EXPECT_GT(interval.length(), 0);
      cursor = interval.end;
    }
    EXPECT_EQ(cursor, tl.end_time());
  }

  // 3. Paid wakeups never exceed raised ones (latching only merges).
  EXPECT_LE(result.paid_wakeups, result.scheduled_wakeups + result.overflow_wakeups);

  // 4. Latency sanity: non-negative, and no item waits past the horizon.
  if (result.latency_s.count() > 0) {
    EXPECT_GE(result.latency_s.min(), 0.0);
    EXPECT_LE(result.latency_s.max(), to_seconds(fuzz.horizon));
  }

  // 5. Latched reservations are a subset of all reservations.
  EXPECT_LE(result.latched_reservations, result.reservations);

  // 6. Work accounting: every item consumed implies at least one
  //    invocation unless no items existed.
  if (fuzz.total_items > 0) {
    EXPECT_GT(result.invocations, 0u);
  }

  // 7. Determinism: the identical case reproduces bit-for-bit.
  const core::PbplResult again = core::run_pbpl(fuzz.traces, fuzz.horizon, fuzz.config);
  EXPECT_EQ(again.items, result.items);
  EXPECT_EQ(again.paid_wakeups, result.paid_wakeups);
  EXPECT_EQ(again.scheduled_wakeups, result.scheduled_wakeups);
  EXPECT_EQ(again.overflow_wakeups, result.overflow_wakeups);
  EXPECT_DOUBLE_EQ(again.latency_s.mean(), result.latency_s.mean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbplFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1024));

class BaselineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineFuzz, EveryImplementationConservesItems) {
  const FuzzCase fuzz = make_case(GetParam() * 7919);
  impls::ExperimentSetup setup;
  setup.baseline.cores = fuzz.config.cores;
  setup.baseline.buffer_capacity = fuzz.config.base_buffer;
  setup.pbpl = fuzz.config;
  const impls::ImplKind kinds[] = {
      impls::ImplKind::BusyWait,      impls::ImplKind::Mutex,
      impls::ImplKind::Semaphore,     impls::ImplKind::Batch,
      impls::ImplKind::PeriodicBatch, impls::ImplKind::SignalPeriodicBatch,
      impls::ImplKind::CoalescedPeriodicBatch};
  for (const auto kind : kinds) {
    const impls::RunResult r =
        impls::run_implementation(kind, fuzz.traces, fuzz.horizon, setup);
    EXPECT_EQ(r.items, fuzz.total_items) << impls::impl_name(kind);
    EXPECT_LE(r.usage_ms_per_s(),
              1000.0 * static_cast<double>(r.timelines.size()) + 1e-6)
        << impls::impl_name(kind);
    for (const auto& tl : r.timelines) {
      EXPECT_TRUE(tl.finalized()) << impls::impl_name(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineFuzz, ::testing::Range<std::uint64_t>(1, 9));

class RuntimeChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeChaosFuzz, ThreadHostConservesUnderRandomFaultsAndStops) {
  // Thread-host chaos: random overflow policy, random watchdog, random
  // fault mix, producers flooding from real threads, and a stop() that
  // lands at a random instant — often mid-overflow-drain, so forced
  // drains race reservation cancels.  Whatever interleaving the OS
  // picks, the accounting identity produced == items + dropped() and the
  // per-policy drop guarantees must hold.
  Rng rng(GetParam() * 2654435761ULL);

  core::PbplConfig config;
  config.cores = 1 + rng.next_below(2);
  config.slot_size = milliseconds(2 + static_cast<long>(rng.next_below(8)));
  config.max_latency = config.slot_size * static_cast<long>(3 + rng.next_below(6));
  config.base_buffer = 4 + rng.next_below(24);
  config.pool_segment = 2 + rng.next_below(6);
  config.dynamic_resize = rng.bernoulli(0.5);
  config.emergency_borrow = rng.bernoulli(0.5);
  config.latency_guard = rng.bernoulli(0.3);
  config.latching = rng.bernoulli(0.8);
  config.overflow_policy = static_cast<core::OverflowPolicy>(rng.next_below(4));
  config.watchdog_factor = rng.bernoulli(0.5) ? rng.uniform(1.5, 4.0) : 0.0;

  fault::FaultConfig faults;
  faults.seed = GetParam();
  faults.burst_probability = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.2) : 0.0;
  faults.burst_factor = 2 + rng.next_below(8);
  faults.stall_probability = rng.bernoulli(0.3) ? 0.01 : 0.0;
  faults.stall_duration = milliseconds(1 + static_cast<long>(rng.next_below(4)));
  faults.slow_handler_probability = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.5) : 0.0;
  faults.handler_delay = milliseconds(1 + static_cast<long>(rng.next_below(5)));
  faults.deadline_jitter =
      rng.bernoulli(0.3) ? milliseconds(1 + static_cast<long>(rng.next_below(2))) : 0;
  faults.pool_pressure = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.8) : 0.0;
  fault::FaultInjector injector(faults);

  const std::size_t consumers = 1 + rng.next_below(4);
  const std::size_t per_producer = 50 + rng.next_below(250);
  const bool early_stop = rng.bernoulli(0.5);
  const auto stop_after = std::chrono::milliseconds(1 + rng.next_below(15));

  runtime::ThreadPbplStats stats;
  {
    runtime::ThreadPbpl runtime(consumers, config, {}, &injector);
    std::vector<std::thread> producers;
    for (std::size_t c = 0; c < consumers; ++c) {
      producers.emplace_back([&, c] {
        for (std::size_t i = 0; i < per_producer; ++i) {
          runtime.produce(c);
          if (i % 32 == 31) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    if (early_stop) {
      // stop() races the flood: in-flight pushes must land as consumed
      // or dropped_on_stop, never vanish.
      std::this_thread::sleep_for(stop_after);
      runtime.stop();
    }
    for (auto& t : producers) t.join();
    if (!early_stop) std::this_thread::sleep_for(std::chrono::milliseconds(30));
    runtime.stop();
    stats = runtime.stats();
  }

  // The accounting identity holds on every path.
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
  // Per-policy guarantees.
  switch (config.overflow_policy) {
    case core::OverflowPolicy::Block:
    case core::OverflowPolicy::EmergencyBorrow:
      EXPECT_EQ(stats.dropped_oldest, 0u);
      EXPECT_EQ(stats.dropped_newest, 0u);
      break;
    case core::OverflowPolicy::DropOldest:
      EXPECT_EQ(stats.dropped_newest, 0u);
      break;
    case core::OverflowPolicy::DropNewest:
      EXPECT_EQ(stats.dropped_oldest, 0u);
      break;
  }
  if (!early_stop) {
    // With a graceful stop nothing was in flight, so the only losses are
    // deliberate policy drops.
    EXPECT_EQ(stats.dropped_on_stop, 0u);
    if (config.overflow_policy == core::OverflowPolicy::Block ||
        config.overflow_policy == core::OverflowPolicy::EmergencyBorrow) {
      EXPECT_EQ(stats.items, stats.produced);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeChaosFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace pcpc
