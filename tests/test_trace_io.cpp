// Tests for trace persistence (binary and CSV).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pcpc/trace/trace_io.hpp"
#include "pcpc/trace/webserver_log.hpp"

namespace pcpc::trace {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIo, BinaryRoundTrip) {
  WebWorkloadParams p;
  p.duration = seconds(1);
  p.base_rate_hz = 2000.0;
  const Trace original = make_web_workload(p);
  const std::string path = temp_path("trace_roundtrip.bin");
  ASSERT_TRUE(save_binary(original, path));
  bool ok = false;
  const Trace loaded = load_binary(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) ASSERT_EQ(loaded.at(i), original.at(i));
  std::remove(path.c_str());
}

TEST(TraceIo, BinaryEmptyTrace) {
  const std::string path = temp_path("trace_empty.bin");
  ASSERT_TRUE(save_binary(Trace{}, path));
  bool ok = false;
  const Trace loaded = load_binary(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceIo, BinaryRejectsGarbage) {
  const std::string path = temp_path("trace_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace file";
  }
  bool ok = true;
  const Trace loaded = load_binary(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceIo, BinaryRejectsTruncated) {
  const Trace t = uniform_trace(100, milliseconds(1));
  const std::string path = temp_path("trace_truncated.bin");
  ASSERT_TRUE(save_binary(t, path));
  // Truncate the file in the middle of the payload.
  {
    std::ofstream out(path, std::ios::binary | std::ios::in);
    out.seekp(200);
  }
  std::ifstream full(path, std::ios::binary | std::ios::ate);
  // Rewrite only a prefix.
  std::ifstream in(path, std::ios::binary);
  std::string data(200, '\0');
  in.read(data.data(), 200);
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), 200);
  }
  bool ok = true;
  load_binary(path, &ok);
  EXPECT_FALSE(ok);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails) {
  bool ok = true;
  load_binary(temp_path("does_not_exist.bin"), &ok);
  EXPECT_FALSE(ok);
  ok = true;
  load_csv(temp_path("does_not_exist.csv"), &ok);
  EXPECT_FALSE(ok);
}

TEST(TraceIo, CsvRoundTrip) {
  const Trace original = uniform_trace(500, microseconds(137));
  const std::string path = temp_path("trace_roundtrip.csv");
  ASSERT_TRUE(save_csv(original, path));
  bool ok = false;
  const Trace loaded = load_csv(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) ASSERT_EQ(loaded.at(i), original.at(i));
  std::remove(path.c_str());
}

TEST(TraceIo, CsvWithoutHeader) {
  const std::string path = temp_path("trace_noheader.csv");
  {
    std::ofstream out(path);
    out << "100\n200\n300\n";
  }
  bool ok = false;
  const Trace loaded = load_csv(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.at(0), 100);
  EXPECT_EQ(loaded.at(2), 300);
  std::remove(path.c_str());
}

TEST(TraceIo, CsvRejectsNonNumeric) {
  const std::string path = temp_path("trace_bad.csv");
  {
    std::ofstream out(path);
    out << "timestamp_ns\n100\nnot_a_number\n";
  }
  bool ok = true;
  load_csv(path, &ok);
  EXPECT_FALSE(ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcpc::trace
