// Tests for RingBuffer, MovingAverage, BoundedBuffer and the report
// formatting utilities (Table / CsvWriter).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "pcpc/common/csv.hpp"
#include "pcpc/common/moving_average.hpp"
#include "pcpc/common/ring_buffer.hpp"
#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/queue/bounded_buffer.hpp"

namespace pcpc {
namespace {

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop(), std::optional<int>(i));
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(RingBuffer, RejectsWhenFull) {
  RingBuffer<int> ring(2);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.push(3));
  EXPECT_EQ(ring.size(), 2u);
}

TEST(RingBuffer, WrapAround) {
  RingBuffer<int> ring(3);
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(*ring.pop(), 1);
  ring.push(3);
  ring.push(4);  // wraps
  EXPECT_EQ(*ring.pop(), 2);
  EXPECT_EQ(*ring.pop(), 3);
  EXPECT_EQ(*ring.pop(), 4);
}

TEST(RingBuffer, RandomOpsPreserveFifo) {
  // Property: a ring buffer behaves exactly like a bounded FIFO queue.
  RingBuffer<std::uint64_t> ring(7);
  Rng rng(99);
  std::uint64_t next_in = 0, next_out = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.bernoulli(0.55)) {
      if (ring.push(next_in)) ++next_in;
    } else if (auto v = ring.pop()) {
      ASSERT_EQ(*v, next_out);
      ++next_out;
    }
    ASSERT_EQ(ring.size(), next_in - next_out);
  }
}

TEST(RingBuffer, AtAndFront) {
  RingBuffer<int> ring(4);
  ring.push(10);
  ring.push(20);
  ring.push(30);
  EXPECT_EQ(ring.front(), 10);
  EXPECT_EQ(ring.at(0), 10);
  EXPECT_EQ(ring.at(2), 30);
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> ring(3);
  ring.push(1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.push(5));
  EXPECT_EQ(*ring.pop(), 5);
}

TEST(MovingAverage, ExactWindowedMean) {
  MovingAverage avg(3);
  EXPECT_EQ(avg.value(), 0.0);
  avg.add(3.0);
  EXPECT_DOUBLE_EQ(avg.value(), 3.0);
  avg.add(6.0);
  EXPECT_DOUBLE_EQ(avg.value(), 4.5);
  avg.add(9.0);
  EXPECT_DOUBLE_EQ(avg.value(), 6.0);
  avg.add(12.0);  // evicts 3.0
  EXPECT_DOUBLE_EQ(avg.value(), 9.0);
}

TEST(MovingAverage, MatchesPaperFormula) {
  // r̂_{i+1} = (Σ_{j=i-h+1..i} r_j)/h for the last h observations.
  const std::size_t h = 5;
  MovingAverage avg(h);
  std::vector<double> rates;
  for (int i = 0; i < 20; ++i) {
    const double r = 100.0 + 17.0 * i;
    rates.push_back(r);
    avg.add(r);
    double expected = 0.0;
    const std::size_t window = std::min<std::size_t>(h, rates.size());
    for (std::size_t j = rates.size() - window; j < rates.size(); ++j) expected += rates[j];
    expected /= static_cast<double>(window);
    ASSERT_DOUBLE_EQ(avg.value(), expected);
  }
}

TEST(MovingAverage, Reset) {
  MovingAverage avg(4);
  avg.add(10.0);
  avg.reset();
  EXPECT_EQ(avg.count(), 0u);
  EXPECT_EQ(avg.value(), 0.0);
}

TEST(BoundedBuffer, CountsOverflows) {
  queue::BoundedBuffer<int> buffer(2);
  EXPECT_TRUE(buffer.push(1));
  EXPECT_TRUE(buffer.push(2));
  EXPECT_FALSE(buffer.push(3));
  EXPECT_FALSE(buffer.push(4));
  EXPECT_EQ(buffer.overflows(), 2u);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(BoundedBuffer, HighWaterMark) {
  queue::BoundedBuffer<int> buffer(8);
  buffer.push(1);
  buffer.push(2);
  buffer.push(3);
  buffer.pop();
  buffer.pop();
  EXPECT_EQ(buffer.high_water(), 3u);
  buffer.push(4);
  EXPECT_EQ(buffer.high_water(), 3u);
}

TEST(Table, AlignsAndCounts) {
  Table table({"name", "value"});
  table.add("alpha", 1.5);
  table.add(std::string("b"), 12345LL);
  EXPECT_EQ(table.rows(), 2u);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator lines present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Table, TitlePrinted) {
  Table table({"x"});
  table.set_title("My Title");
  EXPECT_EQ(table.to_string().rfind("My Title", 0), 0u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/pcpc_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.write_row({"plain", "with,comma"});
    csv.write_row({"with\"quote", "line\nbreak"});
    EXPECT_EQ(csv.rows(), 2u);
  }
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("a,b\n"), std::string::npos);
  EXPECT_NE(contents.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(contents.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcpc
