// Chaos harness for the real-thread host: the fault scenario matrix must
// never deadlock, never lose an item silently under OverflowPolicy::Block,
// account every drop under the drop policies, and keep latency degradation
// bounded.  Wall-clock per test is kept short so the whole suite stays
// usable under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/fault/chaos.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/runtime/thread_baselines.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"

namespace pcpc::runtime {
namespace {

core::PbplConfig chaos_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;
  return config;
}

// Floods `consumers` pairs from one producer thread each, joins them all,
// lets the managers settle, stops, and returns the final counters.
ThreadPbplStats flood(const core::PbplConfig& config, std::size_t consumers,
                      std::size_t items_per_producer,
                      fault::FaultInjector* injector = nullptr) {
  ThreadPbpl runtime(consumers, config, {}, injector);
  std::vector<std::thread> producers;
  for (std::size_t c = 0; c < consumers; ++c) {
    producers.emplace_back([&, c] {
      for (std::size_t i = 0; i < items_per_producer; ++i) {
        runtime.produce(c);
        if (i % 16 == 15) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  runtime.stop();
  return runtime.stats();
}

TEST(ChaosRuntime, BlockPolicyLosesNothingAcrossScenarioMatrix) {
  // The headline robustness claim: under Block every offered item —
  // including injected burst extras — reaches a consumer exactly once,
  // whatever combination of faults is active.
  auto config = chaos_config();
  config.overflow_policy = core::OverflowPolicy::Block;
  for (const fault::Scenario& scenario : fault::standard_scenarios(7777)) {
    fault::FaultInjector injector(scenario.faults);
    const auto stats = flood(config, 3, 120, &injector);
    EXPECT_EQ(stats.dropped(), 0u) << scenario.name;
    EXPECT_EQ(stats.items, stats.produced) << scenario.name;
    EXPECT_GE(stats.produced, 3u * 120u) << scenario.name;  // + bursts
    EXPECT_EQ(stats.produced,
              3u * 120u + injector.stats().burst_items) << scenario.name;
  }
}

TEST(ChaosRuntime, DropOldestEvictionsAreFullyAccounted) {
  auto config = chaos_config();
  config.overflow_policy = core::OverflowPolicy::DropOldest;
  config.base_buffer = 8;
  config.dynamic_resize = false;    // freeze capacity so the flood overflows
  config.emergency_borrow = false;
  const auto stats = flood(config, 2, 600);
  EXPECT_GT(stats.dropped_oldest, 0u);
  EXPECT_EQ(stats.dropped_newest, 0u);
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
}

TEST(ChaosRuntime, DropNewestRejectionsAreFullyAccounted) {
  auto config = chaos_config();
  config.overflow_policy = core::OverflowPolicy::DropNewest;
  config.base_buffer = 8;
  config.dynamic_resize = false;
  config.emergency_borrow = false;
  const auto stats = flood(config, 2, 600);
  EXPECT_GT(stats.dropped_newest, 0u);
  EXPECT_EQ(stats.dropped_oldest, 0u);
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
}

TEST(ChaosRuntime, EmergencyBorrowNeverDrops) {
  auto config = chaos_config();
  config.overflow_policy = core::OverflowPolicy::EmergencyBorrow;
  config.base_buffer = 8;
  config.pool_segment = 4;
  const auto stats = flood(config, 2, 600);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.items, stats.produced);
  EXPECT_GT(stats.emergency_borrows + stats.overflow_wakeups, 0u);
}

TEST(ChaosRuntime, WatchdogEscalatesOnInjectedSlowHandlers) {
  // Every batch overruns its slot by 4x; a watchdog at 2x the slot size
  // must fire, drain immediately, and count the missed deadline — while
  // still delivering every item.
  auto config = chaos_config();
  config.cores = 1;
  config.watchdog_factor = 2.0;
  fault::FaultConfig faults;
  faults.seed = 3;
  faults.slow_handler_probability = 1.0;
  faults.handler_delay = milliseconds(20);
  fault::FaultInjector injector(faults);
  const auto stats = flood(config, 2, 80, &injector);
  EXPECT_GT(stats.missed_deadlines, 0u);
  EXPECT_EQ(stats.items, stats.produced);
  EXPECT_GT(injector.stats().slow_batches, 0u);
}

TEST(ChaosRuntime, WatchdogStaysQuietWithoutOverload) {
  auto config = chaos_config();
  config.watchdog_factor = 50.0;  // armed, but nothing should trip it
  const auto stats = flood(config, 2, 100);
  EXPECT_EQ(stats.missed_deadlines, 0u);
  EXPECT_EQ(stats.items, stats.produced);
}

TEST(ChaosRuntime, LatencyGuardCountsViolationsUnderSlowConsumer) {
  auto config = chaos_config();
  config.cores = 1;
  config.latency_guard = true;
  config.max_latency = milliseconds(10);
  fault::FaultConfig faults;
  faults.seed = 9;
  faults.slow_handler_probability = 1.0;
  faults.handler_delay = milliseconds(30);  // 3x the latency bound
  fault::FaultInjector injector(faults);
  const auto stats = flood(config, 2, 60, &injector);
  EXPECT_GT(stats.latency_violations, 0u);
  EXPECT_EQ(stats.items, stats.produced);
}

TEST(ChaosRuntime, PoolPressureDegradesButConserves) {
  auto config = chaos_config();
  config.base_buffer = 8;
  config.pool_segment = 2;
  fault::FaultConfig faults;
  faults.seed = 21;
  faults.pool_pressure = 0.9;  // almost no spare segments for resizing
  fault::FaultInjector injector(faults);
  const auto stats = flood(config, 3, 300, &injector);
  EXPECT_GT(injector.stats().seized_segments, 0u);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.items, stats.produced);
}

TEST(ChaosRuntime, StopRacingProducersAccountsEveryItem) {
  // Regression for the silent-loss bug: a producer blocked on a full
  // buffer while stop() lands used to let the item vanish uncounted.
  // Now every offered item is either consumed or counted as
  // dropped_on_stop, even when stop() races a hundred in-flight pushes.
  auto config = chaos_config();
  config.base_buffer = 4;
  config.dynamic_resize = false;
  config.emergency_borrow = false;
  config.overflow_policy = core::OverflowPolicy::Block;
  for (int round = 0; round < 5; ++round) {
    ThreadPbpl runtime(2, config);
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    for (std::size_t c = 0; c < 2; ++c) {
      producers.emplace_back([&, c] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 400; ++i) runtime.produce(c);
      });
    }
    go.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + round));
    runtime.stop();  // lands mid-flood
    for (auto& t : producers) t.join();
    const auto stats = runtime.stats();
    EXPECT_EQ(stats.produced, stats.items + stats.dropped()) << "round " << round;
    EXPECT_EQ(stats.dropped_oldest + stats.dropped_newest, 0u) << "round " << round;
  }
}

TEST(ChaosRuntime, BurstLatencyDegradationIsBounded) {
  // Degradation curve sanity: a 10x burst mix may stretch latency but
  // the run must finish promptly and keep the tail under a loose bound.
  auto config = chaos_config();
  fault::FaultConfig faults;
  faults.seed = 12;
  faults.burst_probability = 0.05;
  faults.burst_factor = 10;
  fault::FaultInjector injector(faults);
  const auto start = std::chrono::steady_clock::now();
  const auto stats = flood(config, 3, 150, &injector);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(stats.items, stats.produced);
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // no deadlock/livelock
  if (stats.latency_s.count() > 0) {
    EXPECT_LT(stats.latency_s.max(), 5.0);  // seconds; generous CI headroom
  }
}

TEST(ChaosRuntime, MigrationStormConservesAcross100Seeds) {
  // The fleet acceptance bar: exact conservation across every live
  // migration, 100 seeds deep, with stop() landing mid-storm on odd
  // seeds.  The storm itself is seeded, so a failure replays.
  auto config = chaos_config();
  config.overflow_policy = core::OverflowPolicy::Block;
  config.base_buffer = 8;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    ThreadPbpl runtime(3, config);
    std::vector<std::thread> producers;
    for (std::size_t c = 0; c < 3; ++c) {
      producers.emplace_back([&, c] {
        for (int i = 0; i < 150; ++i) {
          runtime.produce(c);
          if (i % 64 == 63) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    const bool stop_mid_flood = seed % 2 == 1;
    for (int move = 0; move < 12; ++move) {
      runtime.migrate(rng.next_below(3), rng.next_below(config.cores));
      if (stop_mid_flood && move == 6) runtime.stop();
    }
    for (auto& t : producers) t.join();
    runtime.stop();
    const auto stats = runtime.stats();
    EXPECT_EQ(stats.produced, stats.items + stats.dropped()) << "seed " << seed;
    EXPECT_EQ(stats.dropped_oldest + stats.dropped_newest, 0u) << "seed " << seed;
    if (!stop_mid_flood) {
      EXPECT_EQ(stats.items, stats.produced) << "seed " << seed;
    }
  }
}

TEST(ChaosRuntime, LoadSwingsDriveParkUnparkMigrationRaces) {
  // kLoadSwing chaos against the elastic fleet: producers modulate their
  // offered rate by the injector's swing wave (square, 0x↔2x) while the
  // controller migrates, parks and (on demand) unparks underneath — and
  // stop() lands while all of that is still in flight.
  auto config = chaos_config();
  config.cores = 4;
  fault::FaultConfig faults;
  faults.seed = 5150;
  faults.load_swing_amplitude = 1.0;
  faults.load_swing_period = milliseconds(60);
  faults.load_swing_step = true;
  fault::FaultInjector injector(faults);

  fleet::FleetConfig fc;
  fc.mode = fleet::FleetMode::kElastic;
  fc.control_period = milliseconds(10);
  fc.cooldown = milliseconds(40);

  ThreadPbpl runtime(4, config, {}, &injector, fc);
  std::atomic<bool> done{false};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::size_t c = 0; c < 4; ++c) {
    producers.emplace_back([&, c] {
      while (!done.load(std::memory_order_relaxed)) {
        const SimTime now =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double scale = injector.load_scale(now);
        if (scale > 0.0) runtime.produce(c);
        std::this_thread::sleep_for(std::chrono::microseconds(
            scale > 0.0 ? static_cast<std::int64_t>(500.0 / scale) : 500));
      }
    });
  }

  // Bounded wait for the consolidation to park a core, then keep the
  // swings flipping a while longer so crossings and ticks accumulate.
  const auto deadline = start + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    bool any = false;
    for (const bool p : runtime.parked_cores()) any = any || p;
    if (any) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  done.store(true, std::memory_order_relaxed);
  runtime.stop();  // races the last produce() calls on purpose
  for (auto& t : producers) t.join();

  const auto stats = runtime.stats();
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.core_parks, 0u);
  EXPECT_GE(injector.stats().load_swings, 2u);
  std::uint64_t parked_now = 0;
  for (const bool p : runtime.parked_cores()) parked_now += p ? 1 : 0;
  EXPECT_EQ(stats.core_parks - stats.core_unparks, parked_now);
}

TEST(ChaosBaseline, InjectedFaultsConserveItemsToo) {
  // The baseline hosts take the same injector: bursts add items, stalls
  // slow the producer, slow handlers hold the pair lock — and blocking
  // backpressure still delivers everything.
  fault::FaultConfig faults;
  faults.seed = 77;
  faults.burst_probability = 0.1;
  faults.burst_factor = 5;
  faults.slow_handler_probability = 0.2;
  faults.handler_delay = milliseconds(2);
  fault::FaultInjector injector(faults);
  ThreadBaseline baseline(2, 8, SignalPolicy::PerItem, milliseconds(10), &injector);
  for (int i = 0; i < 100; ++i) baseline.produce(static_cast<std::size_t>(i % 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  baseline.stop();
  const auto stats = baseline.stats();
  EXPECT_EQ(stats.items, 100u + injector.stats().burst_items);
  EXPECT_GT(injector.stats().bursts, 0u);
}

}  // namespace
}  // namespace pcpc::runtime
