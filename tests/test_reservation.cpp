// Tests for the reservation table (Section V-B).
#include <gtest/gtest.h>

#include "pcpc/core/reservation.hpp"

namespace pcpc::core {
namespace {

TEST(ReservationTable, ReserveAndLookup) {
  ReservationTable table;
  table.reserve(1, 10);
  EXPECT_TRUE(table.slot_reserved(10));
  EXPECT_FALSE(table.slot_reserved(11));
  EXPECT_EQ(table.reservation_of(1), std::optional<SlotIndex>(10));
  EXPECT_EQ(table.reservation_of(2), std::nullopt);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ReservationTable, ReReservingMoves) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(1, 20);
  EXPECT_FALSE(table.slot_reserved(10));
  EXPECT_TRUE(table.slot_reserved(20));
  EXPECT_EQ(table.size(), 1u);
}

TEST(ReservationTable, CancelRemoves) {
  ReservationTable table;
  table.reserve(1, 10);
  table.cancel(1);
  EXPECT_FALSE(table.slot_reserved(10));
  EXPECT_TRUE(table.empty());
  table.cancel(1);  // idempotent
}

TEST(ReservationTable, MultipleConsumersShareASlot) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(2, 10);
  table.reserve(3, 10);
  const auto consumers = table.consumers_at(10);
  ASSERT_EQ(consumers.size(), 3u);
  EXPECT_EQ(consumers[0], 1u);  // registration order preserved
  EXPECT_EQ(consumers[2], 3u);
}

TEST(ReservationTable, CancelOneOfMany) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(2, 10);
  table.cancel(1);
  EXPECT_TRUE(table.slot_reserved(10));
  EXPECT_EQ(table.consumers_at(10).size(), 1u);
}

TEST(ReservationTable, TakeSlotDrainsIt) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(2, 10);
  table.reserve(3, 20);
  const auto taken = table.take_slot(10);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_FALSE(table.slot_reserved(10));
  EXPECT_EQ(table.reservation_of(1), std::nullopt);
  EXPECT_TRUE(table.slot_reserved(20));
  EXPECT_TRUE(table.take_slot(10).empty());
}

TEST(ReservationTable, NextReserved) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(2, 30);
  EXPECT_EQ(table.next_reserved(0), std::optional<SlotIndex>(10));
  EXPECT_EQ(table.next_reserved(10), std::optional<SlotIndex>(10));  // inclusive
  EXPECT_EQ(table.next_reserved(11), std::optional<SlotIndex>(30));
  EXPECT_EQ(table.next_reserved(31), std::nullopt);
}

TEST(ReservationTable, PrevReservedBacktrackingHelper) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(2, 30);
  EXPECT_EQ(table.prev_reserved(40, 0), std::optional<SlotIndex>(30));
  EXPECT_EQ(table.prev_reserved(30, 0), std::optional<SlotIndex>(30));  // inclusive
  EXPECT_EQ(table.prev_reserved(29, 0), std::optional<SlotIndex>(10));
  EXPECT_EQ(table.prev_reserved(29, 20), std::nullopt);  // floor cuts it off
  EXPECT_EQ(table.prev_reserved(9, 0), std::nullopt);
}

TEST(ReservationTable, Clear) {
  ReservationTable table;
  table.reserve(1, 10);
  table.reserve(2, 20);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.next_reserved(0), std::nullopt);
}

TEST(ReservationTable, NegativeSlotIndices) {
  ReservationTable table;
  table.reserve(1, -5);
  EXPECT_TRUE(table.slot_reserved(-5));
  EXPECT_EQ(table.next_reserved(-10), std::optional<SlotIndex>(-5));
}

}  // namespace
}  // namespace pcpc::core
