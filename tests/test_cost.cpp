// Tests for the reservation cost function ρ and the backtracking slot
// search (Section V-C, Equation 8).
#include <gtest/gtest.h>

#include "pcpc/core/cost.hpp"

namespace pcpc::core {
namespace {

EnergyCosts test_costs() {
  EnergyCosts c;
  c.wakeup_j = 100e-6;
  c.per_item_j = 3e-6;
  c.per_invocation_j = 2e-6;
  return c;
}

TEST(Rho, MatchesEquation8) {
  const EnergyCosts c = test_costs();
  // Fresh slot, 10 items: (ω + e(10)) / 10 = (100 + 2 + 30)/10 µJ.
  EXPECT_NEAR(rho(10.0, false, c), 13.2e-6, 1e-12);
  // Latched slot: wakeup term vanishes.
  EXPECT_NEAR(rho(10.0, true, c), 3.2e-6, 1e-12);
}

TEST(Rho, FreshSlotCostFallsWithBatchSize) {
  const EnergyCosts c = test_costs();
  EXPECT_GT(rho(1.0, false, c), rho(10.0, false, c));
  EXPECT_GT(rho(10.0, false, c), rho(100.0, false, c));
}

TEST(Rho, LatchingIsAlwaysCheaperAtEqualBatch) {
  const EnergyCosts c = test_costs();
  for (double n : {0.5, 1.0, 5.0, 50.0}) {
    EXPECT_LT(rho(n, true, c), rho(n, false, c));
  }
}

struct ChooseSlotFixture : ::testing::Test {
  SlotTrack track{milliseconds(10)};
  ReservationTable reservations;
  EnergyCosts costs = test_costs();

  SlotQuery query(double rate, std::size_t capacity,
                  SimDuration latency = seconds(10)) const {
    SlotQuery q;
    q.now = 0;
    q.predicted_rate_hz = rate;
    q.buffer_capacity = capacity;
    q.max_latency = latency;
    return q;
  }
};

TEST_F(ChooseSlotFixture, EmptyTableChoosesBufferFillSlot) {
  // rate 1000/s, B=25 → fill at 25 ms → slot g(25ms) = slot 2.
  const SlotChoice choice = choose_slot(track, reservations, query(1000.0, 25), costs);
  EXPECT_EQ(choice.slot, 2);
  EXPECT_FALSE(choice.latched);
  EXPECT_NEAR(choice.expected_items, 20.0, 1e-9);  // 1000/s * 20ms
}

TEST_F(ChooseSlotFixture, ChoiceIsAlwaysInTheFuture) {
  for (double rate : {0.0, 1.0, 100.0, 1e6}) {
    const SlotChoice choice = choose_slot(track, reservations, query(rate, 25), costs);
    EXPECT_GT(track.start_of(choice.slot), 0);
  }
}

TEST_F(ChooseSlotFixture, VeryHighRateStillPicksNextSlot) {
  // Fill time shorter than one slot: the first future slot is the floor.
  const SlotChoice choice = choose_slot(track, reservations, query(1e7, 25), costs);
  EXPECT_EQ(choice.slot, 1);
}

TEST_F(ChooseSlotFixture, LatencyBoundCapsTheHorizon) {
  // Without the bound, B=1000 at 1000/s would fill at slot 100; a 30 ms
  // latency bound caps the wait near now + 1/r + L = 31 ms → slot 3.
  const SlotChoice choice =
      choose_slot(track, reservations, query(1000.0, 1000, milliseconds(30)), costs);
  EXPECT_EQ(choice.slot, 3);
}

TEST_F(ChooseSlotFixture, LatchesOntoReservedSlot) {
  reservations.reserve(7, 2);  // someone wakes the core at slot 2
  const SlotChoice choice = choose_slot(track, reservations, query(1000.0, 25), costs);
  EXPECT_EQ(choice.slot, 2);
  EXPECT_TRUE(choice.latched);
  EXPECT_NEAR(choice.cost, rho(20.0, true, costs), 1e-15);
}

TEST_F(ChooseSlotFixture, BacktracksToEarlierReservedSlotWhenCheaper) {
  // Fill slot would be 2 (fresh, pays ω); slot 1 is reserved: per-item
  // cost there is 2µJ/10 + 3µJ = 3.2µJ < (100+2)/20 + 3 = 8.1µJ.
  reservations.reserve(7, 1);
  const SlotChoice choice = choose_slot(track, reservations, query(1000.0, 25), costs);
  EXPECT_EQ(choice.slot, 1);
  EXPECT_TRUE(choice.latched);
}

TEST_F(ChooseSlotFixture, PrefersLatestOfSeveralReservedSlots) {
  reservations.reserve(6, 1);
  reservations.reserve(7, 2);
  const SlotChoice choice = choose_slot(track, reservations, query(1000.0, 25), costs);
  EXPECT_EQ(choice.slot, 2);  // bigger batch at equal (latched) wakeup cost
}

TEST_F(ChooseSlotFixture, StopsBacktrackingWhenCostRises) {
  // A reserved slot with a tiny batch can lose to a fresh later slot when
  // the invocation overhead dominates.
  EnergyCosts heavy = costs;
  heavy.wakeup_j = 4e-6;         // cheap wakeups
  heavy.per_invocation_j = 50e-6;  // expensive invocations
  reservations.reserve(7, 1);
  const SlotChoice choice = choose_slot(track, reservations, query(1000.0, 25), heavy);
  // Fresh slot 2: (4 + 50 + 3*20)/20 = 5.7µJ; latched slot 1:
  // (50 + 30)/10 = 8µJ → keep slot 2.
  EXPECT_EQ(choice.slot, 2);
  EXPECT_FALSE(choice.latched);
}

TEST_F(ChooseSlotFixture, ReservationBeyondFillHorizonIsInvisible) {
  reservations.reserve(7, 5);  // after our buffer would overflow
  const SlotChoice choice = choose_slot(track, reservations, query(1000.0, 25), costs);
  EXPECT_EQ(choice.slot, 2);
  EXPECT_FALSE(choice.latched);
}

TEST_F(ChooseSlotFixture, ZeroRateLatchesWithinLatencyHorizon) {
  reservations.reserve(7, 3);
  const SlotChoice choice =
      choose_slot(track, reservations, query(0.0, 25, milliseconds(100)), costs);
  EXPECT_EQ(choice.slot, 3);
  EXPECT_TRUE(choice.latched);
  EXPECT_EQ(choice.expected_items, 0.0);
}

TEST_F(ChooseSlotFixture, ZeroRatePollsAtLatencyHorizonWhenAlone) {
  const SlotChoice choice =
      choose_slot(track, reservations, query(0.0, 25, milliseconds(100)), costs);
  EXPECT_EQ(choice.slot, 10);  // g(now + L)
  EXPECT_FALSE(choice.latched);
}

TEST_F(ChooseSlotFixture, ZeroRateIgnoresReservationsPastTheHorizon) {
  reservations.reserve(7, 50);
  const SlotChoice choice =
      choose_slot(track, reservations, query(0.0, 25, milliseconds(100)), costs);
  EXPECT_EQ(choice.slot, 10);
  EXPECT_FALSE(choice.latched);
}

TEST_F(ChooseSlotFixture, NonZeroNowUsesRelativeHorizon) {
  SlotQuery q = query(1000.0, 25);
  q.now = milliseconds(15);  // mid slot 1; fill at 40ms → slot 4
  const SlotChoice choice = choose_slot(track, reservations, q, costs);
  EXPECT_EQ(choice.slot, 4);
}

TEST_F(ChooseSlotFixture, FillSlotIgnoresReservations) {
  reservations.reserve(7, 1);
  const SlotChoice choice = fill_slot(track, query(1000.0, 25), costs);
  EXPECT_EQ(choice.slot, 2);
  EXPECT_FALSE(choice.latched);
}

TEST_F(ChooseSlotFixture, FillSlotZeroRatePollsAtHorizon) {
  const SlotChoice choice = fill_slot(track, query(0.0, 25, milliseconds(50)), costs);
  EXPECT_EQ(choice.slot, 5);
}

TEST(ChooseSlotDeath, RejectsZeroCapacity) {
  const SlotTrack track(milliseconds(10));
  const ReservationTable reservations;
  SlotQuery q;
  q.buffer_capacity = 0;
  q.max_latency = milliseconds(1);
  EXPECT_DEATH(choose_slot(track, reservations, q, EnergyCosts{}), "capacity");
}

}  // namespace
}  // namespace pcpc::core
