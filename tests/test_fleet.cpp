// pcpc::fleet: the placement cost model, the controller's h-window
// prediction + no-flap guarantees, and live migration on both hosts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/fleet/cost_model.hpp"
#include "pcpc/fleet/sim_driver.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/trace/arrival_process.hpp"

namespace pcpc::fleet {
namespace {

CostModelParams cost_params() {
  CostModelParams params;
  params.slot = milliseconds(10);
  params.max_latency = milliseconds(100);
  params.buffer_items = 25;
  params.service.per_item = microseconds(20);
  return params;
}

TEST(FleetCost, WakePeriodIsBufferFillClampedToSlotAndBound) {
  const CostModelParams params = cost_params();
  // A zero-rate pair polls at the latency bound L.
  EXPECT_EQ(pair_wake_period(0.0, params), params.max_latency);
  // A flood can still be served no sooner than the next slot Δ.
  EXPECT_EQ(pair_wake_period(1e9, params), params.slot);
  // In between, the buffer fills in B/r̂: 25 items / 500 Hz = 50 ms.
  EXPECT_NEAR(to_seconds(pair_wake_period(500.0, params)), 0.05, 1e-9);
}

TEST(FleetCost, WakeupCostMonotoneInGapAndBounded) {
  const CostModelParams params = cost_params();
  const double omega = params.power.wakeup_energy_j;
  double prev = 0.0;
  for (const SimDuration gap : {microseconds(10), microseconds(100), milliseconds(1),
                                milliseconds(10), milliseconds(100), seconds(1)}) {
    const double cost = wakeup_cost_j(params, gap);
    EXPECT_GE(cost, 0.25 * omega);  // shallow wakes are never free
    EXPECT_LE(cost, omega);
    EXPECT_GE(cost, prev);  // deeper sleep, costlier exit
    prev = cost;
  }
  EXPECT_DOUBLE_EQ(wakeup_cost_j(params, seconds(10)), omega);
}

TEST(FleetCost, PackedBeatsSpreadAtLowUtilization) {
  const CostModelParams params = cost_params();
  const std::size_t cores = 4;
  const std::vector<double> rates(8, 100.0);  // 100 Hz × 20 µs = 0.2% each
  std::vector<std::size_t> packed(8, 0);
  std::vector<std::size_t> spread(8);
  for (std::size_t i = 0; i < spread.size(); ++i) spread[i] = i % cores;

  const PlacementCost p = evaluate_placement(packed, cores, rates, params);
  const PlacementCost s = evaluate_placement(spread, cores, rates, params);
  ASSERT_TRUE(p.feasible);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(p.active_cores, 1u);
  EXPECT_EQ(s.active_cores, 4u);
  // Consolidation shares the wakeup cadence and parks three cores in the
  // deepest state: fewer paid wakes, cheaper items.
  EXPECT_LT(p.paid_wake_hz, s.paid_wake_hz);
  EXPECT_LT(p.joules_per_item, s.joules_per_item);
}

TEST(FleetCost, OverloadedCoreIsInfeasible) {
  CostModelParams params = cost_params();
  params.service.per_item = microseconds(100);
  const std::vector<std::size_t> placement{0};
  const std::vector<double> rates{6000.0};  // 0.6 busy > 0.5 cap
  EXPECT_FALSE(evaluate_placement(placement, 1, rates, params).feasible);
  const std::vector<double> light{1000.0};  // 0.1 busy
  EXPECT_TRUE(evaluate_placement(placement, 1, light, params).feasible);
}

FleetConfig controller_config() {
  FleetConfig config;
  config.mode = FleetMode::kElastic;
  config.control_period = milliseconds(100);
  config.cooldown = milliseconds(500);
  config.cost = cost_params();
  return config;
}

TEST(FleetController, RatesAreZeroUntilTwoObservations) {
  FleetController controller(3, 2, controller_config());
  for (const double r : controller.rates()) EXPECT_EQ(r, 0.0);
  const std::vector<std::uint64_t> items{10, 20, 30};
  controller.observe(milliseconds(100), items);  // anchors only
  for (const double r : controller.rates()) EXPECT_EQ(r, 0.0);
}

TEST(FleetController, HWindowPredictionIsExactOnConstantRate) {
  FleetController controller(2, 2, controller_config());
  std::vector<std::uint64_t> items{0, 0};
  SimTime now = 0;
  for (int tick = 0; tick < 12; ++tick) {
    now += milliseconds(100);
    items[0] += 200;  // 2000 Hz
    items[1] += 35;   // 350 Hz
    controller.observe(now, items);
  }
  // Every h-window sample is the same interval rate, so the moving
  // average must reproduce it exactly.
  ASSERT_EQ(controller.rates().size(), 2u);
  EXPECT_NEAR(controller.rates()[0], 2000.0, 1e-6);
  EXPECT_NEAR(controller.rates()[1], 350.0, 1e-6);
}

TEST(FleetController, PredictionIsDeterministicOnSeededTraces) {
  FleetController a(4, 4, controller_config());
  FleetController b(4, 4, controller_config());
  std::vector<std::size_t> current_a{0, 1, 2, 3};
  std::vector<std::size_t> current_b{0, 1, 2, 3};

  Rng rng(0xf1ee7);
  std::vector<std::uint64_t> items(4, 0);
  SimTime now = 0;
  for (int tick = 0; tick < 40; ++tick) {
    now += milliseconds(100);
    for (auto& item : items) item += rng.next_below(400);
    a.observe(now, items);
    b.observe(now, items);
    const FleetPlan plan_a = a.plan(now, current_a);
    const FleetPlan plan_b = b.plan(now, current_b);
    ASSERT_EQ(plan_a.target, plan_b.target);
    ASSERT_EQ(plan_a.moves.size(), plan_b.moves.size());
    ASSERT_EQ(a.rates(), b.rates());
    current_a = plan_a.target;
    current_b = plan_b.target;
  }
  EXPECT_EQ(a.observations(), b.observations());
  EXPECT_EQ(a.planned_moves(), b.planned_moves());
}

// The no-flap property the header promises: under load oscillating fast
// enough to flip the preferred placement every few ticks, any single
// pair still moves at most once per cooldown window.
TEST(FleetController, CooldownBoundsMovesPerPairUnderOscillatingLoad) {
  FleetConfig config = controller_config();
  config.control_period = milliseconds(50);
  config.cooldown = milliseconds(500);
  config.cost.service.per_item = microseconds(100);  // packed flood infeasible
  const std::size_t pairs = 4;
  FleetController controller(pairs, 4, config);

  std::vector<std::size_t> current{0, 1, 2, 3};
  std::vector<std::uint64_t> items(pairs, 0);
  std::vector<SimTime> last_move(pairs, 0);
  std::vector<bool> moved(pairs, false);
  std::uint64_t total_moves = 0;

  Rng rng(2025);
  SimTime now = 0;
  for (int tick = 0; tick < 100; ++tick) {
    now += config.control_period;
    // Square-wave load: trough packs all four pairs on one core, peak
    // (0.4 busy each) forces them apart — the placement wants to flip
    // every 4 ticks, far inside the cooldown.
    const bool peak = (tick / 4) % 2 == 1;
    const double rate = peak ? 4000.0 : 100.0;
    for (auto& item : items) {
      item += static_cast<std::uint64_t>(
          rate * to_seconds(config.control_period) +
          rng.uniform(0.0, 4.0));
    }
    controller.observe(now, items);
    const FleetPlan plan = controller.plan(now, current);
    for (const FleetMove& move : plan.moves) {
      ASSERT_LT(move.pair, pairs);
      if (moved[move.pair]) {
        EXPECT_GE(now - last_move[move.pair], config.cooldown)
            << "pair " << move.pair << " moved twice inside one cooldown";
      }
      moved[move.pair] = true;
      last_move[move.pair] = now;
      ++total_moves;
    }
    current = plan.target;
  }
  // The property must not hold vacuously: the oscillation really did
  // drive migrations, the cooldown just rationed them.
  EXPECT_GT(total_moves, 0u);
  EXPECT_EQ(controller.planned_moves(), total_moves);
}

core::PbplConfig sim_config(std::size_t cores) {
  core::PbplConfig config;
  config.cores = cores;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(100);
  config.base_buffer = 25;
  config.service.per_item = microseconds(20);
  return config;
}

std::vector<trace::Trace> seeded_traces(std::size_t pairs, double rate_hz,
                                        SimDuration horizon) {
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < pairs; ++i) {
    Rng rng(0x0f1ee70000 + i);
    const trace::SinusoidRate rate(rate_hz, rate_hz / 4.0, seconds(1),
                                   0.9 * static_cast<double>(i));
    traces.push_back(trace::sample_nhpp(rate, horizon, rng));
  }
  return traces;
}

struct SimRun {
  core::PbplResult result;
  std::uint64_t migrations = 0;
  std::size_t offered = 0;
};

SimRun run_sim(bool elastic, std::size_t pairs, std::size_t cores, double rate_hz) {
  const SimDuration horizon = seconds(1);
  const auto traces = seeded_traces(pairs, rate_hz, horizon);
  const core::PbplConfig config = sim_config(cores);

  sim::Simulator simulator;
  core::PbplSystem system(simulator, pairs, config);
  FleetConfig fc = controller_config();
  fc.control_period = milliseconds(50);
  fc.cooldown = milliseconds(200);
  fc.cost.slot = config.resolved_slot_size();
  fc.cost.service = config.service;
  FleetController controller(pairs, cores, fc);
  SimFleetDriver driver(simulator, system, controller);

  system.start();
  if (elastic) driver.start();
  for (std::size_t i = 0; i < pairs; ++i) {
    core::PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, traces[i].timestamps(), horizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  simulator.run_until(horizon);
  driver.stop();

  SimRun run{system.finish(horizon), driver.migrations(), 0};
  for (const auto& t : traces) run.offered += t.size();
  return run;
}

TEST(FleetSim, MidRunMigrationConservesEveryItem) {
  const SimDuration horizon = seconds(1);
  const auto traces = seeded_traces(4, 1500.0, horizon);
  sim::Simulator simulator;
  core::PbplSystem system(simulator, 4, sim_config(2));
  system.start();
  for (std::size_t i = 0; i < 4; ++i) {
    core::PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, traces[i].timestamps(), horizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  // Migrate live, twice, at points where buffers hold in-flight items.
  simulator.run_until(milliseconds(310));
  system.migrate_consumer(0, 1);
  system.migrate_consumer(3, 0);
  simulator.run_until(milliseconds(640));
  system.migrate_consumer(0, 0);
  simulator.run_until(horizon);
  EXPECT_EQ(system.placement()[0], 0u);
  EXPECT_EQ(system.placement()[3], 0u);

  const core::PbplResult result = system.finish(horizon);
  std::size_t offered = 0;
  for (const auto& t : traces) offered += t.size();
  EXPECT_EQ(result.items, offered);  // nothing lost or duplicated
}

TEST(FleetSim, ElasticControllerCutsPaidWakeupsAtLowUtilization) {
  // 6 pairs × 500 Hz × 20 µs ≈ 6% of one core: consolidation territory.
  const SimRun fixed = run_sim(/*elastic=*/false, 6, 3, 500.0);
  const SimRun elastic = run_sim(/*elastic=*/true, 6, 3, 500.0);
  EXPECT_EQ(fixed.result.items, fixed.offered);
  EXPECT_EQ(elastic.result.items, elastic.offered);
  EXPECT_GT(elastic.migrations, 0u);
  EXPECT_LT(elastic.result.paid_wakeups, fixed.result.paid_wakeups);
}

TEST(FleetSim, ElasticRunReplaysBitIdentically) {
  const SimRun a = run_sim(/*elastic=*/true, 6, 3, 500.0);
  const SimRun b = run_sim(/*elastic=*/true, 6, 3, 500.0);
  EXPECT_EQ(a.result.items, b.result.items);
  EXPECT_EQ(a.result.paid_wakeups, b.result.paid_wakeups);
  EXPECT_EQ(a.migrations, b.migrations);
}

core::PbplConfig thread_config(std::size_t cores) {
  core::PbplConfig config;
  config.cores = cores;
  config.slot_size = milliseconds(2);
  config.max_latency = milliseconds(10);
  config.base_buffer = 64;
  return config;
}

TEST(FleetThreadHost, ManualLiveMigrationPreservesConservation) {
  const std::size_t pairs = 4;
  runtime::ThreadPbpl runtime(pairs, thread_config(2));

  constexpr std::uint64_t kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < pairs; ++i) {
    producers.emplace_back([&runtime, i] {
      for (std::uint64_t n = 0; n < kPerProducer; ++n) runtime.produce(i);
    });
  }
  // Storm the placement while the producers flood: every call must
  // succeed (the runtime is live) and no item may escape the ledger.
  std::uint64_t requested = 0;
  for (int round = 0; round < 60; ++round) {
    const std::size_t pair = static_cast<std::size_t>(round) % pairs;
    const std::size_t core = static_cast<std::size_t>(round / 7) % 2;
    ASSERT_TRUE(runtime.migrate(pair, core));
    ++requested;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& producer : producers) producer.join();
  runtime.stop();

  runtime::ThreadPbplStats stats = runtime.stats();
  EXPECT_EQ(stats.produced, pairs * kPerProducer);
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
  // Same-core requests are no-ops; everything else must have landed.
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_LE(stats.migrations, requested);
  for (const std::size_t core : runtime.placement()) EXPECT_LT(core, 2u);
  EXPECT_FALSE(runtime.migrate(0, 1));  // stopped runtime refuses
}

TEST(FleetThreadHost, ElasticModeConsolidatesParksAndConserves) {
  fleet::FleetConfig fc;
  fc.mode = fleet::FleetMode::kElastic;
  fc.control_period = milliseconds(15);
  fc.cooldown = milliseconds(60);

  runtime::ThreadPbpl runtime(4, thread_config(4), {}, nullptr, fc);

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < 4; ++i) {
    producers.emplace_back([&runtime, &done, i] {
      while (!done.load(std::memory_order_relaxed)) {
        runtime.produce(i);
        std::this_thread::sleep_for(std::chrono::microseconds(500));  // ~2 kHz
      }
    });
  }

  // A trickle on 4 cores is consolidation territory: wait (bounded) for
  // the controller to pack the pairs and park at least one empty core.
  bool parked = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::vector<bool> cores = runtime.parked_cores();
    for (const bool p : cores) parked = parked || p;
    if (parked) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Let a few more control ticks run so the controller has rate
  // observations on the books (the very first tick only anchors).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true, std::memory_order_relaxed);
  for (auto& producer : producers) producer.join();
  runtime.stop();

  EXPECT_TRUE(parked) << "controller never parked an emptied core";
  runtime::ThreadPbplStats stats = runtime.stats();
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.core_parks, 0u);
  // Park/unpark bookkeeping must reconcile with the final core states.
  std::uint64_t still_parked = 0;
  for (const bool p : runtime.parked_cores()) still_parked += p ? 1 : 0;
  EXPECT_EQ(stats.core_parks - stats.core_unparks, still_parked);
  ASSERT_NE(runtime.fleet_controller(), nullptr);
  EXPECT_GT(runtime.fleet_controller()->observations(), 0u);
}

}  // namespace
}  // namespace pcpc::fleet
