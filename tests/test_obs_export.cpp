// Exporter tests: the Perfetto trace must be structurally valid JSON in
// the Chrome trace-event dialect (the golden-structure check the smoke
// gate relies on), and the metrics JSON/CSV must reproduce the ledger's
// paid-wakeup total exactly.  A deliberately tiny hand-built session
// keeps the golden assertions exact; a real sim run keeps them honest.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/obs/exporters.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/trace/arrival_process.hpp"

namespace pcpc::obs {
namespace {

/// Structural JSON validation: every brace/bracket outside a string must
/// balance, strings must terminate, and no control characters may leak
/// unescaped.  Returns an empty string when valid, else a diagnostic.
std::string validate_json_structure(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return "unescaped control character at offset " + std::to_string(i);
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) {
          return std::string("mismatched '") + c + "' at offset " + std::to_string(i);
        }
        stack.pop_back();
        break;
      default: break;
    }
  }
  if (in_string) return "unterminated string";
  if (!stack.empty()) return "unbalanced braces at end of document";
  return "";
}

/// Extracts the integer immediately following `"key":` (first match).
std::int64_t json_int_field(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return -1;
  return std::stoll(text.substr(pos + needle.size()));
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// A tiny deterministic session: two cores, one wake group with a paid
/// leader and a free latcher, one batch span, one fault, one drop.
void populate_golden_session() {
  note_wakeup(0, 0, /*slot=*/3, /*paid=*/true, /*scheduled=*/true, 1000);
  note_wakeup(0, 1, /*slot=*/3, /*paid=*/false, /*scheduled=*/true, 1000);
  note_slot_batch(0, 0, /*slot=*/3, /*batch=*/7, /*ts_ns=*/1000, /*dur_ns=*/500);
  note_reservation(1, 1, /*slot=*/4, /*latched=*/true, 1500);
  note_fault(FaultKind::kBurst, 8);
  note_drop(1, DropPath::kNewest, 2000);
}

TEST(PerfettoExport, GoldenSessionStructure) {
  Session session;
  populate_golden_session();
  std::ostringstream out;
  write_perfetto_trace(out, session);
  const std::string trace = out.str();

  EXPECT_EQ(validate_json_structure(trace), "");
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');

  // Chrome trace-event dialect markers Perfetto keys on.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Track metadata: a process name and one named lane per core (0 and 1).
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"core 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"core 1\""), std::string::npos);

  // The wake group: one paid instant, one free instant, same timestamp.
  EXPECT_EQ(count_occurrences(trace, "\"name\":\"wakeup paid c0\""), 1u);
  EXPECT_EQ(count_occurrences(trace, "\"name\":\"wakeup free c1\""), 1u);
  EXPECT_EQ(count_occurrences(trace, "\"paid\":1"), 1u);
  EXPECT_EQ(count_occurrences(trace, "\"paid\":0"), 1u);

  // The batch drain is a duration event ("X") with its length in µs.
  EXPECT_NE(trace.find("\"ph\":\"X\",\"dur\":0.5"), std::string::npos);
  // Everything else is an instant event.
  EXPECT_GE(count_occurrences(trace, "\"ph\":\"i\""), 4u);
  // Payload spot checks.
  EXPECT_NE(trace.find("\"latched\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"fault\":\"burst\""), std::string::npos);
  EXPECT_NE(trace.find("\"path\":\"drop_newest\""), std::string::npos);
  // Drop accounting rides along in otherData.
  EXPECT_NE(trace.find("\"dropped_ring\":0"), std::string::npos);
}

TEST(PerfettoExport, EmptySessionIsStillLoadable) {
  Session session;
  std::ostringstream out;
  write_perfetto_trace(out, session);
  const std::string trace = out.str();
  EXPECT_EQ(validate_json_structure(trace), "");
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"events\":0"), std::string::npos);
}

TEST(MetricsExport, JsonReportsLedgerTotalsExactly) {
  Session session;
  populate_golden_session();
  std::ostringstream out;
  write_metrics_json(out, session);
  const std::string metrics = out.str();

  EXPECT_EQ(validate_json_structure(metrics), "");
  EXPECT_EQ(json_int_field(metrics, "wakeups.paid"), 1);
  EXPECT_EQ(json_int_field(metrics, "wakeups.free"), 1);
  EXPECT_EQ(json_int_field(metrics, "consumer.items"), 7);
  EXPECT_EQ(json_int_field(metrics, "faults.injected"), 1);
  EXPECT_EQ(json_int_field(metrics, "drops.items"), 1);
  // The ledger object itself, with per-consumer attribution.
  const auto wakeups_pos = metrics.find("\"wakeups\":{");
  ASSERT_NE(wakeups_pos, std::string::npos);
  const std::string ledger = metrics.substr(wakeups_pos);
  EXPECT_EQ(json_int_field(ledger, "paid"), 1);
  EXPECT_EQ(json_int_field(ledger, "free"), 1);
  EXPECT_NE(ledger.find("\"per_consumer\":["), std::string::npos);
  EXPECT_NE(ledger.find("\"per_core\":["), std::string::npos);
}

TEST(MetricsExport, CsvIsRectangular) {
  Session session;
  populate_golden_session();
  std::ostringstream out;
  write_metrics_csv(out, session);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "metric,kind,value");
  std::size_t rows = 0;
  bool saw_paid = false;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(count_occurrences(line, ","), 2u) << line;
    if (line == "wakeups.ledger.paid,counter,1") saw_paid = true;
  }
  EXPECT_GT(rows, 10u);
  EXPECT_TRUE(saw_paid);
}

TEST(MetricsExport, SimRunPaidTotalMatchesSimulator) {
  // End-to-end: the exported "paid" field on a real deterministic run
  // equals the simulator's internal Σ w(τ) — the acceptance criterion of
  // the observability issue, checked at the document level.
  const SimDuration horizon = seconds(1);
  std::vector<trace::Trace> traces;
  Rng rng(0xfeed);
  for (std::size_t i = 0; i < 3; ++i) {
    Rng stream = rng.fork();
    traces.push_back(trace::sample_nhpp(trace::ConstantRate(1000.0), horizon, stream));
  }
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);

  Session session;
  const auto result = core::run_pbpl(traces, horizon, config);

  std::ostringstream json;
  write_metrics_json(json, session);
  EXPECT_EQ(validate_json_structure(json.str()), "");
  EXPECT_EQ(json_int_field(json.str(), "wakeups.paid"),
            static_cast<std::int64_t>(result.paid_wakeups));
  EXPECT_GT(result.paid_wakeups, 0u);

  std::ostringstream trace_out;
  write_perfetto_trace(trace_out, session);
  EXPECT_EQ(validate_json_structure(trace_out.str()), "");
  EXPECT_GE(count_occurrences(trace_out.str(), "\"cat\":\"wakeup\""), 1u);
}

}  // namespace
}  // namespace pcpc::obs
