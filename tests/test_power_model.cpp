// Tests for the C-state ladder, the energy ledger and the PowerTop report.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pcpc/power/cstate.hpp"
#include "pcpc/power/energy_ledger.hpp"
#include "pcpc/power/powertop.hpp"

namespace pcpc::power {
namespace {

TEST(CState, TwoStateEnergyIsLinear) {
  const CStateModel model = CStateModel::two_state(0.2);
  EXPECT_NEAR(model.idle_energy(seconds(1)), 0.2, 1e-12);
  EXPECT_NEAR(model.idle_energy(milliseconds(500)), 0.1, 1e-12);
  EXPECT_EQ(model.idle_energy(0), 0.0);
}

TEST(CState, LadderDescendsWithGapLength) {
  const CStateModel model = CStateModel::arndale_like();
  // Mean idle power falls monotonically with longer contiguous gaps.
  double previous = 1e9;
  for (const SimDuration gap : {microseconds(10), microseconds(200), milliseconds(1),
                                milliseconds(10), milliseconds(100)}) {
    const double p = model.idle_power(gap);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

class CStateSubadditivity
    : public ::testing::TestWithParam<std::pair<SimDuration, SimDuration>> {};

TEST_P(CStateSubadditivity, SplittingAGapNeverSavesEnergy) {
  // The model foundation of Figure 1: one contiguous idle gap costs at
  // most as much as the same time split in two.
  const auto [a, b] = GetParam();
  const CStateModel model = CStateModel::arndale_like();
  EXPECT_LE(model.idle_energy(a + b), model.idle_energy(a) + model.idle_energy(b) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    GapPairs, CStateSubadditivity,
    ::testing::Values(std::pair{microseconds(50), microseconds(50)},
                      std::pair{microseconds(500), microseconds(500)},
                      std::pair{milliseconds(2), milliseconds(2)},
                      std::pair{milliseconds(1), milliseconds(30)},
                      std::pair{microseconds(10), milliseconds(100)}));

TEST(CState, DeepestReached) {
  const CStateModel model = CStateModel::arndale_like();
  EXPECT_EQ(model.deepest_reached(microseconds(10)).name, "C1-wfi");
  EXPECT_EQ(model.deepest_reached(milliseconds(1)).name, "C3-core-off");
  EXPECT_EQ(model.deepest_reached(milliseconds(100)).name, "C4-cluster-off");
}

TEST(CState, LadderEnergyHandComputed) {
  // Two-level ladder: 0.2 W until 1 ms, then 0.05 W.
  const CStateModel model({CState{"shallow", 0.2, 0, 0},
                           CState{"deep", 0.05, milliseconds(1), microseconds(10)}});
  // 3 ms gap: 1 ms at 0.2 + 2 ms at 0.05 = 0.2m + 0.1m = 0.3 mJ.
  EXPECT_NEAR(model.idle_energy(milliseconds(3)), 0.3e-3, 1e-12);
}

TEST(CStateDeath, RejectsBrokenLadder) {
  EXPECT_DEATH(CStateModel({CState{"a", 0.1, 0, 0}, CState{"b", 0.2, milliseconds(1), 0}}),
               "power");
  EXPECT_DEATH(CStateModel({CState{"a", 0.1, milliseconds(1), 0}}), "immediately");
}

PowerModelParams simple_params() {
  PowerModelParams p = PowerModelParams::simplified(/*active_w=*/1.0, /*idle_w=*/0.1,
                                                    /*wakeup_j=*/1e-5);
  p.item_transport_energy_j = 0.0;
  return p;
}

TEST(EnergyLedger, HandComputedEnergy) {
  CoreTimeline t;
  t.wake(0);
  t.sleep(milliseconds(400));
  t.finalize(seconds(1));
  const EnergyLedger ledger(simple_params());
  // 0.4s * 1.0W + 0.6s * 0.1W + 1 wakeup * 1e-5 J.
  EXPECT_NEAR(ledger.energy_joules(t), 0.4 + 0.06 + 1e-5, 1e-9);
  EXPECT_NEAR(ledger.baseline_joules(t), 0.1, 1e-12);
  // Extra power: (0.46001 - 0.1) / 1s.
  EXPECT_NEAR(ledger.extra_power_watts(t), 0.36001, 1e-6);
}

TEST(EnergyLedger, IdleTimelineHasZeroExtraPower) {
  CoreTimeline t;
  t.finalize(seconds(1));
  const EnergyLedger ledger(simple_params());
  EXPECT_NEAR(ledger.extra_power_watts(t), 0.0, 1e-12);
}

TEST(EnergyLedger, ActiveScaleDiscountsActivePower) {
  CoreTimeline t;
  t.wake(0);
  t.finalize(seconds(1));
  const EnergyLedger ledger(simple_params());
  const double full = ledger.extra_power_watts(t, 1.0);
  const double scaled = ledger.extra_power_watts(t, 0.85);
  // One second fully active: the scale shaves exactly 0.15 W; the wakeup
  // energy term is identical in both and cancels in the difference.
  EXPECT_NEAR(full - scaled, 0.15, 1e-9);
}

TEST(EnergyLedger, MoreWakeupsMoreEnergy) {
  // Same active time split into more activations costs more.
  const EnergyLedger ledger(PowerModelParams{});
  CoreTimeline few;
  few.wake(0);
  few.sleep(milliseconds(100));
  few.finalize(seconds(1));
  CoreTimeline many;
  for (int i = 0; i < 10; ++i) {
    many.wake(milliseconds(100 * i));
    many.sleep(milliseconds(100 * i + 10));
  }
  many.finalize(seconds(1));
  EXPECT_EQ(few.active_time(), many.active_time());
  EXPECT_GT(ledger.energy_joules(many), ledger.energy_joules(few));
}

TEST(EnergyLedger, TransportPower) {
  PowerModelParams p;
  p.item_transport_energy_j = 10e-6;
  const EnergyLedger ledger(p);
  EXPECT_NEAR(ledger.transport_power_watts(100000, seconds(1)), 1.0, 1e-9);
  EXPECT_NEAR(ledger.transport_power_watts(100000, seconds(10)), 0.1, 1e-9);
  EXPECT_EQ(ledger.transport_power_watts(100, 0), 0.0);
}

TEST(EnergyLedger, ItemEnergyExcludesInvocationOverhead) {
  ServiceModel service;
  service.per_item = microseconds(2);
  service.per_invocation = microseconds(5);
  PowerModelParams p;
  p.active_power_w = 1.0;
  const EnergyLedger ledger(p);
  EXPECT_NEAR(ledger.item_energy_j(service, 10), 20e-6, 1e-12);
}

TEST(ServiceModel, BatchTime) {
  ServiceModel service;
  service.per_item = microseconds(3);
  service.per_invocation = microseconds(7);
  EXPECT_EQ(service.batch_time(0), microseconds(7));
  EXPECT_EQ(service.batch_time(10), microseconds(37));
}

TEST(PowerTop, RowAggregatesCores) {
  CoreTimeline a;
  a.wake(0);
  a.sleep(milliseconds(100));
  a.finalize(seconds(1));
  CoreTimeline b;
  b.wake(0);
  b.sleep(milliseconds(200));
  b.wake(milliseconds(500));
  b.sleep(milliseconds(600));
  b.finalize(seconds(1));
  std::vector<CoreTimeline> cores;
  cores.push_back(std::move(a));
  cores.push_back(std::move(b));
  const EnergyLedger ledger(simple_params());
  const PowerTopRow row = powertop_row("test", cores, ledger);
  EXPECT_NEAR(row.wakeups_per_s, 3.0, 1e-9);
  EXPECT_NEAR(row.usage_ms_per_s, 400.0, 1e-9);
  EXPECT_GT(row.extra_power_w, 0.0);
}

TEST(PowerTop, RenderContainsColumns) {
  std::vector<PowerTopRow> rows{{"Mutex", 100.0, 50.0, 0.5}};
  const std::string out = render_report(rows, "title");
  EXPECT_NE(out.find("Mutex"), std::string::npos);
  EXPECT_NE(out.find("wakeups/s"), std::string::npos);
  EXPECT_NE(out.find("500.00"), std::string::npos);  // 0.5 W → 500 mW
}

}  // namespace
}  // namespace pcpc::power
