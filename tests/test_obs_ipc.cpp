// Cross-process telemetry plane: merge identities, crash-safe folds,
// span joins and attribution conservation.
//
// The properties pinned here are the telemetry plane's contract:
//
//   - merge identity: the shm-merged counter totals equal the sum of the
//     per-process locals exactly — including a producer that was
//     SIGKILLed mid-run and folded into the retired tallies by the
//     reaper (counts are never lost to slot reuse);
//   - paid-wake exactness, cross-process: merged telemetry paid_wakes ==
//     the channel's futex_wakes == the consumer session ledger's Σ w(τ);
//   - span join soundness: sampled item lifecycles drained out of the
//     producers' shm rings fold into complete spans on the shared
//     segment-epoch clock (no negative or re-ordered stage timestamps),
//     and every wake a span joins against exists in the ledger
//     (sampled paid wakes ⊆ ledger paid wakes);
//   - attribution conservation on the thread host: the --slo-report pair
//     rows are the ledger rows, so Σ pairs items == the runtime's items
//     and produced == items + drops, exactly.
//
// Fork-based tests run under ASan/UBSan via ci/sanitize.sh and self-skip
// under TSan (fork without exec).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/ipc/channel.hpp"
#include "pcpc/ipc/futex.hpp"
#include "pcpc/obs/attribution.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/obs/spans.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"
#include "pcpc/trace/arrival_process.hpp"

#if defined(__SANITIZE_THREAD__)
#define PCPC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCPC_TSAN 1
#endif
#endif
#ifndef PCPC_TSAN
#define PCPC_TSAN 0
#endif

#define PCPC_SKIP_UNDER_TSAN()                                                   \
  do {                                                                           \
    if (PCPC_TSAN) GTEST_SKIP() << "fork-based harness incompatible with TSan"; \
  } while (0)

namespace pcpc::ipc {
namespace {

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return "/pcpc_" + std::string(tag) + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

ChannelConfig test_config(std::uint64_t span_every) {
  ChannelConfig cfg;
  cfg.capacity = 256;
  cfg.heartbeat_period_ns = 500'000;
  cfg.heartbeat_timeout_ns = 4'000'000;
  cfg.wake_threshold = 4;
  cfg.span_sample_every = span_every;
  return cfg;
}

ProducerConfig child_config() {
  ProducerConfig cfg;
  cfg.attach.attempts = 100;
  cfg.attach.initial_backoff_ms = 1;
  cfg.attach.max_backoff_ms = 20;
  cfg.full_retries = 1'000'000;
  return cfg;
}

/// Child body: attach, push `n` items (retrying kFull forever — the
/// parent is draining), report the acked count through `fd`, then either
/// detach cleanly or park for the parent's SIGKILL.
[[noreturn]] void producer_child(const std::string& name, std::uint64_t n, int fd,
                                 bool park_for_kill) {
  auto producer = Producer::attach(name, child_config());
  if (!producer.has_value()) _exit(2);
  std::uint64_t acked = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (;;) {
      const PushResult r = producer->push(i);
      if (r == PushResult::kOk) {
        ++acked;
        break;
      }
      if (r != PushResult::kFull) _exit(3);
    }
  }
  if (::write(fd, &acked, sizeof(acked)) != sizeof(acked)) _exit(4);
  if (park_for_kill) {
    for (;;) ::pause();  // hold the registry slot; no detach, no heartbeat
  }
  producer->detach();
  _exit(0);
}

/// Drains until `expected` items were consumed and all `children` exited
/// (reaping them), with a deadline.  Calls wait() on idle edges so the
/// consumer actually sleeps and pays for wakes.
bool drain_until(Consumer& consumer, std::uint64_t expected,
                 std::vector<pid_t>& children, std::uint64_t* consumed) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    *consumed += consumer.drain([](std::uint64_t) {});
    for (auto it = children.begin(); it != children.end();) {
      int status = 0;
      if (::waitpid(*it, &status, WNOHANG) == *it) {
        it = children.erase(it);
      } else {
        ++it;
      }
    }
    if (*consumed >= expected && children.empty()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    if (!consumer.has_visible_work()) consumer.wait(/*timeout_ns=*/1'000'000);
  }
}

TEST(ObsIpc, MergedTotalsEqualSumOfPerProcessLocals) {
  PCPC_SKIP_UNDER_TSAN();
  if (!kFutexSupported) GTEST_SKIP() << "no futex on this platform";
  constexpr std::uint64_t kChildren = 3;
  constexpr std::uint64_t kItems = 2000;

  obs::SessionOptions options;
  options.span_sample_every = 8;
  obs::Session session(options);

  const std::string name = unique_name("obs_merge");
  auto consumer = Consumer::create(name, test_config(8));
  ASSERT_TRUE(consumer.has_value());

  int pipe_fd[2];
  ASSERT_EQ(::pipe(pipe_fd), 0);
  std::vector<pid_t> children;
  for (std::uint64_t c = 0; c < kChildren; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipe_fd[0]);
      producer_child(name, kItems, pipe_fd[1], /*park_for_kill=*/false);
    }
    children.push_back(pid);
  }
  ::close(pipe_fd[1]);

  std::uint64_t consumed = 0;
  ASSERT_TRUE(drain_until(*consumer, kChildren * kItems, children, &consumed));
  // Every child's own acked tally, read back from the pipe: the
  // per-process locals the merged totals must sum to.
  std::uint64_t local_sum = 0;
  for (std::uint64_t c = 0; c < kChildren; ++c) {
    std::uint64_t acked = 0;
    ASSERT_EQ(::read(pipe_fd[0], &acked, sizeof(acked)),
              static_cast<ssize_t>(sizeof(acked)));
    local_sum += acked;
  }
  ::close(pipe_fd[0]);
  consumer->drain_telemetry();

  const TelemetrySnapshot tel = consumer->telemetry();
  const ConservationReport rep = consumer->report();
  EXPECT_EQ(local_sum, kChildren * kItems);
  EXPECT_EQ(tel.pushed, local_sum);  // merged == Σ per-process locals, exact
  EXPECT_EQ(consumed, local_sum);
  // Cross-process paid-wake chain: merged telemetry == futex doorbell
  // counter == the consumer session ledger's Σ w(τ), identically.
  EXPECT_EQ(tel.paid_wakes, rep.futex_wakes);
  EXPECT_EQ(session.ledger().paid_total(), rep.futex_wakes);
}

TEST(ObsIpc, SigkilledProducerFoldsIntoRetiredTotals) {
  PCPC_SKIP_UNDER_TSAN();
  if (!kFutexSupported) GTEST_SKIP() << "no futex on this platform";
  constexpr std::uint64_t kItems = 500;
  constexpr std::uint64_t kSpanEvery = 8;

  obs::SessionOptions options;
  options.span_sample_every = kSpanEvery;
  obs::Session session(options);

  const std::string name = unique_name("obs_kill");
  auto consumer = Consumer::create(name, test_config(kSpanEvery));
  ASSERT_TRUE(consumer.has_value());

  int pipe_fd[2];
  ASSERT_EQ(::pipe(pipe_fd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fd[0]);
    producer_child(name, kItems, pipe_fd[1], /*park_for_kill=*/true);
  }
  ::close(pipe_fd[1]);

  // Drain concurrently until the child reports all items acked (it
  // blocks on a full ring otherwise), then SIGKILL it while it still
  // holds its registry slot.
  std::uint64_t acked = 0;
  std::uint64_t consumed = 0;
  {
    std::atomic<bool> got{false};
    std::thread reader([&] {
      got.store(::read(pipe_fd[0], &acked, sizeof(acked)) ==
                static_cast<ssize_t>(sizeof(acked)));
    });
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!got.load() && std::chrono::steady_clock::now() < deadline) {
      consumed += consumer->drain([](std::uint64_t) {});
      if (!consumer->has_visible_work()) consumer->wait(/*timeout_ns=*/1'000'000);
    }
    reader.join();
    ASSERT_TRUE(got.load());
    ::close(pipe_fd[0]);
  }
  ASSERT_EQ(acked, kItems);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  ASSERT_EQ(::waitpid(pid, nullptr, 0), pid);

  // The reaper needs the heartbeat stale AND the pid gone; loop until it
  // fires, folding the dead peer's counters into the retired totals.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (consumer->report().peers_reaped == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "reaper never fired";
    consumed += consumer->drain([](std::uint64_t) {});
    consumer->reap();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  consumed += consumer->drain([](std::uint64_t) {});

  const TelemetrySnapshot tel = consumer->telemetry();
  const ConservationReport rep = consumer->report();
  EXPECT_TRUE(tel.live.empty());          // the slot was freed...
  EXPECT_EQ(tel.pushed, kItems);          // ...but no counts were lost
  EXPECT_EQ(consumed, kItems);
  EXPECT_EQ(rep.admitted, rep.consumed + rep.reclaimed + rep.residue);
  // The span-stage counter folds exactly too: the child published two
  // stages (produce, enqueue) per sampled position before it died.
  const std::uint64_t sampled_positions = (kItems + kSpanEvery - 1) / kSpanEvery;
  EXPECT_EQ(tel.span_stages, 2 * sampled_positions);
  EXPECT_EQ(tel.paid_wakes, rep.futex_wakes);
  EXPECT_EQ(session.ledger().paid_total(), rep.futex_wakes);
}

TEST(ObsIpc, CrossProcessSpansJoinOnSharedClock) {
  PCPC_SKIP_UNDER_TSAN();
  if (!kFutexSupported) GTEST_SKIP() << "no futex on this platform";
  constexpr std::uint64_t kChildren = 2;
  constexpr std::uint64_t kItems = 1600;
  constexpr std::uint64_t kSpanEvery = 8;

  obs::SessionOptions options;
  options.span_sample_every = kSpanEvery;
  obs::Session session(options);

  const std::string name = unique_name("obs_span");
  auto consumer = Consumer::create(name, test_config(kSpanEvery));
  ASSERT_TRUE(consumer.has_value());

  int pipe_fd[2];
  ASSERT_EQ(::pipe(pipe_fd), 0);
  std::vector<pid_t> children;
  for (std::uint64_t c = 0; c < kChildren; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipe_fd[0]);
      producer_child(name, kItems, pipe_fd[1], /*park_for_kill=*/false);
    }
    children.push_back(pid);
  }
  ::close(pipe_fd[1]);
  std::uint64_t consumed = 0;
  ASSERT_TRUE(drain_until(*consumer, kChildren * kItems, children, &consumed));
  ::close(pipe_fd[0]);
  consumer->drain_telemetry();

  const std::vector<obs::Event> events = session.events();
  // Producer-side stages arrive through the shm rings with their origin
  // stamped; all timestamps live in the segment-epoch clock domain, so
  // none may be negative.
  bool saw_remote_stage = false;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::kItemStage) {
      EXPECT_GE(e.ts_ns, 0) << "stage outside the segment clock domain";
      if (e.origin != obs::kOriginLocal) saw_remote_stage = true;
    }
  }
  EXPECT_TRUE(saw_remote_stage);

  const obs::SpanFold fold = obs::fold_spans(events);
  EXPECT_GT(fold.complete_items, 0u);
  for (const obs::ItemSpan& span : fold.items) {
    if (!span.complete()) continue;
    EXPECT_LE(span.produce_ns, span.enqueue_ns);
    EXPECT_LE(span.drain_start_ns, span.handler_done_ns);
    EXPECT_NE(span.produce_origin, obs::kOriginLocal);  // produced remotely
  }
  // The wake join never invents wakes: one batch drains many sampled
  // items, so many spans may share one joined wake — but the *distinct*
  // joined wakes are a subset of the ledger's (sampled paid wakes ⊆
  // ledger paid wakes).
  std::set<std::int64_t> joined_paid, joined_any;
  for (const obs::ItemSpan& span : fold.items) {
    if (span.wake_ns < 0) continue;
    joined_any.insert(span.wake_ns);
    if (span.wake_paid) joined_paid.insert(span.wake_ns);
  }
  EXPECT_GT(fold.joined_paid_wakes, 0u);
  EXPECT_LE(joined_paid.size(), session.ledger().paid_total());
  EXPECT_LE(joined_any.size(),
            session.ledger().paid_total() + session.ledger().free_total());
}

TEST(ObsAttribution, ThreadHostSloReportConservation) {
  constexpr std::size_t kPairs = 3;
  constexpr std::uint64_t kItems = 3000;

  obs::SessionOptions options;
  options.span_sample_every = 16;
  obs::Session session(options);

  core::PbplConfig config;
  config.cores = 2;
  config.base_buffer = 64;
  config.slot_size = milliseconds(2);
  config.max_latency = milliseconds(10);
  {
    runtime::ThreadPbpl runtime(kPairs, config);
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kPairs; ++p) {
      producers.emplace_back([&, p] {
        for (std::uint64_t i = 0; i < kItems; ++i) {
          runtime.produce(p);
          if (i % 64 == 0) std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      });
    }
    for (std::thread& t : producers) t.join();
    runtime.stop();

    const runtime::ThreadPbplStats stats = runtime.stats();
    obs::AttributionOptions aopt;
    aopt.delta_ns = config.max_latency;
    const obs::AttributionReport report = obs::build_attribution(session, aopt);

    // The pair rows are the ledger rows: their sums reproduce the
    // runtime's own conservation totals exactly.
    EXPECT_EQ(stats.produced, kPairs * kItems);
    EXPECT_EQ(report.items, stats.items);
    EXPECT_EQ(report.drops, stats.dropped());
    EXPECT_EQ(report.produced, stats.produced);
    EXPECT_EQ(report.paid + report.free,
              session.ledger().paid_total() + session.ledger().free_total());
    EXPECT_EQ(report.pairs.size(), kPairs);
    std::uint64_t pair_items = 0;
    for (const obs::PairAttribution& row : report.pairs) pair_items += row.items;
    EXPECT_EQ(pair_items, report.items);

    // Spans were armed: the Δ-budget accounting saw samples, and the
    // energy join is consistent (non-negative, summing across pairs).
    EXPECT_GT(report.slo_samples, 0u);
    EXPECT_LE(report.slo_violations, report.slo_samples);
    double pair_joules = 0.0;
    for (const obs::PairAttribution& row : report.pairs) pair_joules += row.joules;
    EXPECT_NEAR(report.joules, pair_joules, 1e-9);
  }
}

TEST(ObsAttribution, SimHostSpansFoldAndLedgerMatchesSimulator) {
  obs::SessionOptions options;
  options.span_sample_every = 32;
  obs::Session session(options);

  std::vector<trace::Trace> traces;
  Rng rng(0x5150);
  for (int i = 0; i < 4; ++i) {
    Rng stream = rng.fork();
    const trace::ConstantRate rate(3000.0);
    traces.push_back(trace::sample_nhpp(rate, seconds(2), stream));
  }
  core::PbplConfig config;
  config.cores = 2;
  const auto result = core::run_pbpl(traces, seconds(2), config);

  EXPECT_EQ(session.ledger().paid_total(), result.paid_wakeups);

  obs::AttributionOptions aopt;
  aopt.delta_ns = config.max_latency;
  const obs::AttributionReport report = obs::build_attribution(session, aopt);
  EXPECT_GT(report.spans.items.size(), 0u);
  EXPECT_GT(report.spans.complete_items, 0u);
  EXPECT_EQ(report.spans.orphan_stages, 0u);  // virtual time loses nothing
  EXPECT_GT(report.items, 0u);
  EXPECT_GT(report.slo_samples, 0u);
  std::set<std::int64_t> joined_paid;
  for (const obs::ItemSpan& span : report.spans.items) {
    if (span.wake_ns >= 0 && span.wake_paid) joined_paid.insert(span.wake_ns);
  }
  EXPECT_LE(joined_paid.size(), session.ledger().paid_total());

  // The report serializes as one JSON object with the documented keys.
  std::ostringstream out;
  obs::write_slo_report(out, report);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"\"delta_ns\"", "\"totals\"", "\"spans\"", "\"pairs\"",
                          "\"cores\"", "\"joules_per_item\"", "\"slo_violations\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace pcpc::ipc
