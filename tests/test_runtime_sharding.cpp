// Sharded thread-runtime properties: per-core lock isolation, the
// accounting identity under producer/stop races across every overflow
// policy and queue backend, and the bulk-drain paths' equivalence to the
// single-item paths.  These are the guarantees the per-core refactor
// must not bend — ci/sanitize.sh runs this suite under TSan and ASan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "pcpc/core/config.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/queue/handoff.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"

namespace pcpc::runtime {
namespace {

core::PbplConfig sharding_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(50);
  config.base_buffer = 16;
  config.pool_segment = 8;
  return config;
}

// With 2 consumers on 2 cores the round-robin assignment pins consumer 0
// to core 0 and consumer 1 to core 1.  Park core 0's manager inside a
// blocked handler, then check that core 1 keeps draining on its own
// schedule — under the old global lock, the blocked handler held the one
// runtime mutex and consumer 1 could not be drained at all until the
// handler returned.
TEST(RuntimeSharding, SlowHandlerOnOneCoreDoesNotStallTheOther) {
  std::atomic<bool> blocked_started{false};
  std::atomic<bool> release{false};
  std::atomic<std::uint64_t> fast_items{0};
  const auto handler = [&](std::size_t consumer, std::size_t batch) {
    if (batch == 0) return;
    if (consumer == 0) {
      blocked_started.store(true);
      const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!release.load() && std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      fast_items.fetch_add(batch);
    }
  };
  ThreadPbpl runtime(2, sharding_config(), handler);

  runtime.produce(0);
  const auto start_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!blocked_started.load() && std::chrono::steady_clock::now() < start_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(blocked_started.load()) << "consumer 0 was never drained";

  // Core 0's manager thread is now parked inside the handler.  Core 1
  // must still wake and drain within its normal horizon (max_latency =
  // 50ms; the bound below is generous for loaded CI machines but far
  // below the 10s the blocked handler would impose).
  for (int i = 0; i < 10; ++i) runtime.produce(1);
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (fast_items.load() < 10 && std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool drained_while_blocked = fast_items.load() >= 10 && !release.load();
  release.store(true);
  runtime.stop();
  EXPECT_TRUE(drained_while_blocked)
      << "core 1 drained " << fast_items.load()
      << "/10 items while core 0's handler was blocked";

  const auto stats = runtime.stats();
  EXPECT_EQ(stats.produced, stats.items + stats.dropped());
}

// Hammer the runtime from concurrent producer threads and stop() while
// they are still mid-flood; every offered item must be accounted as
// consumed or as a counted drop, for every overflow policy on every
// queue backend.  This is the identity the per-core stats shards (and
// the post-stop residual sweep in stats()) must keep exact.
TEST(RuntimeSharding, ConservationHoldsAcrossPoliciesAndBackends) {
  using core::OverflowPolicy;
  using queue::BackendKind;
  const OverflowPolicy policies[] = {OverflowPolicy::Block, OverflowPolicy::DropOldest,
                                     OverflowPolicy::DropNewest,
                                     OverflowPolicy::EmergencyBorrow};
  const BackendKind backends[] = {BackendKind::Mutex, BackendKind::SpscRing,
                                  BackendKind::MpscSeg};
  for (const OverflowPolicy policy : policies) {
    for (const BackendKind backend : backends) {
      SCOPED_TRACE(testing::Message() << "policy=" << static_cast<int>(policy)
                                      << " backend=" << static_cast<int>(backend));
      auto config = sharding_config();
      config.overflow_policy = policy;
      config.queue_backend = backend;
      ThreadPbpl runtime(2, config);

      // SpscRing allows one producer thread per consumer; the other
      // backends get two to stress cross-thread admission.
      const std::size_t per_consumer = backend == BackendKind::SpscRing ? 1 : 2;
      constexpr std::uint64_t kItems = 1500;
      std::vector<std::thread> producers;
      for (std::size_t consumer = 0; consumer < 2; ++consumer) {
        for (std::size_t t = 0; t < per_consumer; ++t) {
          producers.emplace_back([&runtime, consumer] {
            for (std::uint64_t i = 0; i < kItems; ++i) runtime.produce(consumer);
          });
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      runtime.stop();  // lands mid-flood on purpose
      for (auto& producer : producers) producer.join();

      const auto stats = runtime.stats();
      EXPECT_EQ(stats.produced, 2 * per_consumer * kItems);
      EXPECT_EQ(stats.produced, stats.items + stats.dropped());
      // stats() must stay idempotent after the residual sweep.
      const auto again = runtime.stats();
      EXPECT_EQ(again.produced, again.items + again.dropped());
      EXPECT_EQ(again.items, stats.items);
      EXPECT_EQ(again.dropped(), stats.dropped());
    }
  }
}

// Fault-injected bursts go through the bulk push path (push_volley);
// the identity and the burst accounting must match the injector's own
// books exactly.
TEST(RuntimeSharding, BurstVolleysKeepTheIdentity) {
  using queue::BackendKind;
  for (const BackendKind backend :
       {BackendKind::Mutex, BackendKind::SpscRing, BackendKind::MpscSeg}) {
    SCOPED_TRACE(testing::Message() << "backend=" << static_cast<int>(backend));
    fault::FaultConfig faults;
    faults.seed = 41;
    faults.burst_probability = 0.3;
    faults.burst_factor = 200;  // volleys larger than one drain chunk
    fault::FaultInjector injector(faults);
    auto config = sharding_config();
    config.queue_backend = backend;
    std::uint64_t offered = 0;
    {
      ThreadPbpl runtime(2, config, {}, &injector);
      for (int i = 0; i < 300; ++i) runtime.produce(static_cast<std::size_t>(i % 2));
      offered = 300 + injector.stats().burst_items;
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      runtime.stop();
      const auto stats = runtime.stats();
      EXPECT_GT(injector.stats().bursts, 0u);
      EXPECT_EQ(stats.produced, offered);
      EXPECT_EQ(stats.produced, stats.items + stats.dropped());
      // Producers joined before stop(), so nothing may be dropped: Block
      // (the default policy) delivers every burst item.
      EXPECT_EQ(stats.items, offered);
    }
  }
}

// Single-threaded differential: the bulk push/pop paths must yield the
// same item sequences, the same overflow counts and the same capacity
// trajectories as per-item try_push/try_pop, on every backend.
TEST(RuntimeSharding, BulkPathsMatchSingleItemPathsExactly) {
  using queue::BackendKind;
  for (const BackendKind backend :
       {BackendKind::Mutex, BackendKind::SpscRing, BackendKind::MpscSeg}) {
    SCOPED_TRACE(testing::Message() << "backend=" << static_cast<int>(backend));
    auto bulk = queue::make_handoff<std::uint64_t>(backend, 32);
    auto single = queue::make_handoff<std::uint64_t>(backend, 32);
    ASSERT_NE(bulk, nullptr);
    ASSERT_NE(single, nullptr);

    std::mt19937_64 rng(20260806);
    std::uint64_t next_value = 0;
    for (int step = 0; step < 5000; ++step) {
      switch (rng() % 4) {
        case 0: {  // volley push: bulk vs the same items pushed one by one
          const std::size_t k = rng() % 9;
          std::vector<std::uint64_t> items(k);
          for (auto& item : items) item = next_value++;
          const std::size_t accepted_bulk =
              bulk->try_push_bulk(std::span<const std::uint64_t>(items));
          std::size_t accepted_single = 0;
          for (const std::uint64_t item : items) {
            if (single->try_push(item)) ++accepted_single;
          }
          ASSERT_EQ(accepted_bulk, accepted_single);
          break;
        }
        case 1: {  // chunked pop: pop_bulk vs repeated try_pop
          const std::size_t k = 1 + rng() % 7;
          std::vector<std::uint64_t> out(k);
          const std::size_t got =
              bulk->pop_bulk(std::span<std::uint64_t>(out.data(), k));
          for (std::size_t i = 0; i < k; ++i) {
            const auto item = single->try_pop();
            if (i < got) {
              ASSERT_TRUE(item.has_value());
              ASSERT_EQ(out[i], *item);
            } else {
              ASSERT_FALSE(item.has_value());
            }
          }
          break;
        }
        case 2: {  // capacity trajectory: same resize on both sides
          const std::size_t target = 1 + rng() % 32;
          ASSERT_EQ(bulk->resize(target), single->resize(target));
          break;
        }
        default: {  // single push on both (mixes the two admission paths)
          const std::uint64_t item = next_value++;
          ASSERT_EQ(bulk->try_push(item), single->try_push(item));
          break;
        }
      }
      ASSERT_EQ(bulk->size(), single->size()) << "step " << step;
      ASSERT_EQ(bulk->capacity(), single->capacity()) << "step " << step;
      ASSERT_EQ(bulk->overflows(), single->overflows()) << "step " << step;
    }

    // Final drain: drain() must deliver exactly the sequence try_pop would.
    std::vector<std::uint64_t> drained;
    bulk->drain([&](std::uint64_t item) { drained.push_back(item); });
    for (const std::uint64_t item : drained) {
      const auto expected = single->try_pop();
      ASSERT_TRUE(expected.has_value());
      ASSERT_EQ(item, *expected);
    }
    EXPECT_FALSE(single->try_pop().has_value());
  }
}

}  // namespace
}  // namespace pcpc::runtime
