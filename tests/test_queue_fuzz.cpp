// Property-based fuzzing of the lock-free queue backends with real
// threads.
//
// Each trial draws its shape (producer count, capacity, burst schedule,
// capacity flapping) from the repo's deterministic Rng, so a failure
// reproduces from the printed seed.  The properties are the queue
// contracts themselves:
//
//   - no loss: with spinning producers, every produced item is consumed;
//   - no duplication: each tagged item appears exactly once;
//   - per-producer FIFO: producer p's items arrive in p's push order,
//     even while the consumer flaps the logical capacity underneath;
//   - drop accounting: with give-up producers, consumed + rejected ==
//     produced, exactly.
//
// The throughput property (SPSC ring must not lose to the mutex buffer
// single-producer) is a *statistical* claim, so it uses the repo's
// hypothesis helpers (paired t-test across interleaved replicates) and is
// skipped under sanitizers, whose instrumentation distorts timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/common/hypothesis.hpp"
#include "pcpc/common/rng.hpp"
#include "pcpc/queue/handoff.hpp"
#include "pcpc/queue/mpsc_queue.hpp"
#include "pcpc/queue/spsc_ring.hpp"

// Timing assertions are meaningless under sanitizer instrumentation.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PCPC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PCPC_SANITIZED 1
#endif
#endif
#ifndef PCPC_SANITIZED
#define PCPC_SANITIZED 0
#endif

namespace pcpc::queue {
namespace {

/// Tagged item: producer id in the high word, per-producer sequence
/// number in the low word.
std::uint64_t tag(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 32) | seq;
}

/// Checks one consumed item against the per-producer FIFO/no-loss/no-dup
/// book-keeping.  `strict` demands gap-free sequences (spinning
/// producers); otherwise only strictly-increasing (give-up producers).
void check_tagged(std::map<std::uint64_t, std::uint64_t>& next_seq,
                  std::uint64_t item, bool strict) {
  const std::uint64_t producer = item >> 32;
  const std::uint64_t seq = item & 0xffffffffULL;
  auto [it, inserted] = next_seq.try_emplace(producer, 0);
  if (strict) {
    ASSERT_EQ(seq, it->second) << "producer " << producer
                               << ": lost or duplicated item";
  } else {
    ASSERT_GE(seq, it->second) << "producer " << producer
                               << ": reordered or duplicated item";
  }
  it->second = seq + 1;
  (void)inserted;
}

TEST(QueueFuzz, MpscSpinningProducersLoseNothing) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(0x5eedULL * 1000 + trial);
    const std::uint64_t producers = 1 + rng.next_below(4);
    const std::size_t capacity = 1 + static_cast<std::size_t>(rng.next_below(128));
    const std::size_t max_capacity =
        capacity + static_cast<std::size_t>(rng.next_below(128));
    const std::uint64_t items = 500 + rng.next_below(1500);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": producers=" +
                 std::to_string(producers) + " cap=" + std::to_string(capacity) +
                 " items=" + std::to_string(items));

    MpscSegQueue<std::uint64_t> queue(capacity, max_capacity);
    std::vector<std::thread> threads;
    for (std::uint64_t p = 0; p < producers; ++p) {
      // Per-producer burst schedule drawn up front (threads must not
      // share the Rng).
      const std::uint64_t burst = 1 + rng.next_below(16);
      threads.emplace_back([&queue, p, items, burst] {
        for (std::uint64_t i = 0; i < items; ++i) {
          while (!queue.try_push(tag(p, i))) std::this_thread::yield();
          if (i % burst == burst - 1) std::this_thread::yield();
        }
      });
    }

    // Consumer: drain everything while flapping the logical capacity —
    // the elastic resize happening mid-flight must never break FIFO or
    // lose admitted items.
    std::map<std::uint64_t, std::uint64_t> next_seq;
    std::uint64_t consumed = 0;
    Rng consumer_rng(trial);
    while (consumed < producers * items) {
      if (auto item = queue.try_pop()) {
        check_tagged(next_seq, *item, /*strict=*/true);
        ++consumed;
        if (consumed % 257 == 0) {
          queue.set_capacity(1 + static_cast<std::size_t>(
                                     consumer_rng.next_below(max_capacity)));
        }
      } else {
        std::this_thread::yield();
      }
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.try_pop().has_value());
  }
}

TEST(QueueFuzz, SpscFifoSurvivesCapacityFlappingAndBatching) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(0xabcdULL * 1000 + trial);
    const std::size_t capacity = 1 + static_cast<std::size_t>(rng.next_below(64));
    const std::size_t max_capacity =
        capacity + static_cast<std::size_t>(rng.next_below(64));
    const std::uint64_t items = 1000 + rng.next_below(3000);
    const std::size_t publish_batch = 1 + static_cast<std::size_t>(rng.next_below(8));
    SCOPED_TRACE("trial " + std::to_string(trial));

    SpscRing<std::uint64_t> ring(capacity, max_capacity);
    std::thread producer([&ring, items, publish_batch] {
      ring.set_publish_batch(publish_batch);
      for (std::uint64_t i = 0; i < items; ++i) {
        while (!ring.try_push(i)) std::this_thread::yield();
      }
      ring.flush();  // publish the final partial batch
    });

    std::uint64_t expected = 0;
    Rng consumer_rng(trial);
    while (expected < items) {
      if (auto item = ring.try_pop()) {
        ASSERT_EQ(*item, expected) << "SPSC broke FIFO";
        ++expected;
        if (expected % 193 == 0) {
          ring.set_capacity(1 + static_cast<std::size_t>(
                                    consumer_rng.next_below(max_capacity)));
        }
      } else {
        std::this_thread::yield();
      }
    }
    producer.join();
    EXPECT_EQ(ring.size(), 0u);
  }
}

TEST(QueueFuzz, HandoffDropAccountingIsExactUnderGiveUpProducers) {
  for (const auto kind : {BackendKind::Mutex, BackendKind::MpscSeg}) {
    for (std::uint64_t trial = 0; trial < 6; ++trial) {
      Rng rng(0xfeedULL * 100 + trial);
      const std::uint64_t producers = 2 + rng.next_below(3);
      const std::size_t capacity = 1 + static_cast<std::size_t>(rng.next_below(32));
      const std::uint64_t items = 2000 + rng.next_below(2000);
      SCOPED_TRACE(std::string(backend_name(kind)) + " trial " +
                   std::to_string(trial));

      auto queue = make_handoff<std::uint64_t>(kind, capacity);
      // The mutex backend's contract: the host holds a lock around every
      // call.  The lock-free backend takes no lock on push.
      std::mutex host_lock;
      const bool locked = !queue->lock_free();
      std::atomic<std::uint64_t> rejected{0};
      std::atomic<bool> done{false};

      std::vector<std::thread> threads;
      for (std::uint64_t p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          std::uint64_t my_rejects = 0;
          for (std::uint64_t i = 0; i < items; ++i) {
            bool stored;
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              stored = queue->try_push(tag(p, i));
            } else {
              stored = queue->try_push(tag(p, i));
            }
            if (!stored) ++my_rejects;  // give up: the item is dropped
          }
          rejected.fetch_add(my_rejects);
        });
      }

      std::map<std::uint64_t, std::uint64_t> next_seq;
      std::uint64_t consumed = 0;
      std::thread consumer([&] {
        for (;;) {
          std::optional<std::uint64_t> item;
          if (locked) {
            std::lock_guard<std::mutex> guard(host_lock);
            item = queue->try_pop();
          } else {
            item = queue->try_pop();
          }
          if (item) {
            check_tagged(next_seq, *item, /*strict=*/false);
            ++consumed;
          } else if (done.load()) {
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              if (queue->size() == 0) return;
            } else if (queue->size() == 0) {
              return;
            }
          } else {
            std::this_thread::yield();
          }
        }
      });
      for (auto& t : threads) t.join();
      done.store(true);
      consumer.join();

      // The conservation identity, exactly: every offered item either
      // reached the consumer or was rejected at the wall — and the
      // hand-off's own overflow counter saw every rejection.
      EXPECT_EQ(consumed + rejected.load(), producers * items);
      EXPECT_EQ(queue->overflows(), rejected.load());
      EXPECT_GT(rejected.load(), 0u) << "workload too tame to hit the wall";
    }
  }
}

// --- Varlen record-ring fuzz: the same contracts at byte granularity.
//
// Real threads drive the varlen rings with seeded size schedules from
// 1 B to the 16 KiB record cap, biased toward the wrap-boundary sizes
// (1, 7, 8, 9, 4095, 4096, 4097, …) that stress the padding rule, while
// the consumer flaps the logical byte capacity underneath.  Every
// record carries a pattern keyed by its identity, so the consumer
// proves no-loss, no-dup, per-producer FIFO *and* no-tear (every byte
// of every delivered span matches the key's pattern — a record torn by
// a concurrent overwrite or a stale wrap cannot). ----------------------

constexpr std::uint32_t kVarMaxPayload = 16u << 10;

/// Seeded payload size: mostly small records (so many live in the ring),
/// a band of mediums, a tail of maximum-size records, and a fixed share
/// of exact wrap-boundary sizes.
std::uint32_t var_fuzz_size(Rng& rng, bool allow_tiny) {
  const std::uint32_t floor = allow_tiny ? 1 : 8;
  const std::uint64_t pick = rng.next_below(100);
  if (pick < 10) {
    static constexpr std::uint32_t kEdges[] = {
        1, 7, 8, 9, 63, 4095, 4096, 4097, 8191, kVarMaxPayload - 1, kVarMaxPayload};
    const std::uint32_t s = kEdges[rng.next_below(std::size(kEdges))];
    return s < floor ? floor : s;
  }
  if (pick < 75) return floor + static_cast<std::uint32_t>(rng.next_below(56));
  if (pick < 95) return 64 + static_cast<std::uint32_t>(rng.next_below(2048));
  return 2048 +
         static_cast<std::uint32_t>(rng.next_below(kVarMaxPayload - 2048 + 1));
}

/// Fills payload bytes [from, size) with the key's pattern.
void var_fill(std::byte* dst, std::uint32_t size, std::uint64_t key,
              std::uint32_t from = 0) {
  for (std::uint32_t i = from; i < size; ++i) {
    dst[i] = static_cast<std::byte>(key * 131 + i * 7);
  }
}

/// True iff payload bytes [from, size) carry exactly the key's pattern.
bool var_matches(const std::byte* src, std::uint32_t size, std::uint64_t key,
                 std::uint32_t from = 0) {
  for (std::uint32_t i = from; i < size; ++i) {
    if (src[i] != static_cast<std::byte>(key * 131 + i * 7)) return false;
  }
  return true;
}

TEST(QueueFuzz, VarlenMpscSpinningProducersLoseNothingUntorn) {
  // Capacity never flaps below one max-size record's footprint, so a
  // spinning producer always eventually fits (same floor the hosts keep).
  const std::size_t floor_bytes = var_record_bytes(kVarMaxPayload);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(0x7a71e9ULL * 1000 + trial);
    const std::uint64_t producers = 1 + rng.next_below(4);
    const std::uint64_t items = 300 + rng.next_below(300);
    const std::size_t max_bytes =
        floor_bytes + (32u << 10) + static_cast<std::size_t>(rng.next_below(32u << 10));
    SCOPED_TRACE("trial " + std::to_string(trial) + ": producers=" +
                 std::to_string(producers) + " items=" + std::to_string(items));

    // Per-producer size schedules drawn up front: threads must not share
    // the Rng, and the consumer replays the same schedule to know every
    // record's exact expected size.
    std::vector<std::vector<std::uint32_t>> sizes(producers);
    for (std::uint64_t p = 0; p < producers; ++p) {
      for (std::uint64_t i = 0; i < items; ++i) {
        sizes[p].push_back(var_fuzz_size(rng, /*allow_tiny=*/false));
      }
    }

    VarMpscRing<> ring(floor_bytes + (16u << 10), max_bytes, kVarMaxPayload);
    std::vector<std::thread> threads;
    for (std::uint64_t p = 0; p < producers; ++p) {
      threads.emplace_back([&ring, &sizes, p, items] {
        for (std::uint64_t i = 0; i < items; ++i) {
          const std::uint32_t size = sizes[p][i];
          VarReservation r;
          while (!ring.try_reserve(size, r)) std::this_thread::yield();
          // First 8 bytes carry the identity; the rest its pattern.
          const std::uint64_t id = tag(p, i);
          std::memcpy(r.data, &id, sizeof(id));
          var_fill(r.data, size, id, /*from=*/8);
          const bool committed = ring.commit(r);
          PCPC_ASSERT_MSG(committed, "no reaper in-process: commit must win");
        }
      });
    }

    std::map<std::uint64_t, std::uint64_t> next_seq;
    std::uint64_t consumed = 0;
    Rng consumer_rng(trial);
    while (consumed < producers * items) {
      const std::size_t n = ring.drain(
          [&](std::span<const std::byte> payload) {
            ASSERT_GE(payload.size(), 8u);
            std::uint64_t id = 0;
            std::memcpy(&id, payload.data(), sizeof(id));
            check_tagged(next_seq, id, /*strict=*/true);
            const std::uint64_t p = id >> 32;
            const std::uint64_t seq = id & 0xffffffffULL;
            ASSERT_EQ(payload.size(), sizes[p][seq]) << "record size corrupted";
            ASSERT_TRUE(var_matches(payload.data(),
                                    static_cast<std::uint32_t>(payload.size()), id,
                                    /*from=*/8))
                << "torn record from producer " << p << " seq " << seq;
          },
          /*max_records=*/1 + consumer_rng.next_below(8));
      if (n == 0) {
        std::this_thread::yield();
      } else {
        consumed += n;
        if (consumed % 97 < n) {
          ring.set_capacity_bytes(
              floor_bytes + static_cast<std::size_t>(
                                consumer_rng.next_below(max_bytes - floor_bytes)));
        }
      }
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(ring.size_bytes(), 0u);
  }
}

TEST(QueueFuzz, VarlenSpscByteExactFifoUnderCapacityFlapping) {
  const std::size_t floor_bytes = var_record_bytes(kVarMaxPayload);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(0x5b5cULL * 1000 + trial);
    const std::uint64_t items = 800 + rng.next_below(800);
    const std::size_t max_bytes =
        floor_bytes + (16u << 10) + static_cast<std::size_t>(rng.next_below(32u << 10));
    SCOPED_TRACE("trial " + std::to_string(trial) + ": items=" +
                 std::to_string(items));

    // Single producer: the whole schedule is the identity, so records as
    // small as ONE byte are fully checkable — the consumer knows record
    // j's exact size and pattern without any embedded tag.
    std::vector<std::uint32_t> sizes;
    for (std::uint64_t i = 0; i < items; ++i) {
      sizes.push_back(var_fuzz_size(rng, /*allow_tiny=*/true));
    }

    VarSpscRing<> ring(floor_bytes + (8u << 10), max_bytes, kVarMaxPayload);
    std::thread producer([&ring, &sizes, items] {
      for (std::uint64_t i = 0; i < items; ++i) {
        VarReservation r;
        while (!ring.try_reserve(sizes[i], r)) std::this_thread::yield();
        var_fill(r.data, sizes[i], /*key=*/i);
        const bool committed = ring.commit(r);
        PCPC_ASSERT_MSG(committed, "no reaper in-process: commit must win");
      }
    });

    std::uint64_t seq = 0;
    Rng consumer_rng(trial);
    while (seq < items) {
      const std::size_t n = ring.drain(
          [&](std::span<const std::byte> payload) {
            ASSERT_EQ(payload.size(), sizes[seq]) << "FIFO or size broken at " << seq;
            ASSERT_TRUE(var_matches(payload.data(),
                                    static_cast<std::uint32_t>(payload.size()), seq))
                << "torn record " << seq;
            ++seq;
          },
          /*max_records=*/1 + consumer_rng.next_below(8));
      if (n == 0) {
        std::this_thread::yield();
      } else if (seq % 61 < n) {
        ring.set_capacity_bytes(
            floor_bytes + static_cast<std::size_t>(
                              consumer_rng.next_below(max_bytes - floor_bytes)));
      }
    }
    producer.join();
    EXPECT_EQ(ring.size_bytes(), 0u);
  }
}

TEST(QueueFuzz, VarlenDropAccountingIsExactUnderGiveUpProducers) {
  for (const auto kind : {BackendKind::Mutex, BackendKind::MpscSeg}) {
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      Rng rng(0xbead5ULL * 100 + trial);
      const std::uint64_t producers = 2 + rng.next_below(3);
      const std::uint64_t items = 600 + rng.next_below(600);
      SCOPED_TRACE(std::string(backend_name(kind)) + " trial " +
                   std::to_string(trial));

      // A tight ring so the wall is hit constantly.
      auto queue = make_var_handoff(kind, /*capacity_bytes=*/2u << 10,
                                    /*max_bytes=*/4u << 10,
                                    /*max_record_payload=*/512);
      std::mutex host_lock;
      const bool locked = !queue->lock_free();
      std::atomic<std::uint64_t> rejected{0};
      std::atomic<std::uint64_t> rejected_bytes{0};
      std::atomic<std::uint64_t> produced_bytes{0};
      std::atomic<bool> done{false};

      std::vector<std::vector<std::uint32_t>> sizes(producers);
      for (std::uint64_t p = 0; p < producers; ++p) {
        for (std::uint64_t i = 0; i < items; ++i) {
          sizes[p].push_back(
              1 + static_cast<std::uint32_t>(rng.next_below(512)));
        }
      }

      std::vector<std::thread> threads;
      for (std::uint64_t p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          std::uint64_t my_rejects = 0, my_reject_bytes = 0, my_bytes = 0;
          std::vector<std::byte> staging(512);
          for (std::uint64_t i = 0; i < items; ++i) {
            const std::uint32_t size = sizes[p][i];
            var_fill(staging.data(), size, tag(p, i));
            my_bytes += size;
            bool stored;
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              stored = queue->try_push_record(
                  std::span<const std::byte>(staging.data(), size));
            } else {
              stored = queue->try_push_record(
                  std::span<const std::byte>(staging.data(), size));
            }
            if (!stored) {  // give up: the record is dropped
              ++my_rejects;
              my_reject_bytes += size;
            }
          }
          rejected.fetch_add(my_rejects);
          rejected_bytes.fetch_add(my_reject_bytes);
          produced_bytes.fetch_add(my_bytes);
        });
      }

      std::uint64_t consumed = 0, consumed_bytes = 0;
      std::thread consumer([&] {
        auto count = [&](std::span<const std::byte> payload) {
          ++consumed;
          consumed_bytes += payload.size();
        };
        for (;;) {
          std::size_t n;
          if (locked) {
            std::lock_guard<std::mutex> guard(host_lock);
            n = queue->drain_records(count, /*max_records=*/64);
          } else {
            n = queue->drain_records(count, /*max_records=*/64);
          }
          if (n > 0) continue;
          if (done.load()) {
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              if (queue->size_bytes() == 0) return;
            } else if (queue->size_bytes() == 0) {
              return;
            }
          } else {
            std::this_thread::yield();
          }
        }
      });
      for (auto& t : threads) t.join();
      done.store(true);
      consumer.join();

      // Byte conservation, exactly: every offered record either reached
      // the consumer whole or was rejected at the wall, and the hand-off
      // counted each rejection with its bytes.
      EXPECT_EQ(consumed + rejected.load(), producers * items);
      EXPECT_EQ(consumed_bytes + rejected_bytes.load(), produced_bytes.load());
      EXPECT_EQ(queue->overflows(), rejected.load());
      EXPECT_EQ(queue->overflow_bytes(), rejected_bytes.load());
      EXPECT_GT(rejected.load(), 0u) << "workload too tame to hit the wall";
    }
  }
}

TEST(QueueFuzz, SpscThroughputNotWorseThanMutexSingleProducer) {
  if (PCPC_SANITIZED) {
    GTEST_SKIP() << "timing property skipped under sanitizers";
  }
  // Paired replicates, interleaved so machine noise hits both sides
  // alike; the hypothesis helper then asks whether the per-pair
  // throughput differences could plausibly favour the mutex buffer.
  constexpr std::size_t kPairs = 10;
  constexpr std::uint64_t kItems = 100000;
  constexpr std::size_t kCapacity = 256;

  auto run_once = [&](BackendKind kind) {
    auto queue = make_handoff<std::uint64_t>(kind, kCapacity);
    std::mutex host_lock;
    const bool locked = !queue->lock_free();
    const auto start = std::chrono::steady_clock::now();
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        for (;;) {
          bool stored;
          if (locked) {
            std::lock_guard<std::mutex> guard(host_lock);
            stored = queue->try_push(i);
          } else {
            stored = queue->try_push(i);
          }
          if (stored) break;
          std::this_thread::yield();
        }
      }
    });
    std::uint64_t consumed = 0;
    while (consumed < kItems) {
      std::optional<std::uint64_t> item;
      if (locked) {
        std::lock_guard<std::mutex> guard(host_lock);
        item = queue->try_pop();
      } else {
        item = queue->try_pop();
      }
      if (item) {
        ++consumed;
      } else {
        // Back off when empty so the mutex side is not strangled by
        // lock contention from a spinning consumer.
        std::this_thread::yield();
      }
    }
    producer.join();
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return static_cast<double>(kItems) / elapsed;  // items per second
  };

  std::vector<double> spsc, mutex_buf;
  for (std::size_t i = 0; i < kPairs; ++i) {
    mutex_buf.push_back(run_once(BackendKind::Mutex));
    spsc.push_back(run_once(BackendKind::SpscRing));
  }
  double spsc_mean = 0, mutex_mean = 0;
  for (std::size_t i = 0; i < kPairs; ++i) {
    spsc_mean += spsc[i] / static_cast<double>(kPairs);
    mutex_mean += mutex_buf[i] / static_cast<double>(kPairs);
  }
  const TestResult verdict = paired_t_test(spsc, mutex_buf, /*level=*/0.99);
  // Fail only on a *statistically confident* regression: the mutex
  // buffer significantly ahead at 99% two-sided confidence.
  EXPECT_FALSE(verdict.significant && mutex_mean > spsc_mean)
      << "SPSC ring slower than mutex buffer single-producer: "
      << spsc_mean / 1e6 << " vs " << mutex_mean / 1e6
      << " Mitems/s (t=" << verdict.statistic << ")";
}

}  // namespace
}  // namespace pcpc::queue
