// Property-based fuzzing of the lock-free queue backends with real
// threads.
//
// Each trial draws its shape (producer count, capacity, burst schedule,
// capacity flapping) from the repo's deterministic Rng, so a failure
// reproduces from the printed seed.  The properties are the queue
// contracts themselves:
//
//   - no loss: with spinning producers, every produced item is consumed;
//   - no duplication: each tagged item appears exactly once;
//   - per-producer FIFO: producer p's items arrive in p's push order,
//     even while the consumer flaps the logical capacity underneath;
//   - drop accounting: with give-up producers, consumed + rejected ==
//     produced, exactly.
//
// The throughput property (SPSC ring must not lose to the mutex buffer
// single-producer) is a *statistical* claim, so it uses the repo's
// hypothesis helpers (paired t-test across interleaved replicates) and is
// skipped under sanitizers, whose instrumentation distorts timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/common/hypothesis.hpp"
#include "pcpc/common/rng.hpp"
#include "pcpc/queue/handoff.hpp"
#include "pcpc/queue/mpsc_queue.hpp"
#include "pcpc/queue/spsc_ring.hpp"

// Timing assertions are meaningless under sanitizer instrumentation.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PCPC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PCPC_SANITIZED 1
#endif
#endif
#ifndef PCPC_SANITIZED
#define PCPC_SANITIZED 0
#endif

namespace pcpc::queue {
namespace {

/// Tagged item: producer id in the high word, per-producer sequence
/// number in the low word.
std::uint64_t tag(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 32) | seq;
}

/// Checks one consumed item against the per-producer FIFO/no-loss/no-dup
/// book-keeping.  `strict` demands gap-free sequences (spinning
/// producers); otherwise only strictly-increasing (give-up producers).
void check_tagged(std::map<std::uint64_t, std::uint64_t>& next_seq,
                  std::uint64_t item, bool strict) {
  const std::uint64_t producer = item >> 32;
  const std::uint64_t seq = item & 0xffffffffULL;
  auto [it, inserted] = next_seq.try_emplace(producer, 0);
  if (strict) {
    ASSERT_EQ(seq, it->second) << "producer " << producer
                               << ": lost or duplicated item";
  } else {
    ASSERT_GE(seq, it->second) << "producer " << producer
                               << ": reordered or duplicated item";
  }
  it->second = seq + 1;
  (void)inserted;
}

TEST(QueueFuzz, MpscSpinningProducersLoseNothing) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(0x5eedULL * 1000 + trial);
    const std::uint64_t producers = 1 + rng.next_below(4);
    const std::size_t capacity = 1 + static_cast<std::size_t>(rng.next_below(128));
    const std::size_t max_capacity =
        capacity + static_cast<std::size_t>(rng.next_below(128));
    const std::uint64_t items = 500 + rng.next_below(1500);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": producers=" +
                 std::to_string(producers) + " cap=" + std::to_string(capacity) +
                 " items=" + std::to_string(items));

    MpscSegQueue<std::uint64_t> queue(capacity, max_capacity);
    std::vector<std::thread> threads;
    for (std::uint64_t p = 0; p < producers; ++p) {
      // Per-producer burst schedule drawn up front (threads must not
      // share the Rng).
      const std::uint64_t burst = 1 + rng.next_below(16);
      threads.emplace_back([&queue, p, items, burst] {
        for (std::uint64_t i = 0; i < items; ++i) {
          while (!queue.try_push(tag(p, i))) std::this_thread::yield();
          if (i % burst == burst - 1) std::this_thread::yield();
        }
      });
    }

    // Consumer: drain everything while flapping the logical capacity —
    // the elastic resize happening mid-flight must never break FIFO or
    // lose admitted items.
    std::map<std::uint64_t, std::uint64_t> next_seq;
    std::uint64_t consumed = 0;
    Rng consumer_rng(trial);
    while (consumed < producers * items) {
      if (auto item = queue.try_pop()) {
        check_tagged(next_seq, *item, /*strict=*/true);
        ++consumed;
        if (consumed % 257 == 0) {
          queue.set_capacity(1 + static_cast<std::size_t>(
                                     consumer_rng.next_below(max_capacity)));
        }
      } else {
        std::this_thread::yield();
      }
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.try_pop().has_value());
  }
}

TEST(QueueFuzz, SpscFifoSurvivesCapacityFlappingAndBatching) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(0xabcdULL * 1000 + trial);
    const std::size_t capacity = 1 + static_cast<std::size_t>(rng.next_below(64));
    const std::size_t max_capacity =
        capacity + static_cast<std::size_t>(rng.next_below(64));
    const std::uint64_t items = 1000 + rng.next_below(3000);
    const std::size_t publish_batch = 1 + static_cast<std::size_t>(rng.next_below(8));
    SCOPED_TRACE("trial " + std::to_string(trial));

    SpscRing<std::uint64_t> ring(capacity, max_capacity);
    std::thread producer([&ring, items, publish_batch] {
      ring.set_publish_batch(publish_batch);
      for (std::uint64_t i = 0; i < items; ++i) {
        while (!ring.try_push(i)) std::this_thread::yield();
      }
      ring.flush();  // publish the final partial batch
    });

    std::uint64_t expected = 0;
    Rng consumer_rng(trial);
    while (expected < items) {
      if (auto item = ring.try_pop()) {
        ASSERT_EQ(*item, expected) << "SPSC broke FIFO";
        ++expected;
        if (expected % 193 == 0) {
          ring.set_capacity(1 + static_cast<std::size_t>(
                                    consumer_rng.next_below(max_capacity)));
        }
      } else {
        std::this_thread::yield();
      }
    }
    producer.join();
    EXPECT_EQ(ring.size(), 0u);
  }
}

TEST(QueueFuzz, HandoffDropAccountingIsExactUnderGiveUpProducers) {
  for (const auto kind : {BackendKind::Mutex, BackendKind::MpscSeg}) {
    for (std::uint64_t trial = 0; trial < 6; ++trial) {
      Rng rng(0xfeedULL * 100 + trial);
      const std::uint64_t producers = 2 + rng.next_below(3);
      const std::size_t capacity = 1 + static_cast<std::size_t>(rng.next_below(32));
      const std::uint64_t items = 2000 + rng.next_below(2000);
      SCOPED_TRACE(std::string(backend_name(kind)) + " trial " +
                   std::to_string(trial));

      auto queue = make_handoff<std::uint64_t>(kind, capacity);
      // The mutex backend's contract: the host holds a lock around every
      // call.  The lock-free backend takes no lock on push.
      std::mutex host_lock;
      const bool locked = !queue->lock_free();
      std::atomic<std::uint64_t> rejected{0};
      std::atomic<bool> done{false};

      std::vector<std::thread> threads;
      for (std::uint64_t p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          std::uint64_t my_rejects = 0;
          for (std::uint64_t i = 0; i < items; ++i) {
            bool stored;
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              stored = queue->try_push(tag(p, i));
            } else {
              stored = queue->try_push(tag(p, i));
            }
            if (!stored) ++my_rejects;  // give up: the item is dropped
          }
          rejected.fetch_add(my_rejects);
        });
      }

      std::map<std::uint64_t, std::uint64_t> next_seq;
      std::uint64_t consumed = 0;
      std::thread consumer([&] {
        for (;;) {
          std::optional<std::uint64_t> item;
          if (locked) {
            std::lock_guard<std::mutex> guard(host_lock);
            item = queue->try_pop();
          } else {
            item = queue->try_pop();
          }
          if (item) {
            check_tagged(next_seq, *item, /*strict=*/false);
            ++consumed;
          } else if (done.load()) {
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              if (queue->size() == 0) return;
            } else if (queue->size() == 0) {
              return;
            }
          } else {
            std::this_thread::yield();
          }
        }
      });
      for (auto& t : threads) t.join();
      done.store(true);
      consumer.join();

      // The conservation identity, exactly: every offered item either
      // reached the consumer or was rejected at the wall — and the
      // hand-off's own overflow counter saw every rejection.
      EXPECT_EQ(consumed + rejected.load(), producers * items);
      EXPECT_EQ(queue->overflows(), rejected.load());
      EXPECT_GT(rejected.load(), 0u) << "workload too tame to hit the wall";
    }
  }
}

TEST(QueueFuzz, SpscThroughputNotWorseThanMutexSingleProducer) {
  if (PCPC_SANITIZED) {
    GTEST_SKIP() << "timing property skipped under sanitizers";
  }
  // Paired replicates, interleaved so machine noise hits both sides
  // alike; the hypothesis helper then asks whether the per-pair
  // throughput differences could plausibly favour the mutex buffer.
  constexpr std::size_t kPairs = 10;
  constexpr std::uint64_t kItems = 100000;
  constexpr std::size_t kCapacity = 256;

  auto run_once = [&](BackendKind kind) {
    auto queue = make_handoff<std::uint64_t>(kind, kCapacity);
    std::mutex host_lock;
    const bool locked = !queue->lock_free();
    const auto start = std::chrono::steady_clock::now();
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        for (;;) {
          bool stored;
          if (locked) {
            std::lock_guard<std::mutex> guard(host_lock);
            stored = queue->try_push(i);
          } else {
            stored = queue->try_push(i);
          }
          if (stored) break;
          std::this_thread::yield();
        }
      }
    });
    std::uint64_t consumed = 0;
    while (consumed < kItems) {
      std::optional<std::uint64_t> item;
      if (locked) {
        std::lock_guard<std::mutex> guard(host_lock);
        item = queue->try_pop();
      } else {
        item = queue->try_pop();
      }
      if (item) {
        ++consumed;
      } else {
        // Back off when empty so the mutex side is not strangled by
        // lock contention from a spinning consumer.
        std::this_thread::yield();
      }
    }
    producer.join();
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return static_cast<double>(kItems) / elapsed;  // items per second
  };

  std::vector<double> spsc, mutex_buf;
  for (std::size_t i = 0; i < kPairs; ++i) {
    mutex_buf.push_back(run_once(BackendKind::Mutex));
    spsc.push_back(run_once(BackendKind::SpscRing));
  }
  double spsc_mean = 0, mutex_mean = 0;
  for (std::size_t i = 0; i < kPairs; ++i) {
    spsc_mean += spsc[i] / static_cast<double>(kPairs);
    mutex_mean += mutex_buf[i] / static_cast<double>(kPairs);
  }
  const TestResult verdict = paired_t_test(spsc, mutex_buf, /*level=*/0.99);
  // Fail only on a *statistically confident* regression: the mutex
  // buffer significantly ahead at 99% two-sided confidence.
  EXPECT_FALSE(verdict.significant && mutex_mean > spsc_mean)
      << "SPSC ring slower than mutex buffer single-producer: "
      << spsc_mean / 1e6 << " vs " << mutex_mean / 1e6
      << " Mitems/s (t=" << verdict.statistic << ")";
}

}  // namespace
}  // namespace pcpc::queue
