// Tests for the pcpc::fault subsystem on the simulation host: injector
// determinism, trace transforms, and the chaos scenario matrix run
// through the full PBPL system with exact item conservation.
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/fault/chaos.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/trace/arrival_process.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::fault {
namespace {

core::PbplConfig chaos_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;
  return config;
}

std::vector<trace::Trace> chaos_traces(std::size_t producers, SimDuration horizon,
                                       std::uint64_t seed) {
  std::vector<trace::Trace> traces;
  Rng rng(seed);
  for (std::size_t i = 0; i < producers; ++i) {
    Rng stream = rng.fork();
    const trace::ConstantRate rate(500.0 + 250.0 * static_cast<double>(i));
    traces.push_back(trace::sample_nhpp(rate, horizon, stream));
  }
  return traces;
}

TEST(FaultInjector, DefaultConfigInjectsNothing) {
  FaultInjector injector{FaultConfig{}};
  EXPECT_FALSE(injector.config().any());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.burst_items(), 0u);
    EXPECT_EQ(injector.producer_stall(), 0);
    EXPECT_EQ(injector.handler_delay(), 0);
    EXPECT_EQ(injector.deadline_jitter(), 0);
  }
  const FaultStats stats = injector.stats();
  EXPECT_EQ(stats.bursts, 0u);
  EXPECT_EQ(stats.stalls, 0u);
  EXPECT_EQ(stats.slow_batches, 0u);
}

TEST(FaultInjector, DecisionSequenceIsDeterministic) {
  FaultConfig config;
  config.seed = 42;
  config.burst_probability = 0.3;
  config.stall_probability = 0.2;
  config.slow_handler_probability = 0.5;
  config.deadline_jitter = milliseconds(1);

  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.burst_items(), b.burst_items());
    EXPECT_EQ(a.producer_stall(), b.producer_stall());
    EXPECT_EQ(a.handler_delay(), b.handler_delay());
    EXPECT_EQ(a.deadline_jitter(), b.deadline_jitter());
  }
  const FaultStats sa = a.stats();
  const FaultStats sb = b.stats();
  EXPECT_EQ(sa.bursts, sb.bursts);
  EXPECT_EQ(sa.stalls, sb.stalls);
  EXPECT_EQ(sa.slow_batches, sb.slow_batches);
  EXPECT_GT(sa.bursts, 0u);
  EXPECT_GT(sa.stalls, 0u);
}

TEST(FaultInjector, FaultClassesDrawIndependentStreams) {
  // Enabling stalls must not change the burst decision sequence: each
  // fault class owns a forked RNG stream.
  FaultConfig bursts_only;
  bursts_only.seed = 7;
  bursts_only.burst_probability = 0.25;

  FaultConfig both = bursts_only;
  both.stall_probability = 0.5;

  FaultInjector a(bursts_only);
  FaultInjector b(both);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.burst_items(), b.burst_items());
    (void)b.producer_stall();  // interleave stall draws
  }
}

TEST(FaultInjector, PressureSegmentsScalesWithPool) {
  FaultConfig config;
  config.pool_pressure = 0.5;
  const FaultInjector injector(config);
  EXPECT_EQ(injector.pressure_segments(100), 50u);
  EXPECT_EQ(injector.pressure_segments(0), 0u);

  FaultConfig full;
  full.pool_pressure = 5.0;  // clamped below 1.0
  const FaultInjector greedy(full);
  EXPECT_LT(greedy.pressure_segments(100), 100u);
}

TEST(ApplyProducerFaults, BurstsAddItemsAtTheSameInstant) {
  FaultConfig config;
  config.seed = 11;
  config.burst_probability = 1.0;  // every arrival bursts
  config.burst_factor = 4;
  FaultInjector injector(config);

  const trace::Trace original = trace::uniform_trace(10, milliseconds(2));
  const trace::Trace faulted = apply_producer_faults(original, injector);
  EXPECT_EQ(faulted.size(), 40u);  // 10 arrivals × factor 4
  EXPECT_EQ(injector.stats().bursts, 10u);
  EXPECT_EQ(injector.stats().burst_items, 30u);
  // Each original instant now carries 4 items.
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    EXPECT_EQ(faulted.at(i), original.at(i / 4));
  }
}

TEST(ApplyProducerFaults, StallsShiftThisAndLaterArrivals) {
  FaultConfig config;
  config.seed = 13;
  config.stall_probability = 1.0;  // every arrival stalls
  config.stall_duration = milliseconds(3);
  FaultInjector injector(config);

  const trace::Trace original = trace::uniform_trace(5, milliseconds(10));
  const trace::Trace faulted = apply_producer_faults(original, injector);
  ASSERT_EQ(faulted.size(), 5u);
  // Stall offsets accumulate: item i is shifted by (i+1) stalls.
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    EXPECT_EQ(faulted.at(i),
              original.at(i) + static_cast<SimDuration>(i + 1) * milliseconds(3));
  }
  // Monotonicity survives.
  for (std::size_t i = 1; i < faulted.size(); ++i) {
    EXPECT_GE(faulted.at(i), faulted.at(i - 1));
  }
}

TEST(ChaosSim, ScenarioMatrixConservesEveryOfferedItem) {
  const SimDuration horizon = seconds(2);
  const auto traces = chaos_traces(4, horizon, 101);
  const auto config = chaos_config();

  for (const Scenario& scenario : standard_scenarios(2024)) {
    FaultInjector injector(scenario.faults);
    const ChaosRunResult result =
        run_pbpl_under_faults(traces, horizon, config, injector);
    // The simulation host never drops: every offered (post-fault) item
    // inside the horizon must be consumed exactly once.
    EXPECT_EQ(result.pbpl.items, result.offered_items) << scenario.name;
    EXPECT_GT(result.pbpl.invocations, 0u) << scenario.name;
    ASSERT_EQ(result.pbpl.timelines.size(), config.cores) << scenario.name;
    for (const auto& tl : result.pbpl.timelines) {
      EXPECT_TRUE(tl.finalized()) << scenario.name;
    }
    if (result.pbpl.latency_s.count() > 0) {
      EXPECT_GE(result.pbpl.latency_s.min(), 0.0) << scenario.name;
    }
  }
}

TEST(ChaosSim, RunsAreBitForBitReproducible) {
  const SimDuration horizon = seconds(1);
  const auto traces = chaos_traces(3, horizon, 55);
  const auto config = chaos_config();

  FaultConfig faults;
  faults.seed = 99;
  faults.burst_probability = 0.1;
  faults.burst_factor = 10;
  faults.stall_probability = 0.02;
  faults.slow_handler_probability = 0.3;
  faults.deadline_jitter = milliseconds(1);
  faults.pool_pressure = 0.5;

  FaultInjector first(faults);
  FaultInjector second(faults);
  const ChaosRunResult a = run_pbpl_under_faults(traces, horizon, config, first);
  const ChaosRunResult b = run_pbpl_under_faults(traces, horizon, config, second);

  EXPECT_EQ(a.offered_items, b.offered_items);
  EXPECT_EQ(a.pbpl.items, b.pbpl.items);
  EXPECT_EQ(a.pbpl.scheduled_wakeups, b.pbpl.scheduled_wakeups);
  EXPECT_EQ(a.pbpl.overflow_wakeups, b.pbpl.overflow_wakeups);
  EXPECT_EQ(a.pbpl.emergency_borrows, b.pbpl.emergency_borrows);
  EXPECT_DOUBLE_EQ(a.pbpl.latency_s.mean(), b.pbpl.latency_s.mean());
  EXPECT_EQ(a.faults.bursts, b.faults.bursts);
  EXPECT_EQ(a.faults.stalls, b.faults.stalls);
  EXPECT_EQ(a.faults.slow_batches, b.faults.slow_batches);
  EXPECT_EQ(a.faults.seized_segments, b.faults.seized_segments);
}

TEST(ChaosSim, PoolPressureForcesOverflowTraffic) {
  const SimDuration horizon = seconds(2);
  const auto traces = chaos_traces(4, horizon, 77);
  auto config = chaos_config();
  config.base_buffer = 8;
  config.pool_segment = 2;

  FaultConfig calm;
  calm.seed = 5;
  FaultInjector calm_injector(calm);
  const ChaosRunResult baseline =
      run_pbpl_under_faults(traces, horizon, config, calm_injector);

  FaultConfig squeezed = calm;
  squeezed.pool_pressure = 0.9;
  FaultInjector squeezed_injector(squeezed);
  const ChaosRunResult pressured =
      run_pbpl_under_faults(traces, horizon, config, squeezed_injector);

  EXPECT_GT(pressured.faults.seized_segments, 0u);
  EXPECT_EQ(pressured.pbpl.items, pressured.offered_items);
  // With the pool held hostage, resizing cannot absorb bursts, so the
  // run pays at least as many unscheduled (overflow) wakeups.
  EXPECT_GE(pressured.pbpl.overflow_wakeups, baseline.pbpl.overflow_wakeups);
}

TEST(ChaosSim, DeadlineJitterPerturbsButNeverLoses) {
  const SimDuration horizon = seconds(1);
  const auto traces = chaos_traces(3, horizon, 31);
  const auto config = chaos_config();

  FaultConfig faults;
  faults.seed = 17;
  faults.deadline_jitter = milliseconds(2);
  FaultInjector injector(faults);
  const ChaosRunResult result = run_pbpl_under_faults(traces, horizon, config, injector);
  EXPECT_GT(result.faults.jittered_deadlines, 0u);
  EXPECT_EQ(result.pbpl.items, result.offered_items);
}

TEST(ChaosSim, BurstsDegradeLatencyGracefully) {
  // Degradation, not collapse: a ×10 burst mix raises mean latency but
  // the guard-free bound (items inside the horizon) still holds.
  const SimDuration horizon = seconds(2);
  const auto traces = chaos_traces(3, horizon, 301);
  const auto config = chaos_config();

  FaultConfig calm;
  calm.seed = 1;
  FaultInjector calm_injector(calm);
  const ChaosRunResult baseline =
      run_pbpl_under_faults(traces, horizon, config, calm_injector);

  FaultConfig bursty = calm;
  bursty.burst_probability = 0.05;
  bursty.burst_factor = 10;
  FaultInjector bursty_injector(bursty);
  const ChaosRunResult stressed =
      run_pbpl_under_faults(traces, horizon, config, bursty_injector);

  EXPECT_GT(stressed.offered_items, baseline.offered_items);
  EXPECT_EQ(stressed.pbpl.items, stressed.offered_items);
  EXPECT_LE(stressed.pbpl.latency_s.max(), to_seconds(horizon));
}

}  // namespace
}  // namespace pcpc::fault
