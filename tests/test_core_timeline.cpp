// Tests for the per-core activity timeline.
#include <gtest/gtest.h>

#include "pcpc/power/core_timeline.hpp"

namespace pcpc::power {
namespace {

TEST(CoreTimeline, StartsIdle) {
  CoreTimeline t;
  EXPECT_EQ(t.state(), CoreState::Idle);
  EXPECT_EQ(t.wakeups(), 0u);
  EXPECT_FALSE(t.finalized());
}

TEST(CoreTimeline, WakeSleepCycle) {
  CoreTimeline t;
  EXPECT_TRUE(t.wake(100));
  EXPECT_TRUE(t.is_active());
  EXPECT_TRUE(t.sleep(250));
  EXPECT_FALSE(t.is_active());
  t.finalize(1000);
  EXPECT_EQ(t.wakeups(), 1u);
  EXPECT_EQ(t.active_time(), 150);
  EXPECT_EQ(t.idle_time(), 850);
  EXPECT_EQ(t.duration(), 1000);
}

TEST(CoreTimeline, RedundantTransitionsAreFree) {
  CoreTimeline t;
  EXPECT_FALSE(t.sleep(10));  // already idle
  EXPECT_TRUE(t.wake(20));
  EXPECT_FALSE(t.wake(30));  // already active: the latching discount
  EXPECT_EQ(t.wakeups(), 1u);
  t.sleep(40);
  t.finalize(50);
  EXPECT_EQ(t.active_time(), 20);
}

TEST(CoreTimeline, IntervalsCoverTheSpan) {
  CoreTimeline t;
  t.wake(100);
  t.sleep(200);
  t.wake(500);
  t.sleep(600);
  t.finalize(1000);
  const auto& intervals = t.intervals();
  ASSERT_EQ(intervals.size(), 5u);
  SimDuration total = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    total += intervals[i].length();
    if (i > 0) {
      EXPECT_EQ(intervals[i].begin, intervals[i - 1].end);
    }
    EXPECT_GT(intervals[i].length(), 0);
  }
  EXPECT_EQ(total, 1000);
  EXPECT_EQ(intervals[1].state, CoreState::Active);
  EXPECT_EQ(intervals[2].state, CoreState::Idle);
}

TEST(CoreTimeline, PowerTopMetrics) {
  CoreTimeline t;
  t.wake(0);
  t.sleep(milliseconds(250));
  t.wake(milliseconds(500));
  t.sleep(milliseconds(750));
  t.finalize(seconds(1));
  EXPECT_NEAR(t.usage_ms_per_s(), 500.0, 1e-9);
  EXPECT_NEAR(t.wakeups_per_s(), 2.0, 1e-9);
}

TEST(CoreTimeline, ResumeAfterSameInstantSleepIsFree) {
  CoreTimeline t;
  t.wake(100);
  t.sleep(200);
  EXPECT_FALSE(t.resume(200));  // zero idle time: no ω
  EXPECT_TRUE(t.is_active());
  EXPECT_EQ(t.wakeups(), 1u);
  t.sleep(300);
  t.finalize(400);
  EXPECT_EQ(t.active_time(), 200);  // 100..300 contiguous
}

TEST(CoreTimeline, ResumeAfterRealIdleChargesWakeup) {
  CoreTimeline t;
  t.wake(100);
  t.sleep(200);
  EXPECT_TRUE(t.resume(300));  // 100ns of real idle passed
  EXPECT_EQ(t.wakeups(), 2u);
}

TEST(CoreTimeline, ResumeWhileActiveIsNoop) {
  CoreTimeline t;
  t.wake(100);
  EXPECT_FALSE(t.resume(150));
  EXPECT_EQ(t.wakeups(), 1u);
}

TEST(CoreTimeline, FinalizeWhileActiveClosesInterval) {
  CoreTimeline t;
  t.wake(100);
  t.finalize(300);
  EXPECT_EQ(t.active_time(), 200);
  EXPECT_EQ(t.intervals().back().state, CoreState::Active);
}

TEST(CoreTimeline, NonZeroStart) {
  CoreTimeline t(milliseconds(5));
  t.wake(milliseconds(6));
  t.sleep(milliseconds(7));
  t.finalize(milliseconds(15));
  EXPECT_EQ(t.duration(), milliseconds(10));
  EXPECT_EQ(t.start_time(), milliseconds(5));
  EXPECT_EQ(t.end_time(), milliseconds(15));
}

TEST(CoreTimelineDeath, NonMonotoneTransitionAborts) {
  CoreTimeline t;
  t.wake(100);
  EXPECT_DEATH(t.sleep(50), "monotone");
}

TEST(CoreTimelineDeath, TransitionAfterFinalizeAborts) {
  CoreTimeline t;
  t.finalize(10);
  EXPECT_DEATH(t.wake(20), "finalized");
}

TEST(CoreTimelineDeath, MetricsBeforeFinalizeAbort) {
  CoreTimeline t;
  EXPECT_DEATH((void)t.idle_time(), "finalize");
  EXPECT_DEATH((void)t.usage_ms_per_s(), "finalize");
}

}  // namespace
}  // namespace pcpc::power
