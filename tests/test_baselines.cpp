// Tests for the baseline implementations of Section III.
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/impls/baselines.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::impls {
namespace {

BaselineParams test_params() {
  BaselineParams p;
  p.cores = 2;
  p.buffer_capacity = 10;
  p.period = milliseconds(1);
  return p;
}

std::vector<trace::Trace> steady(std::size_t pairs, std::size_t items, SimDuration gap) {
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < pairs; ++i) {
    traces.push_back(
        trace::uniform_trace(items, gap, 1000 + static_cast<SimTime>(i * 7)));
  }
  return traces;
}

TEST(BusyWait, FullUsageNoWakeups) {
  const auto traces = steady(1, 1000, microseconds(100));
  const RunResult r = run_busy_wait(traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 1000u);
  EXPECT_NEAR(r.usage_ms_per_s(), 1000.0, 1e-6);
  // The t=0 activation is free: the core had accumulated no idle time.
  EXPECT_EQ(r.paid_wakeups, 0u);
  EXPECT_EQ(r.name, "BW");
}

TEST(Yield, DiscountsPowerAndUsage) {
  const auto traces = steady(1, 1000, microseconds(100));
  const BaselineParams params = test_params();
  const RunResult r = run_yield(traces, seconds(1), params);
  EXPECT_EQ(r.active_power_scale, params.yield_power_scale);
  EXPECT_NEAR(r.usage_ms_per_s(), 1000.0 * params.yield_usage_fraction, 1e-6);
}

TEST(Mutex, WakesPerItemWhenArrivalsAreSparse) {
  // Gaps far exceed service time: every item pays a wakeup.
  const auto traces = steady(1, 100, milliseconds(1));
  const RunResult r = run_signaled(ImplKind::Mutex, traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 100u);
  EXPECT_EQ(r.invocations, 100u);
  EXPECT_EQ(r.paid_wakeups, 100u);
  EXPECT_EQ(r.overflows, 0u);
  EXPECT_NEAR(r.batch_sizes.mean(), 1.0, 1e-9);
}

TEST(Mutex, CoalescesArrivalsDuringProcessing) {
  // Items arriving every 1 µs while service takes ~8 µs: bursts coalesce
  // into multi-item drains with fewer wakeups than items.
  const auto traces = steady(1, 1000, microseconds(1));
  const RunResult r = run_signaled(ImplKind::Mutex, traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 1000u);
  EXPECT_LT(r.invocations, 500u);
  EXPECT_GT(r.batch_sizes.mean(), 2.0);
}

TEST(Mutex, LowLatency) {
  const auto traces = steady(1, 100, milliseconds(1));
  const RunResult r = run_signaled(ImplKind::Mutex, traces, seconds(1), test_params());
  EXPECT_LT(r.latency_s.mean(), 1e-4);
}

TEST(Semaphore, LowerOverheadThanMutex) {
  const auto traces = steady(1, 1000, microseconds(50));
  const auto params = test_params();
  const RunResult mutex = run_signaled(ImplKind::Mutex, traces, seconds(1), params);
  const RunResult sem = run_signaled(ImplKind::Semaphore, traces, seconds(1), params);
  EXPECT_EQ(mutex.items, sem.items);
  EXPECT_LT(sem.usage_ms_per_s(), mutex.usage_ms_per_s());
  EXPECT_EQ(sem.name, "Sem");
}

TEST(Batch, WakesOncePerBufferFill) {
  const auto traces = steady(1, 100, milliseconds(1));  // B = 10
  const RunResult r = run_batch(traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 100u);
  EXPECT_EQ(r.overflows, 10u);     // every fill is an overflow by definition
  EXPECT_EQ(r.invocations, 10u);   // no leftovers: 100 = 10 * 10
  EXPECT_NEAR(r.batch_sizes.mean(), 10.0, 1e-9);
}

TEST(Batch, DrainsLeftoversAtHorizon) {
  const auto traces = steady(1, 105, milliseconds(1));
  const RunResult r = run_batch(traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 105u);
  EXPECT_EQ(r.invocations, 11u);  // 10 fills + final partial drain
}

TEST(Batch, HigherLatencyThanMutex) {
  const auto traces = steady(1, 1000, microseconds(500));
  const RunResult mutex = run_signaled(ImplKind::Mutex, traces, seconds(1), test_params());
  const RunResult batch = run_batch(traces, seconds(1), test_params());
  EXPECT_GT(batch.latency_s.mean(), 4.0 * mutex.latency_s.mean());
}

TEST(Periodic, TimerDrivesWakeups) {
  // Slow producer: the 1 ms timer fires ~1000 times regardless of items.
  const auto traces = steady(1, 100, milliseconds(10));
  const RunResult r =
      run_periodic(ImplKind::SignalPeriodicBatch, traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 100u);
  EXPECT_NEAR(static_cast<double>(r.scheduled_wakeups), 1000.0, 40.0);
  EXPECT_EQ(r.overflows, 0u);
}

TEST(Periodic, OverflowBeforeTimerTriggersImmediateDrain) {
  // 10-item buffer fills every 100 µs against a 1 ms timer.
  const auto traces = steady(1, 10000, microseconds(10));
  const RunResult r =
      run_periodic(ImplKind::SignalPeriodicBatch, traces, seconds(1), test_params());
  EXPECT_EQ(r.items, 10000u);
  EXPECT_GT(r.overflows, 500u);
}

TEST(Periodic, OversleepDelaysButNeverSkipsFires) {
  // The timer runs on absolute deadlines (k·T): oversleep delivers fires
  // late but does not drop them, so PBP and SPBP fire essentially the
  // same number of timer events over a run.
  const auto traces = steady(1, 100, milliseconds(10));
  BaselineParams params = test_params();
  params.nanosleep_jitter_sigma = 0.5;
  const RunResult pbp =
      run_periodic(ImplKind::PeriodicBatch, traces, seconds(1), params);
  const RunResult spbp =
      run_periodic(ImplKind::SignalPeriodicBatch, traces, seconds(1), params);
  const double ratio = static_cast<double>(pbp.scheduled_wakeups) /
                       static_cast<double>(spbp.scheduled_wakeups);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Periodic, JitterCausesMoreOverflowsInTheTightRegime) {
  // Buffer fills in ~1.1 timer periods: a punctual timer just wins, an
  // oversleeping one overflows — the paper's PBP-vs-SPBP mechanism.
  const auto traces = steady(1, 9000, microseconds(111));  // fill 10 in 1.11ms
  BaselineParams params = test_params();
  params.nanosleep_jitter_sigma = 0.5;
  const RunResult pbp = run_periodic(ImplKind::PeriodicBatch, traces, seconds(1), params);
  const RunResult spbp =
      run_periodic(ImplKind::SignalPeriodicBatch, traces, seconds(1), params);
  EXPECT_GT(pbp.overflows, spbp.overflows);
}

TEST(AllImpls, ConsumeTheIdenticalItemSet) {
  const auto traces = steady(3, 2000, microseconds(400));
  ExperimentSetup setup;
  setup.baseline = test_params();
  setup.pbpl.slot_size = milliseconds(10);
  setup.pbpl.max_latency = milliseconds(100);
  const ImplKind kinds[] = {ImplKind::BusyWait, ImplKind::Yield,   ImplKind::Mutex,
                            ImplKind::Semaphore, ImplKind::Batch,  ImplKind::PeriodicBatch,
                            ImplKind::SignalPeriodicBatch, ImplKind::Pbpl};
  for (const auto kind : kinds) {
    const RunResult r = run_implementation(kind, traces, seconds(1), setup);
    EXPECT_EQ(r.items, 6000u) << impl_name(kind);
    EXPECT_EQ(r.duration, seconds(1)) << impl_name(kind);
    EXPECT_FALSE(r.timelines.empty()) << impl_name(kind);
  }
}

TEST(AllImpls, PairsNeverShareMoreCoresThanConfigured) {
  const auto traces = steady(5, 100, milliseconds(1));
  BaselineParams params = test_params();
  params.cores = 2;
  const RunResult r = run_batch(traces, seconds(1), params);
  EXPECT_EQ(r.timelines.size(), 2u);
}

TEST(AllImpls, SinglePairUsesOneCore) {
  const auto traces = steady(1, 100, milliseconds(1));
  BaselineParams params = test_params();
  params.cores = 2;
  const RunResult r = run_batch(traces, seconds(1), params);
  EXPECT_EQ(r.timelines.size(), 1u);
}

TEST(Runner, NamesAreStable) {
  EXPECT_EQ(impl_name(ImplKind::BusyWait), "BW");
  EXPECT_EQ(impl_name(ImplKind::Yield), "Yield");
  EXPECT_EQ(impl_name(ImplKind::Mutex), "Mutex");
  EXPECT_EQ(impl_name(ImplKind::Semaphore), "Sem");
  EXPECT_EQ(impl_name(ImplKind::Batch), "BP");
  EXPECT_EQ(impl_name(ImplKind::PeriodicBatch), "PBP");
  EXPECT_EQ(impl_name(ImplKind::SignalPeriodicBatch), "SPBP");
  EXPECT_EQ(impl_name(ImplKind::CoalescedPeriodicBatch), "CPBP");
  EXPECT_EQ(impl_name(ImplKind::Pbpl), "PBPL");
}

TEST(Runner, SynchronizedPbplInheritsBaselineKnobs) {
  ExperimentSetup setup;
  setup.baseline.cores = 7;
  setup.baseline.buffer_capacity = 42;
  setup.baseline.service.per_item = microseconds(9);
  const auto config = setup.synchronized_pbpl();
  EXPECT_EQ(config.cores, 7u);
  EXPECT_EQ(config.base_buffer, 42u);
  EXPECT_EQ(config.service.per_item, microseconds(9));
}

}  // namespace
}  // namespace pcpc::impls
