// Tests for PbplConfig parsing/printing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "pcpc/core/config_io.hpp"

namespace pcpc::core {
namespace {

TEST(ConfigIo, AppliesEveryKey) {
  PbplConfig config;
  std::string error;
  const std::vector<std::string> options{
      "cores=3",
      "slot_size_us=2500",
      "max_latency_us=50000",
      "base_buffer=40",
      "pool_segment=8",
      "predictor=kalman",
      "predictor_window=12",
      "latching=0",
      "dynamic_resize=false",
      "emergency_borrow=off",
      "latency_guard=true",
      "fill_tolerance=1.2",
      "resize_headroom=1.4",
      "manager_overhead_us=5",
      "assignment=packed",
      "utilization_cap=0.7",
      "service_per_item_us=4",
      "service_per_invocation_us=6",
      "wakeup_cost_uj=100",
      "per_item_cost_uj=2.5",
      "per_invocation_cost_uj=1.5",
  };
  ASSERT_TRUE(apply_options(config, options, &error)) << error;
  EXPECT_EQ(config.cores, 3u);
  EXPECT_EQ(config.slot_size, microseconds(2500));
  EXPECT_EQ(config.max_latency, milliseconds(50));
  EXPECT_EQ(config.base_buffer, 40u);
  EXPECT_EQ(config.pool_segment, 8u);
  EXPECT_EQ(config.predictor, PredictorKind::Kalman);
  EXPECT_EQ(config.predictor_window, 12u);
  EXPECT_FALSE(config.latching);
  EXPECT_FALSE(config.dynamic_resize);
  EXPECT_FALSE(config.emergency_borrow);
  EXPECT_TRUE(config.latency_guard);
  EXPECT_DOUBLE_EQ(config.fill_tolerance, 1.2);
  EXPECT_DOUBLE_EQ(config.resize_headroom, 1.4);
  EXPECT_EQ(config.manager_overhead, microseconds(5));
  EXPECT_EQ(config.assignment, AssignmentPolicy::Packed);
  EXPECT_DOUBLE_EQ(config.utilization_cap, 0.7);
  EXPECT_EQ(config.service.per_item, microseconds(4));
  EXPECT_EQ(config.service.per_invocation, microseconds(6));
  EXPECT_NEAR(config.costs.wakeup_j, 100e-6, 1e-12);
  EXPECT_NEAR(config.costs.per_item_j, 2.5e-6, 1e-15);
  EXPECT_NEAR(config.costs.per_invocation_j, 1.5e-6, 1e-15);
}

TEST(ConfigIo, RejectsUnknownKey) {
  PbplConfig config;
  std::string error;
  EXPECT_FALSE(apply_option(config, "not_a_key=1", &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
}

TEST(ConfigIo, RejectsMalformedAssignments) {
  PbplConfig config;
  std::string error;
  EXPECT_FALSE(apply_option(config, "cores", &error));
  EXPECT_FALSE(apply_option(config, "=5", &error));
  EXPECT_FALSE(apply_option(config, "cores=zero", &error));
  EXPECT_FALSE(apply_option(config, "cores=0", &error));
  EXPECT_FALSE(apply_option(config, "latching=maybe", &error));
  EXPECT_FALSE(apply_option(config, "predictor=oracle", &error));
  EXPECT_FALSE(apply_option(config, "fill_tolerance=0.5", &error));
  EXPECT_FALSE(apply_option(config, "assignment=random", &error));
}

TEST(ConfigIo, StopsAtFirstError) {
  PbplConfig config;
  std::string error;
  const std::vector<std::string> options{"cores=4", "bogus=1", "base_buffer=99"};
  EXPECT_FALSE(apply_options(config, options, &error));
  EXPECT_EQ(config.cores, 4u);            // first applied
  EXPECT_NE(config.base_buffer, 99u);     // third never reached
}

TEST(ConfigIo, DescribeRoundTrips) {
  PbplConfig original;
  original.cores = 7;
  original.slot_size = milliseconds(3);
  original.predictor = PredictorKind::Ewma;
  original.latching = false;
  original.assignment = AssignmentPolicy::RateBalanced;
  original.fill_tolerance = 1.25;

  // Parse the dump back into a fresh config.
  PbplConfig parsed;
  std::string error;
  std::istringstream dump(describe(original));
  std::string line;
  while (std::getline(dump, line)) {
    ASSERT_TRUE(apply_option(parsed, line, &error)) << line << ": " << error;
  }
  EXPECT_EQ(parsed.cores, original.cores);
  EXPECT_EQ(parsed.slot_size, original.slot_size);
  EXPECT_EQ(parsed.predictor, original.predictor);
  EXPECT_EQ(parsed.latching, original.latching);
  EXPECT_EQ(parsed.assignment, original.assignment);
  EXPECT_DOUBLE_EQ(parsed.fill_tolerance, original.fill_tolerance);
}

TEST(ConfigIo, OverflowPolicyAndWatchdogRoundTrip) {
  PbplConfig config;
  std::string error;
  ASSERT_TRUE(apply_option(config, "overflow_policy=drop_oldest", &error)) << error;
  EXPECT_EQ(config.overflow_policy, OverflowPolicy::DropOldest);
  ASSERT_TRUE(apply_option(config, "overflow_policy=drop_newest", &error));
  EXPECT_EQ(config.overflow_policy, OverflowPolicy::DropNewest);
  ASSERT_TRUE(apply_option(config, "overflow_policy=borrow", &error));
  EXPECT_EQ(config.overflow_policy, OverflowPolicy::EmergencyBorrow);
  ASSERT_TRUE(apply_option(config, "watchdog_factor=2.5", &error));
  EXPECT_DOUBLE_EQ(config.watchdog_factor, 2.5);
  EXPECT_FALSE(apply_option(config, "overflow_policy=panic", &error));
  EXPECT_FALSE(apply_option(config, "watchdog_factor=-1", &error));

  // Both knobs survive a describe → parse round trip.
  PbplConfig parsed;
  std::istringstream dump(describe(config));
  std::string line;
  while (std::getline(dump, line)) {
    ASSERT_TRUE(apply_option(parsed, line, &error)) << line << ": " << error;
  }
  EXPECT_EQ(parsed.overflow_policy, OverflowPolicy::EmergencyBorrow);
  EXPECT_DOUBLE_EQ(parsed.watchdog_factor, 2.5);
}

TEST(ConfigIo, LoadsFileWithCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "/pbpl.conf";
  {
    std::ofstream out(path);
    out << "# PBPL tuning for the edge box\n"
        << "\n"
        << "cores=4          # quad core\n"
        << "  slot_size_us=2000\n"
        << "predictor=ewma\n";
  }
  std::string error;
  const auto config = load_config_file(path, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->cores, 4u);
  EXPECT_EQ(config->slot_size, milliseconds(2));
  EXPECT_EQ(config->predictor, PredictorKind::Ewma);
  std::remove(path.c_str());
}

TEST(ConfigIo, FileErrorsCarryLineNumbers) {
  const std::string path = ::testing::TempDir() + "/bad.conf";
  {
    std::ofstream out(path);
    out << "cores=2\nbroken line here\n";
  }
  std::string error;
  EXPECT_FALSE(load_config_file(path, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ConfigIo, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(load_config_file("/nonexistent/pbpl.conf", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace pcpc::core
