// Tests for rate functions and stochastic arrival process samplers.
#include <gtest/gtest.h>

#include <memory>

#include "pcpc/trace/arrival_process.hpp"

namespace pcpc::trace {
namespace {

TEST(ConstantRate, IsConstant) {
  const ConstantRate rate(123.0);
  EXPECT_EQ(rate.rate_at(0), 123.0);
  EXPECT_EQ(rate.rate_at(seconds(100)), 123.0);
  EXPECT_EQ(rate.max_rate(seconds(1)), 123.0);
}

TEST(SinusoidRate, OscillatesAroundBase) {
  const SinusoidRate rate(100.0, 50.0, seconds(1), 0.0);
  EXPECT_NEAR(rate.rate_at(0), 100.0, 1e-9);
  EXPECT_NEAR(rate.rate_at(milliseconds(250)), 150.0, 1e-6);  // peak
  EXPECT_NEAR(rate.rate_at(milliseconds(750)), 50.0, 1e-6);   // trough
  EXPECT_GE(rate.max_rate(seconds(10)), 150.0);
}

TEST(SinusoidRate, ClampsAtZero) {
  const SinusoidRate rate(10.0, 100.0, seconds(1));
  for (SimTime t = 0; t < seconds(1); t += milliseconds(37)) {
    EXPECT_GE(rate.rate_at(t), 0.0);
  }
}

TEST(BurstTrain, TriangularProfile) {
  BurstTrain::Burst burst;
  burst.start = milliseconds(100);
  burst.duration = milliseconds(100);
  burst.amplitude_hz = 1000.0;
  const BurstTrain train({burst});
  EXPECT_EQ(train.rate_at(milliseconds(99)), 0.0);
  EXPECT_EQ(train.rate_at(milliseconds(200)), 0.0);
  EXPECT_NEAR(train.rate_at(milliseconds(150)), 1000.0, 1e-6);  // peak mid-burst
  EXPECT_NEAR(train.rate_at(milliseconds(125)), 500.0, 1e-6);   // half way up
  EXPECT_GE(train.max_rate(seconds(1)), 1000.0);
}

TEST(BurstTrain, OverlappingBurstsAdd) {
  BurstTrain::Burst a{milliseconds(0), milliseconds(100), 400.0};
  BurstTrain::Burst b{milliseconds(0), milliseconds(100), 600.0};
  const BurstTrain train({a, b});
  EXPECT_NEAR(train.rate_at(milliseconds(50)), 1000.0, 1e-6);
}

TEST(CompositeRate, SumsParts) {
  std::vector<std::shared_ptr<const RateFunction>> parts;
  parts.push_back(std::make_shared<ConstantRate>(100.0));
  parts.push_back(std::make_shared<ConstantRate>(50.0));
  const CompositeRate rate(std::move(parts));
  EXPECT_EQ(rate.rate_at(0), 150.0);
  EXPECT_EQ(rate.max_rate(seconds(1)), 150.0);
}

TEST(Nhpp, ConstantRateMatchesCount) {
  const ConstantRate rate(2000.0);
  Rng rng(5);
  const Trace t = sample_nhpp(rate, seconds(10), rng);
  // Poisson(20000): 5 sigma ≈ 707.
  EXPECT_NEAR(static_cast<double>(t.size()), 20000.0, 750.0);
}

TEST(Nhpp, DeterministicGivenSeed) {
  const ConstantRate rate(500.0);
  Rng a(42), b(42);
  const Trace ta = sample_nhpp(rate, seconds(2), a);
  const Trace tb = sample_nhpp(rate, seconds(2), b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta.at(i), tb.at(i));
}

TEST(Nhpp, ZeroRateYieldsEmpty) {
  const ConstantRate rate(0.0);
  Rng rng(1);
  EXPECT_TRUE(sample_nhpp(rate, seconds(1), rng).empty());
}

TEST(Nhpp, TimestampsWithinHorizon) {
  const ConstantRate rate(10000.0);
  Rng rng(7);
  const Trace t = sample_nhpp(rate, milliseconds(500), rng);
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.at(0), 0);
  EXPECT_LT(t.end_time(), milliseconds(500));
}

TEST(Nhpp, TracksSinusoidIntensity) {
  // More arrivals near the sinusoid peak than near the trough.
  const SinusoidRate rate(1000.0, 900.0, seconds(2), 0.0);
  Rng rng(11);
  const Trace t = sample_nhpp(rate, seconds(2), rng);
  // Peak quarter [0.25s, 0.75s) vs trough quarter [1.25s, 1.75s).
  const auto peak = t.count_in(milliseconds(250), milliseconds(750));
  const auto trough = t.count_in(milliseconds(1250), milliseconds(1750));
  EXPECT_GT(peak, trough * 3);
}

class MmppTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmppTest, RateBetweenLowAndHigh) {
  MmppParams params;
  params.low_rate_hz = 100.0;
  params.high_rate_hz = 5000.0;
  params.mean_low_dwell = milliseconds(200);
  params.mean_high_dwell = milliseconds(50);
  Rng rng(GetParam());
  const Trace t = sample_mmpp(params, seconds(10), rng);
  const double rate = static_cast<double>(t.size()) / 10.0;
  EXPECT_GT(rate, params.low_rate_hz);
  EXPECT_LT(rate, params.high_rate_hz);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmppTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Mmpp, IsBursty) {
  MmppParams params;
  params.low_rate_hz = 50.0;
  params.high_rate_hz = 10000.0;
  Rng rng(3);
  const Trace t = sample_mmpp(params, seconds(10), rng);
  EXPECT_GT(t.stats().interarrival_cv, 1.2);  // Poisson would be ~1.0
}

TEST(Mmpp, DeterministicGivenSeed) {
  MmppParams params;
  Rng a(9), b(9);
  const Trace ta = sample_mmpp(params, seconds(1), a);
  const Trace tb = sample_mmpp(params, seconds(1), b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta.at(i), tb.at(i));
}

TEST(ParetoOnOff, DeterministicGivenSeed) {
  ParetoOnOffParams params;
  Rng a(77), b(77);
  const Trace ta = sample_pareto_on_off(params, seconds(2), a);
  const Trace tb = sample_pareto_on_off(params, seconds(2), b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta.at(i), tb.at(i));
}

TEST(ParetoOnOff, RateBelowOnRate) {
  ParetoOnOffParams params;
  params.on_rate_hz = 4000.0;
  Rng rng(5);
  const Trace t = sample_pareto_on_off(params, seconds(10), rng);
  const double rate = static_cast<double>(t.size()) / 10.0;
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, params.on_rate_hz);
}

TEST(ParetoOnOff, HeavierTailThanMmpp) {
  // Self-similar sources are burstier than an exponential ON/OFF process
  // with comparable means: compare interarrival CV.
  ParetoOnOffParams pareto;
  pareto.shape = 1.2;  // very heavy tail
  pareto.on_rate_hz = 5000.0;
  MmppParams mmpp;
  mmpp.low_rate_hz = 0.0;
  mmpp.high_rate_hz = 5000.0;
  mmpp.mean_high_dwell = milliseconds(30);
  mmpp.mean_low_dwell = milliseconds(60);
  Rng a(13), b(13);
  const double cv_pareto =
      sample_pareto_on_off(pareto, seconds(20), a).stats().interarrival_cv;
  const double cv_mmpp = sample_mmpp(mmpp, seconds(20), b).stats().interarrival_cv;
  EXPECT_GT(cv_pareto, cv_mmpp);
}

TEST(ParetoOnOff, TimestampsWithinHorizon) {
  ParetoOnOffParams params;
  Rng rng(3);
  const Trace t = sample_pareto_on_off(params, milliseconds(700), rng);
  if (!t.empty()) {
    EXPECT_GE(t.at(0), 0);
    EXPECT_LT(t.end_time(), milliseconds(700));
  }
}

TEST(ParetoOnOffDeath, RejectsShapeBelowOne) {
  ParetoOnOffParams params;
  params.shape = 0.9;
  Rng rng(1);
  EXPECT_DEATH(sample_pareto_on_off(params, seconds(1), rng), "shape");
}

}  // namespace
}  // namespace pcpc::trace
