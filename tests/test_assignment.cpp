// Tests for the consumer-to-core assignment policies (f : C → α).
#include <gtest/gtest.h>

#include <vector>

#include "pcpc/core/assignment.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::core {
namespace {

TEST(Assignment, RoundRobinSpreads) {
  const auto mapping = assign_consumers(7, 3, AssignmentPolicy::RoundRobin);
  ASSERT_EQ(mapping.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(mapping[i], i % 3);
  EXPECT_EQ(cores_used(mapping), 3u);
}

TEST(Assignment, SingleCoreAlwaysZero) {
  const std::vector<double> util{0.1, 0.9, 0.5};
  for (const auto policy : {AssignmentPolicy::RoundRobin, AssignmentPolicy::Packed,
                            AssignmentPolicy::RateBalanced}) {
    const auto mapping = assign_consumers(3, 1, policy, util);
    for (const auto core : mapping) EXPECT_EQ(core, 0u);
  }
}

TEST(Assignment, PackedUsesFewestCores) {
  // Four light consumers (0.1 each) fit under a 0.5 cap on one core.
  const std::vector<double> util{0.1, 0.1, 0.1, 0.1};
  const auto mapping = assign_consumers(4, 4, AssignmentPolicy::Packed, util, 0.5);
  EXPECT_EQ(cores_used(mapping), 1u);
}

TEST(Assignment, PackedOpensCoresAtTheCap) {
  // 0.3 each with cap 0.5: two per core won't fit → pairs of one.
  const std::vector<double> util{0.3, 0.3, 0.3, 0.3};
  const auto mapping = assign_consumers(4, 4, AssignmentPolicy::Packed, util, 0.5);
  EXPECT_EQ(cores_used(mapping), 4u);
  const auto relaxed = assign_consumers(4, 4, AssignmentPolicy::Packed, util, 0.65);
  EXPECT_EQ(cores_used(relaxed), 2u);
}

TEST(Assignment, PackedOverflowGoesToLeastLoaded) {
  // Each consumer alone exceeds the cap: they must still all be placed.
  const std::vector<double> util{0.8, 0.8, 0.8};
  const auto mapping = assign_consumers(3, 2, AssignmentPolicy::Packed, util, 0.5);
  EXPECT_EQ(cores_used(mapping), 2u);
}

TEST(Assignment, RateBalancedFollowsLptGreedy) {
  // Loads 5,4,3,3,3 on 2 cores: LPT places 5 | 4, then 3→core1 (0.4),
  // 3→core0 (0.5), 3→core1 → {0.8, 1.0}.  (The optimum 0.9 needs exact
  // partitioning; LPT's 4/3-bound greedy is the standard tradeoff.)
  const std::vector<double> util{0.5, 0.4, 0.3, 0.3, 0.3};
  const auto mapping = assign_consumers(5, 2, AssignmentPolicy::RateBalanced, util);
  std::vector<double> load(2, 0.0);
  for (std::size_t i = 0; i < util.size(); ++i) load[mapping[i]] += util[i];
  EXPECT_NEAR(std::max(load[0], load[1]), 1.0, 1e-9);
  EXPECT_NEAR(load[0] + load[1], 1.8, 1e-9);
}

TEST(Assignment, HeaviestConsumerPlacedFirst) {
  const std::vector<double> util{0.1, 0.9};
  const auto mapping = assign_consumers(2, 2, AssignmentPolicy::RateBalanced, util);
  EXPECT_NE(mapping[0], mapping[1]);
}

TEST(AssignmentDeath, LoadPoliciesNeedUtilization) {
  EXPECT_DEATH(assign_consumers(3, 2, AssignmentPolicy::Packed), "utilization");
}

TEST(AssignmentIntegration, PackedLeavesSurplusCoresAsleep) {
  // Ten light producers on 4 cores: packed placement should keep most
  // cores fully idle and beat round-robin on power-relevant wakeups.
  std::vector<trace::Trace> traces;
  for (int i = 0; i < 10; ++i) {
    traces.push_back(trace::uniform_trace(500, milliseconds(2), 100 + i * 7));
  }
  PbplConfig config;
  config.cores = 4;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(100);
  config.base_buffer = 25;

  PbplConfig packed = config;
  packed.assignment = AssignmentPolicy::Packed;
  packed.utilization_cap = 0.5;

  const PbplResult spread = run_pbpl(traces, seconds(1), config);
  const PbplResult dense = run_pbpl(traces, seconds(1), packed);
  EXPECT_EQ(spread.items, dense.items);

  // With util = 500 items/s × 3 µs ≈ 0.0015 each, all ten pack onto one
  // core: three cores never wake.
  std::size_t dense_idle_cores = 0;
  for (const auto& tl : dense.timelines) {
    if (tl.wakeups() == 0) ++dense_idle_cores;
  }
  EXPECT_EQ(dense_idle_cores, 3u);
  EXPECT_LT(dense.paid_wakeups, spread.paid_wakeups);
  // Denser cores mean more latching.
  EXPECT_GT(dense.latched_reservations, spread.latched_reservations);
}

}  // namespace
}  // namespace pcpc::core
