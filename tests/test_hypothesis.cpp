// Tests for the significance tests backing the paper's Section III-C3
// hypothesis ("wakeups have a significant effect on power", accepted at
// 99% confidence).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pcpc/common/hypothesis.hpp"
#include "pcpc/common/rng.hpp"

namespace pcpc {
namespace {

TEST(CorrelationSignificance, StrongLinearRelationIsSignificant) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 15; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 1.0 + 0.3 * std::sin(i * 7.0));  // tiny noise
  }
  const TestResult r = correlation_significance(xs, ys, 0.99);
  EXPECT_TRUE(r.significant);
  EXPECT_EQ(r.df, 13u);
  EXPECT_GT(r.statistic, r.critical);
}

TEST(CorrelationSignificance, NoiseIsNotSignificant) {
  Rng rng(321);
  std::vector<double> xs, ys;
  for (int i = 0; i < 15; ++i) {
    xs.push_back(rng.next_double());
    ys.push_back(rng.next_double());
  }
  const TestResult r = correlation_significance(xs, ys, 0.99);
  EXPECT_FALSE(r.significant);
}

TEST(CorrelationSignificance, PerfectCorrelationHandled) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  const TestResult r = correlation_significance(xs, ys);
  EXPECT_TRUE(r.significant);
}

TEST(CorrelationSignificance, TooFewSamples) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{2, 4};
  EXPECT_FALSE(correlation_significance(xs, ys).significant);
}

TEST(CorrelationSignificance, KnownStatistic) {
  // r = 0.8 with n = 5 → t = 0.8·sqrt(3/0.36) = 2.309; t_crit(3, .95) = 3.182.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 3, 2, 5, 4};
  const TestResult r = correlation_significance(xs, ys, 0.95);
  EXPECT_NEAR(r.statistic, 2.3094, 1e-3);
  EXPECT_NEAR(r.critical, 3.182, 1e-3);
  EXPECT_FALSE(r.significant);
}

TEST(PairedTTest, ClearDifferenceIsSignificant) {
  const std::vector<double> a{10.1, 10.3, 9.9, 10.2, 10.0};
  const std::vector<double> b{8.0, 8.2, 7.9, 8.1, 8.0};
  const TestResult r = paired_t_test(a, b, 0.99);
  EXPECT_TRUE(r.significant);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(PairedTTest, IdenticalSamplesAreNot) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const TestResult r = paired_t_test(a, a);
  EXPECT_FALSE(r.significant);
  EXPECT_EQ(r.statistic, 0.0);
}

TEST(PairedTTest, NoisyOverlapIsNotSignificant) {
  const std::vector<double> a{10.0, 7.0, 12.0};
  const std::vector<double> b{9.0, 11.0, 8.0};
  EXPECT_FALSE(paired_t_test(a, b).significant);
}

TEST(LinearSlope, ExactLine) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};
  const Slope s = linear_slope(xs, ys);
  EXPECT_NEAR(s.value, 2.0, 1e-12);
  EXPECT_NEAR(s.intercept, 1.0, 1e-12);
  EXPECT_NEAR(s.stderr_value, 0.0, 1e-9);
}

TEST(LinearSlope, NoisyLineHasPositiveStderr) {
  std::vector<double> xs, ys;
  Rng rng(12);
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + rng.normal(0.0, 3.0));
  }
  const Slope s = linear_slope(xs, ys);
  EXPECT_NEAR(s.value, 2.0, 0.3);
  EXPECT_GT(s.stderr_value, 0.0);
}

TEST(LinearSlope, DegenerateX) {
  const std::vector<double> xs{5, 5, 5};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(linear_slope(xs, ys).value, 0.0);
}

}  // namespace
}  // namespace pcpc
