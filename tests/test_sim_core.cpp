// Tests for SimCore: busy windows, wakeup accounting, race-to-idle.
#include <gtest/gtest.h>

#include "pcpc/core/sim_core.hpp"

namespace pcpc::core {
namespace {

TEST(SimCore, FirstRunPaysWakeupAfterIdleTime) {
  sim::Simulator sim;
  SimCore core(sim);
  sim.at(100, [&](SimTime) { EXPECT_TRUE(core.run_for(50)); });
  sim.run();
  core.finalize(sim.now());
  EXPECT_EQ(core.wakeups(), 1u);
  EXPECT_EQ(core.timeline().active_time(), 50);
}

TEST(SimCore, OverlappingWorkExtendsWithoutNewWakeup) {
  sim::Simulator sim;
  SimCore core(sim);
  sim.at(100, [&](SimTime) { EXPECT_TRUE(core.run_for(100)); });
  sim.at(150, [&](SimTime) { EXPECT_FALSE(core.run_for(100)); });  // latched
  sim.run();
  core.finalize(sim.now());
  EXPECT_EQ(core.wakeups(), 1u);
  EXPECT_EQ(core.timeline().active_time(), 200);  // 100..300 contiguous
  // Exactly one contiguous active interval.
  int active_intervals = 0;
  for (const auto& iv : core.timeline().intervals()) {
    active_intervals += (iv.state == power::CoreState::Active);
  }
  EXPECT_EQ(active_intervals, 1);
}

TEST(SimCore, BackToBackWorkAtWindowEndIsFree) {
  sim::Simulator sim;
  SimCore core(sim);
  sim.at(100, [&](SimTime) { core.run_for(100); });
  sim.at(200, [&](SimTime) { EXPECT_FALSE(core.run_for(50)); });
  sim.run();
  core.finalize(sim.now());
  EXPECT_EQ(core.wakeups(), 1u);
  EXPECT_EQ(core.timeline().active_time(), 150);
}

TEST(SimCore, SeparatedWorkPaysTwice) {
  sim::Simulator sim;
  SimCore core(sim);
  sim.at(100, [&](SimTime) { core.run_for(50); });
  sim.at(1000, [&](SimTime) { EXPECT_TRUE(core.run_for(50)); });
  sim.run();
  core.finalize(sim.now());
  EXPECT_EQ(core.wakeups(), 2u);
  EXPECT_EQ(core.timeline().active_time(), 100);
}

TEST(SimCore, SleepsAtWindowEnd) {
  sim::Simulator sim;
  SimCore core(sim);
  sim.at(100, [&](SimTime) { core.run_for(50); });
  sim.run_until(120);
  EXPECT_TRUE(core.is_busy());
  sim.run();
  EXPECT_FALSE(core.is_busy());
  EXPECT_EQ(core.busy_until(), 150);
}

TEST(SimCore, ZeroBusyIsAllowed) {
  sim::Simulator sim;
  SimCore core(sim);
  sim.at(100, [&](SimTime) { core.run_for(0); });
  sim.run();
  core.finalize(sim.now());
  EXPECT_EQ(core.timeline().active_time(), 0);
}

TEST(SimCore, FinalizeIdleCore) {
  sim::Simulator sim;
  SimCore core(sim);
  core.finalize(seconds(1));
  EXPECT_EQ(core.timeline().duration(), seconds(1));
  EXPECT_EQ(core.timeline().idle_time(), seconds(1));
}

TEST(SimCore, ManySmallJobsProduceCorrectUsage) {
  sim::Simulator sim;
  SimCore core(sim);
  for (int i = 0; i < 100; ++i) {
    sim.at(milliseconds(10 * i), [&](SimTime) { core.run_for(milliseconds(1)); });
  }
  sim.run();
  core.finalize(seconds(1));
  // The t=0 job resumes a never-parked core for free; the other 99 pay.
  EXPECT_EQ(core.wakeups(), 99u);
  EXPECT_NEAR(core.timeline().usage_ms_per_s(), 100.0, 1e-9);
}

}  // namespace
}  // namespace pcpc::core
