// Tests for the structured report renderer/exporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pcpc/exp/report.hpp"

namespace pcpc::exp {
namespace {

Report sample_report() {
  Report report("sample");
  report.add_table("power", "Power by impl", {"impl", "mW"});
  report.add_row({"Mutex", "618.6"});
  report.add_row({"PBPL", "309.8"});
  report.add_table("wakeups", "Wakeups", {"impl", "wk/s"});
  report.add_row({"Mutex", "9024"});
  report.add_note("PBPL wins.");
  return report;
}

TEST(Report, PrintsTablesAndNotes) {
  std::ostringstream os;
  sample_report().print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Power by impl"), std::string::npos);
  EXPECT_NE(out.find("Mutex"), std::string::npos);
  EXPECT_NE(out.find("309.8"), std::string::npos);
  EXPECT_NE(out.find("PBPL wins."), std::string::npos);
}

TEST(Report, MarkdownShape) {
  const std::string md = sample_report().to_markdown();
  EXPECT_NE(md.find("## Power by impl"), std::string::npos);
  EXPECT_NE(md.find("| impl | mW |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| PBPL | 309.8 |"), std::string::npos);
}

TEST(Report, ExportsOneCsvPerTable) {
  const std::string dir = ::testing::TempDir();
  EXPECT_EQ(sample_report().export_csv(dir), 2u);
  std::ifstream power(dir + "/sample_power.csv");
  ASSERT_TRUE(power.good());
  std::string header, row;
  std::getline(power, header);
  std::getline(power, row);
  EXPECT_EQ(header, "impl,mW");
  EXPECT_EQ(row, "Mutex,618.6");
  std::remove((dir + "/sample_power.csv").c_str());
  std::remove((dir + "/sample_wakeups.csv").c_str());
}

TEST(Report, MaybeExportHonoursEnvironment) {
  const std::string dir = ::testing::TempDir();
  setenv("PCPC_EXPORT_DIR", dir.c_str(), 1);
  std::ostringstream os;
  sample_report().maybe_export(os);
  EXPECT_NE(os.str().find("exported 2"), std::string::npos);
  unsetenv("PCPC_EXPORT_DIR");
  std::ostringstream quiet;
  sample_report().maybe_export(quiet);
  EXPECT_TRUE(quiet.str().empty());
  std::remove((dir + "/sample_power.csv").c_str());
  std::remove((dir + "/sample_wakeups.csv").c_str());
}

TEST(ReportDeath, RowBeforeTableAborts) {
  Report report("x");
  EXPECT_DEATH(report.add_row({"a"}), "add_table");
}

TEST(ReportDeath, RowWidthMismatchAborts) {
  Report report("x");
  report.add_table("t", "", {"a", "b"});
  EXPECT_DEATH(report.add_row({"only one"}), "width");
}

}  // namespace
}  // namespace pcpc::exp
