// Tests for streaming statistics, confidence intervals and correlation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pcpc/common/stats.hpp"

namespace pcpc {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0 + i;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  OnlineStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(StudentT, TableValues) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(2, 0.95), 4.303, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 1e-3);
  EXPECT_NEAR(student_t_critical(2, 0.99), 9.925, 1e-3);
  EXPECT_NEAR(student_t_critical(2, 0.90), 2.920, 1e-3);
  EXPECT_NEAR(student_t_critical(10000, 0.95), 1.960, 1e-3);
}

TEST(StudentT, MonotoneInDf) {
  for (std::size_t df = 1; df < 60; ++df) {
    EXPECT_GE(student_t_critical(df, 0.95), student_t_critical(df + 1, 0.95));
  }
}

TEST(ConfidenceInterval, ThreeReplicates) {
  // The paper's setup: 3 replicates, 95% confidence.
  OnlineStats s;
  s.add(10.0);
  s.add(12.0);
  s.add(14.0);
  // stddev = 2, stderr = 2/sqrt(3), t(2, 0.95) = 4.303.
  EXPECT_NEAR(confidence_half_width(s, 0.95), 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(ConfidenceInterval, ZeroForSmallSamples) {
  OnlineStats s;
  EXPECT_EQ(confidence_half_width(s), 0.0);
  s.add(1.0);
  EXPECT_EQ(confidence_half_width(s), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  const std::vector<double> xs{3, 3, 3};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(pearson_correlation(xs, ys), 0.0);
}

TEST(Pearson, KnownValue) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 3, 2, 5, 4};
  EXPECT_NEAR(pearson_correlation(xs, ys), 0.8, 1e-12);
}

TEST(Measurement, FormatsWithPlusMinus) {
  const std::vector<double> values{9.0, 10.0, 11.0};
  const Measurement m = measure(values);
  EXPECT_DOUBLE_EQ(m.mean, 10.0);
  EXPECT_GT(m.ci95, 0.0);
  EXPECT_EQ(m.replicates, 3u);
  EXPECT_NE(m.to_string().find("±"), std::string::npos);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow
  h.add(5.5);    // bin 5
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

class HistogramQuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(HistogramQuantileMonotone, NonDecreasing) {
  Histogram h(0.0, 1.0, 20);
  // Deterministic skewed data.
  for (int i = 0; i < 1000; ++i) h.add(std::fmod(i * 0.618, 1.0) * std::fmod(i * 0.618, 1.0));
  const double q = GetParam();
  EXPECT_LE(h.quantile(q * 0.5), h.quantile(q) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, HistogramQuantileMonotone,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace pcpc
