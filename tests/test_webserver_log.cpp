// Tests for the synthetic web-server workload generator.
#include <gtest/gtest.h>

#include "pcpc/trace/webserver_log.hpp"

namespace pcpc::trace {
namespace {

WebWorkloadParams small_params() {
  WebWorkloadParams p;
  p.duration = seconds(5);
  p.base_rate_hz = 1000.0;
  return p;
}

TEST(WebWorkload, DeterministicBySeed) {
  const Trace a = make_web_workload(small_params());
  const Trace b = make_web_workload(small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.at(i), b.at(i));
}

TEST(WebWorkload, DifferentSeedsDiffer) {
  WebWorkloadParams p = small_params();
  const Trace a = make_web_workload(p);
  p.seed ^= 0xdeadbeef;
  const Trace b = make_web_workload(p);
  EXPECT_NE(a.size(), b.size());
}

TEST(WebWorkload, MeanRateNearBase) {
  WebWorkloadParams p = small_params();
  p.bursts_per_minute = 0.0;  // isolate the base load
  p.secondary_fraction = 0.0;
  p.diurnal_fraction = 0.0;
  const Trace t = make_web_workload(p);
  const double rate = static_cast<double>(t.size()) / to_seconds(p.duration);
  EXPECT_NEAR(rate, p.base_rate_hz, p.base_rate_hz * 0.1);
}

TEST(WebWorkload, NonLinearRate) {
  // The paper's key dataset property: the production rate varies
  // substantially over time.
  WebWorkloadParams p = small_params();
  p.duration = seconds(20);  // a full diurnal cycle
  const Trace t = make_web_workload(p);
  const TraceStats s = t.stats(milliseconds(250));
  EXPECT_GT(s.peak_rate_hz, 1.4 * s.mean_rate_hz);
}

TEST(WebWorkload, WithinDuration) {
  const Trace t = make_web_workload(small_params());
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.at(0), 0);
  EXPECT_LT(t.end_time(), seconds(5));
}

TEST(WebWorkload, BurstsRaiseThePeak) {
  WebWorkloadParams quiet = small_params();
  quiet.bursts_per_minute = 0.0;
  WebWorkloadParams bursty = small_params();
  bursty.bursts_per_minute = 60.0;
  bursty.burst_amplitude_factor = 5.0;
  const double quiet_peak = make_web_workload(quiet).stats().peak_rate_hz;
  const double bursty_peak = make_web_workload(bursty).stats().peak_rate_hz;
  EXPECT_GT(bursty_peak, quiet_peak * 1.5);
}

class ShiftedWorkloadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShiftedWorkloadTest, EveryProducerSeesTheSameItemCount) {
  const std::size_t producers = GetParam();
  const auto traces = make_shifted_workloads(small_params(), producers);
  ASSERT_EQ(traces.size(), producers);
  for (const auto& t : traces) EXPECT_EQ(t.size(), traces.front().size());
}

TEST_P(ShiftedWorkloadTest, ShiftsAreDistinct) {
  const std::size_t producers = GetParam();
  const auto traces = make_shifted_workloads(small_params(), producers);
  if (producers < 2) return;
  // Producer 1 must differ from producer 0 (it starts 1/M further in).
  bool any_difference = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(100, traces[0].size()); ++i) {
    if (traces[0].at(i) != traces[1].at(i)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

INSTANTIATE_TEST_SUITE_P(ProducerCounts, ShiftedWorkloadTest,
                         ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace pcpc::trace
