// Tests for the elastic buffer pool (Section V-C dynamic resizing).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/queue/elastic_buffer.hpp"

namespace pcpc::queue {
namespace {

TEST(BufferPool, SlotAccountingAtConstruction) {
  BufferPool<int> pool(/*consumers=*/4, /*base_capacity=*/25, /*segment_size=*/5);
  EXPECT_EQ(pool.total_slots(), 100u);
  EXPECT_EQ(pool.free_slots(), 100u);
  EXPECT_EQ(pool.base_capacity(), 25u);
}

TEST(BufferPool, RoundsUpPerConsumer) {
  BufferPool<int> pool(/*consumers=*/3, /*base_capacity=*/7, /*segment_size=*/5);
  // Each consumer's 7-slot share rounds to 2 segments: 3 × 10 slots.
  EXPECT_EQ(pool.total_slots(), 30u);
}

TEST(BufferPool, EveryConsumerGetsItsBaseShare) {
  // Regression (found by fuzzing): with a segment size larger than the
  // base capacity, global rounding used to under-provision the pool and
  // the last make_buffer() came up empty.
  BufferPool<int> pool(/*consumers=*/3, /*base_capacity=*/4, /*segment_size=*/10);
  std::vector<ElasticBuffer<int>> buffers;
  for (int i = 0; i < 3; ++i) buffers.push_back(pool.make_buffer());
  for (const auto& b : buffers) EXPECT_GE(b.capacity(), 4u);
}

TEST(BufferPool, MakeBufferTakesBaseCapacity) {
  BufferPool<int> pool(2, 25, 5);
  auto buffer = pool.make_buffer();
  EXPECT_EQ(buffer.capacity(), 25u);
  EXPECT_EQ(pool.free_slots(), 25u);
}

TEST(ElasticBuffer, FifoWithOverflowCount) {
  BufferPool<int> pool(1, 3, 1);
  auto buffer = pool.make_buffer();
  EXPECT_TRUE(buffer.push(1));
  EXPECT_TRUE(buffer.push(2));
  EXPECT_TRUE(buffer.push(3));
  EXPECT_FALSE(buffer.push(4));
  EXPECT_EQ(buffer.overflows(), 1u);
  EXPECT_EQ(*buffer.pop(), 1);
  EXPECT_EQ(*buffer.pop(), 2);
  EXPECT_EQ(*buffer.pop(), 3);
  EXPECT_EQ(buffer.pop(), std::nullopt);
}

TEST(ElasticBuffer, GrowTakesFromPool) {
  BufferPool<int> pool(2, 10, 5);
  auto a = pool.make_buffer();
  EXPECT_EQ(pool.free_slots(), 10u);
  EXPECT_EQ(a.resize(20), 20u);
  EXPECT_EQ(pool.free_slots(), 0u);
}

TEST(ElasticBuffer, GrowIsClampedByPool) {
  BufferPool<int> pool(2, 10, 5);
  auto a = pool.make_buffer();
  auto b = pool.make_buffer();
  EXPECT_EQ(pool.free_slots(), 0u);
  EXPECT_EQ(a.resize(100), 10u);  // nothing left to lend
  b.resize(5);                    // b shrinks, frees one segment
  EXPECT_EQ(a.resize(100), 15u);  // a can now take it
}

TEST(ElasticBuffer, ShrinkReturnsToPool) {
  BufferPool<int> pool(1, 20, 5);
  auto buffer = pool.make_buffer();
  buffer.resize(5);
  EXPECT_EQ(buffer.capacity(), 5u);
  EXPECT_EQ(pool.free_slots(), 15u);
}

TEST(ElasticBuffer, ShrinkNeverDropsLiveItems) {
  BufferPool<int> pool(1, 20, 5);
  auto buffer = pool.make_buffer();
  for (int i = 0; i < 12; ++i) buffer.push(i);
  buffer.resize(1);  // wants 1 slot but holds 12 items
  EXPECT_GE(buffer.capacity(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(*buffer.pop(), i);
}

TEST(ElasticBuffer, ResizeRoundsToSegments) {
  BufferPool<int> pool(1, 20, 5);
  auto buffer = pool.make_buffer();
  EXPECT_EQ(buffer.resize(7), 10u);  // 2 segments of 5
  EXPECT_EQ(buffer.resize(11), 15u);
}

TEST(ElasticBuffer, TrimReleasesAllSpare) {
  BufferPool<int> pool(1, 20, 5);
  auto buffer = pool.make_buffer();
  buffer.push(1);
  buffer.trim();
  EXPECT_EQ(buffer.capacity(), 5u);  // one segment still holds the item
  EXPECT_EQ(pool.free_slots(), 15u);
}

TEST(ElasticBuffer, DestructionReturnsSegments) {
  BufferPool<int> pool(2, 10, 5);
  {
    auto buffer = pool.make_buffer();
    EXPECT_EQ(pool.free_slots(), 10u);
  }
  EXPECT_EQ(pool.free_slots(), 20u);
}

TEST(ElasticBuffer, MoveTransfersOwnership) {
  BufferPool<int> pool(1, 10, 5);
  auto a = pool.make_buffer();
  a.push(42);
  auto b = std::move(a);
  EXPECT_EQ(*b.pop(), 42);
  // Destroying both must not double-free pool segments.
}

TEST(ElasticBuffer, CapacitySamplesRecordResizes) {
  BufferPool<int> pool(1, 20, 5);
  auto buffer = pool.make_buffer();
  buffer.resize(10);
  buffer.resize(20);
  EXPECT_EQ(buffer.capacity_samples().count(), 2u);
  EXPECT_DOUBLE_EQ(buffer.capacity_samples().mean(), 15.0);
}

TEST(ElasticBuffer, HighWaterTracksPeak) {
  BufferPool<int> pool(1, 10, 5);
  auto buffer = pool.make_buffer();
  buffer.push(1);
  buffer.push(2);
  buffer.pop();
  EXPECT_EQ(buffer.high_water(), 2u);
}

class PoolConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolConservationTest, SlotsAreConservedUnderRandomTraffic) {
  // Property: at every step, free + Σ owned = total, and no buffer ever
  // loses a live item.
  BufferPool<int> pool(4, 25, 5);
  std::vector<ElasticBuffer<int>> buffers;
  for (int i = 0; i < 4; ++i) buffers.push_back(pool.make_buffer());
  std::vector<int> next_in(4, 0), next_out(4, 0);
  Rng rng(GetParam());
  for (int step = 0; step < 20000; ++step) {
    const auto who = static_cast<std::size_t>(rng.next_below(4));
    auto& buffer = buffers[who];
    const double action = rng.next_double();
    if (action < 0.4) {
      if (buffer.push(next_in[who])) ++next_in[who];
    } else if (action < 0.8) {
      if (auto v = buffer.pop()) {
        ASSERT_EQ(*v, next_out[who]);
        ++next_out[who];
      }
    } else {
      buffer.resize(rng.next_below(60));
    }
    std::size_t owned = 0;
    for (const auto& b : buffers) owned += b.capacity();
    ASSERT_EQ(owned + pool.free_slots(), pool.total_slots());
    ASSERT_GE(buffer.capacity(), buffer.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolConservationTest, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BufferPool, ExhaustionDegradesInsteadOfAborting) {
  // Regression: an over-subscribed pool used to PCPC_ASSERT-abort inside
  // make_buffer().  It must instead over-commit one emergency segment,
  // count the event, and hand out a usable (if minimal) buffer.
  BufferPool<int> pool(/*consumers=*/2, /*base_capacity=*/8, /*segment_size=*/8);
  auto a = pool.make_buffer();
  auto b = pool.make_buffer();
  EXPECT_EQ(pool.free_slots(), 0u);

  auto c = pool.make_buffer();  // pool is empty: degraded grant
  EXPECT_EQ(pool.exhausted_grants(), 1u);
  EXPECT_EQ(c.capacity(), 8u);  // exactly one segment
  EXPECT_TRUE(c.push(42));
  EXPECT_EQ(c.pop(), 42);

  // The over-commit grew Bg by the emergency segment, so the global
  // owned + free == total invariant still holds.
  EXPECT_EQ(a.capacity() + b.capacity() + c.capacity() + pool.free_slots(),
            pool.total_slots());
}

TEST(BufferPool, SeizeAndRestoreSegmentsForPressure) {
  BufferPool<int> pool(/*consumers=*/4, /*base_capacity=*/10, /*segment_size=*/5);
  EXPECT_EQ(pool.total_segments(), 8u);
  auto a = pool.make_buffer();  // takes 2 segments, 6 free
  const std::size_t seized = pool.seize_segments(100);
  EXPECT_EQ(seized, 6u);  // only what was free
  EXPECT_EQ(pool.free_slots(), 0u);
  // Growth requests now come up empty; the buffer keeps what it owns.
  EXPECT_EQ(a.resize(40), a.capacity());
  EXPECT_EQ(a.capacity(), 10u);
  pool.restore_segments(seized);
  EXPECT_EQ(pool.free_slots(), 30u);
  EXPECT_GE(a.resize(40), 40u);
}

// Regression: resize() used to re-read items_.size() per clamping
// decision, so a push landing mid-resize (the thread host's
// producer-vs-manager interleaving, serialized only by the caller's
// lock) could strand capacity() < size().  The fix snapshots the fill
// level once; this hammers grow/shrink against a concurrent enqueuer
// under the documented external lock and checks the invariant after
// every single operation.  Run under TSan by ci/sanitize.sh.
TEST(ElasticBufferConcurrency, GrowRacesEnqueue) {
  BufferPool<int> pool(/*consumers=*/2, /*base_capacity=*/16, /*segment_size=*/4);
  auto buffer = pool.make_buffer();
  std::mutex lock;  // the contract: one lock guards push/pop AND resize
  std::atomic<bool> stop{false};

  std::thread producer([&] {
    Rng rng(11);
    int item = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> guard(lock);
      if (rng.next_below(3) == 0) {
        buffer.pop();
      } else {
        buffer.push(item++);
      }
      ASSERT_GE(buffer.capacity(), buffer.size());
    }
  });

  Rng rng(22);
  for (int i = 0; i < 20000; ++i) {
    std::lock_guard<std::mutex> guard(lock);
    const std::size_t target = 1 + static_cast<std::size_t>(rng.next_below(32));
    const std::size_t granted = buffer.resize(target);
    // The one-snapshot clamp: never below what was live at the call.
    ASSERT_GE(granted, buffer.size());
    ASSERT_EQ(granted, buffer.capacity());
  }
  stop.store(true);
  producer.join();

  // Pool accounting survived the storm: owned + free == total.
  EXPECT_EQ(buffer.capacity() + pool.free_slots(), pool.total_slots());
}

}  // namespace
}  // namespace pcpc::queue
