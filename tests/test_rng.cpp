// Tests for the deterministic PRNG and its distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "pcpc/common/rng.hpp"

namespace pcpc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleOpenNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.next_double_open(), 0.0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 250.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05 / rate);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(0.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 1.0, 0.03);  // median of LN(0, σ) is e^0 = 1
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanMatches) {
  const double mean = GetParam();
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.0, 0.5, 2.0, 10.0, 100.0));

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next_u64() == child.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 specification for seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace pcpc
