// Tests for the rate predictors (Section V-C prediction; Kalman is the
// paper's future-work estimator).
#include <gtest/gtest.h>

#include <cmath>

#include "pcpc/core/rate_predictor.hpp"

namespace pcpc::core {
namespace {

TEST(MovingAveragePredictor, ZeroBeforeObservations) {
  MovingAverageRatePredictor p(4);
  EXPECT_EQ(p.predict(), 0.0);
}

TEST(MovingAveragePredictor, WindowedMean) {
  MovingAverageRatePredictor p(3);
  p.observe(300.0);
  p.observe(600.0);
  EXPECT_DOUBLE_EQ(p.predict(), 450.0);
  p.observe(900.0);
  p.observe(1200.0);  // evicts 300
  EXPECT_DOUBLE_EQ(p.predict(), 900.0);
}

TEST(MovingAveragePredictor, ResetClearsHistory) {
  MovingAverageRatePredictor p(3);
  p.observe(500.0);
  p.reset();
  EXPECT_EQ(p.predict(), 0.0);
}

TEST(MovingAveragePredictor, NameIncludesWindow) {
  MovingAverageRatePredictor p(8);
  EXPECT_NE(p.name().find("h=8"), std::string::npos);
}

TEST(KalmanPredictor, FirstObservationIsEstimate) {
  KalmanRatePredictor p;
  p.observe(1234.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1234.0);
}

TEST(KalmanPredictor, ConvergesToConstantRate) {
  KalmanRatePredictor p;
  for (int i = 0; i < 200; ++i) p.observe(2000.0);
  EXPECT_NEAR(p.predict(), 2000.0, 1e-6);
}

TEST(KalmanPredictor, CovarianceShrinksUnderConstantInput) {
  KalmanRatePredictor p;
  p.observe(100.0);
  const double p0 = p.covariance();
  for (int i = 0; i < 50; ++i) p.observe(100.0);
  EXPECT_LT(p.covariance(), p0);
}

TEST(KalmanPredictor, TracksAStep) {
  KalmanRatePredictor p(/*process_noise=*/400.0, /*measurement_noise=*/4000.0);
  for (int i = 0; i < 50; ++i) p.observe(1000.0);
  for (int i = 0; i < 50; ++i) p.observe(5000.0);
  EXPECT_NEAR(p.predict(), 5000.0, 300.0);
}

TEST(KalmanPredictor, SmoothsNoiseBetterThanShortMovingAverage) {
  // Alternating measurements around a constant mean: the Kalman estimate
  // should hug the mean more tightly than a short moving average (an
  // even window would cancel the alternation exactly, so use 3).
  KalmanRatePredictor kalman;
  MovingAverageRatePredictor ma(3);
  double kalman_err = 0.0, ma_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double z = 1000.0 + ((i % 2 == 0) ? 400.0 : -400.0);
    kalman.observe(z);
    ma.observe(z);
    if (i > 20) {
      kalman_err += std::abs(kalman.predict() - 1000.0);
      ma_err += std::abs(ma.predict() - 1000.0);
    }
  }
  EXPECT_LT(kalman_err, ma_err);
}

TEST(KalmanPredictor, ResetForgetsState) {
  KalmanRatePredictor p;
  p.observe(999.0);
  p.reset();
  EXPECT_EQ(p.predict(), 0.0);
  p.observe(5.0);
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(PredictorFactory, CreatesRequestedKind) {
  const auto ma = make_predictor(PredictorKind::MovingAverage, 8);
  EXPECT_NE(ma->name().find("moving-average"), std::string::npos);
  const auto kalman = make_predictor(PredictorKind::Kalman, 8);
  EXPECT_EQ(kalman->name(), "kalman");
}

TEST(PredictorDeath, NegativeRateRejected) {
  MovingAverageRatePredictor p(4);
  EXPECT_DEATH(p.observe(-1.0), "non-negative");
}

TEST(EwmaPredictor, FirstObservationIsEstimate) {
  EwmaRatePredictor p(0.3);
  EXPECT_EQ(p.predict(), 0.0);
  p.observe(500.0);
  EXPECT_DOUBLE_EQ(p.predict(), 500.0);
}

TEST(EwmaPredictor, GeometricUpdate) {
  EwmaRatePredictor p(0.25);
  p.observe(1000.0);
  p.observe(2000.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1000.0 + 0.25 * 1000.0);
  p.observe(2000.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1250.0 + 0.25 * 750.0);
}

TEST(EwmaPredictor, ConvergesToConstant) {
  EwmaRatePredictor p(0.25);
  for (int i = 0; i < 100; ++i) p.observe(3000.0);
  EXPECT_NEAR(p.predict(), 3000.0, 1e-6);
}

TEST(EwmaPredictor, AlphaOneTracksExactly) {
  EwmaRatePredictor p(1.0);
  p.observe(10.0);
  p.observe(99.0);
  EXPECT_DOUBLE_EQ(p.predict(), 99.0);
}

TEST(EwmaPredictor, ResetForgets) {
  EwmaRatePredictor p(0.5);
  p.observe(100.0);
  p.reset();
  EXPECT_EQ(p.predict(), 0.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
}

TEST(EwmaPredictor, FactoryCreatesIt) {
  const auto p = make_predictor(PredictorKind::Ewma, 8);
  EXPECT_NE(p->name().find("ewma"), std::string::npos);
}

TEST(EwmaPredictorDeath, RejectsBadAlpha) {
  EXPECT_DEATH(EwmaRatePredictor(0.0), "alpha");
  EXPECT_DEATH(EwmaRatePredictor(1.5), "alpha");
}

}  // namespace
}  // namespace pcpc::core
