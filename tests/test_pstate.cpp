// Tests for the P-state/DVFS model and the race-to-idle evaluation
// (paper Section II background).
#include <gtest/gtest.h>

#include "pcpc/power/cstate.hpp"
#include "pcpc/power/pstate.hpp"

namespace pcpc::power {
namespace {

TEST(PState, DynamicPowerFollowsCV2F) {
  // P = C·V²·f + leakage, checked by hand.
  const PStateModel model({PState{"a", 1e9, 1.0}, PState{"b", 2e9, 1.2}},
                          /*C=*/1e-9, /*leakage=*/0.1);
  EXPECT_NEAR(model.active_power_w(0), 1e-9 * 1.0 * 1e9 + 0.1, 1e-9);
  EXPECT_NEAR(model.active_power_w(1), 1e-9 * 1.44 * 2e9 + 0.1, 1e-9);
}

TEST(PState, PowerGrowsWithFrequency) {
  const PStateModel model = PStateModel::arndale_like();
  for (std::size_t i = 1; i < model.size(); ++i) {
    EXPECT_GT(model.active_power_w(i), model.active_power_w(i - 1));
  }
}

TEST(PState, TopStateMatchesTwoStateCalibration) {
  // The simplified two-state model's 1.1 W active power is the DVFS
  // table's top state.
  const PStateModel model = PStateModel::arndale_like();
  EXPECT_NEAR(model.active_power_w(model.fastest()), 1.10, 0.02);
}

TEST(PState, ExecutionTimeScalesInverselyWithFrequency) {
  const PStateModel model = PStateModel::arndale_like();
  const double work = 1.6e6;  // cycles
  EXPECT_EQ(model.execution_time(work, model.fastest()), milliseconds(1));
  EXPECT_GT(model.execution_time(work, 0), model.execution_time(work, model.fastest()));
}

TEST(PState, EnergyPerCycleFallsAtLowerFrequency) {
  // Without idle effects, running slower is more efficient per cycle
  // (voltage drops): the reason race-to-idle is not trivially optimal.
  const PStateModel model = PStateModel::arndale_like();
  const double work = 1e9;
  EXPECT_LT(model.execution_energy_j(work, 0),
            model.execution_energy_j(work, model.fastest()));
}

TEST(PState, SlowestMeetingDeadline) {
  const PStateModel model = PStateModel::arndale_like();
  const double work = 1.6e6;  // 1 ms at 1.6 GHz, ~2.67 ms at 600 MHz
  EXPECT_EQ(model.slowest_meeting(work, milliseconds(10)), 0u);
  EXPECT_EQ(model.slowest_meeting(work, milliseconds(1)), model.fastest());
  // Impossible deadline falls back to the fastest state.
  EXPECT_EQ(model.slowest_meeting(work, microseconds(1)), model.fastest());
}

TEST(RaceToIdle, WindowAccounting) {
  const PStateModel pstates = PStateModel::arndale_like();
  const CStateModel idle = CStateModel::two_state(0.1);
  const double work = 1.6e6;  // 1 ms at top speed
  const auto outcome =
      evaluate_window(pstates, idle, work, milliseconds(4), 8e-6, pstates.fastest());
  EXPECT_EQ(outcome.busy, milliseconds(1));
  EXPECT_EQ(outcome.idle, milliseconds(3));
  EXPECT_GT(outcome.energy_j, 0.0);
}

TEST(RaceToIdle, ShallowIdleFavoursLowFrequency) {
  // With only a shallow (expensive) idle state, crawling at the slowest
  // P-state that fills the window beats racing and idling.
  const PStateModel pstates = PStateModel::arndale_like();
  const CStateModel shallow = CStateModel::two_state(0.30);
  const double work = 2.4e6;  // 1.5 ms at 1.6 GHz, 4 ms at 600 MHz
  const auto best = best_pstate(pstates, shallow, work, milliseconds(4), 8e-6);
  EXPECT_EQ(best.pstate, 0u);
}

TEST(RaceToIdle, DeepIdleFavoursRacing) {
  // With a deep C-state ladder the idle time is nearly free, so the
  // higher P-states become competitive — race-to-idle's premise.
  const PStateModel pstates = PStateModel::arndale_like();
  const CStateModel deep = CStateModel::two_state(0.005);
  const double work = 2.4e6;
  const auto shallow_best =
      best_pstate(pstates, CStateModel::two_state(0.30), work, milliseconds(4), 8e-6);
  const auto deep_best = best_pstate(pstates, deep, work, milliseconds(4), 8e-6);
  EXPECT_GT(deep_best.pstate, shallow_best.pstate);
}

TEST(RaceToIdle, OversizedWorkRunsFlatOut) {
  const PStateModel pstates = PStateModel::arndale_like();
  const CStateModel idle = CStateModel::arndale_like();
  const double work = 1e12;  // cannot fit any window
  const auto best = best_pstate(pstates, idle, work, milliseconds(1), 8e-6);
  EXPECT_EQ(best.pstate, pstates.fastest());
  EXPECT_EQ(best.idle, 0);
}

TEST(PStateDeath, RejectsUnsortedTable) {
  EXPECT_DEATH(PStateModel({PState{"a", 2e9, 1.2}, PState{"b", 1e9, 1.0}}, 1e-9, 0.1),
               "ascending");
}

}  // namespace
}  // namespace pcpc::power
