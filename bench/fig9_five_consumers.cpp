// Figure 9 reproduction: wakeups/s versus power for Mutex, Sem, BP and
// PBPL with 5 producer-consumer pairs and buffer size 25.
#include <cstdio>
#include <iostream>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/exp/report.hpp"
#include "pcpc/power/energy_trace.hpp"
#include "pcpc/trace/webserver_log.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  const exp::ExperimentSpec spec = exp::multi_pair_spec(/*pairs=*/5, /*buffer=*/25);
  exp::Report report("fig9");
  report.add_table("metrics", "fig9 metrics",
                   {"impl", "wakeups_per_s", "power_mw", "usage_ms_per_s", "overflows",
                    "latency_ms"});

  Table table({"impl", "wakeups/s", "power (mW)", "usage (ms/s)", "overflows",
               "mean latency (ms)"});
  table.set_title(
      "Figure 9 — multi producer-consumer, M=5 pairs, B=25, 2 cores\n"
      "phase-shifted web-log replay, 10 s, 3 replicates, mean ± 95% CI");

  double mutex_power = 0.0, mutex_wakeups = 0.0;
  double bp_power = 0.0, bp_wakeups = 0.0;
  double pbpl_power = 0.0, pbpl_wakeups = 0.0;
  for (const auto kind : exp::kMultiEvalImpls) {
    const auto summary = exp::summarize(kind, spec);
    table.add(impls::impl_name(kind), summary.wakeups_per_s.to_string(1),
              summary.power_mw.to_string(1), summary.usage_ms_per_s.to_string(1),
              summary.overflows.to_string(0), summary.mean_latency_ms.to_string(2));
    report.add_row({impls::impl_name(kind), format_double(summary.wakeups_per_s.mean, 2),
                    format_double(summary.power_mw.mean, 2),
                    format_double(summary.usage_ms_per_s.mean, 2),
                    format_double(summary.overflows.mean, 0),
                    format_double(summary.mean_latency_ms.mean, 3)});
    if (kind == ImplKind::Mutex) {
      mutex_power = summary.power_mw.mean;
      mutex_wakeups = summary.wakeups_per_s.mean;
    } else if (kind == ImplKind::Batch) {
      bp_power = summary.power_mw.mean;
      bp_wakeups = summary.wakeups_per_s.mean;
    } else if (kind == ImplKind::Pbpl) {
      pbpl_power = summary.power_mw.mean;
      pbpl_wakeups = summary.wakeups_per_s.mean;
    }
  }
  table.print(std::cout);

  // Mechanism supplement: where each implementation's idle time actually
  // goes on the C-state ladder (one direct run, both cores summed).
  {
    auto workload = spec.workload;
    workload.duration = spec.horizon;
    const auto traces = trace::make_shifted_workloads(workload, spec.pairs);
    Table residency_table({"impl", "C1-wfi", "C2-retention", "C3-core-off",
                           "C4-cluster-off"});
    residency_table.set_title("\nIdle-state residency (% of idle time)");
    for (const auto kind : {ImplKind::Mutex, ImplKind::Batch, ImplKind::Pbpl}) {
      const auto run = impls::run_implementation(kind, traces, spec.horizon, spec.setup);
      std::vector<double> shares(4, 0.0);
      SimDuration idle_total = 0;
      for (const auto& tl : run.timelines) {
        const auto residency = power::idle_residency(tl, spec.power.cstates);
        for (std::size_t i = 1; i < residency.size() && i <= 4; ++i) {
          shares[i - 1] += static_cast<double>(residency[i].time);
        }
        idle_total += tl.idle_time();
      }
      for (auto& share : shares) {
        share = idle_total > 0 ? 100.0 * share / static_cast<double>(idle_total) : 0.0;
      }
      residency_table.add(impls::impl_name(kind), format_double(shares[0], 1),
                          format_double(shares[1], 1), format_double(shares[2], 1),
                          format_double(shares[3], 1));
    }
    residency_table.print(std::cout);
  }

  std::printf("\nHeadline claims (Section VI-C, Figure 9):\n");
  std::printf("  PBPL vs Mutex: wakeups %5.1f %% lower (paper: 39.5%%), power %5.1f %% lower (paper: 20%%)\n",
              100.0 * (mutex_wakeups - pbpl_wakeups) / mutex_wakeups,
              100.0 * (mutex_power - pbpl_power) / mutex_power);
  std::printf("  PBPL vs BP:    wakeups %5.1f %% lower (paper: 37.8%%), power %5.1f %% lower (paper: 7.4%%)\n",
              100.0 * (bp_wakeups - pbpl_wakeups) / bp_wakeups,
              100.0 * (bp_power - pbpl_power) / bp_power);
  report.maybe_export(std::cout);
  return 0;
}
