// Varlen zero-copy throughput floor gate (run by ci/bench_smoke.sh).
//
// The in-ring record plane exists to delete the two memcpys the
// fixed-size item path forces onto every real payload: producer staging
// buffer -> queue, queue -> consumer staging buffer.  The gate measures
// exactly that delta, per payload size, on both ring disciplines:
//
//   - copy path:  fill a staging buffer, try_push_record (memcpy in),
//                 drain + memcpy out to a staging buffer, checksum it;
//   - zero-copy:  reserve, fill the ring storage in place, commit,
//                 drain and checksum the in-ring span directly.
//
// Both paths generate and checksum-touch every payload byte, so the
// difference is purely the staging copies.  Floors: at the 4 KiB point
// (large enough to be bandwidth-bound, small enough to live in cache)
// zero-copy must hold >= 1.5x on the SPSC ring and >= 1.2x with four
// producers on the MPSC ring; medians over trials absorb scheduler
// noise.
//
// Usage: varlen_floor [--bytes=N] [--trials=N] [--json-out=F]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/queue/varlen.hpp"

namespace {

using pcpc::queue::VarMpscRing;
using pcpc::queue::VarReservation;
using pcpc::queue::VarSpscRing;

constexpr std::uint32_t kGateSize = 4096;
constexpr double kSpscFloor = 1.5;
constexpr double kMpscFloor = 1.2;
constexpr std::size_t kRingBytes = 1u << 20;  ///< logical capacity, footprint bytes
constexpr std::uint32_t kMaxRecord = 16u << 10;

struct Options {
  std::uint64_t bytes = 64u << 20;  ///< payload bytes moved per trial
  std::size_t trials = 5;
  std::string json_out;
};

/// Generates record `seq`'s payload directly into `dst` (8-byte words;
/// every byte written) and returns the checksum the consumer must see.
std::uint64_t fill_payload(std::byte* dst, std::uint32_t size, std::uint64_t seq) {
  std::uint64_t sum = 0;
  const std::size_t words = size / 8;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t v = seq * 0x9e3779b97f4a7c15ull + w;
    std::memcpy(dst + w * 8, &v, 8);
    sum ^= v;
  }
  for (std::size_t i = words * 8; i < size; ++i) {
    dst[i] = static_cast<std::byte>(seq + i);
    sum ^= static_cast<std::uint64_t>(dst[i]) << (8 * (i % 8));
  }
  return sum;
}

/// Checksums a payload the same way fill_payload counted it.
std::uint64_t checksum_payload(const std::byte* src, std::size_t size) {
  std::uint64_t sum = 0;
  const std::size_t words = size / 8;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t v = 0;
    std::memcpy(&v, src + w * 8, 8);
    sum ^= v;
  }
  for (std::size_t i = words * 8; i < size; ++i) {
    sum ^= static_cast<std::uint64_t>(src[i]) << (8 * (i % 8));
  }
  return sum;
}

/// One trial on ring type R with `producers` producer threads; returns
/// payload bytes per second.  `zero_copy` selects the path under test.
template <typename R>
double run_trial(std::size_t producers, std::uint32_t size, std::uint64_t total_bytes,
                 bool zero_copy) {
  R ring(kRingBytes, /*max_bytes=*/0, kMaxRecord);
  const std::uint64_t records = std::max<std::uint64_t>(1, total_bytes / size);
  const std::uint64_t per_producer = records / producers;
  const std::uint64_t total = per_producer * producers;

  std::atomic<std::uint64_t> produced_sum{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&ring, &produced_sum, per_producer, size, zero_copy, p] {
      std::uint64_t sum = 0;
      std::vector<std::byte> staging(size);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t seq = p * per_producer + i;
        if (zero_copy) {
          VarReservation r;
          while (!ring.try_reserve(size, r)) std::this_thread::yield();
          sum ^= fill_payload(r.data, size, seq);
          ring.commit(r);
        } else {
          sum ^= fill_payload(staging.data(), size, seq);
          while (!ring.try_push_record(std::span<const std::byte>(staging))) {
            std::this_thread::yield();
          }
        }
      }
      produced_sum.fetch_xor(sum, std::memory_order_relaxed);
    });
  }

  std::uint64_t consumed = 0;
  std::uint64_t consumed_sum = 0;
  std::vector<std::byte> staging(size);
  while (consumed < total) {
    const std::size_t n = ring.drain(
        [&](std::span<const std::byte> payload) {
          if (zero_copy) {
            consumed_sum ^= checksum_payload(payload.data(), payload.size());
          } else {
            std::memcpy(staging.data(), payload.data(), payload.size());
            consumed_sum ^= checksum_payload(staging.data(), payload.size());
          }
        },
        /*max_records=*/256);
    if (n == 0) {
      std::this_thread::yield();
    } else {
      consumed += n;
    }
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (consumed_sum != produced_sum.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "varlen_floor: FAIL — checksum mismatch (torn payload)\n");
    std::exit(1);
  }
  return static_cast<double>(total) * size / seconds;
}

template <typename R>
double median_rate(std::size_t producers, std::uint32_t size, const Options& options,
                   bool zero_copy) {
  std::vector<double> samples;
  for (std::size_t t = 0; t < options.trials; ++t) {
    samples.push_back(run_trial<R>(producers, size, options.bytes, zero_copy));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bytes=", 8) == 0) {
      options.bytes = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      options.trials = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      options.json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "varlen_floor: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const std::uint32_t sizes[] = {64, 256, 1024, 4096, 16384};
  std::printf("varlen_floor (median of %zu trials, %llu MiB/trial)\n", options.trials,
              static_cast<unsigned long long>(options.bytes >> 20));

  double spsc_ratio_gate = 0.0;
  double spsc_zero_gate = 0.0;
  double spsc_copy_gate = 0.0;
  std::string json_sizes;
  for (const std::uint32_t size : sizes) {
    const double copy = median_rate<VarSpscRing<>>(1, size, options, false);
    const double zero = median_rate<VarSpscRing<>>(1, size, options, true);
    const double ratio = zero / copy;
    std::printf("  spsc %6u B: copy %8.2f MB/s | zero-copy %8.2f MB/s (%.2fx)\n",
                size, copy / 1e6, zero / 1e6, ratio);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"spsc_ratio_%u\":%.3f,", size, ratio);
    json_sizes += buf;
    if (size == kGateSize) {
      spsc_ratio_gate = ratio;
      spsc_zero_gate = zero;
      spsc_copy_gate = copy;
    }
  }

  const double mpsc_copy = median_rate<VarMpscRing<>>(4, kGateSize, options, false);
  const double mpsc_zero = median_rate<VarMpscRing<>>(4, kGateSize, options, true);
  const double mpsc_ratio = mpsc_zero / mpsc_copy;
  std::printf("  mpsc 4p %4u B: copy %8.2f MB/s | zero-copy %8.2f MB/s (%.2fx)\n",
              kGateSize, mpsc_copy / 1e6, mpsc_zero / 1e6, mpsc_ratio);

  int failures = 0;
  if (spsc_ratio_gate < kSpscFloor) {
    std::fprintf(stderr,
                 "varlen_floor: FAIL — SPSC zero-copy %.2fx under the %.2fx floor "
                 "at %u B\n",
                 spsc_ratio_gate, kSpscFloor, kGateSize);
    ++failures;
  }
  if (mpsc_ratio < kMpscFloor) {
    std::fprintf(stderr,
                 "varlen_floor: FAIL — MPSC zero-copy %.2fx under the %.2fx floor "
                 "at %u B\n",
                 mpsc_ratio, kMpscFloor, kGateSize);
    ++failures;
  }

  if (!options.json_out.empty()) {
    std::FILE* f = std::fopen(options.json_out.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"varlen_floor\",%s\"mpsc_ratio_%u\":%.3f,"
                   "\"spsc_zero_mbps\":%.1f,\"spsc_copy_mbps\":%.1f,"
                   "\"mpsc_zero_mbps\":%.1f,\"mpsc_copy_mbps\":%.1f,"
                   "\"pass\":%s}\n",
                   json_sizes.c_str(), kGateSize, mpsc_ratio, spsc_zero_gate / 1e6,
                   spsc_copy_gate / 1e6, mpsc_zero / 1e6, mpsc_copy / 1e6,
                   failures == 0 ? "true" : "false");
      std::fclose(f);
    }
  }
  if (failures == 0) std::printf("varlen_floor: floors hold\n");
  return failures == 0 ? 0 : 1;
}
