// Figure 1 reproduction: "Overhead due to waking up and idling the CPU.
// If both peaks are grouped, wakeup overhead becomes lower."
//
// The paper's Figure 1 is a conceptual scope trace; the model makes it
// quantitative.  We build two activity timelines with identical total
// work — one with scattered activations, one with the same activations
// grouped back-to-back — and compare energy, C-state residency and the
// idle-gap distribution.  CSV power traces suitable for plotting are
// written next to the binary.
#include <cstdio>
#include <iostream>
#include <utility>

#include "pcpc/common/table.hpp"
#include "pcpc/power/energy_trace.hpp"

using namespace pcpc;
using namespace pcpc::power;

namespace {

/// `bursts` activations of `busy` each across one second.
CoreTimeline scattered(int bursts, SimDuration busy) {
  CoreTimeline t;
  const SimDuration pitch = seconds(1) / bursts;
  for (int i = 0; i < bursts; ++i) {
    t.wake(pitch * i + pitch / 4);
    t.sleep(pitch * i + pitch / 4 + busy);
  }
  t.finalize(seconds(1));
  return t;
}

/// The identical total work, grouped into one contiguous activation per
/// `groups` windows.
CoreTimeline grouped(int bursts, SimDuration busy, int groups) {
  CoreTimeline t;
  const int per_group = bursts / groups;
  const SimDuration pitch = seconds(1) / groups;
  for (int g = 0; g < groups; ++g) {
    t.wake(pitch * g + pitch / 4);
    t.sleep(pitch * g + pitch / 4 + busy * per_group);
  }
  t.finalize(seconds(1));
  return t;
}

}  // namespace

int main() {
  const PowerModelParams params;
  const EnergyLedger ledger(params);
  const int bursts = 200;                    // 200 activations/s
  const SimDuration busy = microseconds(400);  // 80 ms/s of work either way

  const CoreTimeline scattered_tl = scattered(bursts, busy);
  const CoreTimeline grouped_tl = grouped(bursts, busy, 20);

  Table table({"pattern", "wakeups", "usage (ms/s)", "extra power (mW)",
               "deepest idle reached"});
  table.set_title(
      "Figure 1 — identical work, scattered vs grouped activations (1 s)");
  const std::pair<const CoreTimeline*, const char*> patterns[] = {
      {&scattered_tl, "200 scattered x 0.4 ms"},
      {&grouped_tl, "20 grouped x 4 ms"},
  };
  for (const auto& entry : patterns) {
    const auto& tl = *entry.first;
    const auto residency = idle_residency(tl, params.cstates);
    std::string deepest = "-";
    for (const auto& r : residency) {
      if (r.fraction_of_idle > 0.0) deepest = r.state;  // last one wins
    }
    table.add(entry.second, static_cast<long long>(tl.wakeups()),
              format_double(tl.usage_ms_per_s(), 1),
              format_double(ledger.extra_power_watts(tl) * 1e3, 2), deepest);
  }
  table.print(std::cout);

  // C-state residency breakdown — the grouping mechanism in numbers.
  Table res_table({"C-state", "scattered (% of idle)", "grouped (% of idle)"});
  res_table.set_title("\nIdle-state residency");
  const auto res_s = idle_residency(scattered_tl, params.cstates);
  const auto res_g = idle_residency(grouped_tl, params.cstates);
  for (std::size_t i = 1; i < res_s.size(); ++i) {
    res_table.add(res_s[i].state, format_double(100.0 * res_s[i].fraction_of_idle, 1),
                  format_double(100.0 * res_g[i].fraction_of_idle, 1));
  }
  res_table.print(std::cout);

  const double scattered_w = ledger.extra_power_watts(scattered_tl);
  const double grouped_w = ledger.extra_power_watts(grouped_tl);
  std::printf("\nGrouping saves %.1f%% power at identical work and 10x fewer wakeups\n"
              "(the premise of the paper's slot latching).\n",
              100.0 * (scattered_w - grouped_w) / scattered_w);

  const auto trace_s = sample_power(scattered_tl, params, microseconds(100));
  const auto trace_g = sample_power(grouped_tl, params, microseconds(100));
  if (save_power_trace(trace_s, "fig1_scattered.csv") &&
      save_power_trace(trace_g, "fig1_grouped.csv")) {
    std::printf("Power traces written to fig1_scattered.csv / fig1_grouped.csv\n");
  }
  return 0;
}
