// Microbenchmarks of the buffer substrate: ring buffer, bounded buffer,
// elastic buffer push/pop and pool resize traffic, plus the hand-off
// backend sweep (mutex vs SPSC ring vs MPSC segments across producer
// counts).  These are the per-item hot paths of every implementation; the
// PBPL decision logic must stay cheap relative to them (the paper picks a
// moving average precisely for its low overhead).
#include <benchmark/benchmark.h>

#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/common/ring_buffer.hpp"
#include "pcpc/queue/bounded_buffer.hpp"
#include "pcpc/queue/elastic_buffer.hpp"
#include "pcpc/queue/handoff.hpp"
#include "pcpc/queue/mpsc_queue.hpp"
#include "pcpc/queue/spsc_ring.hpp"

namespace {

using pcpc::RingBuffer;
using pcpc::queue::BackendKind;
using pcpc::queue::BoundedBuffer;
using pcpc::queue::BufferPool;
using pcpc::queue::MpscSegQueue;
using pcpc::queue::SpscRing;
using pcpc::queue::make_handoff;

void BM_RingBufferPushPop(benchmark::State& state) {
  RingBuffer<std::int64_t> ring(static_cast<std::size_t>(state.range(0)));
  std::int64_t i = 0;
  for (auto _ : state) {
    ring.push(i++);
    benchmark::DoNotOptimize(ring.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingBufferPushPop)->Arg(16)->Arg(256)->Arg(4096);

void BM_BoundedBufferBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  BoundedBuffer<std::int64_t> buffer(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) buffer.push(static_cast<std::int64_t>(i));
    while (auto item = buffer.pop()) benchmark::DoNotOptimize(*item);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BoundedBufferBatch)->Arg(25)->Arg(50)->Arg(100);

void BM_ElasticBufferPushPop(benchmark::State& state) {
  BufferPool<std::int64_t> pool(/*consumers=*/1, /*base_capacity=*/256);
  auto buffer = pool.make_buffer();
  std::int64_t i = 0;
  for (auto _ : state) {
    buffer.push(i++);
    benchmark::DoNotOptimize(buffer.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ElasticBufferPushPop);

void BM_ElasticBufferResize(benchmark::State& state) {
  // Two buffers trading capacity through the pool — the steady-state
  // pattern of PBPL's per-invocation downsize/upsize.
  BufferPool<std::int64_t> pool(/*consumers=*/2, /*base_capacity=*/100);
  auto a = pool.make_buffer();
  auto b = pool.make_buffer();
  bool flip = false;
  for (auto _ : state) {
    a.resize(flip ? 150 : 50);
    b.resize(flip ? 50 : 150);
    flip = !flip;
    benchmark::DoNotOptimize(pool.free_slots());
  }
}
BENCHMARK(BM_ElasticBufferResize);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<std::int64_t> ring(static_cast<std::size_t>(state.range(0)));
  std::int64_t i = 0;
  for (auto _ : state) {
    ring.try_push(i++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop)->Arg(16)->Arg(256)->Arg(4096);

void BM_MpscSegPushPop(benchmark::State& state) {
  MpscSegQueue<std::int64_t> queue(static_cast<std::size_t>(state.range(0)));
  std::int64_t i = 0;
  for (auto _ : state) {
    queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpscSegPushPop)->Arg(16)->Arg(256)->Arg(4096);

/// Backend × producer-count sweep through the Handoff interface with real
/// producer threads: P producers spin-push a fixed block while the bench
/// thread consumes.  The mutex backend runs under an external lock (its
/// host contract), so this measures exactly what the hosts pay.
void BM_HandoffProducers(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const auto producers = static_cast<std::size_t>(state.range(1));
  constexpr std::uint64_t kBlock = 16384;  // items per producer per iteration
  for (auto _ : state) {
    auto queue = make_handoff<std::uint64_t>(kind, /*capacity=*/256);
    std::mutex host_lock;
    const bool locked = !queue->lock_free();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, &host_lock, locked] {
        for (std::uint64_t i = 0; i < kBlock; ++i) {
          for (;;) {
            bool stored;
            if (locked) {
              std::lock_guard<std::mutex> guard(host_lock);
              stored = queue->try_push(i);
            } else {
              stored = queue->try_push(i);
            }
            if (stored) break;
            std::this_thread::yield();
          }
        }
      });
    }
    std::uint64_t consumed = 0;
    const std::uint64_t total = kBlock * producers;
    while (consumed < total) {
      std::optional<std::uint64_t> item;
      if (locked) {
        std::lock_guard<std::mutex> guard(host_lock);
        item = queue->try_pop();
      } else {
        item = queue->try_pop();
      }
      if (item) {
        ++consumed;
      } else {
        std::this_thread::yield();  // don't starve producers of the lock/core
      }
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlock) *
                          static_cast<std::int64_t>(producers));
}
BENCHMARK(BM_HandoffProducers)
    ->ArgNames({"backend", "producers"})
    // Single producer: all three backends (SPSC's contract allows it).
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    // Multi-producer: mutex vs MPSC (SPSC is out of contract).
    ->Args({0, 2})
    ->Args({2, 2})
    ->Args({0, 4})
    ->Args({2, 4})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
