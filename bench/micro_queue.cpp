// Microbenchmarks of the buffer substrate: ring buffer, bounded buffer,
// elastic buffer push/pop and pool resize traffic.  These are the per-item
// hot paths of every implementation; the PBPL decision logic must stay
// cheap relative to them (the paper picks a moving average precisely for
// its low overhead).
#include <benchmark/benchmark.h>

#include "pcpc/common/ring_buffer.hpp"
#include "pcpc/queue/bounded_buffer.hpp"
#include "pcpc/queue/elastic_buffer.hpp"

namespace {

using pcpc::RingBuffer;
using pcpc::queue::BoundedBuffer;
using pcpc::queue::BufferPool;

void BM_RingBufferPushPop(benchmark::State& state) {
  RingBuffer<std::int64_t> ring(static_cast<std::size_t>(state.range(0)));
  std::int64_t i = 0;
  for (auto _ : state) {
    ring.push(i++);
    benchmark::DoNotOptimize(ring.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingBufferPushPop)->Arg(16)->Arg(256)->Arg(4096);

void BM_BoundedBufferBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  BoundedBuffer<std::int64_t> buffer(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) buffer.push(static_cast<std::int64_t>(i));
    while (auto item = buffer.pop()) benchmark::DoNotOptimize(*item);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BoundedBufferBatch)->Arg(25)->Arg(50)->Arg(100);

void BM_ElasticBufferPushPop(benchmark::State& state) {
  BufferPool<std::int64_t> pool(/*consumers=*/1, /*base_capacity=*/256);
  auto buffer = pool.make_buffer();
  std::int64_t i = 0;
  for (auto _ : state) {
    buffer.push(i++);
    benchmark::DoNotOptimize(buffer.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ElasticBufferPushPop);

void BM_ElasticBufferResize(benchmark::State& state) {
  // Two buffers trading capacity through the pool — the steady-state
  // pattern of PBPL's per-invocation downsize/upsize.
  BufferPool<std::int64_t> pool(/*consumers=*/2, /*base_capacity=*/100);
  auto a = pool.make_buffer();
  auto b = pool.make_buffer();
  bool flip = false;
  for (auto _ : state) {
    a.resize(flip ? 150 : 50);
    b.resize(flip ? 50 : 150);
    flip = !flip;
    benchmark::DoNotOptimize(pool.free_slots());
  }
}
BENCHMARK(BM_ElasticBufferResize);

}  // namespace

BENCHMARK_MAIN();
