// Throughput floor gate for the queue backends (run by ci/bench_smoke.sh).
//
// The lock-free backends exist to make the hand-off cheaper, so the build
// gate is the obvious one: on the single-producer shape the SPSC ring
// must not be slower than the seed's mutex-guarded buffer, and with four
// producers the MPSC queue must beat the mutex buffer outright (the
// contended lock is exactly the cost it removes).  Medians over repeated
// trials keep one noisy scheduler decision from failing a build.
//
// Usage: queue_floor [--items=N] [--trials=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "pcpc/queue/handoff.hpp"

namespace {

using pcpc::queue::BackendKind;
using pcpc::queue::Handoff;
using pcpc::queue::make_handoff;

struct Options {
  std::uint64_t items = 200000;  ///< per producer
  std::size_t trials = 5;
};

/// One producer/consumer run; returns items moved per second (all
/// producers summed).  The mutex backend is driven under an external
/// lock, per its host contract; the lock-free backends push bare.
double run_trial(BackendKind kind, std::size_t producers, std::uint64_t items) {
  auto queue = make_handoff<std::uint64_t>(kind, /*capacity=*/256);
  std::mutex host_lock;
  const bool locked = !queue->lock_free();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&queue, &host_lock, locked, items] {
      for (std::uint64_t i = 0; i < items; ++i) {
        for (;;) {
          bool stored;
          if (locked) {
            std::lock_guard<std::mutex> guard(host_lock);
            stored = queue->try_push(i);
          } else {
            stored = queue->try_push(i);
          }
          if (stored) break;
          std::this_thread::yield();
        }
      }
    });
  }

  const std::uint64_t total = items * producers;
  std::uint64_t consumed = 0;
  while (consumed < total) {
    std::optional<std::uint64_t> item;
    if (locked) {
      std::lock_guard<std::mutex> guard(host_lock);
      item = queue->try_pop();
    } else {
      item = queue->try_pop();
    }
    if (item) {
      ++consumed;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : threads) t.join();

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(total) / seconds;
}

double median_throughput(BackendKind kind, std::size_t producers,
                         const Options& options) {
  std::vector<double> samples;
  for (std::size_t t = 0; t < options.trials; ++t) {
    samples.push_back(run_trial(kind, producers, options.items));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--items=", 8) == 0) {
      options.items = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      options.trials = std::strtoull(argv[i] + 9, nullptr, 10);
    } else {
      std::fprintf(stderr, "queue_floor: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const double mutex_1p = median_throughput(BackendKind::Mutex, 1, options);
  const double spsc_1p = median_throughput(BackendKind::SpscRing, 1, options);
  const double mutex_4p = median_throughput(BackendKind::Mutex, 4, options);
  const double mpsc_4p = median_throughput(BackendKind::MpscSeg, 4, options);

  std::printf("queue_floor (median of %zu trials, %llu items/producer)\n",
              options.trials, static_cast<unsigned long long>(options.items));
  std::printf("  1 producer : mutex %8.2f Mitems/s | spsc %8.2f Mitems/s (%.2fx)\n",
              mutex_1p / 1e6, spsc_1p / 1e6, spsc_1p / mutex_1p);
  std::printf("  4 producers: mutex %8.2f Mitems/s | mpsc %8.2f Mitems/s (%.2fx)\n",
              mutex_4p / 1e6, mpsc_4p / 1e6, mpsc_4p / mutex_4p);

  int failures = 0;
  if (spsc_1p < mutex_1p) {
    std::fprintf(stderr,
                 "queue_floor: FAIL — SPSC ring slower than the mutex buffer "
                 "single-producer\n");
    ++failures;
  }
  if (mpsc_4p < mutex_4p) {
    std::fprintf(stderr,
                 "queue_floor: FAIL — MPSC queue slower than the mutex buffer "
                 "with 4 producers\n");
    ++failures;
  }
  if (failures == 0) std::printf("queue_floor: floors hold\n");
  return failures == 0 ? 0 : 1;
}
