// Fleet parking gate (also run by ci/bench_smoke.sh): at a ~10% packed
// utilization point — 8 pairs whose combined load fits comfortably on
// one of 4 cores — the elastic fleet controller must consolidate the
// pairs, let the emptied cores sleep through, and thereby cut paid
// wakeups by >= 30% and joules/item vs the static round-robin placement,
// with zero per-pair Delta-SLO violations.  Deterministic: the sim host,
// the controller and the seeded traces replay bit-identically.
#include <cstdio>
#include <string>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/fleet/sim_driver.hpp"
#include "pcpc/obs/attribution.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/power/energy_ledger.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

namespace {

constexpr std::size_t kPairs = 8;
constexpr std::size_t kCores = 4;
constexpr double kRateHz = 625.0;  // per pair; packed core busy ~10%
constexpr SimDuration kHorizon = seconds(2);

core::PbplConfig bench_config() {
  core::PbplConfig config;
  config.cores = kCores;
  config.assignment = core::AssignmentPolicy::RoundRobin;  // the static baseline
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(100);
  config.base_buffer = 25;
  config.service.per_item = microseconds(20);
  return config;
}

struct RunOutcome {
  double paid_per_s = 0.0;
  double joules_per_item = 0.0;
  double extra_mw = 0.0;
  double p99_ms = 0.0;
  std::uint64_t items = 0;
  std::uint64_t migrations = 0;
  std::uint64_t slo_samples = 0;
  std::uint64_t slo_violations = 0;
};

RunOutcome run(bool elastic) {
  const core::PbplConfig config = bench_config();

  // Phase-shifted arrivals: every pair carries the same mean rate but a
  // different seed and phase, so the static placement cannot latch its
  // way to the packed placement's wakeup bill by accident.
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < kPairs; ++i) {
    Rng rng(0x5eedf1ee7UL + i);
    const trace::SinusoidRate rate(kRateHz, kRateHz / 4.0, seconds(1),
                                   0.7 * static_cast<double>(i));
    traces.push_back(trace::sample_nhpp(rate, kHorizon, rng));
  }

  obs::SessionOptions options;
  options.span_sample_every = 16;
  obs::Session session(options);

  sim::Simulator simulator;
  session.set_clock([&simulator] { return simulator.now(); });

  core::PbplSystem system(simulator, kPairs, config);

  fleet::FleetConfig fc;
  fc.mode = elastic ? fleet::FleetMode::kElastic : fleet::FleetMode::kOff;
  fc.control_period = milliseconds(50);
  fc.cooldown = milliseconds(200);
  fc.cost.slot = config.resolved_slot_size();
  fc.cost.max_latency = config.max_latency;
  fc.cost.buffer_items = config.base_buffer;
  fc.cost.service = config.service;
  fc.cost.manager_overhead = config.manager_overhead;
  fc.cost.utilization_cap = config.utilization_cap;
  fleet::FleetController controller(kPairs, kCores, fc);
  fleet::SimFleetDriver driver(simulator, system, controller);

  system.start();
  if (elastic) driver.start();
  for (std::size_t i = 0; i < kPairs; ++i) {
    core::PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, traces[i].timestamps(), kHorizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  simulator.run_until(kHorizon);
  driver.stop();
  const core::PbplResult result = system.finish(kHorizon);

  std::size_t offered = 0;
  for (const auto& t : traces) offered += t.size();
  if (result.items != offered) {
    std::fprintf(stderr, "conservation violated: offered %zu consumed %llu\n", offered,
                 static_cast<unsigned long long>(result.items));
    std::exit(2);
  }

  RunOutcome out;
  const double horizon_s = to_seconds(kHorizon);
  out.items = result.items;
  out.migrations = driver.migrations();
  out.paid_per_s = static_cast<double>(result.paid_wakeups) / horizon_s;
  out.p99_ms = result.latency_s.p99() * 1e3;

  const power::EnergyLedger ledger;
  double joules = 0.0;
  for (const auto& timeline : result.timelines) {
    joules += ledger.energy_joules(timeline) - ledger.baseline_joules(timeline);
  }
  joules += static_cast<double>(result.items) * ledger.params().item_transport_energy_j +
            static_cast<double>(result.paid_wakeups) * ledger.params().wakeup_energy_j;
  out.joules_per_item = joules / static_cast<double>(result.items);
  out.extra_mw = joules / horizon_s * 1e3;

  obs::AttributionOptions attr;
  attr.service = config.service;
  attr.delta_ns = config.max_latency;
  const obs::AttributionReport report = obs::build_attribution(session, attr);
  for (const auto& pair : report.pairs) {
    out.slo_samples += pair.slo_samples;
    out.slo_violations += pair.slo_violations;
  }
  return out;
}

}  // namespace

int main() {
  const RunOutcome fixed = run(/*elastic=*/false);
  const RunOutcome elastic = run(/*elastic=*/true);

  const double cut = 100.0 * (fixed.paid_per_s - elastic.paid_per_s) / fixed.paid_per_s;
  const bool paid_ok = elastic.paid_per_s <= 0.7 * fixed.paid_per_s;
  const bool joules_ok = elastic.joules_per_item < fixed.joules_per_item;
  const bool slo_ok = elastic.slo_violations == 0 && elastic.slo_samples > 0;
  const bool migrated = elastic.migrations > 0;
  const bool pass = paid_ok && joules_ok && slo_ok && migrated;

  std::printf(
      "fleet_parking: static %.1f paid/s %.2f uJ/item p99 %.2f ms | "
      "elastic %.1f paid/s %.2f uJ/item p99 %.2f ms | cut %.1f%% "
      "migrations %llu slo %llu/%llu\n",
      fixed.paid_per_s, fixed.joules_per_item * 1e6, fixed.p99_ms, elastic.paid_per_s,
      elastic.joules_per_item * 1e6, elastic.p99_ms, cut,
      static_cast<unsigned long long>(elastic.migrations),
      static_cast<unsigned long long>(elastic.slo_violations),
      static_cast<unsigned long long>(elastic.slo_samples));

  std::printf(
      "{\"bench\":\"fleet_parking\",\"static_paid_per_s\":%.2f,"
      "\"elastic_paid_per_s\":%.2f,\"paid_cut_pct\":%.1f,"
      "\"static_uj_per_item\":%.3f,\"elastic_uj_per_item\":%.3f,"
      "\"static_p99_ms\":%.3f,\"elastic_p99_ms\":%.3f,"
      "\"migrations\":%llu,\"slo_violations\":%llu,\"pass\":%s}\n",
      fixed.paid_per_s, elastic.paid_per_s, cut, fixed.joules_per_item * 1e6,
      elastic.joules_per_item * 1e6, fixed.p99_ms, elastic.p99_ms,
      static_cast<unsigned long long>(elastic.migrations),
      static_cast<unsigned long long>(elastic.slo_violations), pass ? "true" : "false");
  return pass ? 0 : 1;
}
