// Figure 11 reproduction: power and wakeups/s of BP and PBPL as the
// buffer size grows through 25, 50 and 100 (5 pairs), showing the gap
// saturating at larger buffers.
#include <cstdio>
#include <iostream>
#include <map>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/exp/report.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  const std::size_t kBuffers[] = {25, 50, 100};
  const ImplKind kKinds[] = {ImplKind::Batch, ImplKind::Pbpl};

  Table table({"impl", "B", "wakeups/s", "power (mW)", "overflows", "latency (ms)",
               "p95 (ms)"});
  table.set_title(
      "Figure 11 — BP vs PBPL across buffer sizes, M=5 pairs, 2 cores\n"
      "phase-shifted web-log replay, 10 s, 3 replicates, mean ± 95% CI");

  exp::Report report("fig11");
  report.add_table("sweep", "fig11 sweep",
                   {"impl", "buffer", "wakeups_per_s", "power_mw", "latency_ms",
                    "p95_ms"});
  std::map<ImplKind, std::map<std::size_t, exp::MetricSummary>> results;
  for (const std::size_t buffer : kBuffers) {
    const auto spec = exp::multi_pair_spec(/*pairs=*/5, buffer);
    for (const auto kind : kKinds) {
      const auto summary = exp::summarize(kind, spec);
      results[kind][buffer] = summary;
      table.add(impls::impl_name(kind), static_cast<long long>(buffer),
                summary.wakeups_per_s.to_string(1), summary.power_mw.to_string(1),
                summary.overflows.to_string(0), summary.mean_latency_ms.to_string(2),
                summary.p95_latency_ms.to_string(1));
      report.add_row({impls::impl_name(kind), std::to_string(buffer),
                      format_double(summary.wakeups_per_s.mean, 2),
                      format_double(summary.power_mw.mean, 2),
                      format_double(summary.mean_latency_ms.mean, 3),
                      format_double(summary.p95_latency_ms.mean, 2)});
    }
  }
  table.print(std::cout);

  std::printf("\nSaturation claim (Section VI-C, Figure 11):\n");
  for (const std::size_t buffer : kBuffers) {
    const double bp = results[ImplKind::Batch][buffer].power_mw.mean;
    const double pbpl = results[ImplKind::Pbpl][buffer].power_mw.mean;
    std::printf("  B=%3zu: PBPL-BP power gap %+6.1f mW (%+5.1f %%)\n", buffer, pbpl - bp,
                100.0 * (pbpl - bp) / bp);
  }
  std::printf(
      "  (paper: increasing B lowers both, and the PBPL/BP gap shrinks as the two\n"
      "   implementations saturate and converge)\n");
  report.maybe_export(std::cout);
  return 0;
}
