// Figure 3 reproduction: wakeups/s versus usage (ms/s) for the seven
// single producer-consumer implementations, plus the Section III-C3
// correlation analysis (wakeups↔power, usage↔power).
#include <cstdio>
#include <iostream>
#include <vector>

#include "pcpc/common/hypothesis.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/exp/report.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  const exp::ExperimentSpec spec = exp::single_pair_spec();
  const power::EnergyLedger ledger(spec.power);

  exp::Report report("fig3");
  report.add_table("profile", "fig3 profile",
                   {"impl", "wakeups_per_s", "usage_ms_per_s", "power_mw", "overflows"});
  Table table({"impl", "wakeups/s", "usage (ms/s)", "power (mW)", "overflows"});
  table.set_title(
      "Figure 3 — single producer-consumer profile (wakeups/s vs usage ms/s)\n"
      "web-log replay, 10 s, 3 replicates, mean ± 95% CI");

  // Raw replicate series for the correlation analysis.
  std::vector<double> wakeups_all, usage_all, power_all;
  std::vector<double> wakeups_idle, usage_idle, power_idle;  // excl. BW/Yield
  double pbp_raw = 0.0, spbp_raw = 0.0;  // timer fires + overflow wakeups

  for (const auto kind : exp::kSingleStudyImpls) {
    const auto replicates = exp::run_replicates(kind, spec);
    const auto summary = exp::summarize(replicates);
    table.add(impls::impl_name(kind), summary.wakeups_per_s.to_string(1),
              summary.usage_ms_per_s.to_string(1), summary.power_mw.to_string(1),
              summary.overflows.to_string(0));
    report.add_row({impls::impl_name(kind), format_double(summary.wakeups_per_s.mean, 2),
                    format_double(summary.usage_ms_per_s.mean, 2),
                    format_double(summary.power_mw.mean, 2),
                    format_double(summary.overflows.mean, 0)});
    for (const auto& r : replicates) {
      wakeups_all.push_back(r.wakeups_per_s);
      usage_all.push_back(r.usage_ms_per_s);
      power_all.push_back(r.power_w);
      if (kind != ImplKind::BusyWait && kind != ImplKind::Yield) {
        wakeups_idle.push_back(r.wakeups_per_s);
        usage_idle.push_back(r.usage_ms_per_s);
        power_idle.push_back(r.power_w);
      }
    }
    if (kind == ImplKind::PeriodicBatch) {
      pbp_raw = summary.scheduled_wakeups.mean + summary.overflows.mean;
    } else if (kind == ImplKind::SignalPeriodicBatch) {
      spbp_raw = summary.scheduled_wakeups.mean + summary.overflows.mean;
    }
  }
  table.print(std::cout);

  std::printf("\nCorrelation analysis (Section III-C3):\n");
  std::printf("  all seven impls:   corr(wakeups, power) = %+6.1f%%   (paper: -79.6%%)\n",
              100.0 * pearson_correlation(wakeups_all, power_all));
  std::printf("  idling five impls: corr(wakeups, power) = %+6.1f%%   (paper: +74%%)\n",
              100.0 * pearson_correlation(wakeups_idle, power_idle));
  std::printf("  idling five impls: corr(usage,   power) = %+6.1f%%   (paper: ~+12%%, weak)\n",
              100.0 * pearson_correlation(usage_idle, power_idle));

  // The paper's hypothesis test: H0 "wakeups have a significant effect on
  // power" among the idling implementations, at 99% confidence.
  const TestResult h0 = correlation_significance(wakeups_idle, power_idle, 0.99);
  std::printf(
      "  hypothesis test (99%% conf): t = %.2f vs critical %.2f -> wakeups %s a\n"
      "  significant effect on power   (paper: accepted at 99%% confidence)\n",
      h0.statistic, h0.critical, h0.significant ? "HAVE" : "do NOT have");

  std::printf(
      "\nTimer-jitter effect (Section III-C3, PBP vs SPBP):\n"
      "  raw wakeups (timer fires + overflows): PBP %.0f vs SPBP %.0f (%+.1f%%)\n"
      "  (the paper attributes SPBP's advantage to nanosleep jitter causing\n"
      "   buffer overflows before the late timer fires)\n",
      pbp_raw, spbp_raw, 100.0 * (spbp_raw - pbp_raw) / pbp_raw);
  report.maybe_export(std::cout);
  return 0;
}
