// Figure 10 reproduction: power and wakeups/s of Mutex, Sem, BP and PBPL
// as the number of producer-consumer pairs grows through 2, 5 and 10
// (buffer size 25).  Also sweeps PBPL across the queue backends (mutex /
// SPSC ring / MPSC segments): the hand-off substrate must not change the
// paid-wakeup economics the figure is about.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/exp/report.hpp"
#include "pcpc/queue/backend.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  const std::size_t kConsumers[] = {2, 5, 10};

  Table power_table({"impl", "M=2", "M=5", "M=10"});
  power_table.set_title(
      "Figure 10a — power (mW) vs number of consumers, B=25, 2 cores\n"
      "phase-shifted web-log replay, 10 s, 3 replicates, mean ± 95% CI");
  Table wakeup_table({"impl", "M=2", "M=5", "M=10"});
  wakeup_table.set_title("Figure 10b — wakeups/s vs number of consumers, B=25");

  std::map<ImplKind, std::map<std::size_t, exp::MetricSummary>> results;
  for (const std::size_t consumers : kConsumers) {
    const auto spec = exp::multi_pair_spec(consumers, /*buffer=*/25);
    for (const auto kind : exp::kMultiEvalImpls) {
      results[kind][consumers] = exp::summarize(kind, spec);
    }
  }
  exp::Report report("fig10");
  report.add_table("sweep", "fig10 sweep",
                   {"impl", "consumers", "power_mw", "wakeups_per_s"});
  for (const auto kind : exp::kMultiEvalImpls) {
    for (const std::size_t consumers : kConsumers) {
      report.add_row({impls::impl_name(kind), std::to_string(consumers),
                      format_double(results[kind][consumers].power_mw.mean, 2),
                      format_double(results[kind][consumers].wakeups_per_s.mean, 2)});
    }
  }
  for (const auto kind : exp::kMultiEvalImpls) {
    auto& by_m = results[kind];
    power_table.add(impls::impl_name(kind), by_m[2].power_mw.to_string(1),
                    by_m[5].power_mw.to_string(1), by_m[10].power_mw.to_string(1));
    wakeup_table.add(impls::impl_name(kind), by_m[2].wakeups_per_s.to_string(1),
                     by_m[5].wakeups_per_s.to_string(1),
                     by_m[10].wakeups_per_s.to_string(1));
  }
  power_table.print(std::cout);
  std::printf("\n");
  wakeup_table.print(std::cout);

  std::printf("\nScalability claims (Section VI-C, Figure 10):\n");
  for (const std::size_t consumers : kConsumers) {
    const double mutex = results[ImplKind::Mutex][consumers].power_mw.mean;
    const double bp = results[ImplKind::Batch][consumers].power_mw.mean;
    const double pbpl = results[ImplKind::Pbpl][consumers].power_mw.mean;
    std::printf(
        "  M=%2zu: PBPL vs Mutex %5.1f %%  |  PBPL vs BP %+5.1f %%\n", consumers,
        100.0 * (mutex - pbpl) / mutex, 100.0 * (bp - pbpl) / bp);
  }
  std::printf(
      "  (paper: PBPL-vs-Mutex improvements of 7.5%%, 20%%, 30%% — rising with M;\n"
      "   the PBPL advantage should grow as more consumers share slots)\n");

  // --- Queue-backend sweep: PBPL over mutex / SPSC / MPSC hand-offs.
  // The sim host is deterministic, so the backends' identical admission
  // semantics must reproduce the same throughput and the same paid
  // wakeups; any delta is a semantic divergence, not noise.
  Table backend_table(
      {"backend", "M", "items/s", "wakeups/s", "paid wakeups/s", "Δpaid vs mutex"});
  backend_table.set_title(
      "Figure 10c — PBPL queue-backend sweep, B=25 (paid-wakeup delta gate)");
  report.add_table("backend_sweep", "PBPL queue-backend sweep",
                   {"backend", "consumers", "items_per_s", "wakeups_per_s",
                    "paid_wakeups_per_s"});
  bool paid_regressed = false;
  for (const std::size_t consumers : kConsumers) {
    std::map<queue::BackendKind, double> paid_per_s, items_per_s, wakeups_per_s;
    for (const auto backend : queue::kAllBackends) {
      auto spec = exp::multi_pair_spec(consumers, /*buffer=*/25);
      spec.setup.pbpl.queue_backend = backend;
      const double horizon_s = to_seconds(spec.horizon);
      const auto replicates = exp::run_replicates(ImplKind::Pbpl, spec);
      double paid = 0.0, items = 0.0, wakeups = 0.0;
      for (const auto& r : replicates) {
        paid += r.paid_wakeups / horizon_s;
        items += r.items / horizon_s;
        wakeups += r.wakeups_per_s;
      }
      const auto n = static_cast<double>(replicates.size());
      paid_per_s[backend] = paid / n;
      items_per_s[backend] = items / n;
      wakeups_per_s[backend] = wakeups / n;
      report.add_row({queue::backend_name(backend), std::to_string(consumers),
                      format_double(items_per_s[backend], 1),
                      format_double(wakeups_per_s[backend], 2),
                      format_double(paid_per_s[backend], 2)});
    }
    const double mutex_paid = paid_per_s[queue::BackendKind::Mutex];
    for (const auto backend : queue::kAllBackends) {
      const double delta = paid_per_s[backend] - mutex_paid;
      if (delta > 1e-9) paid_regressed = true;
      backend_table.add(queue::backend_name(backend), std::to_string(consumers),
                        format_double(items_per_s[backend], 1),
                        format_double(wakeups_per_s[backend], 2),
                        format_double(paid_per_s[backend], 2),
                        format_double(delta, 2));
    }
  }
  std::printf("\n");
  backend_table.print(std::cout);
  std::printf(paid_regressed
                  ? "\nbackend sweep: PAID-WAKEUP REGRESSION vs mutex backend\n"
                  : "\nbackend sweep: paid wakeups/s identical across backends\n");

  report.maybe_export(std::cout);
  return paid_regressed ? 1 : 0;
}
