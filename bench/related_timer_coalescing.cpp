// Related-mechanism comparison: PBPL's *predictive* latching versus
// kernel-style timer coalescing (CPBP), the pre-existing technique that
// also groups periodic wakeups — but at fixed periods, with no rate
// prediction and no elastic buffers.
//
// The interesting regime is heterogeneous producer rates: a single global
// period is necessarily wrong for somebody (too short → wasted wakeups on
// slow pairs; too long → overflow storms on fast ones), while PBPL's
// consumers each pick their own horizon and still share slots.
#include <cstdio>
#include <iostream>
#include <vector>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;
using exp::ImplKind;

namespace {

/// Five pairs with rates spread over a decade: 400 Hz to 6.4 kHz.
std::vector<trace::Trace> heterogeneous_traces(SimDuration horizon, std::uint64_t seed) {
  std::vector<trace::Trace> traces;
  Rng rng(seed);
  for (int i = 0; i < 5; ++i) {
    const double rate = 400.0 * std::pow(2.0, i);
    const trace::SinusoidRate fn(rate, 0.4 * rate, seconds(7), rng.uniform(0, 6.28));
    Rng stream = rng.fork();
    traces.push_back(trace::sample_nhpp(fn, horizon, stream));
  }
  return traces;
}

}  // namespace

int main() {
  const SimDuration horizon = seconds(10);
  auto spec = exp::multi_pair_spec(5, 25);
  const power::EnergyLedger ledger(spec.power);

  Table table({"mechanism", "period/slot", "wakeups/s", "power (mW)", "overflows",
               "empty drains", "latency (ms)"});
  table.set_title(
      "Predictive latching (PBPL) vs kernel timer coalescing (CPBP)\n"
      "5 pairs with rates 400 Hz .. 6.4 kHz, 2 cores, 10 s");

  const auto traces = heterogeneous_traces(horizon, 42);
  std::uint64_t total_items = 0;
  for (const auto& t : traces) total_items += t.size();

  // CPBP at several global periods: none fits every pair.
  for (const SimDuration period :
       {milliseconds(2), milliseconds(5), milliseconds(10), milliseconds(25)}) {
    auto setup = spec.setup;
    setup.baseline.period = period;
    const auto r = impls::run_implementation(ImplKind::CoalescedPeriodicBatch, traces,
                                             horizon, setup);
    // Timer fires that found nothing to drain — pure waste on slow pairs.
    const double expected_nonempty =
        static_cast<double>(r.items) / std::max(1.0, r.batch_sizes.mean());
    table.add("CPBP", format_double(to_milliseconds(period), 0) + " ms",
              format_double(r.wakeups_per_s(), 1),
              format_double(r.extra_power_w(ledger) * 1e3, 1),
              static_cast<long long>(r.overflows),
              format_double(std::max(0.0, static_cast<double>(r.scheduled_wakeups) -
                                              expected_nonempty),
                            0),
              format_double(r.latency_s.mean() * 1e3, 2));
  }

  // Staggered SPBP (no coalescing at all) as the reference point.
  {
    auto setup = spec.setup;
    setup.baseline.period = milliseconds(10);
    const auto r = impls::run_implementation(ImplKind::SignalPeriodicBatch, traces,
                                             horizon, setup);
    table.add("SPBP (staggered)", "10 ms", format_double(r.wakeups_per_s(), 1),
              format_double(r.extra_power_w(ledger) * 1e3, 1),
              static_cast<long long>(r.overflows), "-",
              format_double(r.latency_s.mean() * 1e3, 2));
  }

  // PBPL: per-consumer adaptive horizons on a shared slot track.
  {
    const auto r = impls::run_implementation(ImplKind::Pbpl, traces, horizon, spec.setup);
    table.add("PBPL (predictive)", "10 ms slots", format_double(r.wakeups_per_s(), 1),
              format_double(r.extra_power_w(ledger) * 1e3, 1),
              static_cast<long long>(r.overflows), "0",
              format_double(r.latency_s.mean() * 1e3, 2));
  }
  table.print(std::cout);

  std::printf(
      "\n(%llu items total.)  Kernel coalescing groups wakeups but cannot adapt the\n"
      "period per consumer: short global periods waste wakeups on the 400 Hz pair,\n"
      "long ones overflow the 6.4 kHz pair.  PBPL's consumers each predict their\n"
      "own fill horizon and still share core wakeups via slot latching — the\n"
      "user-level predictive mechanism the paper contributes.\n",
      static_cast<unsigned long long>(total_items));
  return 0;
}
