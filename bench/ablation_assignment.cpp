// Assignment-policy ablation: how the f : C → α mapping (which the paper
// fixes implicitly) changes PBPL's power profile on a 4-core host.
//
// Packed placement concentrates consumers on few cores — maximum latching
// density and whole cores parked in the deepest C-state; round-robin (the
// paper's implicit choice) spreads them; rate-balanced minimizes per-core
// peak load at some latching cost.
#include <cstdio>
#include <iostream>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  Table table({"policy", "cores awake", "wakeups/s", "power (mW)", "latched",
               "latency (ms)"});
  table.set_title(
      "Consumer-to-core assignment ablation — M=10 pairs on 4 cores, B=25,\n"
      "10 s, 3 replicates, mean ± 95% CI");

  struct Row {
    const char* name;
    core::AssignmentPolicy policy;
  };
  const Row rows[] = {
      {"round-robin (paper)", core::AssignmentPolicy::RoundRobin},
      {"packed (util cap 50%)", core::AssignmentPolicy::Packed},
      {"rate-balanced", core::AssignmentPolicy::RateBalanced},
  };

  for (const auto& row : rows) {
    auto spec = exp::multi_pair_spec(10, 25);
    spec.setup.baseline.cores = 4;
    spec.setup.pbpl.assignment = row.policy;
    const auto replicates = exp::run_replicates(ImplKind::Pbpl, spec);
    const auto summary = exp::summarize(replicates);

    // Count awake cores on one representative direct run.
    auto workload = spec.workload;
    workload.duration = spec.horizon;
    const auto traces = trace::make_shifted_workloads(workload, spec.pairs);
    const auto run = impls::run_implementation(ImplKind::Pbpl, traces, spec.horizon,
                                               spec.setup);
    std::size_t awake = 0;
    for (const auto& tl : run.timelines) awake += (tl.wakeups() > 0);

    table.add(row.name, std::to_string(awake) + " of 4",
              summary.wakeups_per_s.to_string(1),
              summary.power_mw.to_string(1),
              format_double(replicates.front().latched_fraction * 100.0, 0) + " %",
              summary.mean_latency_ms.to_string(2));
  }
  table.print(std::cout);

  std::printf(
      "\nPacked placement parks surplus cores permanently in the deepest C-state\n"
      "and raises latching density; it is the natural companion policy to PBPL\n"
      "on hosts with more cores than the workload needs (cf. core parking in the\n"
      "paper's system assumptions).\n");
  return 0;
}
