// Telemetry overhead gate: the pcpc::obs session must cost almost
// nothing on the hottest path this repo has (the discrete-event PBPL
// run, millions of simulator events per second).
//
// Times the identical deterministic workload three ways in back-to-back
// rounds (process CPU time, rotating order): bare, under a recording
// session, and under a recording session with item-lifecycle span
// sampling armed (1-in-N).  Gates each instrumented mode on the smaller
// of two noise-robust cost estimates: the median paired ratio against
// the same-round bare run (adjacent runs share frequency and
// background-load conditions, cancelling drift) and the ratio of
// independent minimums (immune to asymmetric stomps).  A real
// regression inflates both; shared-host noise rarely inflates both at
// once, so the gate stops flaking without loosening.  Also
// verifies the wakeup ledger against the simulator's own paid-wakeup
// counter and writes the instrumented run's metrics JSON.
//
// Usage: obs_overhead [--metrics-out=FILE] [--max-overhead=R]
//                     [--repeats=N] [--seconds=S] [--pairs=M]
//                     [--span-every=N]
// Exits non-zero when either overhead exceeds R (default 1.05 = +5%) or
// the ledger disagrees with the simulator.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/obs/exporters.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;

namespace {

/// Process CPU seconds: immune to preemption by other processes, which
/// on small CI boxes dwarfs the effect being measured (the sim host is
/// single-threaded, so CPU time is also the honest cost metric).
double cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::vector<trace::Trace> make_workload(std::size_t pairs, SimDuration horizon) {
  std::vector<trace::Trace> traces;
  Rng rng(0x0b5);
  for (std::size_t i = 0; i < pairs; ++i) {
    Rng stream = rng.fork();
    const trace::ConstantRate rate(2000.0 + 500.0 * static_cast<double>(i));
    traces.push_back(trace::sample_nhpp(rate, horizon, stream));
  }
  return traces;
}

core::PbplConfig bench_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;
  return config;
}

double timed_run(const std::vector<trace::Trace>& traces, SimDuration horizon,
                 const core::PbplConfig& config) {
  const double start = cpu_seconds();
  const auto result = core::run_pbpl(traces, horizon, config);
  const double stop = cpu_seconds();
  (void)result;
  return stop - start;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out = "bench_obs_metrics.json";
  double max_overhead = 1.05;
  std::size_t repeats = 9;
  double seconds = 30.0;
  std::size_t pairs = 8;
  std::uint64_t span_every = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--max-overhead=", 0) == 0) {
      max_overhead = std::atof(arg.c_str() + std::strlen("--max-overhead="));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoul(arg.substr(std::strlen("--repeats=")));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::atof(arg.c_str() + std::strlen("--seconds="));
    } else if (arg.rfind("--pairs=", 0) == 0) {
      pairs = std::stoul(arg.substr(std::strlen("--pairs=")));
    } else if (arg.rfind("--span-every=", 0) == 0) {
      span_every = std::stoull(arg.substr(std::strlen("--span-every=")));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (repeats == 0 || seconds <= 0.0 || pairs == 0) return 2;

  const auto horizon = static_cast<SimDuration>(seconds * 1e9);
  const auto traces = make_workload(pairs, horizon);
  const auto config = bench_config();

  // Warm caches and the allocator before anything is timed.
  (void)timed_run(traces, horizon, config);

  // Each round times one bare, one recorded and one spans-armed run back
  // to back (rotating order) and keeps the instrumented/bare ratios:
  // adjacent runs see nearly the same CPU-frequency and background-load
  // conditions, so the ratio cancels drift that would swamp a
  // ratio-of-independent-minimums.  The median round then discards the
  // rounds a daemon stomped on.
  std::vector<double> ratios;
  std::vector<double> span_ratios;
  double min_bare = 1e300;
  double min_traced = 1e300;
  double min_spans = 1e300;
  for (std::size_t i = 0; i < repeats; ++i) {
    double bare = 0.0;
    double traced = 0.0;
    double spans = 0.0;
    const auto bare_once = [&] { bare = timed_run(traces, horizon, config); };
    const auto traced_once = [&] {
      obs::Session session;  // fresh capture each repeat, torn down after
      traced = timed_run(traces, horizon, config);
    };
    const auto spans_once = [&] {
      obs::SessionOptions options;
      options.span_sample_every = span_every;
      obs::Session session(options);
      spans = timed_run(traces, horizon, config);
    };
    const auto run_mode = [&](std::size_t mode) {
      if (mode == 0) bare_once();
      else if (mode == 1) traced_once();
      else spans_once();
    };
    for (std::size_t k = 0; k < 3; ++k) run_mode((i + k) % 3);
    ratios.push_back(traced / bare);
    span_ratios.push_back(spans / bare);
    min_bare = std::min(min_bare, bare);
    min_traced = std::min(min_traced, traced);
    min_spans = std::min(min_spans, spans);
  }
  std::sort(ratios.begin(), ratios.end());
  std::sort(span_ratios.begin(), span_ratios.end());
  const double overhead = ratios[ratios.size() / 2];
  const double span_overhead = span_ratios[span_ratios.size() / 2];
  // Two independent noise-robust estimators of the true cost: the median
  // paired ratio (cancels slow drift) and the ratio of independent
  // minimums (discards asymmetric stomps entirely).  On a shared host
  // either one alone can be inflated past the gate by scheduler noise
  // several times the ~1% true cost; a real regression shows in *both*,
  // so the gate takes the smaller.
  const double gated = std::min(overhead, min_traced / min_bare);
  const double span_gated = std::min(span_overhead, min_spans / min_bare);

  // Accounting run: one session, one run, so the ledger's Σ w(τ) must
  // equal the simulator's own paid-wakeup counter exactly.
  bool ledger_ok = true;
  std::uint64_t paid_ledger = 0;
  std::uint64_t paid_sim = 0;
  {
    obs::Session session;
    const auto result = core::run_pbpl(traces, horizon, config);
    paid_ledger = session.ledger().paid_total();
    paid_sim = result.paid_wakeups;
    ledger_ok = paid_ledger == paid_sim;
    std::string error;
    if (!metrics_out.empty() &&
        !obs::write_metrics_json(metrics_out, session, &error)) {
      std::fprintf(stderr, "metrics export failed: %s\n", error.c_str());
      return 1;
    }
  }

  std::printf("bare      min-of-%zu: %.4f s\n", repeats, min_bare);
  std::printf("recorded  min-of-%zu: %.4f s\n", repeats, min_traced);
  std::printf("spans     min-of-%zu: %.4f s (1-in-%llu sampling)\n", repeats, min_spans,
              static_cast<unsigned long long>(span_every));
  std::printf("overhead (median of %zu paired ratios): %.2f%%, gated estimate %.2f%% (gate: %.2f%%)\n",
              repeats, (overhead - 1.0) * 1e2, (gated - 1.0) * 1e2,
              (max_overhead - 1.0) * 1e2);
  std::printf("span overhead (median of %zu span ratios): %.2f%%, gated estimate %.2f%% (gate: %.2f%%)\n",
              repeats, (span_overhead - 1.0) * 1e2, (span_gated - 1.0) * 1e2,
              (max_overhead - 1.0) * 1e2);
  std::printf("paid wakeups: ledger %llu, simulator %llu -> %s\n",
              static_cast<unsigned long long>(paid_ledger),
              static_cast<unsigned long long>(paid_sim),
              ledger_ok ? "match" : "MISMATCH");
  if (!metrics_out.empty()) std::printf("metrics written to %s\n", metrics_out.c_str());

  if (!ledger_ok) return 1;
  if (gated > max_overhead) {
    std::fprintf(stderr, "telemetry overhead %.2f%% exceeds the %.2f%% gate\n",
                 (gated - 1.0) * 1e2, (max_overhead - 1.0) * 1e2);
    return 1;
  }
  if (span_gated > max_overhead) {
    std::fprintf(stderr, "span-armed overhead %.2f%% exceeds the %.2f%% gate\n",
                 (span_gated - 1.0) * 1e2, (max_overhead - 1.0) * 1e2);
    return 1;
  }
  return 0;
}
