// Cross-process host floor gate (run by ci/bench_smoke.sh).
//
// Forks real producer processes against an in-process consumer on one
// pcpc::ipc channel and gates three properties per run:
//
//   - throughput floor: the shm ring + futex doorbell must move at least
//     kFloorItemsPerSec end to end (a deliberately conservative absolute
//     bound — an order of magnitude under typical, so only a pathological
//     regression like accidental syscall-per-item trips it);
//   - wake frugality: paid futex wakes must average well under one per
//     item (the threshold doorbell exists so a saturated consumer is
//     never syscall-woken per item);
//   - conservation: every admitted ticket consumed, nothing reclaimed —
//     this is the no-fault path, so the crash machinery must be silent.
//
// Usage: ipc_floor [--items=N] [--producers=N] [--trials=N] [--json-out=F]
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pcpc/ipc/channel.hpp"

namespace {

using pcpc::ipc::ChannelConfig;
using pcpc::ipc::ConservationReport;
using pcpc::ipc::Consumer;
using pcpc::ipc::Producer;
using pcpc::ipc::ProducerConfig;
using pcpc::ipc::PushResult;

constexpr double kFloorItemsPerSec = 100e3;
constexpr double kMaxWakesPerItem = 0.5;

struct Options {
  std::uint64_t items = 200000;  ///< per producer
  std::size_t producers = 3;
  std::size_t trials = 3;
  std::string json_out;
};

struct TrialResult {
  double items_per_sec = 0.0;
  ConservationReport report;
  bool ok = false;
};

TrialResult run_trial(const Options& options, std::size_t trial) {
  TrialResult result;
  const std::string name = "/pcpc_ipc_floor_" + std::to_string(::getpid()) + "_" +
                           std::to_string(trial);
  ChannelConfig cfg;
  cfg.capacity = 1024;
  auto consumer = Consumer::create(name, cfg);
  if (!consumer.has_value()) {
    std::fprintf(stderr, "ipc_floor: channel create failed\n");
    return result;
  }

  std::vector<pid_t> children;
  for (std::size_t p = 0; p < options.producers; ++p) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ProducerConfig pcfg;
      pcfg.attach.attempts = 100;
      auto producer = Producer::attach(name);
      if (!producer.has_value()) _exit(2);
      for (std::uint64_t i = 0; i < options.items; ++i) {
        while (producer->push(i) != PushResult::kOk) {
        }
      }
      producer->detach();
      _exit(0);
    }
    if (pid < 0) {
      std::fprintf(stderr, "ipc_floor: fork failed\n");
      return result;
    }
    children.push_back(pid);
  }

  const std::uint64_t total = options.items * options.producers;
  std::uint64_t consumed = 0;
  const auto start = std::chrono::steady_clock::now();
  while (consumed < total) {
    consumed += consumer->drain([](std::uint64_t) {});
    if (consumed < total) consumer->wait(/*timeout_ns=*/1'000'000);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  bool children_ok = true;
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    children_ok = children_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  result.items_per_sec = static_cast<double>(total) / seconds;
  result.report = consumer->report();
  result.ok = children_ok;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--items=", 8) == 0) {
      options.items = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--producers=", 12) == 0) {
      options.producers = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      options.trials = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      options.json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "ipc_floor: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<TrialResult> trials;
  for (std::size_t t = 0; t < options.trials; ++t) {
    trials.push_back(run_trial(options, t));
    if (!trials.back().ok) {
      std::fprintf(stderr, "ipc_floor: FAIL — trial %zu did not complete\n", t);
      return 1;
    }
  }
  std::sort(trials.begin(), trials.end(),
            [](const TrialResult& a, const TrialResult& b) {
              return a.items_per_sec < b.items_per_sec;
            });
  const TrialResult& median = trials[trials.size() / 2];
  const std::uint64_t total = options.items * options.producers;
  const double wakes_per_item =
      static_cast<double>(median.report.futex_wakes) / static_cast<double>(total);

  std::printf("ipc_floor (median of %zu trials, %zu producers x %llu items)\n",
              options.trials, options.producers,
              static_cast<unsigned long long>(options.items));
  std::printf("  throughput : %8.2f Mitems/s (floor %.2f)\n",
              median.items_per_sec / 1e6, kFloorItemsPerSec / 1e6);
  std::printf("  paid wakes : %llu (%.4f per item, bound %.2f)\n",
              static_cast<unsigned long long>(median.report.futex_wakes),
              wakes_per_item, kMaxWakesPerItem);
  std::printf("  consumed %llu reclaimed %llu admitted %llu\n",
              static_cast<unsigned long long>(median.report.consumed),
              static_cast<unsigned long long>(median.report.reclaimed),
              static_cast<unsigned long long>(median.report.admitted));

  int failures = 0;
  if (median.items_per_sec < kFloorItemsPerSec) {
    std::fprintf(stderr, "ipc_floor: FAIL — throughput under the floor\n");
    ++failures;
  }
  if (wakes_per_item > kMaxWakesPerItem) {
    std::fprintf(stderr, "ipc_floor: FAIL — futex wakes not frugal\n");
    ++failures;
  }
  if (median.report.consumed != total || median.report.reclaimed != 0 ||
      median.report.admitted != median.report.consumed) {
    std::fprintf(stderr, "ipc_floor: FAIL — conservation broken on the no-fault path\n");
    ++failures;
  }

  if (!options.json_out.empty()) {
    std::FILE* f = std::fopen(options.json_out.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"ipc_floor\",\"producers\":%zu,\"items\":%llu,"
                   "\"items_per_sec\":%.1f,\"futex_wakes\":%llu,"
                   "\"wakes_per_item\":%.6f,\"consumed\":%llu,"
                   "\"reclaimed\":%llu,\"pass\":%s}\n",
                   options.producers,
                   static_cast<unsigned long long>(options.items),
                   median.items_per_sec,
                   static_cast<unsigned long long>(median.report.futex_wakes),
                   wakes_per_item,
                   static_cast<unsigned long long>(median.report.consumed),
                   static_cast<unsigned long long>(median.report.reclaimed),
                   failures == 0 ? "true" : "false");
      std::fclose(f);
    }
  }
  if (failures == 0) std::printf("ipc_floor: floors hold\n");
  return failures == 0 ? 0 : 1;
}
