// Runtime-sharding throughput gate (run by ci/bench_smoke.sh).
//
// Saturates the thread-host PBPL runtime with one producer per consumer
// and an I/O-bound batch handler (the handler sleeps ~handler_us per
// drained item, like a consumer writing its batch out).  With the
// per-core sharded locks the four managers overlap those sleeps, so the
// 4-core aggregate drain throughput must clear 1.8x the 1-core run on
// the same workload — under the seed's single global runtime lock the
// handler serialized every core and the ratio pinned to ~1.  A sleeping
// handler (not a spinning one) keeps the gate meaningful on boxes with
// few hardware cores: overlap comes from the lock structure, not from
// CPU parallelism.
//
// The second gate guards the paper's economics: drain parallelism must
// not buy throughput with extra wakeups.  Scheduled wakeups stay bounded
// by the slot schedule (<= cores x elapsed/slot, plus slack) for every
// core count and every queue backend.
//
// Usage: shard_scaling [--items=N] [--trials=N] [--handler-us=U]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "pcpc/core/config.hpp"
#include "pcpc/queue/backend.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"

namespace {

using namespace pcpc;

struct Options {
  std::uint64_t items = 3000;  ///< per producer
  std::size_t trials = 3;
  std::int64_t handler_us = 20;  ///< per-item handler sleep
};

constexpr std::size_t kConsumers = 4;
constexpr SimDuration kSlot = milliseconds(2);

struct RunResult {
  double items_per_s = 0.0;
  double scheduled_per_s = 0.0;
  double elapsed_s = 0.0;
  std::uint64_t scheduled_wakeups = 0;
};

/// One saturated run: kConsumers producers flood their consumers with
/// `items` each under OverflowPolicy::Block, so produced == drained and
/// the wall clock measures pure drain throughput.
RunResult run_trial(std::size_t cores, queue::BackendKind backend,
                    const Options& options) {
  core::PbplConfig config;
  config.cores = cores;
  config.slot_size = kSlot;
  config.max_latency = milliseconds(20);
  config.base_buffer = 128;
  config.pool_segment = 32;
  config.overflow_policy = core::OverflowPolicy::Block;
  config.queue_backend = backend;

  const auto handler = [&options](std::size_t, std::size_t batch) {
    if (batch == 0) return;
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.handler_us * static_cast<std::int64_t>(batch)));
  };

  const auto start = std::chrono::steady_clock::now();
  runtime::ThreadPbpl runtime(kConsumers, config, handler);
  std::vector<std::thread> producers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    producers.emplace_back([&runtime, c, &options] {
      for (std::uint64_t i = 0; i < options.items; ++i) runtime.produce(c);
    });
  }
  for (auto& t : producers) t.join();
  runtime.stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const auto stats = runtime.stats();
  if (stats.produced != stats.items + stats.dropped()) {
    std::fprintf(stderr, "shard_scaling: FAIL — conservation broken (%llu != %llu + %llu)\n",
                 static_cast<unsigned long long>(stats.produced),
                 static_cast<unsigned long long>(stats.items),
                 static_cast<unsigned long long>(stats.dropped()));
    std::exit(1);
  }
  RunResult result;
  result.elapsed_s = elapsed;
  result.items_per_s = static_cast<double>(stats.items) / elapsed;
  result.scheduled_wakeups = stats.scheduled_wakeups;
  result.scheduled_per_s = static_cast<double>(stats.scheduled_wakeups) / elapsed;
  return result;
}

RunResult median_run(std::size_t cores, queue::BackendKind backend,
                     const Options& options) {
  std::vector<RunResult> samples;
  for (std::size_t t = 0; t < options.trials; ++t) {
    samples.push_back(run_trial(cores, backend, options));
  }
  std::sort(samples.begin(), samples.end(),
            [](const RunResult& a, const RunResult& b) {
              return a.items_per_s < b.items_per_s;
            });
  return samples[samples.size() / 2];
}

/// Scheduled wakeups are slot-timer fires: the schedule itself caps them
/// at cores x elapsed/slot; parallel drains must never mint more.
bool wakeups_within_schedule(const RunResult& r, std::size_t cores) {
  const double slots = r.elapsed_s / to_seconds(kSlot);
  const double bound = 1.1 * static_cast<double>(cores) * slots +
                       static_cast<double>(cores) + kConsumers;
  return static_cast<double>(r.scheduled_wakeups) <= bound;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--items=", 8) == 0) {
      options.items = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      options.trials = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--handler-us=", 13) == 0) {
      options.handler_us = std::strtoll(argv[i] + 13, nullptr, 10);
    } else {
      std::fprintf(stderr, "shard_scaling: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  int failures = 0;

  const auto one_core = median_run(1, queue::BackendKind::SpscRing, options);
  std::printf("shard_scaling (median of %zu trials, %llu items/producer, %lld us/item handler)\n",
              options.trials, static_cast<unsigned long long>(options.items),
              static_cast<long long>(options.handler_us));
  std::printf("  1 core : %9.0f items/s | %6.0f scheduled wakeups/s (spsc)\n",
              one_core.items_per_s, one_core.scheduled_per_s);
  if (!wakeups_within_schedule(one_core, 1)) {
    std::fprintf(stderr, "shard_scaling: FAIL — 1-core scheduled wakeups exceed the slot schedule\n");
    ++failures;
  }

  double four_core_spsc = 0.0;
  for (const auto backend : queue::kAllBackends) {
    const auto r = median_run(4, backend, options);
    std::printf("  4 cores: %9.0f items/s | %6.0f scheduled wakeups/s (%s)\n",
                r.items_per_s, r.scheduled_per_s, queue::backend_name(backend));
    if (backend == queue::BackendKind::SpscRing) four_core_spsc = r.items_per_s;
    if (!wakeups_within_schedule(r, 4)) {
      std::fprintf(stderr,
                   "shard_scaling: FAIL — 4-core scheduled wakeups exceed the slot "
                   "schedule (%s backend)\n",
                   queue::backend_name(backend));
      ++failures;
    }
  }

  const double speedup = four_core_spsc / one_core.items_per_s;
  std::printf("  4-core / 1-core drain throughput: %.2fx (gate: >= 1.8x)\n", speedup);
  if (speedup < 1.8) {
    std::fprintf(stderr,
                 "shard_scaling: FAIL — 4 cores drain only %.2fx the 1-core rate; "
                 "the runtime is serializing cores\n",
                 speedup);
    ++failures;
  }

  if (failures == 0) std::printf("shard_scaling: gates hold\n");
  return failures == 0 ? 0 : 1;
}
