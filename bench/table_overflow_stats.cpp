// Section VI-C internal counters: scheduled wakeups vs buffer overflows
// for PBPL against BP (the paper reports 5160 scheduled + 1626 overflow
// wakeups for PBPL vs 9290 overflow wakeups for BP — a 25% reduction in
// total wakeups and an 82.5% overflow conversion rate), plus the average
// buffer size under dynamic resizing (paper: ≈43 of 50 slots).
#include <cstdio>
#include <iostream>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  const auto spec = exp::multi_pair_spec(/*pairs=*/5, /*buffer=*/50);

  const auto bp = exp::summarize(ImplKind::Batch, spec);
  const auto pbpl = exp::summarize(ImplKind::Pbpl, spec);

  Table table({"impl", "scheduled wakeups", "overflow wakeups", "total",
               "avg buffer (of 50)"});
  table.set_title(
      "Section VI-C counters — M=5 pairs, B=50, 10 s, 3 replicates, mean ± 95% CI");
  table.add("BP", "0 (all overflows)", bp.overflows.to_string(0),
            bp.overflows.to_string(0), "50.0 (static)");
  const double pbpl_total = pbpl.scheduled_wakeups.mean + pbpl.overflows.mean;
  table.add("PBPL", pbpl.scheduled_wakeups.to_string(0), pbpl.overflows.to_string(0),
            format_double(pbpl_total, 0), pbpl.mean_buffer_capacity.to_string(1));
  table.print(std::cout);

  const double bp_total = bp.overflows.mean;
  std::printf("\nDerived (paper values in parentheses):\n");
  std::printf("  total wakeup reduction, PBPL vs BP: %5.1f %%   (25%%)\n",
              100.0 * (bp_total - pbpl_total) / bp_total);
  std::printf("  overflow conversion:                %5.1f %%   (82.5%%)\n",
              100.0 * (1.0 - pbpl.overflows.mean / bp_total));
  std::printf("  PBPL average buffer size:           %5.1f of 50 (43)\n",
              pbpl.mean_buffer_capacity.mean);
  return 0;
}
