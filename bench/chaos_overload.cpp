// Overload degradation curves for the thread-host overflow policies.
//
// Sweeps producer burst intensity (×1 … ×20) against every overflow
// policy on the live ThreadPbpl runtime and emits one CSV row per cell:
// how throughput, drop counts, tail latency and forced-drain traffic
// degrade as the offered load outruns the predictor.  The companion
// sweep runs the slow-consumer fault against the watchdog, showing the
// deadline-escalation path converting unbounded slot overruns into
// counted missed deadlines.
//
// Usage: chaos_overload [csv_path] [--trace-out=FILE] [--metrics-out=FILE]
//        (default bench_chaos_overload.csv; .csv metrics extension -> CSV)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pcpc/core/config.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/obs/exporters.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/thread_pbpl.hpp"

using namespace pcpc;

namespace {

struct Cell {
  std::string policy;
  std::string fault;
  std::size_t burst_factor = 1;
  runtime::ThreadPbplStats stats;
  fault::FaultStats faults;
};

const char* policy_name(core::OverflowPolicy policy) {
  switch (policy) {
    case core::OverflowPolicy::Block: return "block";
    case core::OverflowPolicy::DropOldest: return "drop_oldest";
    case core::OverflowPolicy::DropNewest: return "drop_newest";
    case core::OverflowPolicy::EmergencyBorrow: return "borrow";
  }
  return "?";
}

core::PbplConfig base_config() {
  core::PbplConfig config;
  config.cores = 2;
  config.slot_size = milliseconds(5);
  config.max_latency = milliseconds(25);
  config.base_buffer = 16;
  config.pool_segment = 4;
  return config;
}

// One chaos run: `producers` threads each offering `items` to their own
// consumer at a steady trickle, under `faults`.
Cell run_cell(const core::PbplConfig& config, const fault::FaultConfig& faults,
              const std::string& fault_label, std::size_t producers,
              std::size_t items) {
  fault::FaultInjector injector(faults);
  Cell cell;
  cell.policy = policy_name(config.overflow_policy);
  cell.fault = fault_label;
  cell.burst_factor = faults.burst_probability > 0.0 ? faults.burst_factor : 1;
  {
    runtime::ThreadPbpl pbpl(producers, config, {}, &injector);
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t i = 0; i < items; ++i) {
          pbpl.produce(p);
          if (i % 8 == 7) std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }
    for (auto& t : threads) t.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    pbpl.stop();
    cell.stats = pbpl.stats();
  }
  cell.faults = injector.stats();
  return cell;
}

void print_rows(std::ostream& out, const std::vector<Cell>& cells) {
  out << "fault,policy,burst_factor,produced,consumed,dropped_oldest,"
         "dropped_newest,dropped_on_stop,overflow_wakeups,scheduled_wakeups,"
         "missed_deadlines,latency_p50_ms,latency_p99_ms,latency_max_ms\n";
  for (const Cell& c : cells) {
    const auto& s = c.stats;
    out << c.fault << ',' << c.policy << ',' << c.burst_factor << ','
        << s.produced << ',' << s.items << ',' << s.dropped_oldest << ','
        << s.dropped_newest << ',' << s.dropped_on_stop << ','
        << s.overflow_wakeups << ',' << s.scheduled_wakeups << ','
        << s.missed_deadlines << ',' << 1e3 * s.latency_s.p50() << ','
        << 1e3 * s.latency_s.p99() << ',' << 1e3 * s.latency_s.max() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path = "bench_chaos_overload.csv";
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else {
      csv_path = arg;
    }
  }

  // One session spans the whole sweep; each cell's ThreadPbpl re-anchors
  // the session clock to its own epoch.
  std::optional<obs::Session> session;
  if (!trace_out.empty() || !metrics_out.empty()) session.emplace();

  const core::OverflowPolicy policies[] = {
      core::OverflowPolicy::Block, core::OverflowPolicy::DropOldest,
      core::OverflowPolicy::DropNewest, core::OverflowPolicy::EmergencyBorrow};
  const std::size_t burst_factors[] = {1, 5, 10, 20};

  std::vector<Cell> cells;

  // Sweep 1: burst intensity × overflow policy.  Drops stay zero under
  // block/borrow and grow with the burst factor under the drop policies;
  // block pays instead with forced-drain wakeups and p99 latency.
  for (const auto policy : policies) {
    auto config = base_config();
    config.overflow_policy = policy;
    // Freeze capacity for the drop policies so overload actually drops
    // instead of being absorbed by resizing.
    if (policy == core::OverflowPolicy::DropOldest ||
        policy == core::OverflowPolicy::DropNewest) {
      config.base_buffer = 8;
      config.dynamic_resize = false;
      config.emergency_borrow = false;
    }
    for (const std::size_t factor : burst_factors) {
      fault::FaultConfig faults;
      faults.seed = 1234;
      if (factor > 1) {
        faults.burst_probability = 0.10;
        faults.burst_factor = factor;
      }
      cells.push_back(run_cell(config, faults, "burst", 3, 400));
      std::fprintf(stderr, "burst x%-2zu %-12s done\n", factor,
                   cells.back().policy.c_str());
    }
  }

  // Sweep 2: slow consumer vs the deadline watchdog.  Without the
  // watchdog the overrun just stretches latency; with it, overruns past
  // 2Δ are counted and drained immediately.
  for (const double watchdog : {0.0, 2.0}) {
    auto config = base_config();
    config.cores = 1;
    config.watchdog_factor = watchdog;
    fault::FaultConfig faults;
    faults.seed = 99;
    faults.slow_handler_probability = 0.5;
    faults.handler_delay = milliseconds(15);
    cells.push_back(run_cell(config, faults,
                             watchdog > 0.0 ? "slow+watchdog" : "slow", 2, 200));
    std::fprintf(stderr, "slow consumer (watchdog=%.0f) done\n", watchdog);
  }

  print_rows(std::cout, cells);
  std::ofstream csv(csv_path);
  print_rows(csv, cells);
  std::fprintf(stderr, "wrote %s\n", csv_path.c_str());

  if (session.has_value()) {
    std::string error;
    if (!trace_out.empty() &&
        !obs::write_perfetto_trace(trace_out, *session, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
      return 1;
    }
    if (!metrics_out.empty()) {
      const bool as_csv = metrics_out.size() >= 4 &&
                          metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
      const bool ok = as_csv ? obs::write_metrics_csv(metrics_out, *session, &error)
                             : obs::write_metrics_json(metrics_out, *session, &error);
      if (!ok) {
        std::fprintf(stderr, "metrics export failed: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
