// Ablation study of PBPL's design choices (ours; not in the paper, but
// each knob corresponds to a mechanism the paper motivates):
//   * latching      — grouping consumer invocations on shared slots (V-A)
//   * dynamic resize — elastic buffers over the global pool (V-C)
//   * emergency borrow — absorbing overflows with pool space (Section I)
//   * predictor     — moving average (paper) vs Kalman filter (future work)
//   * window h      — moving-average depth
//   * slot size Δ   — track granularity
#include <cstdio>
#include <iostream>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"

using namespace pcpc;
using exp::ImplKind;

namespace {

exp::ExperimentSpec base_spec() { return exp::multi_pair_spec(/*pairs=*/5, /*buffer=*/25); }

void run_row(Table& table, const std::string& label, const exp::ExperimentSpec& spec) {
  const auto s = exp::summarize(ImplKind::Pbpl, spec);
  table.add(label, s.wakeups_per_s.to_string(1), s.power_mw.to_string(1),
            s.overflows.to_string(0), s.scheduled_wakeups.to_string(0),
            s.mean_latency_ms.to_string(2), s.mean_buffer_capacity.to_string(1));
}

}  // namespace

int main() {
  Table table({"configuration", "wakeups/s", "power (mW)", "overflows", "scheduled",
               "latency (ms)", "avg buffer"});
  table.set_title(
      "PBPL ablations — M=5 pairs, B=25, 2 cores, 10 s, 3 replicates, mean ± 95% CI");

  run_row(table, "full PBPL (default)", base_spec());

  {
    auto spec = base_spec();
    spec.setup.pbpl.latching = false;
    run_row(table, "no latching", spec);
  }
  {
    auto spec = base_spec();
    spec.setup.pbpl.dynamic_resize = false;
    run_row(table, "no dynamic resize", spec);
  }
  {
    auto spec = base_spec();
    spec.setup.pbpl.emergency_borrow = false;
    run_row(table, "no emergency borrow", spec);
  }
  {
    auto spec = base_spec();
    spec.setup.pbpl.latching = false;
    spec.setup.pbpl.dynamic_resize = false;
    spec.setup.pbpl.emergency_borrow = false;
    run_row(table, "all mechanisms off", spec);
  }
  {
    auto spec = base_spec();
    spec.setup.pbpl.predictor = core::PredictorKind::Kalman;
    run_row(table, "Kalman predictor (future work)", spec);
  }
  {
    auto spec = base_spec();
    spec.setup.pbpl.predictor = core::PredictorKind::Ewma;
    run_row(table, "EWMA predictor", spec);
  }
  for (const std::size_t h : {std::size_t{2}, std::size_t{4}, std::size_t{16}}) {
    auto spec = base_spec();
    spec.setup.pbpl.predictor_window = h;
    run_row(table, "moving-average h=" + std::to_string(h), spec);
  }
  for (const long delta_ms : {5, 20}) {
    auto spec = base_spec();
    spec.setup.pbpl.slot_size = milliseconds(delta_ms);
    run_row(table, "slot size Δ=" + std::to_string(delta_ms) + " ms", spec);
  }
  {
    auto spec = base_spec();
    spec.setup.pbpl.resize_headroom = 1.0;
    run_row(table, "no resize headroom (paper-exact B_i)", spec);
  }
  table.print(std::cout);

  std::printf(
      "\nReading guide: 'no latching' isolates the grouping gain (V-A); 'no dynamic\n"
      "resize' pins buffers at B0 (V-C); 'no emergency borrow' forces every raw\n"
      "overflow into an unscheduled wakeup; Kalman is the paper's proposed future-\n"
      "work estimator.\n");
  return 0;
}
