// Microbenchmarks of the PBPL decision path: rate predictors, the slot
// track, the reservation table and the ρ-minimizing slot search.  The
// paper argues its per-invocation overhead must stay negligible next to
// item processing; these benches quantify that.
#include <benchmark/benchmark.h>

#include "pcpc/core/cost.hpp"
#include "pcpc/core/rate_predictor.hpp"
#include "pcpc/core/reservation.hpp"
#include "pcpc/core/slot_track.hpp"
#include "pcpc/sim/event_queue.hpp"

namespace {

using namespace pcpc;
using namespace pcpc::core;

void BM_MovingAveragePredict(benchmark::State& state) {
  MovingAverageRatePredictor predictor(static_cast<std::size_t>(state.range(0)));
  double rate = 1000.0;
  for (auto _ : state) {
    predictor.observe(rate);
    rate = rate * 0.999 + 1.0;
    benchmark::DoNotOptimize(predictor.predict());
  }
}
BENCHMARK(BM_MovingAveragePredict)->Arg(4)->Arg(8)->Arg(32);

void BM_KalmanPredict(benchmark::State& state) {
  KalmanRatePredictor predictor;
  double rate = 1000.0;
  for (auto _ : state) {
    predictor.observe(rate);
    rate = rate * 0.999 + 1.0;
    benchmark::DoNotOptimize(predictor.predict());
  }
}
BENCHMARK(BM_KalmanPredict);

void BM_SlotTrackIndexing(benchmark::State& state) {
  const SlotTrack track(milliseconds(10));
  SimTime t = 0;
  for (auto _ : state) {
    t += 12'345'678;
    benchmark::DoNotOptimize(track.g(t));
  }
}
BENCHMARK(BM_SlotTrackIndexing);

void BM_ReservationChurn(benchmark::State& state) {
  // The table's steady state: every consumer moves its single reservation
  // forward each invocation.
  const auto consumers = static_cast<std::size_t>(state.range(0));
  ReservationTable table;
  SlotIndex slot = 0;
  for (std::size_t c = 0; c < consumers; ++c) {
    table.reserve(static_cast<ConsumerId>(c), static_cast<SlotIndex>(c % 4));
  }
  ConsumerId next = 0;
  for (auto _ : state) {
    table.reserve(next, slot + static_cast<SlotIndex>(next % 4) + 1);
    next = (next + 1) % static_cast<ConsumerId>(consumers);
    if (next == 0) ++slot;
    benchmark::DoNotOptimize(table.next_reserved(slot));
  }
}
BENCHMARK(BM_ReservationChurn)->Arg(2)->Arg(10)->Arg(100);

void BM_ChooseSlot(benchmark::State& state) {
  // Full reservation decision with a populated table — the paper's
  // "constant time and energy" claim for the backtracking search.
  const SlotTrack track(milliseconds(10));
  ReservationTable table;
  for (ConsumerId c = 0; c < 8; ++c) {
    table.reserve(c, static_cast<SlotIndex>(c) + 1);
  }
  const EnergyCosts costs;
  SlotQuery query;
  query.predicted_rate_hz = 2000.0;
  query.buffer_capacity = 25;
  query.max_latency = milliseconds(100);
  for (auto _ : state) {
    query.now += 9'999'937;
    benchmark::DoNotOptimize(choose_slot(track, table, query, costs));
  }
}
BENCHMARK(BM_ChooseSlot);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue queue;
  SimTime t = 0;
  const auto noop = [](SimTime) {};
  for (auto _ : state) {
    queue.schedule(t + 100, noop);
    queue.schedule(t + 50, noop);
    benchmark::DoNotOptimize(queue.pop());
    benchmark::DoNotOptimize(queue.pop());
    t += 100;
  }
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // The simulator's dominant pattern: every reservation schedules a slot
  // wakeup and most are cancelled (re-reserved) before firing.  This is
  // the case the flag-stamped liveness array exists for — cancel() and
  // the lazy skip on pop are a bounds check plus a byte, not hash-set
  // traffic.
  sim::EventQueue queue;
  SimTime t = 0;
  const auto noop = [](SimTime) {};
  for (auto _ : state) {
    const sim::EventId stale = queue.schedule(t + 100, noop);
    benchmark::DoNotOptimize(queue.cancel(stale));
    queue.schedule(t + 50, noop);
    benchmark::DoNotOptimize(queue.pop());
    t += 100;
  }
}
BENCHMARK(BM_EventQueueCancelChurn);

}  // namespace

BENCHMARK_MAIN();
