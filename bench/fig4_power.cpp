// Figure 4 reproduction: power consumption of the seven single
// producer-consumer implementations (the paper plots this on a log
// scale), plus the headline reductions the paper quotes.
#include <cstdio>
#include <iostream>

#include "pcpc/common/table.hpp"
#include "pcpc/exp/paper_setup.hpp"
#include "pcpc/exp/report.hpp"

using namespace pcpc;
using exp::ImplKind;

int main() {
  const exp::ExperimentSpec spec = exp::single_pair_spec();

  exp::Report report("fig4");
  report.add_table("power", "fig4 power", {"impl", "power_mw"});
  Table table({"impl", "power (mW)", "vs BW", "vs Mutex"});
  table.set_title(
      "Figure 4 — power (mW) of the seven single-pair implementations\n"
      "web-log replay, 10 s, 3 replicates, mean ± 95% CI");

  double bw_power = 0.0, mutex_power = 0.0, spbp_power = 0.0, batch_best = 1e300;
  struct Row {
    ImplKind kind;
    exp::MetricSummary summary;
  };
  std::vector<Row> rows;
  for (const auto kind : exp::kSingleStudyImpls) {
    rows.push_back({kind, exp::summarize(kind, spec)});
    const double p = rows.back().summary.power_mw.mean;
    if (kind == ImplKind::BusyWait) bw_power = p;
    if (kind == ImplKind::Mutex) mutex_power = p;
    if (kind == ImplKind::SignalPeriodicBatch) spbp_power = p;
    if (kind == ImplKind::Batch || kind == ImplKind::PeriodicBatch ||
        kind == ImplKind::SignalPeriodicBatch) {
      batch_best = std::min(batch_best, p);
    }
  }
  for (const auto& row : rows) {
    const double p = row.summary.power_mw.mean;
    report.add_row({impls::impl_name(row.kind), format_double(p, 2)});
    table.add(impls::impl_name(row.kind), row.summary.power_mw.to_string(1),
              format_double(100.0 * (bw_power - p) / bw_power, 1) + " %",
              format_double(100.0 * (mutex_power - p) / mutex_power, 1) + " %");
  }
  table.print(std::cout);

  std::printf("\nHeadline claims (Section III-C):\n");
  std::printf("  best batch impl vs BW:    %5.1f %% reduction   (paper: up to 80%%)\n",
              100.0 * (bw_power - batch_best) / bw_power);
  std::printf("  SPBP vs Mutex:            %5.1f %% reduction   (paper: 33%%)\n",
              100.0 * (mutex_power - spbp_power) / mutex_power);
  report.maybe_export(std::cout);
  return 0;
}
