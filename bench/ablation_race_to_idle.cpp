// Race-to-idle ablation (paper Section II background): is the paper's
// simplified two-state model (run at full speed, then idle) conservative?
//
// For each batch window we compare executing the batch at every P-state
// of a DVFS table: high states finish fast and park in a deep C-state;
// low states stretch the work at a lower V²f cost.  The crossover depends
// on how deep the idle ladder goes and how long the window is — exactly
// the interplay the paper's "race-to-idle … should be combined with
// minimizing wakeups" paragraph describes.
//
// Part two extends the ablation to the fleet: a utilization sweep
// (5% → 95% of the packed-core budget, phase-shifted sinusoid arrivals)
// with the elastic controller off vs on.  Race-to-idle at fleet scope IS
// core parking — consolidate the work, let the emptied cores reach the
// deep states — and the sweep shows where that trade pays: large paid-
// wakeup and joules/item cuts at low utilization, converging to parity
// as the load saturates the packed placement.  `--json-out=FILE` appends
// one JSON line per (utilization, mode) point.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/table.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/fleet/sim_driver.hpp"
#include "pcpc/power/cstate.hpp"
#include "pcpc/power/energy_ledger.hpp"
#include "pcpc/power/pstate.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/trace/arrival_process.hpp"

using namespace pcpc;
using namespace pcpc::power;

namespace {

constexpr std::size_t kSweepPairs = 8;
constexpr std::size_t kSweepCores = 4;
constexpr SimDuration kSweepHorizon = seconds(1);

struct SweepPoint {
  double paid_per_s = 0.0;
  double uj_per_item = 0.0;
  double p99_ms = 0.0;
  std::uint64_t migrations = 0;
};

SweepPoint run_sweep_point(double utilization, bool elastic) {
  core::PbplConfig config;
  config.cores = kSweepCores;
  config.assignment = core::AssignmentPolicy::RoundRobin;
  config.slot_size = milliseconds(10);
  config.max_latency = milliseconds(100);
  config.base_buffer = 25;
  config.service.per_item = microseconds(20);

  // `utilization` is the busy fraction the whole fleet would put on ONE
  // core; per-pair rate follows from the per-item service time.
  const double rate_hz = utilization / (static_cast<double>(kSweepPairs) *
                                        to_seconds(config.service.per_item));
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < kSweepPairs; ++i) {
    Rng rng(0xab1a7e5eedULL + i);
    const trace::SinusoidRate rate(rate_hz, rate_hz / 4.0, seconds(1),
                                   0.7 * static_cast<double>(i));
    traces.push_back(trace::sample_nhpp(rate, kSweepHorizon, rng));
  }

  sim::Simulator simulator;
  core::PbplSystem system(simulator, kSweepPairs, config);

  fleet::FleetConfig fc;
  fc.mode = elastic ? fleet::FleetMode::kElastic : fleet::FleetMode::kOff;
  fc.control_period = milliseconds(50);
  fc.cooldown = milliseconds(200);
  fc.cost.slot = config.resolved_slot_size();
  fc.cost.max_latency = config.max_latency;
  fc.cost.buffer_items = config.base_buffer;
  fc.cost.service = config.service;
  fc.cost.manager_overhead = config.manager_overhead;
  fc.cost.utilization_cap = config.utilization_cap;
  fleet::FleetController controller(kSweepPairs, kSweepCores, fc);
  fleet::SimFleetDriver driver(simulator, system, controller);

  system.start();
  if (elastic) driver.start();
  for (std::size_t i = 0; i < kSweepPairs; ++i) {
    core::PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, traces[i].timestamps(), kSweepHorizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  simulator.run_until(kSweepHorizon);
  driver.stop();
  const core::PbplResult result = system.finish(kSweepHorizon);

  SweepPoint point;
  const double horizon_s = to_seconds(kSweepHorizon);
  point.paid_per_s = static_cast<double>(result.paid_wakeups) / horizon_s;
  point.p99_ms = result.latency_s.p99() * 1e3;
  point.migrations = driver.migrations();
  const EnergyLedger ledger;
  double joules = 0.0;
  for (const auto& timeline : result.timelines) {
    joules += ledger.energy_joules(timeline) - ledger.baseline_joules(timeline);
  }
  joules += static_cast<double>(result.items) * ledger.params().item_transport_energy_j +
            static_cast<double>(result.paid_wakeups) * ledger.params().wakeup_energy_j;
  point.uj_per_item = joules / static_cast<double>(result.items) * 1e6;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_out = argv[i] + 11;
  }
  const PStateModel pstates = PStateModel::arndale_like();

  // Batch work sized like a PBPL slot's batch: 20 items × 3 µs at
  // 1.6 GHz ≈ 96k cycles... scaled up to make the numbers legible.
  const double batch_cycles = 1.6e6;  // 1 ms at the top state

  Table table({"idle ladder", "window", "best P-state", "busy (ms)", "idle (ms)",
               "energy (uJ)", "vs top-state"});
  table.set_title(
      "Race-to-idle ablation: energy-optimal P-state per batch window\n"
      "(batch = 1 ms of work at 1.6 GHz)");

  struct Ladder {
    const char* name;
    CStateModel model;
  };
  const Ladder ladders[] = {
      {"shallow (WFI only, 180 mW)", CStateModel::two_state(0.18)},
      {"deep ladder (Arndale)", CStateModel::arndale_like()},
  };

  for (const auto& ladder : ladders) {
    for (const SimDuration window :
         {milliseconds(2), milliseconds(4), milliseconds(10), milliseconds(40)}) {
      const auto best =
          best_pstate(pstates, ladder.model, batch_cycles, window, /*wakeup_j=*/8e-6);
      const auto top = evaluate_window(pstates, ladder.model, batch_cycles, window,
                                       8e-6, pstates.fastest());
      table.add(ladder.name, format_double(to_milliseconds(window), 0) + " ms",
                pstates.state(best.pstate).name, format_double(to_milliseconds(best.busy), 2),
                format_double(to_milliseconds(best.idle), 2),
                format_double(best.energy_j * 1e6, 1),
                format_double(100.0 * (top.energy_j - best.energy_j) / top.energy_j, 1) +
                    " %");
    }
  }
  table.print(std::cout);

  std::printf(
      "\nReading: on a shallow ladder, crawling at a low P-state beats racing (the\n"
      "idle time is too expensive to be worth buying).  On the deep Arndale-like\n"
      "ladder the gap shrinks toward zero as windows grow — long contiguous idle\n"
      "reaches the deep states and race-to-idle becomes near-optimal, which is\n"
      "what justifies the paper's two-state simplification *given* its grouped\n"
      "(long-gap) wakeup pattern.  Grouping and race-to-idle are complements.\n");

  // --- Part two: fleet-scope race-to-idle (elastic parking) sweep.
  Table sweep({"util", "mode", "paid wakeups/s", "uJ/item", "p99 (ms)", "migrations",
               "paid cut"});
  sweep.set_title(
      "Fleet utilization sweep: static round-robin vs elastic parking\n"
      "(8 pairs, 4 cores, phase-shifted sinusoid arrivals, 1 s horizon)");

  FILE* json = nullptr;
  if (!json_out.empty()) {
    json = std::fopen(json_out.c_str(), "a");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for append\n", json_out.c_str());
      return 1;
    }
  }

  for (const double util : {0.05, 0.10, 0.25, 0.50, 0.75, 0.95}) {
    const SweepPoint fixed = run_sweep_point(util, /*elastic=*/false);
    const SweepPoint elastic = run_sweep_point(util, /*elastic=*/true);
    const double cut =
        100.0 * (fixed.paid_per_s - elastic.paid_per_s) / fixed.paid_per_s;
    const std::string util_label = format_double(util * 100.0, 0) + " %";
    sweep.add(util_label, "static", format_double(fixed.paid_per_s, 1),
              format_double(fixed.uj_per_item, 2), format_double(fixed.p99_ms, 2), "0",
              "");
    sweep.add(util_label, "elastic", format_double(elastic.paid_per_s, 1),
              format_double(elastic.uj_per_item, 2), format_double(elastic.p99_ms, 2),
              std::to_string(elastic.migrations), format_double(cut, 1) + " %");
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"bench\":\"fleet_util_sweep\",\"util_pct\":%.0f,"
                   "\"static_paid_per_s\":%.2f,\"elastic_paid_per_s\":%.2f,"
                   "\"paid_cut_pct\":%.1f,\"static_uj_per_item\":%.3f,"
                   "\"elastic_uj_per_item\":%.3f,\"static_p99_ms\":%.3f,"
                   "\"elastic_p99_ms\":%.3f,\"migrations\":%llu}\n",
                   util * 100.0, fixed.paid_per_s, elastic.paid_per_s, cut,
                   fixed.uj_per_item, elastic.uj_per_item, fixed.p99_ms, elastic.p99_ms,
                   static_cast<unsigned long long>(elastic.migrations));
    }
  }
  if (json != nullptr) std::fclose(json);
  std::printf("\n");
  sweep.print(std::cout);
  std::printf(
      "\nReading: parking is race-to-idle one level up.  At low utilization the\n"
      "controller consolidates the pairs and the emptied cores' contiguous idle\n"
      "reaches the deep states — paid wakeups and joules/item drop sharply.  As\n"
      "utilization approaches the packed placement's cap the candidate stops\n"
      "beating the hysteresis margin and both modes converge.\n");
  return 0;
}
