// Race-to-idle ablation (paper Section II background): is the paper's
// simplified two-state model (run at full speed, then idle) conservative?
//
// For each batch window we compare executing the batch at every P-state
// of a DVFS table: high states finish fast and park in a deep C-state;
// low states stretch the work at a lower V²f cost.  The crossover depends
// on how deep the idle ladder goes and how long the window is — exactly
// the interplay the paper's "race-to-idle … should be combined with
// minimizing wakeups" paragraph describes.
#include <cstdio>
#include <iostream>

#include "pcpc/common/table.hpp"
#include "pcpc/power/cstate.hpp"
#include "pcpc/power/pstate.hpp"

using namespace pcpc;
using namespace pcpc::power;

int main() {
  const PStateModel pstates = PStateModel::arndale_like();

  // Batch work sized like a PBPL slot's batch: 20 items × 3 µs at
  // 1.6 GHz ≈ 96k cycles... scaled up to make the numbers legible.
  const double batch_cycles = 1.6e6;  // 1 ms at the top state

  Table table({"idle ladder", "window", "best P-state", "busy (ms)", "idle (ms)",
               "energy (uJ)", "vs top-state"});
  table.set_title(
      "Race-to-idle ablation: energy-optimal P-state per batch window\n"
      "(batch = 1 ms of work at 1.6 GHz)");

  struct Ladder {
    const char* name;
    CStateModel model;
  };
  const Ladder ladders[] = {
      {"shallow (WFI only, 180 mW)", CStateModel::two_state(0.18)},
      {"deep ladder (Arndale)", CStateModel::arndale_like()},
  };

  for (const auto& ladder : ladders) {
    for (const SimDuration window :
         {milliseconds(2), milliseconds(4), milliseconds(10), milliseconds(40)}) {
      const auto best =
          best_pstate(pstates, ladder.model, batch_cycles, window, /*wakeup_j=*/8e-6);
      const auto top = evaluate_window(pstates, ladder.model, batch_cycles, window,
                                       8e-6, pstates.fastest());
      table.add(ladder.name, format_double(to_milliseconds(window), 0) + " ms",
                pstates.state(best.pstate).name, format_double(to_milliseconds(best.busy), 2),
                format_double(to_milliseconds(best.idle), 2),
                format_double(best.energy_j * 1e6, 1),
                format_double(100.0 * (top.energy_j - best.energy_j) / top.energy_j, 1) +
                    " %");
    }
  }
  table.print(std::cout);

  std::printf(
      "\nReading: on a shallow ladder, crawling at a low P-state beats racing (the\n"
      "idle time is too expensive to be worth buying).  On the deep Arndale-like\n"
      "ladder the gap shrinks toward zero as windows grow — long contiguous idle\n"
      "reaches the deep states and race-to-idle becomes near-optimal, which is\n"
      "what justifies the paper's two-state simplification *given* its grouped\n"
      "(long-gap) wakeup pattern.  Grouping and race-to-idle are complements.\n");
  return 0;
}
