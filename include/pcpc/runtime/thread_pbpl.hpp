// Real-thread host for the PBPL algorithm.
//
// Demonstrates that the algorithm's structure (Figure 5) maps directly
// onto std::thread: one manager thread per core sleeps with
// condition_variable::wait_until on the next *reserved* slot, wakes,
// drains every consumer registered for that slot, runs each consumer's
// predict→reserve→resize pipeline, and goes back to sleep.  Producers
// push from their own threads; a full buffer first borrows pool segments
// and only then forces an unscheduled manager wakeup.
//
// The decision logic (SlotTrack, ReservationTable, choose_slot, the
// predictors, the elastic pool) is byte-for-byte the same code the
// simulation host runs — this file only supplies the threading shell.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/common/latency_recorder.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/core/cost.hpp"
#include "pcpc/core/rate_predictor.hpp"
#include "pcpc/core/reservation.hpp"
#include "pcpc/core/slot_track.hpp"
#include "pcpc/queue/elastic_buffer.hpp"

namespace pcpc::runtime {

using Clock = std::chrono::steady_clock;

/// Aggregate counters of one ThreadPbpl run.
struct ThreadPbplStats {
  std::uint64_t items = 0;
  std::uint64_t invocations = 0;
  std::uint64_t scheduled_wakeups = 0;   ///< slot timeouts taken by managers
  std::uint64_t overflow_wakeups = 0;    ///< forced unscheduled drains
  std::uint64_t emergency_borrows = 0;
  std::uint64_t reservations = 0;
  std::uint64_t latched_reservations = 0;
  std::int64_t manager_cpu_ns = 0;       ///< CPU time of all manager threads
  OnlineStats batch_sizes;
  LatencyRecorder latency_s;
};

/// Multi-core, multi-consumer PBPL runtime on real threads.
class ThreadPbpl {
 public:
  /// Called for every drained batch (consumer index, batch size).  May be
  /// empty.  Runs on the manager thread — keep it short, it is the
  /// consumer's "processing" step.
  using BatchHandler = std::function<void(std::size_t consumer, std::size_t batch)>;

  /// Starts `config.cores` manager threads hosting `consumers` pairs
  /// (round-robin).  The slot track is anchored at construction time.
  ThreadPbpl(std::size_t consumers, const core::PbplConfig& config,
             BatchHandler handler = {});

  /// Stops and joins all manager threads (drains leftovers first).
  ~ThreadPbpl();

  ThreadPbpl(const ThreadPbpl&) = delete;
  ThreadPbpl& operator=(const ThreadPbpl&) = delete;

  /// Producer side: deliver one item to `consumer` now.  Thread-safe;
  /// callable from any thread.  Blocks only in the rare case where the
  /// buffer is full, the pool is exhausted, and the manager has not yet
  /// completed the forced drain.
  void produce(std::size_t consumer);

  /// Stops the runtime (idempotent); the destructor calls this too.
  void stop();

  /// Counters; call after stop() for a consistent snapshot.
  ThreadPbplStats stats() const;

  std::size_t consumer_count() const { return consumers_.size(); }
  std::size_t core_count() const { return cores_.size(); }

 private:
  struct Core;

  struct Consumer {
    std::size_t index = 0;
    Core* core = nullptr;
    std::unique_ptr<queue::ElasticBuffer<Clock::time_point>> buffer;
    std::unique_ptr<core::RatePredictor> predictor;
    SimTime last_invocation = 0;
    std::size_t last_batch = 1;
    std::uint64_t overflow_requests = 0;  // pending forced drains
  };

  struct Core {
    std::size_t index = 0;
    core::ReservationTable reservations;
    std::vector<Consumer*> consumers;
    std::condition_variable cv;
    std::thread thread;
    std::uint64_t scheduled_wakeups = 0;
    std::int64_t cpu_ns = 0;
    bool overflow_pending = false;
  };

  SimTime now_ns() const;
  Clock::time_point slot_deadline(core::SlotIndex slot) const;
  void manager_loop(Core& core);
  void invoke_locked(Core& core, Consumer& consumer, SimTime now);
  void make_reservation_locked(Core& core, Consumer& consumer, SimTime now);

  const core::PbplConfig config_;
  const core::SlotTrack track_;
  const Clock::time_point epoch_;
  BatchHandler handler_;

  mutable std::mutex mutex_;  // one coarse lock: simple and correct
  std::condition_variable producer_cv_;
  bool running_ = true;

  queue::BufferPool<Clock::time_point> pool_;
  std::vector<std::unique_ptr<Consumer>> consumers_;
  std::vector<std::unique_ptr<Core>> cores_;
  ThreadPbplStats stats_;
};

}  // namespace pcpc::runtime
