// Real-thread host for the PBPL algorithm.
//
// Demonstrates that the algorithm's structure (Figure 5) maps directly
// onto std::thread: one manager thread per core sleeps with
// condition_variable::wait_until on the next *reserved* slot, wakes,
// drains every consumer registered for that slot, runs each consumer's
// predict→reserve→resize pipeline, and goes back to sleep.  Producers
// push from their own threads; a full buffer first borrows pool segments
// and only then falls back to the configured overflow policy.
//
// The decision logic (SlotTrack, ReservationTable, choose_slot, the
// predictors, the elastic pool) is byte-for-byte the same code the
// simulation host runs — this file only supplies the threading shell,
// plus the overload hardening the simulation host cannot exercise:
// configurable overflow policies, a per-core deadline watchdog, the
// live LatencyGuard, and pcpc::fault injection hooks.
//
// Sharding (Section V-B: one core manager per core, disjoint consumer
// sets): every Core owns its mutex, its condition variables, its
// reservation table and its stats shard, so cores never contend with
// each other.  The only cross-core state is lock-free: the running flag,
// the produced counter and the buffer pool's segment accounting.  The
// user BatchHandler and fault-injected handler delays run on the manager
// thread but OUTSIDE the core lock, so a slow handler stalls only its
// own core's schedule (which the per-core watchdog then escalates) and
// never blocks that core's producers from pushing, let alone other
// cores.  Buffers drain through Handoff::pop_bulk — chunked bulk pops
// instead of per-item virtual try_pop calls.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "pcpc/common/latency_recorder.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/core/cost.hpp"
#include "pcpc/core/latency_guard.hpp"
#include "pcpc/core/rate_predictor.hpp"
#include "pcpc/core/reservation.hpp"
#include "pcpc/core/slot_track.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/queue/elastic_buffer.hpp"
#include "pcpc/queue/handoff.hpp"

namespace pcpc::runtime {

using Clock = std::chrono::steady_clock;

/// Aggregate counters of one ThreadPbpl run.  Each core accumulates its
/// own shard under its own lock; stats() merges the shards on demand.
struct ThreadPbplStats {
  std::uint64_t produced = 0;            ///< items offered by producers
  std::uint64_t items = 0;               ///< items drained (consumed)
  /// Varlen payload plane (config.payload_max_bytes > 0): records count
  /// as items in the identities above; these byte counters run alongside
  /// them with their own identity produced_bytes == consumed_bytes +
  /// dropped_bytes (payload bytes as offered by producers — the in-ring
  /// stamp word is excluded).
  std::uint64_t produced_bytes = 0;      ///< payload bytes offered
  std::uint64_t consumed_bytes = 0;      ///< payload bytes drained to handlers
  std::uint64_t dropped_bytes = 0;       ///< payload bytes lost to any drop path
  std::uint64_t invocations = 0;
  std::uint64_t scheduled_wakeups = 0;   ///< slot timeouts taken by managers
  std::uint64_t overflow_wakeups = 0;    ///< forced unscheduled drains
  std::uint64_t emergency_borrows = 0;
  std::uint64_t reservations = 0;
  std::uint64_t latched_reservations = 0;
  std::uint64_t dropped_oldest = 0;      ///< evictions under DropOldest
  std::uint64_t dropped_newest = 0;      ///< rejections under DropNewest
  std::uint64_t dropped_on_stop = 0;     ///< items lost to a stop() race (counted!)
  std::uint64_t missed_deadlines = 0;    ///< watchdog escalations (slot overrun > k·Δ)
  std::uint64_t latency_violations = 0;  ///< guard-observed items past the bound
  std::uint64_t pool_exhausted = 0;      ///< pool emergency over-commits
  std::uint64_t migrations = 0;          ///< fleet consumer moves completed
  std::uint64_t core_parks = 0;          ///< manager threads retired (core empty)
  std::uint64_t core_unparks = 0;        ///< parked manager threads respawned
  std::int64_t manager_cpu_ns = 0;       ///< CPU time of all manager threads
  OnlineStats batch_sizes;
  LatencyRecorder latency_s;

  /// All items that did not reach a consumer, by any drop path.
  std::uint64_t dropped() const {
    return dropped_oldest + dropped_newest + dropped_on_stop;
  }

  /// Folds another shard into this one (exact: counters add, the batch
  /// and latency distributions merge losslessly).
  void merge(const ThreadPbplStats& other) {
    produced += other.produced;
    items += other.items;
    produced_bytes += other.produced_bytes;
    consumed_bytes += other.consumed_bytes;
    dropped_bytes += other.dropped_bytes;
    invocations += other.invocations;
    scheduled_wakeups += other.scheduled_wakeups;
    overflow_wakeups += other.overflow_wakeups;
    emergency_borrows += other.emergency_borrows;
    reservations += other.reservations;
    latched_reservations += other.latched_reservations;
    dropped_oldest += other.dropped_oldest;
    dropped_newest += other.dropped_newest;
    dropped_on_stop += other.dropped_on_stop;
    missed_deadlines += other.missed_deadlines;
    latency_violations += other.latency_violations;
    pool_exhausted += other.pool_exhausted;
    migrations += other.migrations;
    core_parks += other.core_parks;
    core_unparks += other.core_unparks;
    manager_cpu_ns += other.manager_cpu_ns;
    batch_sizes.merge(other.batch_sizes);
    latency_s.merge(other.latency_s);
  }
};

/// Multi-core, multi-consumer PBPL runtime on real threads.
class ThreadPbpl {
 public:
  /// Called for every drained batch (consumer index, batch size).  May be
  /// empty.  Runs on the manager thread with NO runtime lock held: a slow
  /// handler delays only its own core's next slot (and trips that core's
  /// watchdog), never another core or a producer's push.
  using BatchHandler = std::function<void(std::size_t consumer, std::size_t batch)>;

  /// Called once per drained varlen record with a ZERO-COPY view of the
  /// payload still inside the ring (config.payload_max_bytes > 0 arms
  /// the plane).  Same no-lock contract as BatchHandler; the view dies
  /// when the call returns — the bytes are released to producers right
  /// after the batch's handlers finish, never before.
  using RecordHandler =
      std::function<void(std::size_t consumer, std::span<const std::byte> payload)>;

  /// A producer-owned in-ring claim between reserve_record and
  /// commit_record: write the payload ONCE into `payload`, then commit.
  struct RecordRef {
    std::span<std::byte> payload;
    queue::VarReservation res;
  };

  /// Starts `config.cores` manager threads hosting `consumers` pairs
  /// (round-robin).  The slot track is anchored at construction time.
  /// `injector`, when non-null, must outlive the runtime; it injects
  /// producer stalls/bursts, slow handlers, deadline jitter and pool
  /// pressure (see pcpc/fault/fault_injector.hpp).
  /// `fleet` (optional) arms the elastic placement controller: with
  /// FleetMode::kElastic a dedicated fleet thread wakes every
  /// control_period, re-prices the placement with the D2.3 cost model,
  /// live-migrates consumers between cores and parks the manager threads
  /// of cores left empty.  kOff and kStatic start no fleet thread (the
  /// construction-time placement is final).
  ThreadPbpl(std::size_t consumers, const core::PbplConfig& config,
             BatchHandler handler = {}, fault::FaultInjector* injector = nullptr,
             fleet::FleetConfig fleet = {});

  /// Stops and joins all manager threads (drains leftovers first).
  ~ThreadPbpl();

  ThreadPbpl(const ThreadPbpl&) = delete;
  ThreadPbpl& operator=(const ThreadPbpl&) = delete;

  /// Producer side: deliver one item to `consumer` now.  Thread-safe;
  /// callable from any thread.  Under OverflowPolicy::Block it blocks
  /// while the buffer is full, the pool is exhausted, and the manager
  /// has not yet completed the forced drain; the drop policies bound it.
  /// Every offered item is accounted: produced == items + dropped().
  ///
  /// Backend contract (config.queue_backend): with a lock-free backend
  /// the common case never touches any runtime lock — only the overflow
  /// slow path takes the owning core's lock.  BackendKind::MpscSeg
  /// accepts any number of concurrent producer threads per consumer;
  /// BackendKind::SpscRing requires the caller to produce to each
  /// consumer from at most one thread at a time (the ring's
  /// single-producer contract — the seed's Mutex backend has no such
  /// restriction).  Fault-injected burst volleys go through the bulk
  /// push path: one timestamp and one shared-state update per admitted
  /// chunk (the volley arrives back-to-back, so the chunk stamp bounds
  /// every member's enqueue time to within the admission itself).
  void produce(std::size_t consumer);

  /// Arms the varlen record handler.  Call before the first
  /// produce_record/commit_record (not thread-safe against them).
  void set_record_handler(RecordHandler handler) { record_handler_ = std::move(handler); }

  /// Producer side of the varlen plane (config.payload_max_bytes > 0):
  /// deliver one variable-size payload to `consumer` with ONE copy
  /// (caller buffer → ring); the handler reads it in place.  Same
  /// threading/overflow contract as produce() at record granularity —
  /// every offered record is accounted, produced == items + dropped()
  /// and produced_bytes == consumed_bytes + dropped_bytes stay exact.
  void produce_record(std::size_t consumer, std::span<const std::byte> payload);

  /// Zero-copy producer path: claims `bytes` directly in `consumer`'s
  /// ring.  The caller writes the payload into ref.payload and then MUST
  /// call commit_record (the claim is not visible to the consumer until
  /// then, and the overflow accounting assumes exactly one commit per
  /// successful reserve).  nullopt = the record was dropped under a drop
  /// policy (already counted).  Under Block the call blocks for space,
  /// like produce().
  std::optional<RecordRef> reserve_record(std::size_t consumer, std::size_t bytes);

  /// Publishes a reserve_record claim (stamps the enqueue time into the
  /// record on the way).  Same thread as the reserve.
  void commit_record(std::size_t consumer, RecordRef& ref);

  /// Stops the runtime (idempotent); the destructor calls this too.
  void stop();

  /// Counters; call after stop() *and after joining all producer
  /// threads* for a consistent snapshot.  Merges the per-core shards.
  /// Post-stop, any items stranded by a producer that raced stop() on
  /// the lock-free fast path are swept into dropped_on_stop here,
  /// keeping produced == items + dropped() exact.
  ThreadPbplStats stats();

  std::size_t consumer_count() const { return consumers_.size(); }
  std::size_t core_count() const { return cores_.size(); }

  /// Live-migrates pair `consumer` onto core `core` (unparking it first
  /// if needed).  The quiesce protocol drains nothing and drops nothing:
  /// the pair's buffer travels with it, its reservation moves to the
  /// destination slot track, and a producer blocked mid-overflow retries
  /// on the destination — produced == items + dropped() holds exactly
  /// across the move.  Returns false only when the runtime has stopped.
  /// Thread-safe against producers and managers; concurrent callers of
  /// migrate()/stop() must be externally serialized (the fleet thread is
  /// the only internal caller).
  bool migrate(std::size_t consumer, std::size_t core);

  /// Current core index of every pair (a racy snapshot while running).
  std::vector<std::size_t> placement() const;

  /// Which cores currently have their manager thread parked.
  std::vector<bool> parked_cores() const;

  /// The fleet controller, or nullptr when mode != kElastic.  Read-only
  /// introspection (rates, counters); the fleet thread owns mutation.
  const fleet::FleetController* fleet_controller() const {
    return controller_ ? &*controller_ : nullptr;
  }

 private:
  struct Core;

  struct Consumer {
    std::size_t index = 0;
    /// Owning core.  Atomic because fleet migration retargets it while
    /// producers read it lock-free: a producer entering the slow path
    /// loads it, locks that core's mutex and re-checks it under the lock
    /// (retrying on mismatch), so by the time any core state is touched
    /// the pointer is stable.
    std::atomic<Core*> core{nullptr};
    std::unique_ptr<queue::Handoff<Clock::time_point>> buffer;
    /// Varlen record plane (null unless config.payload_max_bytes > 0).
    /// Travels with the consumer on migration, like `buffer`.
    std::unique_ptr<queue::VarHandoff> var;
    /// True while a drained batch of zero-copy views is between
    /// drain_locked and its release in run_handlers.  Guarded by the
    /// owning core's lock; a migrating fleet thread waits it out (the
    /// views pin the ring's released cursor, and release must stay on
    /// the manager that claimed them).
    bool var_inflight = false;
    std::unique_ptr<core::RatePredictor> predictor;
    std::optional<core::LatencyGuard> guard;  // live latency feedback
    SimTime last_invocation = 0;
    std::size_t last_batch = 1;
    std::uint64_t overflow_requests = 0;  // pending forced drains (0 or 1)
    /// Sampled item-lifecycle spans (positional 1-in-N): producers claim
    /// admission sequence numbers here; the manager counts drained
    /// positions in span_drain_seq (manager-only, under the core lock).
    /// Positions match admissions exactly under FIFO without drops; with
    /// drops or MPSC interleaving the sampled span is best-effort (the
    /// counters the identities are pinned on never come from spans).
    std::atomic<std::uint64_t> span_produce_seq{0};
    std::uint64_t span_drain_seq = 0;
    /// Cumulative drained items, readable without the core lock: the
    /// fleet thread's rate measurement (written by the draining manager).
    std::atomic<std::uint64_t> drained_items{0};
  };

  /// A drained batch whose handler still has to run (outside the lock).
  struct PendingBatch {
    Consumer* consumer = nullptr;
    std::size_t batch = 0;
    std::int64_t slot = 0;
    SimTime now = 0;
    Clock::time_point drained_at{};
    /// Item ids of sampled spans drained in this batch (usually empty);
    /// run_handlers stamps their handler-done stage after the handler.
    std::vector<std::uint64_t> sampled;
    /// Varlen records claimed by this drain: zero-copy views handed to
    /// the record handler outside the lock, then released (in one cursor
    /// publication, up to `var_release`) once the batch's handlers are
    /// done.  View spans still carry the leading stamp word.
    std::vector<queue::VarRecordView> records;
    std::uint64_t var_release = 0;
  };

  /// One core = one manager thread + everything it needs, behind its own
  /// lock.  Nothing here is ever touched under another core's lock.
  struct Core {
    std::size_t index = 0;
    std::mutex mutex;
    std::condition_variable cv;           ///< manager sleeps here
    std::condition_variable producer_cv;  ///< blocked producers sleep here
    core::ReservationTable reservations;
    std::vector<Consumer*> consumers;
    std::thread thread;
    bool overflow_pending = false;
    /// Parking: `retired` (under `mutex`) tells the manager loop to exit;
    /// `parked` (atomic) is the outside-world view, flipped only after
    /// the thread is joined / before it is respawned.  Both are written
    /// solely by the fleet thread (or an external migrate() caller).
    bool retired = false;
    std::atomic<bool> parked{false};
    /// This core's stats shard, guarded by `mutex` (written by the
    /// manager and by producers' slow paths, both of which hold it).
    ThreadPbplStats stats;
    /// Manager-only scratch for the drain→unlock→handler hand-off.
    std::vector<PendingBatch> pending;
  };

  SimTime now_ns() const;
  Clock::time_point slot_deadline(core::SlotIndex slot);
  void manager_loop(Core& core);
  void fleet_loop();
  void fleet_tick();
  /// Retires `core`'s manager thread if the core is completely idle (no
  /// consumers, no reservations, no pending work).  Fleet thread only.
  bool try_park(Core& core);
  /// Respawns a parked core's manager thread.  Fleet thread only.
  void unpark(Core& core);
  void push_one(Consumer& consumer);
  void push_volley(Consumer& consumer, std::size_t items);
  /// Runs the overflow slow path for one item with `core`'s lock held
  /// (`core` must be the consumer's owner, verified under the lock).
  /// Returns true when the item is fully accounted (stored or counted as
  /// a drop); false when a blocked wait observed the consumer migrating
  /// away — the caller re-resolves the owner and retries on it.
  bool push_one_slow_locked(Core& core, Consumer& consumer, Clock::time_point stamp,
                            std::unique_lock<std::mutex>& lock);
  /// Varlen analogue of push_one_slow_locked: makes space per the
  /// overflow policy at record granularity and retries the reserve.
  /// Returns true when the record is accounted — `reserved` says whether
  /// `out` holds a claim (true) or the record was counted as a drop
  /// (false); returns false on the migration retry, like the item path.
  bool reserve_slow_locked(Core& core, Consumer& consumer, std::uint32_t record_bytes,
                           queue::VarReservation& out, bool& reserved,
                           std::unique_lock<std::mutex>& lock);
  /// Drains `consumer` (bulk pops), records stats into the core shard and
  /// makes the next reservation — all under the core lock.  The handler
  /// call is queued on core.pending for run_handlers().
  /// `slot` / `paid` / `scheduled` feed pcpc::obs wakeup attribution:
  /// `paid` marks the invocation that actually woke this manager thread,
  /// later consumers in the same wake latch on for free.
  void drain_locked(Core& core, Consumer& consumer, SimTime now, std::int64_t slot,
                    bool paid, bool scheduled);
  /// Runs the queued handlers (and fault-injected handler delays) with
  /// the core lock RELEASED, then re-acquires it.  Producers may push —
  /// and other cores may do anything — while a handler runs.
  void run_handlers(Core& core, std::unique_lock<std::mutex>& lock);
  void make_reservation_locked(Core& core, Consumer& consumer, SimTime now);

  /// Leading stamp word of every in-ring record: the enqueue timestamp
  /// (steady-clock ns), written at commit, read once at drain for the
  /// latency account.  Handlers see the payload AFTER this word.
  static constexpr std::size_t kStampBytes = 8;

  /// Per-record footprint budget used to translate the item-denominated
  /// control plane (predictor capacity, resize targets) into ring bytes:
  /// the worst-case footprint of one record at payload_max_bytes.
  std::size_t record_budget_ = 0;

  const core::PbplConfig config_;
  const core::SlotTrack track_;
  const Clock::time_point epoch_;
  BatchHandler handler_;
  RecordHandler record_handler_;
  fault::FaultInjector* injector_ = nullptr;
  fleet::FleetConfig fleet_config_;

  /// Lock-free cross-core state: liveness for the producer fast path and
  /// the offered-items counter.  Everything else is per-core.
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> produced_{0};
  std::atomic<std::uint64_t> produced_bytes_{0};  ///< varlen payload bytes offered

  queue::BufferPool<Clock::time_point> pool_;
  std::size_t seized_segments_ = 0;  // held by fault-injected pool pressure
  std::vector<std::unique_ptr<Consumer>> consumers_;
  std::vector<std::unique_ptr<Core>> cores_;

  /// Elastic-fleet state.  The controller is driven only by the fleet
  /// thread; the counters are cross-thread readable.
  std::optional<fleet::FleetController> controller_;
  std::thread fleet_thread_;
  std::mutex fleet_mutex_;              // guards the fleet thread's sleep
  std::condition_variable fleet_cv_;    // stop() interrupts the sleep here
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> unparks_{0};
};

}  // namespace pcpc::runtime
