// Real-thread baseline implementations: Mutex (per-item condvar
// signaling) and BP (signal on buffer full) — the two classic shapes the
// paper's Section III study measures, here as actual threads so the
// thread-host PBPL has like-for-like competition.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/common/latency_recorder.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/common/types.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/queue/handoff.hpp"

namespace pcpc::runtime {

using BaselineClock = std::chrono::steady_clock;

/// Counters of a thread-baseline run.  Each pair accumulates its own
/// shard under its own lock; stats() merges the shards on demand.
struct ThreadBaselineStats {
  std::uint64_t items = 0;
  std::uint64_t invocations = 0;
  std::uint64_t consumer_wakeups = 0;  ///< times a consumer thread blocked and woke
  std::int64_t consumer_cpu_ns = 0;
  OnlineStats batch_sizes;
  LatencyRecorder latency_s;

  /// Folds another shard into this one (exact: counters add, the batch
  /// and latency distributions merge losslessly).
  void merge(const ThreadBaselineStats& other) {
    items += other.items;
    invocations += other.invocations;
    consumer_wakeups += other.consumer_wakeups;
    consumer_cpu_ns += other.consumer_cpu_ns;
    batch_sizes.merge(other.batch_sizes);
    latency_s.merge(other.latency_s);
  }
};

/// How the producer signals the consumer.
enum class SignalPolicy {
  PerItem,   ///< Mutex/Sem style: notify on every item
  OnFull,    ///< BP style: notify only when the buffer reaches capacity
  Periodic,  ///< SPBP style: the consumer wakes on its own timer
};

/// A set of producer-consumer pairs on real threads.  Each pair owns a
/// bounded deque, a condvar and one consumer thread.
class ThreadBaseline {
 public:
  /// `period` is used only by SignalPolicy::Periodic.  `injector`, when
  /// non-null, must outlive the baseline; it injects producer stalls and
  /// bursts and slow-consumer handler delays so the baselines face the
  /// same chaos the PBPL host does.  `backend` selects the hand-off
  /// queue: the seed's mutex-guarded bounded buffer, or a lock-free ring
  /// whose pushes bypass the pair lock (BackendKind::SpscRing then
  /// requires one producer thread per pair; MpscSeg accepts any number).
  ThreadBaseline(std::size_t pairs, std::size_t buffer_capacity, SignalPolicy policy,
                 SimDuration period = milliseconds(10),
                 fault::FaultInjector* injector = nullptr,
                 queue::BackendKind backend = queue::BackendKind::Mutex);
  ~ThreadBaseline();

  ThreadBaseline(const ThreadBaseline&) = delete;
  ThreadBaseline& operator=(const ThreadBaseline&) = delete;

  /// Producer side; thread-safe per pair.  Blocks while the buffer is
  /// full (classic bounded-buffer backpressure).
  void produce(std::size_t pair);

  /// Stops and joins consumers, draining leftovers.  Idempotent.
  void stop();

  /// Counters; call after stop() for a consistent snapshot.  Merges the
  /// per-pair stats shards (no global stats lock exists).
  ThreadBaselineStats stats() const;

 private:
  struct Pair {
    std::size_t index = 0;
    std::mutex mutex;
    std::condition_variable consumer_cv;
    std::condition_variable producer_cv;
    std::unique_ptr<queue::Handoff<BaselineClock::time_point>> buffer;
    std::thread thread;
    /// This pair's stats shard, guarded by `mutex`.
    ThreadBaselineStats stats;
  };

  void consumer_loop(Pair& pair);
  void drain_locked(Pair& pair, std::unique_lock<std::mutex>& lock);

  const std::size_t capacity_;
  const SignalPolicy policy_;
  const SimDuration period_;
  fault::FaultInjector* injector_ = nullptr;
  std::atomic<bool> running_{true};
  std::vector<std::unique_ptr<Pair>> pairs_;
};

}  // namespace pcpc::runtime
