// Real-time trace replay: producer threads that deliver items at the
// trace's timestamps on the wall clock.
#pragma once

#include <chrono>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "pcpc/common/types.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::runtime {

/// Replays one trace per producer against the wall clock.  Each producer
/// runs on its own thread, sleeping until epoch + timestamp and then
/// calling `deliver(producer_index)`.  Timestamps past `horizon` are
/// skipped.  Destruction (or stop()) joins all threads.
class TraceReplayer {
 public:
  using Deliver = std::function<void(std::size_t producer)>;

  /// Starts replaying immediately.  `deliver` must be thread-safe.
  TraceReplayer(std::vector<trace::Trace> traces, SimDuration horizon, Deliver deliver);

  ~TraceReplayer();

  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  /// Blocks until every producer finished its trace (or the horizon).
  void wait();

  /// Requests early termination and joins.
  void stop();

 private:
  std::vector<trace::Trace> traces_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{true};
};

}  // namespace pcpc::runtime
