// CPU-time measurement for the real-thread host.
//
// The simulation host knows busy time exactly; the thread host measures
// it the way PowerTop does — from the OS's per-thread CPU clocks.
#pragma once

#include <cstdint>

namespace pcpc::runtime {

/// CPU nanoseconds consumed by the calling thread so far
/// (CLOCK_THREAD_CPUTIME_ID; 0 if unsupported).
std::int64_t thread_cpu_ns();

/// CPU nanoseconds consumed by the whole process so far.
std::int64_t process_cpu_ns();

/// Scoped CPU-time accumulator: adds the calling thread's CPU time spent
/// inside the scope to `sink` on destruction.
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(std::int64_t& sink) : sink_(sink), start_(thread_cpu_ns()) {}
  ~ScopedCpuTimer() { sink_ += thread_cpu_ns() - start_; }
  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  std::int64_t& sink_;
  std::int64_t start_;
};

}  // namespace pcpc::runtime
