// D2.3-style placement cost model: joules/item of a candidate
// consumer→core placement.
//
// The EXCESS D2.3 models price a concurrent data structure's operations
// in energy, not just time; applied to PBPL, a *placement* has an energy
// price built from three ingredients the library already calibrates:
//
//   1. the C-state ladder (pcpc::power::CStateModel): a core hosting
//      fewer wakeups sleeps in deeper states between them, and an empty
//      (parked) core sleeps in the deepest state indefinitely;
//   2. the state-dependent wakeup cost ω(state): waking from a deeper
//      state costs more (longer exit latency, colder caches), so ω is
//      scaled by the exit latency of the state the gap actually reached —
//      packing is only worth it when the deeper sleep pays for the
//      costlier exits;
//   3. the active service model (per-item / per-invocation CPU time) at
//      the calibrated active power.
//
// Everything here is a pure function of the predicted per-pair rates, so
// the controller's decisions replay deterministically on both hosts.
#pragma once

#include <cstddef>
#include <span>

#include "pcpc/common/types.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::fleet {

/// Calibration of the placement cost model.  The workload-shape fields
/// (slot, latency bound, buffer, service, overhead, cap) mirror
/// PbplConfig; hosts fill them from the live config so the model prices
/// the schedule the runtime actually executes.
struct CostModelParams {
  power::PowerModelParams power{};  ///< ω, active watts, C-state ladder
  power::ServiceModel service{};    ///< per-item / per-invocation CPU time
  SimDuration slot = milliseconds(10);         ///< slot size Δ
  SimDuration max_latency = milliseconds(10);  ///< latency bound L
  std::size_t buffer_items = 25;               ///< per-pair buffer B
  SimDuration manager_overhead = microseconds(3);
  double utilization_cap = 0.5;  ///< per-core busy-fraction feasibility cap
};

/// Predicted cost of one candidate placement.
struct PlacementCost {
  double watts = 0.0;            ///< fleet mean power under the model
  double joules_per_item = 0.0;  ///< watts / Σ r̂ (0 when the fleet is idle)
  double paid_wake_hz = 0.0;     ///< predicted paid wakeups/s, all cores
  std::size_t active_cores = 0;  ///< cores hosting at least one pair
  bool feasible = true;          ///< every core under the utilization cap
};

/// A pair's wakeup period under PBPL: its buffer fills in B/r̂ seconds,
/// clamped to [Δ, L] (a reservation can be no sooner than the next slot
/// and no later than the latency bound; a zero-rate pair polls at L).
SimDuration pair_wake_period(double rate_hz, const CostModelParams& params);

/// Expected busy fraction one pair contributes to its hosting core:
/// r̂·per_item plus the per-invocation overhead amortized over its wakeup
/// period.  This is the `utilization` input of core::assign_consumers.
double pair_utilization(double rate_hz, const CostModelParams& params);

/// State-dependent wakeup energy ω(state): the base ω scaled by the exit
/// latency of the deepest C-state an idle gap of `gap` reaches, relative
/// to the ladder's deepest state (floored so shallow wakes are never
/// free).  Monotone non-decreasing in `gap`.
double wakeup_cost_j(const CostModelParams& params, SimDuration gap);

/// Prices a full placement: `placement[i]` is pair i's core, `rates_hz[i]`
/// its predicted rate.  Per core, the most frequent pair sets the wakeup
/// cadence (core-mates latch onto it per the paper's w(τ)); the rest of
/// the cycle is one contiguous idle gap priced by the C-state ladder.
/// Cores hosting no pair sleep in the deepest state (the parked price).
PlacementCost evaluate_placement(std::span<const std::size_t> placement,
                                 std::size_t cores, std::span<const double> rates_hz,
                                 const CostModelParams& params);

}  // namespace pcpc::fleet
