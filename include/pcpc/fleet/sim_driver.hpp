// Deterministic fleet controller driver for the simulation host.
//
// Schedules one control tick every FleetConfig::control_period on the
// simulator's event loop: observe drained-item counters, plan, apply the
// planned migrations via PbplSystem::migrate_consumer.  Control ticks are
// management-plane events — they reschedule consumers but charge no busy
// time to any SimCore (the controller is assumed to run on a host core
// outside the modelled fleet, exactly like the per-core managers'
// bookkeeping overhead is priced separately via manager_overhead).
//
// Because the simulator, the controller and the cost model are all
// deterministic, a fig10-style sweep with the driver attached replays
// bit-identically from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fleet/controller.hpp"
#include "pcpc/sim/simulator.hpp"

namespace pcpc::fleet {

/// Attaches a FleetController to a simulated PBPL system.
class SimFleetDriver {
 public:
  /// `system` and `controller` must outlive the driver and match in pair
  /// and core counts.
  SimFleetDriver(sim::Simulator& simulator, core::PbplSystem& system,
                 FleetController& controller);

  SimFleetDriver(const SimFleetDriver&) = delete;
  SimFleetDriver& operator=(const SimFleetDriver&) = delete;

  /// Schedules the first control tick one period from now.  Ticks chain
  /// until stop() or the simulator stops dispatching.
  void start();

  /// Cancels the pending tick; call before PbplSystem::finish so the
  /// final drain is not re-planned.
  void stop();

  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void tick(SimTime now);

  sim::Simulator& simulator_;
  core::PbplSystem& system_;
  FleetController& controller_;
  std::vector<std::uint64_t> drained_;
  sim::EventId pending_ = 0;
  bool has_pending_ = false;
  std::uint64_t migrations_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace pcpc::fleet
