// The fleet placement controller (ROADMAP item 1).
//
// Closes the loop the paper leaves open: PBPL fixes the consumer→core
// mapping f : C → α at startup, but diurnal traffic means the mapping
// that is energy-optimal at peak wastes whole cores at trough.  The
// controller re-runs the paper's own machinery at fleet scope:
//
//   predict  — one h-window moving average per pair (the same estimator
//              the slot scheduler uses, fed from drained-item deltas);
//   place    — first-fit-decreasing packing under the utilization cap
//              (core::assign_consumers, AssignmentPolicy::Packed);
//   price    — the D2.3-style cost model (fleet/cost_model.hpp): joules
//              per item of current vs candidate placement;
//   decide   — migrate only when the candidate's predicted joules/item
//              beats the current placement by the hysteresis margin AND
//              the pair is outside its per-move cooldown.
//
// The hysteresis + cooldown pair is the no-flap guarantee the tests pin:
// any single pair moves at most once per cooldown window, no matter how
// the load oscillates.  The controller is a pure deterministic state
// machine — no clocks, no threads — so the sim host replays it exactly
// and the thread host drives it from its own fleet thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pcpc/common/types.hpp"
#include "pcpc/core/rate_predictor.hpp"
#include "pcpc/fleet/cost_model.hpp"

namespace pcpc::fleet {

/// How the fleet manages placement at runtime.
enum class FleetMode {
  kOff,      ///< no controller; the construction-time mapping is final
  kStatic,   ///< one load-aware placement at startup, never revisited
  kElastic,  ///< the live controller migrates and parks under load
};

/// Stable mode name (reports, CLI).
const char* fleet_mode_name(FleetMode mode);

/// Parses "off" / "static" / "elastic"; false on anything else.
bool parse_fleet_mode(const char* text, FleetMode* mode);

/// Controller tuning.
struct FleetConfig {
  FleetMode mode = FleetMode::kOff;

  /// Control-loop tick period (real time on the thread host, virtual
  /// time on the sim host).
  SimDuration control_period = milliseconds(100);

  /// h of the per-pair moving-average rate predictor.
  std::size_t predictor_window = 8;

  /// Minimum fractional joules/item improvement a candidate placement
  /// must predict before any migration happens.
  double hysteresis = 0.05;

  /// Minimum time between two migrations of the same pair.
  SimDuration cooldown = milliseconds(500);

  /// The energy price book (hosts overwrite the workload-shape fields
  /// from their live PbplConfig).
  CostModelParams cost{};
};

/// One planned consumer migration.
struct FleetMove {
  std::size_t pair = 0;
  std::size_t from = 0;
  std::size_t to = 0;
};

/// Outcome of one control tick.
struct FleetPlan {
  /// The placement after applying `moves` to the current one (pairs in
  /// cooldown keep their current core even when the candidate moved them).
  std::vector<std::size_t> target;
  std::vector<FleetMove> moves;
  PlacementCost current{};    ///< price of the placement as-is
  PlacementCost candidate{};  ///< price of the packed candidate
  bool accepted = false;      ///< candidate beat hysteresis (or fixed an overload)
};

/// Deterministic placement controller for `pairs` consumers on `cores`
/// cores.  Not thread-safe; each host drives it from one control thread
/// (or the simulator's single event loop).
class FleetController {
 public:
  FleetController(std::size_t pairs, std::size_t cores, FleetConfig config);

  std::size_t pairs() const { return last_items_.size(); }
  std::size_t cores() const { return cores_; }
  const FleetConfig& config() const { return config_; }

  /// One control tick's measurement: cumulative drained-item counts per
  /// pair (monotone).  The first call only anchors the baseline; later
  /// calls feed each pair's h-window with the interval rate.
  void observe(SimTime now, std::span<const std::uint64_t> drained_items);

  /// Current h-window rate predictions, items/s (0 before two observes).
  const std::vector<double>& rates() const { return rates_; }

  /// Plans this tick's placement given where every pair currently runs.
  /// Deterministic: identical observation history + current placement
  /// produce the identical plan.
  FleetPlan plan(SimTime now, std::span<const std::size_t> current);

  std::uint64_t observations() const { return observations_; }
  std::uint64_t planned_moves() const { return planned_moves_; }

 private:
  FleetConfig config_;
  std::size_t cores_;
  std::vector<core::MovingAverageRatePredictor> predictors_;
  std::vector<std::uint64_t> last_items_;
  std::vector<double> rates_;
  std::vector<SimTime> last_move_;
  SimTime last_observe_ = 0;
  bool anchored_ = false;
  std::uint64_t observations_ = 0;
  std::uint64_t planned_moves_ = 0;
};

}  // namespace pcpc::fleet
