// Producer-rate prediction.
//
// Section V-C, "Prediction": each consumer predicts the upcoming production
// rate from the recent past.  The paper uses an h-window moving average for
// its low overhead; its future-work section proposes a Kalman filter for
// better accuracy — both are provided here and compared in the ablation
// bench.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "pcpc/common/moving_average.hpp"

namespace pcpc::core {

/// Interface for one consumer's rate estimator.  Rates are items/second.
class RatePredictor {
 public:
  virtual ~RatePredictor() = default;

  /// Records the rate observed over the last inter-invocation interval:
  /// r_j = |γ(τ_{j-1}, τ_j)| / (τ_j − τ_{j-1}).
  virtual void observe(double rate_hz) = 0;

  /// Predicted upcoming rate r̂; never negative.  0 before any observation.
  virtual double predict() const = 0;

  /// Forgets all history.
  virtual void reset() = 0;

  /// Human-readable estimator name for reports.
  virtual std::string name() const = 0;
};

/// The paper's estimator: r̂_{i+1} = (Σ_{j=i-h+1..i} r_j) / h.
class MovingAverageRatePredictor final : public RatePredictor {
 public:
  /// `window` is the paper's h.
  explicit MovingAverageRatePredictor(std::size_t window);

  void observe(double rate_hz) override;
  double predict() const override;
  void reset() override;
  std::string name() const override;

  std::size_t window() const { return avg_.window(); }

 private:
  MovingAverage avg_;
};

/// Scalar Kalman filter over the rate with a random-walk process model:
///   x_k = x_{k-1} + w,  w ~ N(0, q)     (rate drifts)
///   z_k = x_k + v,      v ~ N(0, r)     (noisy per-interval measurement)
/// Tracks rate changes faster than a moving average while smoothing burst
/// noise (the paper's proposed future-work estimator).
class KalmanRatePredictor final : public RatePredictor {
 public:
  /// `process_noise` (q) controls how fast the estimate can drift;
  /// `measurement_noise` (r) how much each observation is trusted.
  KalmanRatePredictor(double process_noise = 400.0, double measurement_noise = 4000.0);

  void observe(double rate_hz) override;
  double predict() const override;
  void reset() override;
  std::string name() const override;

  /// Current error covariance; exposed for tests.
  double covariance() const { return p_; }

 private:
  double q_;
  double r_;
  double x_ = 0.0;
  double p_ = 0.0;
  bool initialized_ = false;
};

/// Exponentially weighted moving average: r̂ ← α·r + (1−α)·r̂.
/// O(1) state (no window buffer) and geometric forgetting — the standard
/// middle ground between the paper's moving average and its proposed
/// Kalman filter.
class EwmaRatePredictor final : public RatePredictor {
 public:
  /// `alpha` ∈ (0, 1]: weight of the newest observation.
  explicit EwmaRatePredictor(double alpha = 0.25);

  void observe(double rate_hz) override;
  double predict() const override;
  void reset() override;
  std::string name() const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double estimate_ = 0.0;
  bool initialized_ = false;
};

/// Which estimator a PBPL system should instantiate per consumer.
enum class PredictorKind { MovingAverage, Kalman, Ewma };

/// Factory used by the PBPL system configuration.
std::unique_ptr<RatePredictor> make_predictor(PredictorKind kind, std::size_t window);

}  // namespace pcpc::core
