// PbplConfig parsing and printing: key=value pairs from command lines or
// config files, so tools and experiments can be driven without recompiling.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "pcpc/core/config.hpp"

namespace pcpc::core {

/// Applies one "key=value" assignment to `config`.  Returns false and
/// fills `error` on an unknown key or malformed value.
///
/// Keys (durations are in microseconds, booleans are 0/1/true/false):
///   cores, slot_size_us, max_latency_us, base_buffer, pool_segment,
///   predictor (ma|kalman|ewma), predictor_window, latching,
///   dynamic_resize, emergency_borrow, latency_guard, fill_tolerance,
///   resize_headroom, manager_overhead_us, assignment (rr|packed|balanced),
///   utilization_cap, service_per_item_us, service_per_invocation_us,
///   wakeup_cost_uj, per_item_cost_uj, per_invocation_cost_uj
bool apply_option(PbplConfig& config, const std::string& assignment, std::string* error);

/// Applies a list of assignments; stops at the first error.
bool apply_options(PbplConfig& config, std::span<const std::string> assignments,
                   std::string* error);

/// Parses a config file: one key=value per line, '#' comments, blank
/// lines ignored.  Returns nullopt and fills `error` on failure.
std::optional<PbplConfig> load_config_file(const std::string& path, std::string* error);

/// Renders the configuration as the same key=value lines apply_option
/// accepts (a round-trippable dump).
std::string describe(const PbplConfig& config);

}  // namespace pcpc::core
