// The PBPL consumer (Section V-C).
//
// Autonomous by design: after each activation it (1) predicts the
// producer's upcoming rate, (2) reserves the ρ-minimizing slot — latching
// onto an already-scheduled wakeup when that is cheaper per item — and
// (3) resizes its elastic buffer to the predicted batch, borrowing from or
// returning space to the global pool.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "pcpc/common/latency_recorder.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/core/core_manager.hpp"
#include "pcpc/core/latency_guard.hpp"
#include "pcpc/core/rate_predictor.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/queue/elastic_buffer.hpp"
#include "pcpc/queue/handoff.hpp"

namespace pcpc::core {

/// Counters one consumer accumulates over a run.
struct ConsumerStats {
  std::uint64_t items = 0;               ///< items consumed
  std::uint64_t invocations = 0;         ///< batches processed (paper's k_i)
  std::uint64_t overflow_wakeups = 0;    ///< unscheduled invocations raised
  std::uint64_t emergency_borrows = 0;   ///< overflows absorbed by the pool
  std::uint64_t reservations = 0;        ///< slots reserved
  std::uint64_t latched_reservations = 0;  ///< reservations on occupied slots
  std::uint64_t latency_violations = 0;  ///< items past their bound (guard on)
  OnlineStats batch_sizes;               ///< items per invocation
  LatencyRecorder latency_s;             ///< item response times, seconds
};

/// One producer-consumer pair's consumer on the simulation host.
class PbplConsumer final : public Invocable {
 public:
  /// Registers itself with `manager` and takes a B0-sized hand-off queue
  /// (backend per config.queue_backend) from `pool`.  `config` must
  /// outlive the consumer.
  PbplConsumer(ConsumerId id, CoreManager& manager, queue::BufferPool<SimTime>& pool,
               const PbplConfig& config);

  /// Makes the initial reservation; call once at experiment start.
  void start(SimTime now);

  /// Producer side: one item arrives (its timestamp is the payload, used
  /// for latency accounting).  A full buffer first tries an emergency
  /// pool borrow, then raises an unscheduled wakeup.
  void produce(SimTime now);

  // Invocable:
  SimDuration on_invoked(SimTime now, bool scheduled) override;
  bool has_pending() const override { return !buffer_->empty(); }

  ConsumerId id() const { return id_; }
  const ConsumerStats& stats() const { return stats_; }
  const queue::Handoff<SimTime>& buffer() const { return *buffer_; }
  const RatePredictor& predictor() const { return *predictor_; }

  /// The adaptive latency guard; present only when config.latency_guard.
  const LatencyGuard* guard() const { return guard_ ? &*guard_ : nullptr; }

  /// Chaos harness hook: slow-handler faults inflate this consumer's
  /// virtual service time.  Null (the default) disables injection; the
  /// injector must outlive the consumer.
  void set_fault_injector(fault::FaultInjector* injector) { injector_ = injector; }

  /// Chaos harness hook: shrinks the buffer toward one segment so
  /// pool-pressure faults can seize the freed capacity.  Bg = B0·M means
  /// a freshly started system has no free segments at all — external
  /// memory pressure has to come out of the consumers' own allotment.
  void squeeze_buffer() { buffer_->resize(1); }

  /// Fleet migration: moves this consumer to `next`'s core.  The buffer
  /// travels untouched (no items copied, dropped or reordered — the
  /// hand-off queue is core-agnostic), the old reservation is cancelled
  /// and a fresh one is made on the destination's slot track, so
  /// `produced == items` conservation holds across the move by
  /// construction.
  void rebind(CoreManager& next, SimTime now);

 private:
  void make_reservation(SimTime now);

  ConsumerId id_;
  CoreManager* manager_;
  queue::BufferPool<SimTime>& pool_;
  const PbplConfig& config_;
  std::unique_ptr<queue::Handoff<SimTime>> buffer_;
  std::unique_ptr<RatePredictor> predictor_;
  std::optional<LatencyGuard> guard_;
  fault::FaultInjector* injector_ = nullptr;
  SimTime last_invocation_ = 0;
  std::size_t last_batch_ = 1;
  ConsumerStats stats_;
  /// Positional 1-in-N span sampling (the buffer carries timestamps
  /// only): admissions counted on produce, drained positions on invoke.
  /// Single-threaded by the simulation contract, so plain counters.  The
  /// next_ cursors replace a per-item `seq % N` with one compare — this
  /// sits on the gated sim hot path (bench/obs_overhead).
  std::uint64_t span_produce_seq_ = 0;
  std::uint64_t span_next_produce_ = 0;
  std::uint64_t span_drain_seq_ = 0;
  std::uint64_t span_next_drain_ = 0;
};

}  // namespace pcpc::core
