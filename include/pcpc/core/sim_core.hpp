// A simulated CPU core: couples the DES clock with a power timeline.
//
// Implementations call run_for(busy) when they execute work "now"; the
// core wakes if it was idle (paying the paper's ω exactly once), stays
// awake across overlapping work (the latching discount), and goes back to
// idle via a scheduled sleep event once the busy window drains — the
// race-to-idle policy from Section II.
#pragma once

#include "pcpc/common/types.hpp"
#include "pcpc/power/core_timeline.hpp"
#include "pcpc/sim/simulator.hpp"

namespace pcpc::core {

/// One core's activity manager on the simulation host.
class SimCore {
 public:
  /// Binds to the simulator whose clock drives this core.
  explicit SimCore(sim::Simulator& simulator, SimTime start = 0);

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  /// Executes `busy` nanoseconds of work starting at the simulator's
  /// current time.  Wakes the core when idle; extends the current busy
  /// window when already active.  Returns true when this call paid a
  /// wakeup (the core was idle).
  bool run_for(SimDuration busy);

  /// True while inside a busy window.
  bool is_busy() const { return simulator_.now() < busy_until_; }

  /// End of the current busy window (past time when idle).
  SimTime busy_until() const { return busy_until_; }

  /// Paid wakeups so far.
  std::uint64_t wakeups() const { return timeline_.wakeups(); }

  /// Closes the timeline at `end`; the core must be idle by then.
  void finalize(SimTime end);

  /// The finalized activity record (valid after finalize()).
  const power::CoreTimeline& timeline() const { return timeline_; }

  /// Moves the finalized timeline out (for result aggregation).
  power::CoreTimeline take_timeline() { return std::move(timeline_); }

 private:
  void schedule_sleep();
  void on_sleep(SimTime t);

  sim::Simulator& simulator_;
  power::CoreTimeline timeline_;
  SimTime busy_until_ = 0;
  bool sleep_scheduled_ = false;
};

}  // namespace pcpc::core
