// Slot reservation table kept by each core manager.
//
// Section V-B: the core manager "accepts reservation requests for specific
// slots made by the consumers … maintains a list of consumers to invoke at
// every slot, and supports deregistering".  Memory stays small because only
// near-future reservations exist — each consumer holds at most one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "pcpc/core/slot_track.hpp"

namespace pcpc::core {

/// Identifies a consumer within one PBPL system.
using ConsumerId = std::uint32_t;

/// Sorted slot → registered-consumers map with the backtracking helper the
/// consumer's reservation search relies on.
class ReservationTable {
 public:
  /// Registers `consumer` for slot `slot`.  A consumer may hold at most
  /// one reservation; registering again moves it (implicit deregister).
  void reserve(ConsumerId consumer, SlotIndex slot);

  /// Deregisters the consumer's current reservation, if any.
  void cancel(ConsumerId consumer);

  /// Slot the consumer is currently registered for.
  std::optional<SlotIndex> reservation_of(ConsumerId consumer) const;

  /// True when at least one consumer is registered for `slot`.
  bool slot_reserved(SlotIndex slot) const;

  /// Consumers registered for `slot` in registration order.
  std::vector<ConsumerId> consumers_at(SlotIndex slot) const;

  /// Removes and returns the consumers registered for `slot`; used by the
  /// core manager when the slot fires.
  std::vector<ConsumerId> take_slot(SlotIndex slot);

  /// Earliest reserved slot ≥ `from`; the core manager's "next slot with
  /// at least one reservation" (Section V-B).
  std::optional<SlotIndex> next_reserved(SlotIndex from) const;

  /// Latest reserved slot ≤ `from` and ≥ `floor`; the core manager's
  /// helper that lets consumer backtracking "consume one iteration"
  /// (Section V-C, Reservation).
  std::optional<SlotIndex> prev_reserved(SlotIndex from, SlotIndex floor) const;

  /// Drops every reservation.
  void clear() {
    by_slot_.clear();
    by_consumer_.clear();
  }

  /// Number of live reservations (consumers, not slots).
  std::size_t size() const { return by_consumer_.size(); }

  bool empty() const { return by_consumer_.empty(); }

 private:
  std::map<SlotIndex, std::vector<ConsumerId>> by_slot_;
  std::map<ConsumerId, SlotIndex> by_consumer_;
};

}  // namespace pcpc::core
