// The reservation cost function ρ and the backtracking slot search.
//
// Section V-C, "Reservation" (Equation 8):
//
//   ρ(s_j) = ( w(s_j) + e(r̂·(s_j − s_i)) ) / ( r̂·(s_j − s_i) )
//
// where w(s_j) is the wakeup cost ω if the candidate slot has no other
// reservation (the core would have to be woken for us alone) and 0 if it
// does (we latch onto an already-scheduled wakeup), and e(x) is the energy
// of processing x items.  ρ is energy *per item*, which lets a consumer
// trade "latch early onto someone else's slot with a small batch" against
// "pay a fresh wakeup later with a full batch".
//
// The search starts at the buffer-fill slot g(s_i + B/r̂) and backtracks
// through reserved slots while ρ keeps decreasing; between two reserved
// slots no unreserved slot can win (for unreserved slots ρ(n) = ω/n + c
// strictly falls with the batch size n, so later is always better), which
// is why the paper calls the backtracking a constant-time operation given
// the core manager's prev_reserved helper.
#pragma once

#include <optional>

#include "pcpc/core/reservation.hpp"
#include "pcpc/core/slot_track.hpp"

namespace pcpc::core {

/// Energy constants the consumer's decision logic needs.  These mirror the
/// power model (pcpc::power) but are deliberately a separate, tiny struct:
/// the paper's consumers are autonomous and only know "a wakeup costs ω,
/// an item costs e" — they never see the global power model.
struct EnergyCosts {
  /// ω — energy of one core wakeup, joules.
  double wakeup_j = 8e-6;

  /// Marginal energy of processing one item, joules.
  double per_item_j = 3.3e-6;

  /// Fixed energy of one batch invocation (scheduler + synchronization
  /// work paid regardless of the batch size), joules.  Part of e(x) =
  /// per_invocation_j + x·per_item_j; without it the per-item cost of a
  /// latched slot would be constant in the batch size and a consumer
  /// would happily latch onto arbitrarily early slots, shredding its
  /// batches into fragments.
  double per_invocation_j = 2.2e-6;

  /// e(x): energy of processing a batch of x items (Equation 8's e).
  double batch_energy_j(double items) const {
    return per_invocation_j + per_item_j * items;
  }
};

/// Inputs of one reservation decision.
struct SlotQuery {
  SimTime now = 0;                ///< current invocation time (s_i)
  double predicted_rate_hz = 0.0; ///< r̂_{i+1}
  std::size_t buffer_capacity = 0;  ///< B, in items
  SimDuration max_latency = 0;    ///< L — the pair's response-latency bound

  /// Fraction of B the search may *plan* to exceed before flooring to a
  /// slot: the horizon is g(now + tolerance·B/r̂).  Slightly above 1
  /// avoids the worst quantization case (a fill time just under a whole
  /// number of slots would otherwise halve the batch); the dynamic-resize
  /// headroom grows the buffer to cover the planned excess.
  double fill_tolerance = 1.0;
};

/// Result of the slot search.
struct SlotChoice {
  SlotIndex slot = 0;      ///< chosen reservation slot
  double cost = 0.0;       ///< ρ at that slot (J/item; 0 when r̂ = 0)
  bool latched = false;    ///< true when the slot already had a reservation
  double expected_items = 0.0;  ///< r̂·(s_j − s_i)
};

/// Evaluates ρ for a candidate slot (Equation 8).  `expected_items` must
/// be positive.
double rho(double expected_items, bool slot_already_reserved, const EnergyCosts& costs);

/// Chooses the reservation slot for a consumer.
///
/// Candidates are bounded below by the first future slot and above by
/// g(now + min(B/r̂, 1/r̂ + L)): the buffer-fill time, additionally capped
/// so the *first* predicted item (arriving ≈ now + 1/r̂) is still consumed
/// within its latency bound L.  When r̂ = 0 the consumer free-rides on the
/// latest reserved slot within the latency horizon, or polls at the
/// horizon when none exists.
SlotChoice choose_slot(const SlotTrack& track, const ReservationTable& reservations,
                       const SlotQuery& query, const EnergyCosts& costs);

/// Ablation variant: the buffer-fill slot g(now + min(B/r̂, 1/r̂ + L))
/// with no latching consideration — what a periodic batch consumer would
/// pick if slots were aligned but reservations invisible.  Used by the
/// `latching=false` configuration to quantify the latching contribution.
SlotChoice fill_slot(const SlotTrack& track, const SlotQuery& query,
                     const EnergyCosts& costs);

}  // namespace pcpc::core
