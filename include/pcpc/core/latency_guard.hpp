// Adaptive latency enforcement — the paper's future-work direction of a
// "generic resource-aware producer-consumer [where] power, memory, CPU
// overhead, throughput, timing constraints … are taken into account
// simultaneously" (Section VIII), instantiated for the timing dimension.
//
// The base algorithm enforces the response bound L only against the
// *predicted* rate; when the predictor lags a rate drop, items can sit
// past their deadline.  The guard is a multiplicative-decrease /
// additive-ish-increase controller on the reservation horizon: a violated
// batch halves the horizon scale (wake sooner), a clean batch lets it
// creep back toward 1 — trading a little power for a hard-won latency
// profile, and exposing exactly that dial.
#pragma once

#include <cstdint>

#include "pcpc/common/types.hpp"

namespace pcpc::core {

/// Per-consumer feedback controller on the slot-search horizon.
class LatencyGuard {
 public:
  /// `bound` is the consumer's maximum acceptable response latency L.
  /// `shrink` (< 1) is applied on a violated batch; `grow` (> 1) on a
  /// clean one; the scale is clamped to [min_scale, 1].
  explicit LatencyGuard(SimDuration bound, double shrink = 0.5, double grow = 1.05,
                        double min_scale = 0.1);

  /// Records one drained item's latency; call for every item in a batch.
  void observe(SimDuration latency);

  /// Closes the current batch: applies shrink/grow based on whether any
  /// item in it violated the bound.
  void end_batch();

  /// Multiplier for the fill horizon (≤ 1; smaller = wake sooner).
  double horizon_scale() const { return scale_; }

  /// Items that exceeded the bound so far.
  std::uint64_t violations() const { return violations_; }

  /// Batches containing at least one violation.
  std::uint64_t violated_batches() const { return violated_batches_; }

  SimDuration bound() const { return bound_; }

 private:
  SimDuration bound_;
  double shrink_;
  double grow_;
  double min_scale_;
  double scale_ = 1.0;
  bool batch_violated_ = false;
  std::uint64_t violations_ = 0;
  std::uint64_t violated_batches_ = 0;
};

}  // namespace pcpc::core
