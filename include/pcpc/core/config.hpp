// Configuration of a PBPL (periodic batch processing with latching) system.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pcpc/core/assignment.hpp"
#include "pcpc/core/cost.hpp"
#include "pcpc/core/rate_predictor.hpp"
#include "pcpc/power/energy_ledger.hpp"
#include "pcpc/queue/backend.hpp"

namespace pcpc::core {

/// What the thread host does when a producer finds its buffer full and
/// no pool segment can absorb the item (Section V-A's "a buffer overflow
/// can occur at any time", hardened for overload).
enum class OverflowPolicy {
  /// Raise an unscheduled manager wakeup and block the producer until
  /// the forced drain makes space.  Lossless; producers feel
  /// backpressure.  This is the paper's (and the seed's) behaviour.
  Block,
  /// Evict the oldest buffered item to admit the new one.  Bounded
  /// producer latency; freshest data wins.  Evictions are counted.
  DropOldest,
  /// Reject the incoming item.  Bounded producer latency; in-flight
  /// data wins.  Rejections are counted.
  DropNewest,
  /// Borrow pool segments as aggressively as needed; if the pool is
  /// truly empty, fall back to Block (never drops).
  EmergencyBorrow,
};

/// All tunables of the PBPL algorithm and its host.  Defaults follow the
/// paper's evaluation setup (Section VI-A) where it specifies one, and a
/// documented calibration otherwise.
struct PbplConfig {
  /// Number of cores A; consumers are assigned round-robin (the paper's
  /// f: C → α mapping with disjoint consumer sets per core).
  std::size_t cores = 2;

  /// How consumers map onto cores (the paper's f : C → α).
  AssignmentPolicy assignment = AssignmentPolicy::RoundRobin;

  /// Per-core utilization cap for AssignmentPolicy::Packed.
  double utilization_cap = 0.5;

  /// Slot size Δ.  0 selects the paper's default: the minimum of the
  /// pairs' maximum acceptable response latencies.
  SimDuration slot_size = 0;

  /// Per-pair maximum acceptable response latency L (uniform across
  /// pairs; the formal model allows per-pair values, the evaluation
  /// uses one).
  SimDuration max_latency = milliseconds(10);

  /// Initial per-consumer buffer capacity B0, items.  The global pool is
  /// Bg = B0 · M (Section V-C).
  std::size_t base_buffer = 25;

  /// Granularity (items) of the segments capacity moves in when buffers
  /// resize; the "linked list" chunk size.
  std::size_t pool_segment = 5;

  /// Moving-average window h of the rate predictor.
  std::size_t predictor_window = 8;

  /// Which rate estimator consumers use (Kalman is the paper's proposed
  /// future-work upgrade).
  PredictorKind predictor = PredictorKind::MovingAverage;

  /// Disable to ablate consumer latching (reservations ignore other
  /// consumers' slots).
  bool latching = true;

  /// Disable to ablate dynamic buffer resizing (buffers stay at B0).
  bool dynamic_resize = true;

  /// When a push finds the buffer full, borrow more pool segments before
  /// raising an unscheduled wakeup ("consumers may lend each other buffer
  /// space … and not cause new wakeups", Section I).
  bool emergency_borrow = true;

  /// Thread host: what a producer does when its buffer is full and the
  /// pre-emptive borrow (emergency_borrow above) could not make space.
  OverflowPolicy overflow_policy = OverflowPolicy::Block;

  /// Which concurrent queue carries the producer→consumer hand-off in
  /// both hosts: the seed's mutex-guarded elastic buffer, the Torquati
  /// SPSC ring, or the Jiffy-style MPSC segment queue (see
  /// pcpc/queue/backend.hpp for the contracts).
  queue::BackendKind queue_backend = queue::BackendKind::Mutex;

  /// Varlen payload plane (ROADMAP item 1).  When nonzero, producers may
  /// carry variable-size byte payloads: each consumer grows an in-ring
  /// varlen record plane (see pcpc/queue/varlen.hpp) next to its item
  /// buffer, `payload_max_bytes` bounds one record's payload, and the
  /// thread host's produce_record/reserve_record APIs are armed.  0
  /// disables the plane (the seed behaviour; no storage is allocated).
  std::uint32_t payload_max_bytes = 0;

  /// Capacity of each consumer's varlen ring, in record footprint bytes
  /// (the byte-granular analogue of base_buffer).  0 derives the
  /// default: base_buffer max-size records.
  std::size_t payload_ring_bytes = 0;

  /// Thread host: per-core deadline watchdog.  When a manager services a
  /// slot more than `watchdog_factor · Δ` after the slot's start (the
  /// thread was stalled by a slow handler, the scheduler, or fault
  /// injection), it escalates: every consumer on the core is drained
  /// immediately and rescheduled, and the overrun is counted as a missed
  /// deadline.  0 disables the watchdog.
  double watchdog_factor = 0.0;

  /// Enable the adaptive latency guard (Section VIII future work): a
  /// feedback controller that shrinks the reservation horizon after a
  /// batch containing deadline violations and lets it recover otherwise.
  bool latency_guard = false;

  /// Slot-search fill tolerance (SlotQuery::fill_tolerance): how far past
  /// the nominal buffer-fill time the reservation may plan, relying on
  /// the resize headroom to cover the excess.  1.0 reproduces the paper's
  /// exact g(s_i + B/r̂) start.
  double fill_tolerance = 1.15;

  /// Headroom multiplier applied when resizing the buffer to the
  /// predicted batch (B_i = headroom · r̂·Δt).  The paper sizes to the
  /// exact prediction; a moving average persistently underestimates a
  /// bursty producer, so a modest cushion converts overflow wakeups back
  /// into scheduled ones at a small memory cost.
  double resize_headroom = 1.25;

  /// CPU time the core manager itself spends per scheduled wakeup
  /// (reservation bookkeeping, consumer activation).
  SimDuration manager_overhead = microseconds(3);

  /// How long consumer work takes (per item / per invocation).
  power::ServiceModel service{};

  /// Energy constants of the reservation cost function ρ.
  EnergyCosts costs{};

  /// Resolved slot size: explicit value, or the paper's default.
  SimDuration resolved_slot_size() const {
    return slot_size > 0 ? slot_size : max_latency;
  }
};

}  // namespace pcpc::core
