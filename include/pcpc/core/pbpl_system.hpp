// Assembly of a full PBPL system (Figure 5): A cores, each with a core
// manager, hosting M producer-consumer pairs over a shared buffer pool.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "pcpc/common/latency_recorder.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/core/config.hpp"
#include "pcpc/core/consumer.hpp"
#include "pcpc/core/core_manager.hpp"
#include "pcpc/core/sim_core.hpp"
#include "pcpc/power/core_timeline.hpp"
#include "pcpc/sim/simulator.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::core {

/// Aggregated outcome of one PBPL run.
struct PbplResult {
  /// Finalized activity of every core (input to the energy ledger).
  std::vector<power::CoreTimeline> timelines;

  std::uint64_t scheduled_wakeups = 0;   ///< slot-triggered core activations
  std::uint64_t overflow_wakeups = 0;    ///< unscheduled (buffer-full) ones
  std::uint64_t paid_wakeups = 0;        ///< actual idle→active transitions
  std::uint64_t items = 0;               ///< total items consumed
  std::uint64_t invocations = 0;         ///< total consumer activations
  std::uint64_t reservations = 0;        ///< total slots reserved
  std::uint64_t latched_reservations = 0;  ///< reservations that latched
  std::uint64_t emergency_borrows = 0;   ///< overflows absorbed by the pool
  std::uint64_t latency_violations = 0;  ///< items past their bound (guard on)

  OnlineStats batch_sizes;       ///< items per invocation
  LatencyRecorder latency_s;     ///< item response times, seconds
  OnlineStats buffer_capacity;   ///< capacity samples → "average buffer size"

  /// Fraction of raised overflows the algorithm avoided relative to the
  /// total demand (the paper's "overflow conversion" framing needs a BP
  /// run for comparison; this is the PBPL-side count).
  double total_wakeups() const {
    return static_cast<double>(scheduled_wakeups + overflow_wakeups);
  }
};

/// Owns the simulator-side objects of one PBPL deployment.
class PbplSystem {
 public:
  /// Builds A cores with managers plus M consumers mapped onto them by
  /// config.assignment.  `utilization` (one expected core-share per
  /// consumer) is needed by the Packed/RateBalanced policies; RoundRobin
  /// ignores it.
  PbplSystem(sim::Simulator& simulator, std::size_t consumers, const PbplConfig& config,
             std::span<const double> utilization = {});

  /// Number of consumers M.
  std::size_t consumer_count() const { return consumers_.size(); }

  PbplConsumer& consumer(std::size_t i) { return *consumers_.at(i); }
  CoreManager& manager(std::size_t core) { return *managers_.at(core); }
  std::size_t core_count() const { return cores_.size(); }

  /// The shared global pool Bg; exposed so the chaos harness can apply
  /// pool pressure (seize_segments) before a run.
  queue::BufferPool<SimTime>& pool() { return pool_; }

  /// Current core of every pair (index i → core hosting consumer i).
  const std::vector<std::size_t>& placement() const { return mapping_; }

  /// Fleet migration: rebinds `pair`'s consumer onto `core`'s manager at
  /// the current virtual time.  The pair's buffered items travel with it;
  /// no-op when the pair already lives there.
  void migrate_consumer(std::size_t pair, std::size_t core);

  /// Makes every consumer's initial reservation.  Call once, before
  /// running the simulator.
  void start();

  /// Ends the experiment: drains leftovers, lets pending busy windows
  /// close, finalizes the core timelines and aggregates every counter.
  PbplResult finish(SimTime end);

 private:
  sim::Simulator& simulator_;
  const PbplConfig config_;
  queue::BufferPool<SimTime> pool_;
  std::vector<std::unique_ptr<SimCore>> cores_;
  std::vector<std::unique_ptr<CoreManager>> managers_;
  std::vector<std::unique_ptr<PbplConsumer>> consumers_;
  std::vector<std::size_t> mapping_;
};

/// Convenience one-call experiment: replays `traces` (one per pair) for
/// `horizon`, runs the PBPL system and returns the aggregated result.
PbplResult run_pbpl(std::span<const trace::Trace> traces, SimDuration horizon,
                    const PbplConfig& config);

}  // namespace pcpc::core
