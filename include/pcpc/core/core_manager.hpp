// The core manager: one per CPU core (Section V-B).
//
// It owns the core's slot track and reservation table, wakes the
// registered consumers when a reserved slot fires, and afterwards
// schedules the *next slot with at least one reservation* — never an
// empty slot, "ensuring that the CPU is not activated needlessly".
#pragma once

#include <cstdint>
#include <map>

#include "pcpc/core/reservation.hpp"
#include "pcpc/core/sim_core.hpp"
#include "pcpc/core/slot_track.hpp"
#include "pcpc/sim/simulator.hpp"

namespace pcpc::core {

/// What the core manager needs from a consumer.  PbplConsumer implements
/// this; tests can substitute fakes.
class Invocable {
 public:
  virtual ~Invocable() = default;

  /// Activation: drain the buffer, update predictions, reserve the next
  /// slot (Figure 7's consumer pipeline).  Returns the CPU time consumed.
  /// `scheduled` is false for overflow-triggered invocations.
  virtual SimDuration on_invoked(SimTime now, bool scheduled) = 0;

  /// True when the consumer still has unprocessed buffered items.
  virtual bool has_pending() const = 0;
};

/// Per-core slot scheduler and consumer activator (simulation host).
class CoreManager {
 public:
  /// `core_id` labels this core in telemetry (pcpc::obs attribution).
  CoreManager(sim::Simulator& simulator, SimCore& core, SlotTrack track,
              SimDuration overhead_per_wakeup, std::uint16_t core_id = 0);

  CoreManager(const CoreManager&) = delete;
  CoreManager& operator=(const CoreManager&) = delete;

  /// Adds a consumer hosted on this core.  Ids must be unique.
  void register_consumer(ConsumerId id, Invocable* consumer);

  /// Removes a consumer (fleet migration): cancels its reservation and
  /// re-targets — or cancels — the pending wakeup, so a core left with no
  /// reservations schedules nothing and simply goes idle.
  void unregister_consumer(ConsumerId id);

  /// Books `consumer` for `slot` (moving any previous reservation) and
  /// re-targets the pending wakeup if this slot is now the earliest.
  void reserve(ConsumerId consumer, SlotIndex slot);

  /// Overflow path: invoke one consumer right now, outside any slot.
  /// Charges the core the consumer's batch time (plus manager overhead);
  /// the wakeup is only *paid* if the core was idle.
  void unscheduled_invoke(ConsumerId consumer, SimTime now);

  /// Final sweep at the end of an experiment: invokes every consumer
  /// with pending items, then clears all reservations and pending events.
  void drain_all(SimTime now);

  const SlotTrack& track() const { return track_; }
  const ReservationTable& reservations() const { return reservations_; }
  SimCore& core() { return core_; }

  /// Slot wakeups executed (the paper's internally counted "upper bound"
  /// scheduled wakeups).
  std::uint64_t scheduled_wakeups() const { return scheduled_wakeups_; }

  /// Consumer activations performed at slot wakeups.
  std::uint64_t slot_invocations() const { return slot_invocations_; }

  /// Overflow invocations routed through this manager.
  std::uint64_t unscheduled_invocations() const { return unscheduled_invocations_; }

  /// Consumers hosted on this core.
  std::size_t consumer_count() const { return consumers_.size(); }

  /// Telemetry label of this core.
  std::uint16_t core_id() const { return core_id_; }

 private:
  void ensure_scheduled();
  void on_slot_event(SimTime t);

  sim::Simulator& simulator_;
  SimCore& core_;
  SlotTrack track_;
  SimDuration overhead_;
  std::uint16_t core_id_;
  ReservationTable reservations_;
  std::map<ConsumerId, Invocable*> consumers_;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  SlotIndex pending_slot_ = 0;
  std::uint64_t scheduled_wakeups_ = 0;
  std::uint64_t slot_invocations_ = 0;
  std::uint64_t unscheduled_invocations_ = 0;
};

}  // namespace pcpc::core
