// Consumer-to-core assignment: the paper's f : C → α mapping.
//
// Section IV-B defines the mapping but the paper never optimizes it —
// its evaluation implicitly spreads consumers across both cores.  The
// mapping interacts strongly with latching (consumers can only share
// wakeups with core-mates) and with idle depth (an unused core sleeps in
// the deepest state indefinitely), so this module provides the policies
// an operator would actually choose between, plus the paper's implicit
// default.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pcpc::core {

/// How consumers are placed onto cores.
enum class AssignmentPolicy {
  /// Consumer i on core i mod A — the paper's implicit spread.
  RoundRobin,

  /// First-fit-decreasing bin packing by expected utilization: fills as
  /// few cores as possible subject to a per-core utilization cap, so
  /// surplus cores never wake at all.  Maximizes both latching density
  /// and deep-idle residency.
  Packed,

  /// Greedy longest-processing-time balance: consumers sorted by rate,
  /// each placed on the currently least-loaded core.  Minimizes the
  /// per-core peak load (latency-friendly) at some latching cost.
  RateBalanced,
};

/// Computes the consumer→core mapping.
///
/// `utilization` is each consumer's expected core utilization share in
/// [0, 1] (e.g. rate × per-item service time); required for Packed and
/// RateBalanced, ignored by RoundRobin (pass {}).  `utilization_cap`
/// bounds a packed core's total share; Packed opens a new core when the
/// cap would be exceeded (and always uses at most `cores`).
std::vector<std::size_t> assign_consumers(std::size_t consumers, std::size_t cores,
                                          AssignmentPolicy policy,
                                          std::span<const double> utilization = {},
                                          double utilization_cap = 0.5);

/// Number of distinct cores an assignment actually uses.
std::size_t cores_used(std::span<const std::size_t> assignment);

}  // namespace pcpc::core
