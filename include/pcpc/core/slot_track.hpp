// The slot track: time interpreted as a track with periodic slots.
//
// Section V-A: "our algorithm interprets time as a track with periodic
// slots … based on the metaphor of a race track with markings every X
// meters", where X is the slot size Δ.  The default Δ is the minimum of
// all maximum acceptable response latencies of the producer-consumer
// pairs.  The function g(τ) maps any instant to the closest slot start at
// or before it (Equation 6).
#pragma once

#include <cstdint>
#include <span>

#include "pcpc/common/types.hpp"

namespace pcpc::core {

/// Index of a slot on the track (slot i starts at origin + i·Δ).
using SlotIndex = std::int64_t;

/// Immutable description of a core's slot grid.
class SlotTrack {
 public:
  /// Creates a track with slot size Δ > 0 whose slot 0 starts at `origin`.
  explicit SlotTrack(SimDuration slot_size, SimTime origin = 0);

  /// The slot size Δ.
  SimDuration slot_size() const { return slot_size_; }

  SimTime origin() const { return origin_; }

  /// Index of the slot containing time t (t may precede the origin; the
  /// index is then negative — floor division, not truncation).
  SlotIndex index_of(SimTime t) const;

  /// Start time of slot i.
  SimTime start_of(SlotIndex i) const { return origin_ + i * slot_size_; }

  /// The paper's g(τ): the latest slot start ≤ τ (Equation 6).
  SimTime g(SimTime t) const { return start_of(index_of(t)); }

  /// First slot whose start is strictly after t.
  SlotIndex next_after(SimTime t) const { return index_of(t) + 1; }

  /// Default slot size: the minimum of the pairs' maximum acceptable
  /// response latencies (Section V-A).  Span must be non-empty.
  static SimDuration default_slot_size(std::span<const SimDuration> max_latencies);

 private:
  SimDuration slot_size_;
  SimTime origin_;
};

}  // namespace pcpc::core
