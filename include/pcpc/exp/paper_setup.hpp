// Canonical experiment configurations for reproducing the paper's
// figures.  Benches and integration tests share these so the numbers in
// EXPERIMENTS.md come from exactly one calibration.
//
// Calibration notes (see DESIGN.md §5):
//  * power constants are Arndale/Exynos-5-flavoured (active core 1.1 W,
//    WFI-exit ω = 8 µJ, C-state ladder down to 12 mW);
//  * the single-pair study replays a hot web log (≈20 k items/s mean) —
//    the regime in which the paper's batch family separates from
//    per-item signaling;
//  * the multi-pair evaluation replays ≈2 k items/s per pair, matching
//    the paper's internal counters (BP ≈ 186 overflows/s at B=50 over
//    five pairs, Section VI-C);
//  * horizons are 10 s instead of the paper's 50 s — every reported
//    metric is per-second, so the shorter replay only tightens runtime,
//    not the comparison.
#pragma once

#include "pcpc/exp/experiment.hpp"

namespace pcpc::exp {

/// Section III study (Figures 3 and 4): one producer-consumer pair on
/// one isolated core, seven implementations.
ExperimentSpec single_pair_spec();

/// Section VI evaluation (Figures 9-11): M phase-shifted pairs on two
/// cores, buffer capacity B per pair.
ExperimentSpec multi_pair_spec(std::size_t pairs, std::size_t buffer_capacity);

/// The implementations of the Section III study, in the paper's order.
inline constexpr ImplKind kSingleStudyImpls[] = {
    ImplKind::BusyWait,      ImplKind::Yield,
    ImplKind::Mutex,         ImplKind::Semaphore,
    ImplKind::Batch,         ImplKind::PeriodicBatch,
    ImplKind::SignalPeriodicBatch,
};

/// The implementations of the Section VI evaluation, in the paper's order.
inline constexpr ImplKind kMultiEvalImpls[] = {
    ImplKind::Mutex,
    ImplKind::Semaphore,
    ImplKind::Batch,
    ImplKind::Pbpl,
};

}  // namespace pcpc::exp
