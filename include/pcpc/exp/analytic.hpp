// Closed-form expected metrics for analytically tractable cases.
//
// For a *constant-rate* producer, the baseline implementations have
// simple closed forms for wakeups, usage and extra power.  These serve
// two purposes: (1) validation — the discrete-event simulator must agree
// with them to high precision (tested in test_analytic.cpp), which
// certifies the machinery behind the untractable bursty cases; and
// (2) quick capacity planning without running a simulation.
#pragma once

#include <cstddef>

#include "pcpc/impls/params.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::exp {

/// Closed-form per-second metrics of one implementation under a constant
/// arrival rate.
struct AnalyticPrediction {
  double wakeups_per_s = 0.0;
  double invocations_per_s = 0.0;
  double usage_ms_per_s = 0.0;
  double extra_power_w = 0.0;
  double mean_latency_s = 0.0;
};

/// Mutex/Sem with per-item signaling, sparse regime (inter-arrival gap
/// exceeds service time, no coalescing): one wakeup and one invocation
/// per item, latency = service time of one item.
AnalyticPrediction predict_signaled(double rate_hz, const impls::BaselineParams& params,
                                    const power::PowerModelParams& power, bool mutex);

/// BP: one invocation per buffer fill, B items per batch, mean wait of
/// (B−1)/2 inter-arrival gaps plus the batch position effect.
AnalyticPrediction predict_batch(double rate_hz, const impls::BaselineParams& params,
                                 const power::PowerModelParams& power);

/// Jitter-free periodic batching in the timer-dominated regime
/// (rate·T < B): one wakeup per period, rate·T items per batch, mean
/// latency T/2.
AnalyticPrediction predict_periodic(double rate_hz, const impls::BaselineParams& params,
                                    const power::PowerModelParams& power);

/// Busy-waiting: the core never idles.
AnalyticPrediction predict_busy_wait(double rate_hz,
                                     const impls::BaselineParams& params,
                                     const power::PowerModelParams& power);

}  // namespace pcpc::exp
