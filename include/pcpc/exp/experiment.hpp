// Replicated experiment execution with confidence intervals.
//
// Mirrors the paper's methodology (Section III-B): each configuration is
// run as several replicates (the paper uses 3), each metric is reported as
// mean ± 95% CI, and raw per-replicate values are kept for correlation
// analysis (Section III-C3's wakeups↔power hypothesis test).
#pragma once

#include <vector>

#include "pcpc/common/stats.hpp"
#include "pcpc/impls/runner.hpp"
#include "pcpc/power/energy_ledger.hpp"
#include "pcpc/trace/webserver_log.hpp"

namespace pcpc::exp {

using impls::ImplKind;

/// One replicate's scalar metrics.
struct ReplicateMetrics {
  double power_w = 0.0;
  double wakeups_per_s = 0.0;
  double usage_ms_per_s = 0.0;
  double items = 0.0;
  double invocations = 0.0;
  double overflows = 0.0;
  double scheduled_wakeups = 0.0;
  double paid_wakeups = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double mean_batch = 0.0;
  double mean_buffer_capacity = 0.0;
  double latched_fraction = 0.0;
  double emergency_borrows = 0.0;
};

/// Replicate metrics reduced to mean ± CI.
struct MetricSummary {
  Measurement power_mw;
  Measurement wakeups_per_s;
  Measurement usage_ms_per_s;
  Measurement overflows;
  Measurement scheduled_wakeups;
  Measurement mean_latency_ms;
  Measurement p95_latency_ms;
  Measurement mean_batch;
  Measurement mean_buffer_capacity;
  std::size_t replicates = 0;
};

/// A full experiment configuration.
struct ExperimentSpec {
  std::size_t pairs = 1;            ///< M producer-consumer pairs
  std::size_t replicates = 3;       ///< paper uses 3
  SimDuration horizon = seconds(10);
  trace::WebWorkloadParams workload;        ///< base seed; replicates shift it
  impls::ExperimentSetup setup;             ///< implementation knobs
  power::PowerModelParams power;            ///< energy model
};

/// Runs one replicate (deterministic given `replicate` index) and reduces
/// the RunResult to scalars.
ReplicateMetrics run_replicate(ImplKind kind, const ExperimentSpec& spec,
                               std::size_t replicate);

/// Runs all replicates.
std::vector<ReplicateMetrics> run_replicates(ImplKind kind, const ExperimentSpec& spec);

/// Runs all replicates and reduces to mean ± 95% CI.
MetricSummary summarize(ImplKind kind, const ExperimentSpec& spec);

/// Reduces already-collected replicates.
MetricSummary summarize(const std::vector<ReplicateMetrics>& replicates);

}  // namespace pcpc::exp
