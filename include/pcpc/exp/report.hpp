// Structured experiment reports with pluggable rendering.
//
// Bench binaries build a Report instead of printing ad hoc: the same
// object renders as the aligned console table, as Markdown (for
// EXPERIMENTS.md-style documents), and as CSV files (for plotting).
// Setting the PCPC_EXPORT_DIR environment variable makes every bench
// drop its CSVs there without changing its console output.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace pcpc::exp {

/// One table of a report.
struct ReportTable {
  std::string name;                 ///< slug used for the CSV filename
  std::string title;                ///< printed above the table
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// A report: tables plus free-form notes printed after them.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// Starts a new table; subsequent add_row calls append to it.
  ReportTable& add_table(std::string table_name, std::string title,
                         std::vector<std::string> header);

  /// Appends a row to the most recent table.
  void add_row(std::vector<std::string> cells);

  /// Appends a paragraph printed after the tables.
  void add_note(std::string note);

  const std::string& name() const { return name_; }
  const std::vector<ReportTable>& tables() const { return tables_; }
  const std::vector<std::string>& notes() const { return notes_; }

  /// Renders every table as an aligned console table plus the notes.
  void print(std::ostream& os) const;

  /// Renders GitHub-flavoured Markdown.
  std::string to_markdown() const;

  /// Writes one CSV per table into `directory` as
  /// <report>_<table>.csv.  Returns the number of files written.
  std::size_t export_csv(const std::string& directory) const;

  /// Reads PCPC_EXPORT_DIR; when set, export_csv there and report on
  /// `os`.  Call at the end of a bench's main().
  void maybe_export(std::ostream& os) const;

 private:
  std::string name_;
  std::vector<ReportTable> tables_;
  std::vector<std::string> notes_;
};

}  // namespace pcpc::exp
