// Streaming statistics: Welford accumulation, Student-t confidence
// intervals, Pearson correlation, and simple summaries.
//
// The paper reports every measurement with a 95% confidence interval over
// 3 replicates and validates its hypothesis via correlation between
// wakeups/s and power; this module provides those computations.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace pcpc {

/// Numerically stable streaming mean/variance accumulator (Welford).
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Unbiased sample standard deviation.
  double stddev() const;

  /// Standard error of the mean.
  double stderr_mean() const;

  /// Smallest observation seen; +inf when empty.
  double min() const { return min_; }

  /// Largest observation seen; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Half-width of the two-sided confidence interval around the mean of
/// `stats` at the given confidence level (0.90, 0.95 or 0.99), using the
/// Student-t distribution.  Returns 0 with fewer than two observations.
double confidence_half_width(const OnlineStats& stats, double level = 0.95);

/// Two-sided Student-t critical value for `df` degrees of freedom at the
/// given confidence level.  Exact for small df via table, asymptotic above.
double student_t_critical(std::size_t df, double level);

/// Pearson product-moment correlation coefficient of two equally sized
/// samples.  Returns 0 when either sample has zero variance.
double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

/// A mean together with its confidence half-width; the unit in which
/// every experiment metric is reported.
struct Measurement {
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t replicates = 0;

  /// Formats as "m ± c" with the given precision.
  std::string to_string(int precision = 2) const;
};

/// Reduces a set of replicate values into a Measurement.
Measurement measure(std::span<const double> replicates, double level = 0.95);

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Merges another histogram with identical binning.
  void merge(const Histogram& other);

  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;

  /// Approximate quantile (0 <= q <= 1) from bin midpoints.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pcpc
