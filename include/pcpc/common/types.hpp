// Virtual-time primitives shared by every pcpc module.
//
// The simulator, the power model and the PBPL algorithm all reason about
// time as signed 64-bit nanosecond counts.  A signed representation is
// deliberate: slot arithmetic in the core manager subtracts timestamps and
// negative intermediate values must not wrap.
#pragma once

#include <cstdint>
#include <limits>

namespace pcpc {

/// A point in virtual time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of virtual time, in nanoseconds.
using SimDuration = std::int64_t;

/// Sentinel representing "never" / "no scheduled time".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

/// Convenience literal-style constructors.
constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimDuration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Fractional-second constructor (used by trace generators that work in
/// floating-point seconds).  Rounds to the nearest nanosecond.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Convert a virtual duration to floating-point seconds.
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) * 1e-9; }

/// Convert a virtual duration to floating-point milliseconds.
constexpr double to_milliseconds(SimDuration d) { return static_cast<double>(d) * 1e-6; }

}  // namespace pcpc
