// Minimal CSV writer used to export experiment series for offline plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pcpc {

/// Streams rows of a CSV file with correct quoting of separators/quotes.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the underlying stream opened successfully.
  bool ok() const { return out_.good(); }

  /// Writes one row; width must match the header.
  void write_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t rows() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace pcpc
