// Significance tests for the paper's statistical claims.
//
// Section III-C3: "we run the following hypothesis test: H0: Wakeups have
// a significant effect on power.  We manage to accept the hypothesis with
// 99% confidence."  That is a test of the regression/correlation slope;
// this header provides it (t-test on the Pearson coefficient) plus the
// paired-comparison test the replicate design supports.
#pragma once

#include <cstddef>
#include <span>

namespace pcpc {

/// Result of a significance test.
struct TestResult {
  double statistic = 0.0;   ///< the t statistic
  double critical = 0.0;    ///< two-sided critical value at the level
  bool significant = false; ///< |statistic| > critical
  std::size_t df = 0;       ///< degrees of freedom
};

/// Tests whether the Pearson correlation of (xs, ys) differs from zero:
/// t = r·sqrt((n−2)/(1−r²)) against the Student-t critical value at the
/// given two-sided confidence level.  Needs n ≥ 3.
TestResult correlation_significance(std::span<const double> xs,
                                    std::span<const double> ys, double level = 0.99);

/// Paired t-test: do the paired differences (a_i − b_i) have non-zero
/// mean?  Used to compare two implementations across replicates.
TestResult paired_t_test(std::span<const double> a, std::span<const double> b,
                         double level = 0.95);

/// Ordinary-least-squares slope of y on x with its standard error;
/// exposed for the wakeups→power effect-size estimates in reports.
struct Slope {
  double value = 0.0;
  double stderr_value = 0.0;
  double intercept = 0.0;
};
Slope linear_slope(std::span<const double> xs, std::span<const double> ys);

}  // namespace pcpc
