// Minimal leveled logger.
//
// Experiments and the thread runtime log sparingly; the default level is
// Warn so bench output stays clean.  The logger is process-global and
// thread-safe at the line level.  Every line carries a wall-clock UTC
// timestamp (HH:MM:SS.mmm) so interleaved multi-process runs stay
// orderable.  The PCPC_LOG_LEVEL environment variable
// (debug|info|warn|error|off, or 0-4) overrides the default once at
// startup; an explicit set_log_level() call always wins over the
// environment.
#pragma once

#include <sstream>
#include <string>

namespace pcpc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold.
LogLevel log_level();

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {

/// Builds the message lazily so disabled levels cost only the check.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace pcpc

#define PCPC_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::pcpc::log_level())) \
    ;                                                    \
  else                                                   \
    ::pcpc::detail::LogStream(level)

#define PCPC_DEBUG PCPC_LOG(::pcpc::LogLevel::Debug)
#define PCPC_INFO PCPC_LOG(::pcpc::LogLevel::Info)
#define PCPC_WARN PCPC_LOG(::pcpc::LogLevel::Warn)
#define PCPC_ERROR PCPC_LOG(::pcpc::LogLevel::Error)
