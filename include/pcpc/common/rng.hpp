// Deterministic pseudo-random number generation.
//
// Experiments must be bit-for-bit reproducible across runs and platforms, so
// we avoid std::mt19937 distribution objects (whose output is not specified
// identically across standard libraries for all distributions) and implement
// the generator and the distributions we need ourselves.
//
// The generator is xoshiro256** seeded via SplitMix64, the widely used
// combination recommended by Blackman & Vigna.
#pragma once

#include <cmath>
#include <cstdint>

#include "pcpc/common/assert.hpp"

namespace pcpc {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG with explicit, portable distributions.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as a log() argument.
  double next_double_open() { return 1.0 - next_double(); }

  /// Uniform integer in [0, bound).  Uses rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    PCPC_ASSERT(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Exponential variate with the given rate (events per unit).
  double exponential(double rate) {
    PCPC_ASSERT(rate > 0.0);
    return -std::log(next_double_open()) / rate;
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal variate with explicit mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal variate parameterized by the underlying normal (mu, sigma).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Poisson variate (Knuth for small means, normal approximation above 64).
  std::uint64_t poisson(double mean) {
    PCPC_ASSERT(mean >= 0.0);
    if (mean == 0.0) return 0;
    if (mean > 64.0) {
      const double v = normal(mean, std::sqrt(mean));
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double product = next_double();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= next_double();
      ++count;
    }
    return count;
  }

  /// Derives an independent child generator; useful for giving each
  /// producer its own stream from one experiment seed.
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pcpc
