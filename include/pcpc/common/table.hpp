// ASCII table rendering for benchmark/experiment output.
//
// The bench binaries print the same rows/series the paper's figures show;
// this gives them a uniform, aligned, pipe-separated rendering.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace pcpc {

/// Column-aligned ASCII table with a header row and an optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Sets the title printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(Ts));
    (cells.push_back(format_cell(values)), ...);
    add_row(std::move(cells));
  }

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Renders the table (title, rule, header, rule, rows, rule).
  void print(std::ostream& os) const;

  /// Renders to a string; handy in tests.
  std::string to_string() const;

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(long long v);
  static std::string format_cell(unsigned long long v);
  template <typename T>
  static std::string format_cell(T v)
    requires std::is_integral_v<T>
  {
    if constexpr (std::is_signed_v<T>)
      return format_cell(static_cast<long long>(v));
    else
      return format_cell(static_cast<unsigned long long>(v));
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helper used across bench output.
std::string format_double(double v, int precision = 2);

}  // namespace pcpc
