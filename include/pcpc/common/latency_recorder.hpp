// Latency recording with both moments and tail percentiles.
//
// OnlineStats gives mean/min/max in O(1) memory; tails need a histogram.
// One fixed log-ish range (100 ns .. 10 s over 2000 bins) covers every
// latency this library produces with <2% bucket error in the tails.
#pragma once

#include "pcpc/common/stats.hpp"
#include "pcpc/common/types.hpp"

namespace pcpc {

/// Accumulates item response times in seconds.
class LatencyRecorder {
 public:
  LatencyRecorder() : histogram_(0.0, 10.0, 2000) {}

  /// Records one latency (seconds, non-negative).
  void add(double seconds_value) {
    stats_.add(seconds_value);
    histogram_.add(seconds_value);
  }

  /// Merges another recorder (the binning is fixed, so this is exact).
  void merge(const LatencyRecorder& other) {
    stats_.merge(other.stats_);
    histogram_.merge(other.histogram_);
  }

  const OnlineStats& stats() const { return stats_; }
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.count() ? stats_.max() : 0.0; }
  double min() const { return stats_.count() ? stats_.min() : 0.0; }

  /// Approximate quantile in seconds (histogram resolution: 5 ms).
  double quantile(double q) const { return histogram_.quantile(q); }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  std::size_t count() const { return stats_.count(); }

 private:
  OnlineStats stats_;
  Histogram histogram_;
};

}  // namespace pcpc
