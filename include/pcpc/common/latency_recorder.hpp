// Latency recording with both moments and tail percentiles.
//
// OnlineStats gives mean/min/max in O(1) memory; tails need a histogram.
// Latencies are stored on a true log scale: the histogram bins log10 of
// the value over 100 ns .. 10 s (2000 bins, ~0.9% ratio per bin), so a
// 2 µs tail resolves as sharply as a 2 s one.  Merging is still exact —
// the binning is fixed, only the stored domain changed.
#pragma once

#include <algorithm>
#include <cmath>

#include "pcpc/common/stats.hpp"
#include "pcpc/common/types.hpp"

namespace pcpc {

/// Accumulates item response times in seconds.
class LatencyRecorder {
 public:
  LatencyRecorder() : histogram_(kLogLo, kLogHi, 2000) {}

  /// Records one latency (seconds, non-negative).  Values below 1 ns are
  /// clamped before the log so zero latencies land in the underflow bin
  /// instead of producing -inf.
  void add(double seconds_value) {
    stats_.add(seconds_value);
    histogram_.add(std::log10(std::max(seconds_value, 1e-9)));
  }

  /// Merges another recorder (the binning is fixed, so this is exact).
  void merge(const LatencyRecorder& other) {
    stats_.merge(other.stats_);
    histogram_.merge(other.histogram_);
  }

  const OnlineStats& stats() const { return stats_; }
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.count() ? stats_.max() : 0.0; }
  double min() const { return stats_.count() ? stats_.min() : 0.0; }

  /// Approximate quantile in seconds (bin ratio ~1.009, i.e. <1% relative
  /// error anywhere in 100 ns .. 10 s).
  double quantile(double q) const {
    if (stats_.count() == 0) return 0.0;
    return std::pow(10.0, histogram_.quantile(q));
  }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  std::size_t count() const { return stats_.count(); }

 private:
  static constexpr double kLogLo = -7.0;  // log10(100 ns)
  static constexpr double kLogHi = 1.0;   // log10(10 s)

  OnlineStats stats_;
  Histogram histogram_;
};

}  // namespace pcpc
