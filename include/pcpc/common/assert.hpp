// Always-on invariant checks.
//
// Unlike <cassert> these fire in release builds too: the DES engine and the
// elastic buffer pool rely on invariants whose violation would silently
// corrupt experiment results, which is worse than an abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pcpc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "pcpc assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace pcpc::detail

#define PCPC_ASSERT(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::pcpc::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define PCPC_ASSERT_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::pcpc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
