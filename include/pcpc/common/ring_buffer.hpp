// Fixed-capacity circular buffer.
//
// This is the single-threaded building block behind every bounded buffer in
// the library: the baseline implementations' queues, the elastic buffer
// segments, and the predictor's rate-history window.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "pcpc/common/assert.hpp"

namespace pcpc {

/// Bounded FIFO over contiguous storage.  Not thread-safe; concurrent
/// variants in pcpc::runtime wrap it with their own synchronization.
template <typename T>
class RingBuffer {
 public:
  /// Creates a buffer holding at most `capacity` elements.
  explicit RingBuffer(std::size_t capacity) : storage_(capacity) {
    PCPC_ASSERT_MSG(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Maximum number of elements.
  std::size_t capacity() const { return storage_.size(); }

  /// Current number of elements.
  std::size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == storage_.size(); }

  /// Appends an element; returns false (and drops it) when full.
  bool push(T value) {
    if (full()) return false;
    storage_[tail_] = std::move(value);
    tail_ = advance(tail_);
    ++size_;
    return true;
  }

  /// Removes and returns the oldest element; nullopt when empty.
  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = std::move(storage_[head_]);
    head_ = advance(head_);
    --size_;
    return value;
  }

  /// Oldest element without removing it.  Buffer must be non-empty.
  const T& front() const {
    PCPC_ASSERT(!empty());
    return storage_[head_];
  }

  /// i-th oldest element (0 == front).  Index must be < size().
  const T& at(std::size_t i) const {
    PCPC_ASSERT(i < size_);
    return storage_[(head_ + i) % storage_.size()];
  }

  /// Removes all elements.
  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::size_t advance(std::size_t i) const { return (i + 1) % storage_.size(); }

  std::vector<T> storage_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pcpc
