// Windowed moving average over the last `h` observations.
//
// This is the estimator the paper's consumers use to predict the producer
// rate (Section V-C, "Prediction"): r̂_{i+1} = (Σ_{j=i-h+1}^{i} r_j) / h.
#pragma once

#include <cstddef>

#include "pcpc/common/ring_buffer.hpp"

namespace pcpc {

/// O(1)-update moving average with a fixed window.
class MovingAverage {
 public:
  /// `window` is the paper's h: how many past rates contribute.
  explicit MovingAverage(std::size_t window) : history_(window) {}

  /// Records one observation, evicting the oldest when the window is full.
  void add(double value) {
    if (history_.full()) {
      sum_ -= *history_.pop();
    }
    history_.push(value);
    sum_ += value;
  }

  /// Current average; 0 before any observation.
  double value() const {
    if (history_.empty()) return 0.0;
    return sum_ / static_cast<double>(history_.size());
  }

  /// Number of observations currently inside the window.
  std::size_t count() const { return history_.size(); }

  /// Window size h.
  std::size_t window() const { return history_.capacity(); }

  /// Forgets all history.
  void reset() {
    history_.clear();
    sum_ = 0.0;
  }

 private:
  RingBuffer<double> history_;
  double sum_ = 0.0;
};

}  // namespace pcpc
