// POSIX shared-memory segments with bounded-retry attach.
//
// One ShmSegment is one shm_open + mmap(MAP_SHARED) mapping.  The
// creator sizes and zero-fills it (ftruncate); attachers retry with
// exponential backoff until the segment exists AND its creator has
// marked the layout initialized (the first 8 bytes hold a ready marker
// written by the layout code *after* construction, so an attacher can
// never observe a half-built header).  Attach failure is a value, not an
// exception — callers degrade (pcpc_cli falls back to the in-process
// thread host) instead of crashing.
//
// Lifetime: destroying the object unmaps; the segment itself persists
// until unlink() (owner) or process reboot.  A crashed peer therefore
// never invalidates the mapping of the survivors — the basis of the
// dead-peer recovery protocol in channel.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pcpc::ipc {

/// Attach retry policy: `attempts` tries spaced by an exponentially
/// growing backoff starting at `initial_backoff_ms`, doubled per retry
/// and capped at `max_backoff_ms`.  Defaults give up after ~1.5 s.
struct AttachOptions {
  int attempts = 10;
  std::int64_t initial_backoff_ms = 2;
  std::int64_t max_backoff_ms = 500;
};

/// A mapped shared-memory segment.  Movable, not copyable.
class ShmSegment {
 public:
  ShmSegment() = default;
  ~ShmSegment();

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  /// Creates (O_CREAT|O_EXCL) and maps a zero-filled segment of `bytes`.
  /// On name collision with a stale segment, unlinks and retries once.
  /// Returns an unmapped segment (valid() == false) on failure, with the
  /// reason in *error.
  static ShmSegment create(const std::string& name, std::size_t bytes,
                           std::string* error = nullptr);

  /// Attaches to an existing segment, retrying per `options` while the
  /// segment is missing, not yet sized, or not yet marked ready.  The
  /// ready marker is the first 8 bytes (see mark_ready()).
  static ShmSegment attach(const std::string& name, const AttachOptions& options = {},
                           std::string* error = nullptr);

  /// Creator only: publishes the ready marker (release store into the
  /// first 8 bytes).  Call after the layout is fully constructed.
  void mark_ready();

  /// Removes the name; existing mappings stay valid until unmapped.
  void unlink();

  bool valid() const { return base_ != nullptr; }
  void* base() const { return base_; }
  std::size_t bytes() const { return bytes_; }
  const std::string& name() const { return name_; }

  /// Bytes past the ready marker — where the layout actually lives.
  void* payload() const;
  static std::size_t payload_offset();

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  int fd_ = -1;
  bool owner_ = false;
  std::string name_;
};

}  // namespace pcpc::ipc
