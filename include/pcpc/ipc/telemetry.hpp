// Cross-process telemetry region of a pcpc::ipc channel.
//
// Each producer registry slot owns one PeerTelemetry block inside the
// shm segment: a handful of single-writer metric cells plus an SPSC
// trace ring of obs::Event records.  The discipline mirrors the
// in-process obs layer exactly:
//
//   - metric cells are written by exactly one live peer (the slot's
//     current owner) and read by anybody — no locks, no cross-process
//     mutexes ever (DESIGN.md §10 rule);
//   - the trace ring is SPSC: the owning producer pushes, the channel
//     consumer drains into its local obs::Session (stamping the event's
//     `origin` with the registry index so exporters can reconstruct
//     per-process tracks), overflow is counted in ring_dropped rather
//     than blocking the producer;
//   - when a peer retires (clean detach or reaper), its metric cells are
//     folded into ChannelHeader::retired_tel with the same exchange(0)/
//     fetch_add protocol as the PR-5 pushed/dropped fold, so a SIGKILLed
//     producer's counts survive registry-slot reuse.  Ring events are
//     best-effort (the reaper drains what was published; an event lost
//     between a crash and its head publication is gone), which is why
//     every exactness identity in the test suite is pinned on the
//     counter cells, never on ring contents.
//
// Ring cursors are monotonic across peer incarnations: a new owner of a
// reused slot continues pushing at the inherited head.  This is safe
// because the reaper proves the previous owner's pid gone before the
// slot is reusable — there is never a second live writer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pcpc/obs/events.hpp"

namespace pcpc::ipc {

struct ChannelHeader;

/// Indices into PeerTelemetry::counters / ChannelHeader::retired_tel.
/// Part of the shm ABI: append, never renumber.
enum TelCounter : std::size_t {
  kTelPaidWakes = 0,      ///< futex_wake syscalls this peer paid for
  kTelDoorbellFree = 1,   ///< doorbell rings that found the consumer awake
  kTelSpanStages = 2,     ///< lifecycle stage events published to the ring
  kTelCounterCount = 4,   ///< (one spare slot for forward compatibility)
};

/// Events per peer trace ring; power of two.
inline constexpr std::size_t kTelemetryRingCap = 512;

/// One producer registry slot's telemetry block.
struct alignas(64) PeerTelemetry {
  std::atomic<std::uint64_t> counters[kTelCounterCount] = {};

  // Peer-written ring cursor + drop count on their own line; the
  // consumer-written tail on another, so pushes never bounce the
  // consumer's line and vice versa.
  alignas(64) std::atomic<std::uint64_t> ring_head{0};
  std::atomic<std::uint64_t> ring_dropped{0};
  alignas(64) std::atomic<std::uint64_t> ring_tail{0};

  alignas(64) obs::Event ring[kTelemetryRingCap] = {};
};

/// SPSC push from the owning peer; drops (counted) when the consumer is
/// behind by a full ring.
inline bool telemetry_push(PeerTelemetry& tel, const obs::Event& event) {
  const std::uint64_t head = tel.ring_head.load(std::memory_order_relaxed);
  const std::uint64_t tail = tel.ring_tail.load(std::memory_order_acquire);
  if (head - tail >= kTelemetryRingCap) {
    tel.ring_dropped.store(tel.ring_dropped.load(std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
    return false;
  }
  tel.ring[head % kTelemetryRingCap] = event;
  tel.ring_head.store(head + 1, std::memory_order_release);
  return true;
}

/// SPSC drain from the channel consumer.  `fn(const obs::Event&)` per
/// event, in publication order.  Returns events drained.
template <typename Fn>
std::size_t telemetry_drain(PeerTelemetry& tel, Fn&& fn) {
  std::uint64_t tail = tel.ring_tail.load(std::memory_order_relaxed);
  const std::uint64_t head = tel.ring_head.load(std::memory_order_acquire);
  std::size_t n = 0;
  while (tail != head) {
    fn(tel.ring[tail % kTelemetryRingCap]);
    ++tail;
    ++n;
  }
  if (n != 0) tel.ring_tail.store(tail, std::memory_order_release);
  return n;
}

/// Single-writer bump of a peer metric cell.  fetch_add (not the relaxed
/// load+store of the in-process shards) because retirement folds race
/// this only when the peer is provably dead or has already detached —
/// but the PeerSlot counters use fetch_add, and the telemetry cells keep
/// the same idiom so the fold protocol stays uniform.
inline void telemetry_bump(PeerTelemetry& tel, TelCounter which,
                           std::uint64_t n = 1) {
  tel.counters[which].fetch_add(n, std::memory_order_relaxed);
}

/// One live peer's view in a merged snapshot.
struct PeerTelemetrySnapshot {
  std::size_t index = 0;
  std::int32_t pid = 0;
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t lease_lost = 0;
  std::uint64_t paid_wakes = 0;
  std::uint64_t doorbells_free = 0;
  std::uint64_t span_stages = 0;
  std::uint64_t ring_pushed = 0;
  std::uint64_t ring_dropped = 0;
};

/// The merged cross-process totals: live peer cells + retired folds.
/// Exact at any quiescent point — in particular `paid_wakes` equals
/// ChannelHeader::futex_wakes identically (both are bumped in the same
/// doorbell branch), which the obs ledger is in turn checked against.
struct TelemetrySnapshot {
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t lease_lost = 0;
  std::uint64_t paid_wakes = 0;
  std::uint64_t doorbells_free = 0;
  std::uint64_t span_stages = 0;
  std::uint64_t ring_pushed = 0;
  std::uint64_t ring_dropped = 0;
  std::vector<PeerTelemetrySnapshot> live;  ///< currently-joined producers
};

/// Reads the merged snapshot off any mapped channel segment.
TelemetrySnapshot merged_telemetry(const ChannelHeader& hdr);

}  // namespace pcpc::ipc
