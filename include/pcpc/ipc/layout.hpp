// Shared-memory layout of one pcpc::ipc channel.
//
// One channel = one shm segment holding, in order: a ChannelHeader
// (immutable geometry + the shared atomics), a peer registry (1 consumer
// + kMaxProducers producer slots, each with a heartbeat), and the slot
// array of the crash-safe MPSC ring.  Everything is addressed by offset
// from the mapping base — no pointers — so every process resolves its
// own local addresses (see queue/placement.hpp for the same idea inside
// the in-process queues).
//
// ## The crash-safe slot protocol (epoch/lease over the Vyukov handshake)
//
// The in-process MpscSegQueue hands a slot from producer to consumer
// with a per-slot sequence word: claim ticket t, wait seq == t, write,
// publish seq = t+1; the consumer reads at seq == t+1 and re-sequences
// to t + N.  Across processes the new failure mode is a producer dying
// *between* those steps, which under strict in-order consumption wedges
// the consumer forever.  The ipc ring extends the handshake so every
// ticket's fate is decidable from shm state alone:
//
//   seq == t                 free: no producer reached the slot yet
//   seq == t|LOCK|owner      write lease held by producer `owner`
//   seq == t+1               published: value valid
//   seq == t+N               resolved: consumed or reclaimed
//
// The write lease is taken with a CAS (t -> t|LOCK|owner), carrying the
// claimant's registry index *in the same atomic word*, so there is no
// window in which a locked slot is anonymous.  Publication is also a
// CAS (t|LOCK|owner -> t+1): if the consumer reclaimed the slot in the
// meantime, the producer's CAS fails and it learns it lost the lease
// instead of corrupting the next revolution.  Recovery rules:
//
//   - a *free* hole at the consumer's head older than `lease_ns` is
//     reclaimed with CAS(t -> t+N) — safe against a live-but-slow
//     producer, whose lease CAS then fails (counted lease_lost);
//   - a *locked* slot is reclaimed only when its owner is provably dead
//     (registry heartbeat stale AND the pid is gone) — a SIGSTOPped
//     producer is alive, keeps its lease, and resumes cleanly;
//   - when the reaper declares a producer dead it sweeps the whole ring
//     for that owner's leases (they may sit anywhere, not just at head)
//     before the registry slot can be reused — the role the per-slot
//     epoch plays in Jiffy-style reclamation schemes.
//
// Ticket-level conservation is exact by construction: every admitted
// ticket resolves to exactly one of consumed / reclaimed, so
//   tail_ticket == consumed + reclaimed + residue
// holds at every quiescent point, even with producers SIGKILLed between
// any two instructions.  (Attempt-level counters cannot be exact under
// SIGKILL — a death between a counter bump and the matching queue
// transition always leaves a one-off — which is why the conservation
// identity is anchored on the ticket word; DESIGN.md §10.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "pcpc/ipc/telemetry.hpp"
#include "pcpc/queue/placement.hpp"
#include "pcpc/queue/varlen.hpp"

namespace pcpc::ipc {

// v2: telemetry plane — epoch_mono_ns shared trace clock, span sampling
// period, per-peer PeerTelemetry blocks + retired_tel fold counters.
// v3: varlen payload plane — per-producer in-segment VarSpscRing regions
// (eager publish, OffsetSlots), record announcements carried as control
// values, byte-granular conservation tallies.
inline constexpr std::uint32_t kLayoutVersion = 3;

/// Registry capacity; bounded so the header has a fixed size.
inline constexpr std::size_t kMaxProducers = 16;

/// seq word bit layout: | LOCK(63) | owner+1 (62..48) | ticket (47..0) |
inline constexpr std::uint64_t kSeqLockBit = 1ULL << 63;
inline constexpr std::uint64_t kSeqTicketMask = (1ULL << 48) - 1;
inline constexpr unsigned kSeqOwnerShift = 48;

inline constexpr std::uint64_t seq_locked(std::uint64_t ticket, std::size_t owner) {
  return kSeqLockBit | (static_cast<std::uint64_t>(owner + 1) << kSeqOwnerShift) |
         (ticket & kSeqTicketMask);
}
inline constexpr bool seq_is_locked(std::uint64_t seq) {
  return (seq & kSeqLockBit) != 0;
}
inline constexpr std::uint64_t seq_ticket(std::uint64_t seq) {
  return seq & kSeqTicketMask;
}
inline constexpr std::size_t seq_owner(std::uint64_t seq) {
  return static_cast<std::size_t>((seq & ~kSeqLockBit) >> kSeqOwnerShift) - 1;
}

/// Peer registry slot states.
enum PeerState : std::uint32_t {
  kPeerFree = 0,
  kPeerJoining = 1,  ///< attach in progress (slot claimed, fields not final)
  kPeerActive = 2,
  kPeerDead = 3,  ///< reaped; ring sweep pending/complete, slot not yet reusable
};

/// One peer (producer or consumer) in the registry.  `heartbeat_ns` is
/// CLOCK_MONOTONIC and refreshed by the peer's own loop; the reaper
/// declares a peer dead only when the heartbeat is stale AND the pid is
/// gone (a SIGSTOPped peer is stale but alive — suspended, not dead).
struct alignas(64) PeerSlot {
  std::atomic<std::uint32_t> state{kPeerFree};
  std::atomic<std::int32_t> pid{0};
  std::atomic<std::uint64_t> epoch{0};  ///< incarnation counter (diagnostics)
  std::atomic<std::int64_t> heartbeat_ns{0};
  std::atomic<std::uint64_t> pushed{0};      ///< completed (acknowledged) publishes
  std::atomic<std::uint64_t> dropped{0};     ///< counted rejects (full / consumer dead)
  std::atomic<std::uint64_t> lease_lost{0};  ///< pushes whose slot lease was reclaimed
};

/// One ring slot: the extended sequence word plus an 8-byte payload.
struct alignas(16) IpcSlot {
  std::atomic<std::uint64_t> seq{0};
  std::uint64_t value{0};
};

/// Consumer sleep states for the futex doorbell (see channel.hpp).
enum ConsumerSleepState : std::uint32_t {
  kConsumerAwake = 0,
  kConsumerSleeping = 1,
  kConsumerWoken = 2,  ///< a producer paid a futex_wake; token pending
};

/// Everything shared, at offset 0 of the segment payload.
struct alignas(64) ChannelHeader {
  // -- immutable geometry (written once by the creator) -------------------
  std::uint32_t version = kLayoutVersion;
  std::uint32_t abi_guard = 0;  ///< sizeof checks; attach refuses a mismatch
  std::uint64_t n_slots = 0;    ///< physical ring slots (> capacity + kMaxProducers)
  std::uint64_t capacity = 0;   ///< logical admission bound
  std::int64_t lease_ns = 0;
  std::int64_t heartbeat_period_ns = 0;
  std::int64_t heartbeat_timeout_ns = 0;  ///< k * Delta staleness bound
  std::uint64_t wake_threshold = 0;       ///< ring doorbell at fill >= this
  /// CLOCK_MONOTONIC at creation: the shared trace-clock zero.  Every
  /// event timestamp any peer records — producer-side shm ring events,
  /// the consumer's wakeup/span events — is `now_ns() - epoch_mono_ns`,
  /// so a merged trace has one clock domain regardless of which process
  /// recorded which event.
  std::int64_t epoch_mono_ns = 0;
  std::uint64_t span_sample_every = 0;  ///< 1-in-N lifecycle sampling; 0 = off
  /// Varlen payload plane (0 = plane absent; the segment then ends at the
  /// slot array exactly like v2).  When nonzero, every producer registry
  /// slot owns a VarSpscRing of this logical capacity (record footprint
  /// bytes) placed after the slot array; records are announced to the
  /// consumer as control values (see var_announce_value()).
  std::uint64_t payload_ring_bytes = 0;
  std::uint32_t payload_max_record = 0;  ///< max payload bytes per record

  // -- ring indices -------------------------------------------------------
  alignas(64) std::atomic<std::uint64_t> tail_ticket{0};  ///< admitted tickets
  alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumer cursor (published)

  // -- futex doorbell -----------------------------------------------------
  alignas(64) std::atomic<std::uint32_t> doorbell{0};
  std::atomic<std::uint32_t> consumer_state{kConsumerAwake};
  std::atomic<std::uint64_t> futex_wakes{0};  ///< paid wakes, producer-counted

  // -- consumer-side accounting ------------------------------------------
  alignas(64) std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> reclaimed{0};
  std::atomic<std::uint64_t> epoch_counter{1};
  std::atomic<std::uint64_t> peers_reaped{0};
  // Retired-peer tallies: a registry slot's per-peer counters are folded
  // in here when the slot is freed (clean detach or reap), *before* a
  // later joiner's join_peer() zeroes them — conservation reports must
  // survive registry-slot reuse.
  std::atomic<std::uint64_t> retired_pushed{0};
  std::atomic<std::uint64_t> retired_dropped{0};
  std::atomic<std::uint64_t> retired_lease_lost{0};
  // Varlen delivery tallies (consumer-written; the byte-side counters of
  // the conservation report live in the per-producer rings themselves,
  // which survive producer death because they are shm state).
  std::atomic<std::uint64_t> var_delivered_records{0};
  std::atomic<std::uint64_t> var_delivered_bytes{0};  ///< payload bytes handed out
  std::atomic<std::uint64_t> var_lost_records{0};  ///< announcements of reclaimed records
  /// Telemetry cells folded from retiring peers, indexed by TelCounter;
  /// same exactly-once exchange/add protocol as the three above.
  std::atomic<std::uint64_t> retired_tel[kTelCounterCount] = {};

  // -- peer registry ------------------------------------------------------
  PeerSlot consumer_peer;
  PeerSlot producers[kMaxProducers];

  // -- telemetry plane ----------------------------------------------------
  /// producer_tel[i] belongs to producers[i]'s current owner.
  PeerTelemetry producer_tel[kMaxProducers];
  // IpcSlot array follows at slots_offset().
};

inline constexpr std::size_t slots_offset() {
  return (sizeof(ChannelHeader) + 63) / 64 * 64;
}

// ---------------------------------------------------------------------------
// Varlen payload plane (v3)
// ---------------------------------------------------------------------------

/// The per-producer byte ring of the payload plane: single-producer
/// (each registry slot owns one), offset-addressed storage, constructed
/// with eager tail publication so every claim a dead producer made is
/// visible to the reaper.
using VarIpcRing = queue::VarSpscRing<queue::OffsetSlots>;

inline constexpr std::size_t var_align64(std::size_t n) { return (n + 63) / 64 * 64; }

/// Segment bytes one producer's var region occupies: the ring object
/// (shared cursors + counters) followed by its cell array.
inline std::size_t var_region_stride(std::size_t ring_bytes, std::uint32_t max_record) {
  return var_align64(sizeof(VarIpcRing)) +
         VarIpcRing::placement_bytes(ring_bytes, max_record);
}

/// Where the var regions start: right after the control-slot array
/// (n_slots is a multiple of 64 and sizeof(IpcSlot) == 16, so this is
/// always cache-line aligned).
inline constexpr std::size_t var_regions_offset(std::uint64_t n_slots) {
  return slots_offset() + static_cast<std::size_t>(n_slots) * sizeof(IpcSlot);
}

inline std::size_t segment_payload_bytes(std::uint64_t n_slots,
                                         std::size_t payload_ring_bytes = 0,
                                         std::uint32_t payload_max_record = 0) {
  std::size_t bytes = var_regions_offset(n_slots);
  if (payload_ring_bytes > 0) {
    bytes += kMaxProducers * var_region_stride(payload_ring_bytes, payload_max_record);
  }
  return bytes;
}

/// Resolves registry slot `idx`'s var ring inside a mapped segment (the
/// header sits at payload offset 0, so the ring is pure offset
/// arithmetic from it).  nullptr when the channel has no payload plane.
inline VarIpcRing* var_ring_at(ChannelHeader& hdr, std::size_t idx) {
  if (hdr.payload_ring_bytes == 0) return nullptr;
  char* base = reinterpret_cast<char*>(&hdr) + var_regions_offset(hdr.n_slots);
  return reinterpret_cast<VarIpcRing*>(
      base + idx * var_region_stride(static_cast<std::size_t>(hdr.payload_ring_bytes),
                                     hdr.payload_max_record));
}
inline const VarIpcRing* var_ring_at(const ChannelHeader& hdr, std::size_t idx) {
  return var_ring_at(const_cast<ChannelHeader&>(hdr), idx);
}

/// Announcement encoding: a record push publishes one control value
/// carrying (producer registry index, record byte offset in its ring).
/// The offset is monotonic; 56 bits last ~2 years at 1 GB/s per ring.
inline constexpr std::uint64_t kVarValueOffsetBits = 56;
inline constexpr std::uint64_t kVarValueOffsetMask =
    (std::uint64_t{1} << kVarValueOffsetBits) - 1;

inline constexpr std::uint64_t var_announce_value(std::size_t idx, std::uint64_t offset) {
  return (static_cast<std::uint64_t>(idx) << kVarValueOffsetBits) |
         (offset & kVarValueOffsetMask);
}
inline constexpr std::size_t var_announce_owner(std::uint64_t value) {
  return static_cast<std::size_t>(value >> kVarValueOffsetBits);
}
inline constexpr std::uint64_t var_announce_offset(std::uint64_t value) {
  return value & kVarValueOffsetMask;
}

/// Compile-time ABI fingerprint the attacher checks against the creator.
inline constexpr std::uint32_t abi_fingerprint() {
  return static_cast<std::uint32_t>(sizeof(ChannelHeader) * 1000003u +
                                    sizeof(IpcSlot) * 10007u +
                                    sizeof(PeerSlot) * 101u +
                                    sizeof(PeerTelemetry) * 13u +
                                    sizeof(VarIpcRing) * 7u + kLayoutVersion);
}

}  // namespace pcpc::ipc
