// Thin futex wrapper for cross-process wakeups (Linux only).
//
// The pcpc::ipc host parks a consumer process on a 32-bit word inside
// the shared-memory segment and lets producer processes wake it with one
// syscall — the cross-process analogue of the thread host's
// condition_variable, with the property the paper's accounting needs:
// the *producer* decides (and records) when a wake is issued, so paid
// wakeups are countable at the exact point they cost a syscall.
//
// On non-Linux platforms kFutexSupported is false and both calls report
// failure; callers (the ipc host, pcpc_cli) must degrade to an
// in-process host instead — the EINTR/timeout semantics below are
// Linux's.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace pcpc::ipc {

#if defined(__linux__)
inline constexpr bool kFutexSupported = true;

/// Why a futex_wait returned.
enum class WaitResult : std::uint8_t {
  kWoken = 0,     ///< woken (or the word already changed — treat as woken)
  kTimeout = 1,   ///< timed out
  kInterrupted = 2,  ///< EINTR; retry or fall through to the poll path
};

/// Sleeps while `*word == expected`, up to `timeout_ns` (< 0 = forever).
/// Cross-process safe when `word` lives in a MAP_SHARED mapping.
inline WaitResult futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                             std::int64_t timeout_ns) {
  timespec ts{};
  timespec* tsp = nullptr;
  if (timeout_ns >= 0) {
    ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
    tsp = &ts;
  }
  const long rc = syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                          FUTEX_WAIT, expected, tsp, nullptr, 0);
  if (rc == 0) return WaitResult::kWoken;
  switch (errno) {
    case EAGAIN: return WaitResult::kWoken;  // word already moved past `expected`
    case ETIMEDOUT: return WaitResult::kTimeout;
    default: return WaitResult::kInterrupted;
  }
}

/// Wakes up to `n` waiters parked on `word`; returns how many were woken.
inline int futex_wake(std::atomic<std::uint32_t>* word, int n) {
  const long rc = syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                          FUTEX_WAKE, n, nullptr, nullptr, 0);
  return rc < 0 ? 0 : static_cast<int>(rc);
}

#else  // !__linux__

inline constexpr bool kFutexSupported = false;

enum class WaitResult : std::uint8_t { kWoken = 0, kTimeout = 1, kInterrupted = 2 };

inline WaitResult futex_wait(std::atomic<std::uint32_t>*, std::uint32_t, std::int64_t) {
  return WaitResult::kInterrupted;
}
inline int futex_wake(std::atomic<std::uint32_t>*, int) { return 0; }

#endif

}  // namespace pcpc::ipc
