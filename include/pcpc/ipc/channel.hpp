// Crash-safe cross-process MPSC channel over one shm segment.
//
// Endpoint objects (one Consumer, up to kMaxProducers Producers, each in
// its own process) wrap the shared layout from layout.hpp.  The slot
// protocol — claim/lease/publish/reclaim — is documented there; this
// header adds the process-facing machinery:
//
//   - registry join/leave with per-peer heartbeats,
//   - the reaper (dead-peer detection + whole-ring lease sweep),
//   - the futex doorbell with *exact* paid-wakeup accounting: a producer
//     pays a futex_wake only after winning the kConsumerSleeping ->
//     kConsumerWoken CAS, so every increment of ChannelHeader::futex_wakes
//     creates exactly one kConsumerWoken token, and the consumer consumes
//     each token exactly once (its wake-side exchange back to awake).
//     The obs ledger's paid-wakeup total therefore equals the shm futex
//     wake counter identically, not statistically.
//
// Failure semantics (the contract the kill-chaos harness checks):
//   - SIGKILLed producer: consumer detects it (heartbeat stale + pid
//     probe), reclaims its in-flight lease and any hole it left, and
//     keeps draining — never wedges.
//   - SIGSTOPped producer: alive by definition; its lease is honored and
//     the consumer stalls on that slot until SIGCONT (strict order is
//     part of the differential contract, not negotiable under stop).
//   - Dead consumer: producers observe it via the registry and fail
//     pushes with PushResult::kConsumerDead after bounded retry/backoff.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "pcpc/ipc/futex.hpp"
#include "pcpc/ipc/layout.hpp"
#include "pcpc/ipc/shm.hpp"
#include "pcpc/ipc/telemetry.hpp"
#include "pcpc/obs/obs.hpp"

namespace pcpc::ipc {

/// CLOCK_MONOTONIC in nanoseconds (shared timebase for heartbeats/leases).
std::int64_t now_ns();

/// Liveness probe: false when `pid` is gone OR a zombie (SIGKILLed
/// children stay zombies until the parent reaps them; for lease purposes
/// a zombie is dead — it will never publish again).
bool pid_alive(std::int32_t pid);

/// Channel geometry + protocol timing, fixed at creation.
struct ChannelConfig {
  std::size_t capacity = 1024;            ///< logical admission bound
  std::int64_t lease_ns = 5'000'000;      ///< free-hole reclaim age (5 ms)
  std::int64_t heartbeat_period_ns = 1'000'000;  ///< peer refresh Delta
  std::int64_t heartbeat_timeout_ns = 0;  ///< staleness bound; 0 = 8 * period
  std::uint64_t wake_threshold = 0;       ///< doorbell at fill >= this; 0 = cap/2
  /// 1-in-N item-lifecycle sampling, shared by every peer (the ticket is
  /// the sample key, so both sides agree without tagging payloads).
  /// 0 disarms spans on this channel.
  std::uint64_t span_sample_every = 0;
  /// Varlen payload plane: logical capacity (record footprint bytes) of
  /// each producer's in-segment byte ring.  0 = no plane (v2-equivalent
  /// segment; push_record/drain_records are unusable).  A channel with a
  /// payload plane carries records exclusively: every control value is an
  /// announcement, so plain push() must not be mixed in.
  std::size_t payload_ring_bytes = 0;
  std::uint32_t payload_max_record = 16u << 10;  ///< max payload bytes per record
};

/// Producer-side retry policy for a full ring / slow consumer.
struct ProducerConfig {
  int full_retries = 64;
  std::int64_t initial_backoff_ns = 2'000;
  std::int64_t max_backoff_ns = 1'000'000;
  AttachOptions attach;
};

enum class PushResult : std::uint8_t {
  kOk = 0,
  kFull = 1,          ///< still full after bounded retry/backoff
  kConsumerDead = 2,  ///< registry says nobody will ever drain this
  kLeaseLost = 3,     ///< consumer reclaimed our slot mid-publish
};

const char* push_result_name(PushResult r);

/// Crash-injection points for the kill-chaos harness: the hook runs
/// between protocol steps so a test child can raise(SIGKILL) exactly
/// there.  Production code never sets it.
enum class CrashPoint : std::uint8_t {
  kAfterClaim = 0,   ///< ticket claimed, lease not yet taken (leaves a hole)
  kMidPublish = 1,   ///< lease taken, value not yet published (leaves a lock)
  kAfterPublish = 2, ///< value published, counters not yet bumped
  // Varlen (push_record) protocol steps, before the control push above:
  kAfterReserve = 3, ///< record bytes claimed in the var ring (kReserved header)
  kAfterCommit = 4,  ///< record committed, announcement not yet pushed
};

/// Everything the conservation harness asserts on, read from shm.
struct ConservationReport {
  std::uint64_t admitted = 0;   ///< tail_ticket: tickets handed out
  std::uint64_t consumed = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t residue = 0;    ///< admitted - consumed - reclaimed (in flight)
  std::uint64_t acked_pushes = 0;  ///< producer-counted successful publishes
  std::uint64_t dropped = 0;       ///< producer-counted rejects (full / dead)
  std::uint64_t lease_lost = 0;
  std::uint64_t futex_wakes = 0;   ///< paid wakes (producer-side count)
  std::uint64_t doorbell = 0;
  std::uint64_t peers_reaped = 0;
  // Varlen payload plane, byte-granular (all zero when the plane is
  // absent).  The byte conservation identity mirrors the ticket one:
  //   var_admitted_bytes == var_consumed_bytes + var_reclaimed_bytes
  //                         + var_padding_bytes + var_residue_bytes
  // where admitted = the rings' claim cursors (every byte a producer ever
  // claimed, wrap padding included), consumed/reclaimed = released record
  // footprints by fate, and residue = claimed-not-yet-released.  Exact at
  // every quiescent point, SIGKILL included, because each ring's cursors
  // and tallies are shm state swept by the reaper.
  std::uint64_t var_admitted_bytes = 0;
  std::uint64_t var_consumed_bytes = 0;   ///< released footprints, consumed fate
  std::uint64_t var_reclaimed_bytes = 0;  ///< released footprints, reclaimed fate
  std::uint64_t var_padding_bytes = 0;    ///< released wrap padding
  std::uint64_t var_residue_bytes = 0;    ///< claimed, not yet released
  std::uint64_t var_delivered_records = 0;  ///< records handed to drain_records
  std::uint64_t var_delivered_bytes = 0;    ///< payload bytes handed out
  std::uint64_t var_lost_records = 0;  ///< announcements of crash-reclaimed records
};

/// Reads the report off any mapped channel segment.
ConservationReport read_report(const ChannelHeader& hdr);

/// Why Consumer::wait returned.
enum class WakeKind : std::uint8_t {
  kDoorbell = 0,  ///< paid wake: a producer rang and futex_wake'd us
  kTimeout = 1,   ///< free wake: slot timer Delta elapsed
  kPoll = 2,      ///< work was already visible; never slept
};

/// The single draining endpoint.  Creates and owns the segment; unlinks
/// it on destruction.  All methods are single-threaded (one consumer).
class Consumer {
 public:
  Consumer() = default;
  ~Consumer();
  Consumer(Consumer&&) noexcept;
  Consumer& operator=(Consumer&&) noexcept;
  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  static std::optional<Consumer> create(const std::string& shm_name,
                                        const ChannelConfig& config,
                                        std::string* error = nullptr);

  /// Pops published items in strict ticket order, invoking `fn(value)`
  /// per item, until the ring is empty, a hole/lease blocks the head, or
  /// `max_items` is reached.  Performs inline recovery: expired free
  /// holes and leases of provably dead owners are reclaimed as they
  /// arrive at the head.  Returns items consumed (reclaims excluded).
  template <typename Fn>
  std::size_t drain(Fn&& fn, std::size_t max_items = SIZE_MAX) {
    maybe_heartbeat();
    std::size_t n = 0;
    while (n < max_items) {
      const std::uint64_t h = hdr_->head.load(std::memory_order_relaxed);
      if (h == hdr_->tail_ticket.load(std::memory_order_acquire)) break;
      IpcSlot& slot = slots_[h % hdr_->n_slots];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == h + 1) {  // published
        const std::uint64_t value = slot.value;
        slot.seq.store(h + hdr_->n_slots, std::memory_order_release);
        hdr_->head.store(h + 1, std::memory_order_release);
        hdr_->consumed.fetch_add(1, std::memory_order_relaxed);
        hole_ticket_ = UINT64_MAX;
        // Lifecycle sampling keys on the ticket (h), the same rule the
        // producer used for the produce/enqueue stages of this item.
        if (span_every_ != 0 && h % span_every_ == 0 && obs::enabled()) {
          const std::int64_t t0 = now_ns() - hdr_->epoch_mono_ns;
          fn(value);
          obs::note_item_stage(obs::kNoConsumer, 0, h, obs::ItemStage::kDrainStart,
                               t0);
          obs::note_item_stage(obs::kNoConsumer, 0, h, obs::ItemStage::kHandlerDone,
                               now_ns() - hdr_->epoch_mono_ns);
        } else {
          fn(value);
        }
        ++n;
      } else if (seq == h + hdr_->n_slots) {  // swept out-of-band by the reaper
        hdr_->head.store(h + 1, std::memory_order_release);
        hole_ticket_ = UINT64_MAX;
      } else if (!try_recover_head(h, slot, seq)) {
        break;  // head blocked on a live lease / young hole; caller re-enters
      }
    }
    return n;
  }

  /// Varlen drain: pops announcements in strict ticket order and resolves
  /// each against its producer's byte ring.  The matching committed
  /// record is handed to `fn(payload)` as a zero-copy in-segment span
  /// (valid only during the call); a mismatch — the announced offset is
  /// not the ring's oldest committed record — means the record was
  /// reclaimed after its producer died and is counted var_lost_records
  /// instead of delivered.  Every touched ring's claimed bytes are
  /// released once at the end (one cursor publication per ring per
  /// drain).  Returns records delivered (losses and reclaims excluded).
  /// Only meaningful on a channel created with payload_ring_bytes > 0.
  template <typename Fn>
  std::size_t drain_records(Fn&& fn, std::size_t max_records = SIZE_MAX) {
    std::size_t delivered = 0;
    std::uint32_t touched = 0;
    drain(
        [&](std::uint64_t value) {
          const std::size_t idx = var_announce_owner(value);
          const std::uint64_t off = var_announce_offset(value);
          if (idx >= kMaxProducers || var_rings_[idx] == nullptr) {
            hdr_->var_lost_records.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          VarIpcRing& ring = *var_rings_[idx];
          touched |= 1u << idx;
          auto view = ring.peek_front();
          if (view.has_value() && (view->offset & kVarValueOffsetMask) == off) {
            fn(std::span<const std::byte>(view->data, view->size));
            hdr_->var_delivered_records.fetch_add(1, std::memory_order_relaxed);
            hdr_->var_delivered_bytes.fetch_add(view->size,
                                                std::memory_order_relaxed);
            ring.claim_front();  // move past the delivered record
            ++delivered;
          } else {
            // The announced record is gone: its producer died after the
            // announcement and the reaper resolved the ring.  peek_front
            // already skipped it (reclaimed) — nothing to put back.
            hdr_->var_lost_records.fetch_add(1, std::memory_order_relaxed);
          }
        },
        max_records);
    for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
      if ((touched & (1u << idx)) != 0) {
        var_rings_[idx]->release_until(var_rings_[idx]->claim_offset());
      }
    }
    return delivered;
  }

  /// Parks on the futex doorbell for up to `timeout_ns` once the ring
  /// looks empty, attributing the wake through pcpc::obs (paid when a
  /// producer futex_wake'd us, free/scheduled on timeout).  Returns
  /// immediately with kPoll when work is already visible.
  WakeKind wait(std::int64_t timeout_ns);

  /// Dead-peer detection: marks producers with stale heartbeats whose
  /// pid is gone as dead, drains their telemetry rings, sweeps the whole
  /// ring for their leases (reclaiming each), folds their counters
  /// (including telemetry cells) into the retired tallies, and frees
  /// their registry slots for reuse.  Returns the number of peers reaped.
  std::size_t reap();

  /// Drains every producer's shm trace ring into the local obs::Session
  /// (events re-stamped with origin = registry index + 1).  No-op when
  /// no session is installed.  Returns events merged.
  std::size_t drain_telemetry();

  /// Merged cross-process metric totals (live peer cells + retired).
  TelemetrySnapshot telemetry() const { return merged_telemetry(*hdr_); }

  void heartbeat();

  ConservationReport report() const { return read_report(*hdr_); }
  const ChannelHeader& header() const { return *hdr_; }
  const std::string& shm_name() const { return segment_.name(); }
  bool valid() const { return hdr_ != nullptr; }

  /// True when the head slot has a published item ready to pop.
  bool has_visible_work() const;

 private:
  bool try_recover_head(std::uint64_t h, IpcSlot& slot, std::uint64_t seq);
  std::size_t drain_peer_telemetry(std::size_t idx);
  void maybe_heartbeat();

  ShmSegment segment_;
  ChannelHeader* hdr_ = nullptr;
  IpcSlot* slots_ = nullptr;
  /// Local addresses of the per-producer payload rings (all nullptr when
  /// the plane is absent).
  std::array<VarIpcRing*, kMaxProducers> var_rings_{};
  std::uint64_t hole_ticket_ = UINT64_MAX;  ///< head hole being aged
  std::int64_t hole_since_ns_ = 0;
  std::int64_t last_heartbeat_ns_ = 0;
  std::uint64_t span_every_ = 0;  ///< cached hdr_->span_sample_every
};

/// One producing endpoint.  Attaches to an existing channel (with the
/// shm-level retry/backoff) and joins the registry.  Single-threaded.
class Producer {
 public:
  Producer() = default;
  ~Producer();
  Producer(Producer&&) noexcept;
  Producer& operator=(Producer&&) noexcept;
  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  static std::optional<Producer> attach(const std::string& shm_name,
                                        const ProducerConfig& config = {},
                                        std::string* error = nullptr);

  /// Publishes one value.  Retries a full ring `full_retries` times with
  /// exponential backoff before giving up with kFull; checks consumer
  /// liveness on every retry and fails fast with kConsumerDead.  kFull
  /// and kConsumerDead are counted as drops (the overflow policy of this
  /// host is DropNewest — the caller keeps the value and may re-offer).
  PushResult push(std::uint64_t value);

  /// Zero-copy varlen publish: reserves `payload.size()` bytes in this
  /// producer's in-segment byte ring, copies the payload in (the only
  /// copy on the whole cross-process path), commits, and announces the
  /// record to the consumer via one control push.  The full lease
  /// protocol covers the record: a reaper that declared us dead wins the
  /// commit CAS race (kLeaseLost), and a record whose announcement could
  /// not be published is withdrawn so the consumer's record<->control
  /// correspondence stays exact.  Requires payload_ring_bytes > 0.
  PushResult push_record(std::span<const std::byte> payload);

  void heartbeat();

  /// Test-only: invoked between protocol steps (see CrashPoint).
  void set_crash_hook(std::function<void(CrashPoint)> hook) {
    crash_hook_ = std::move(hook);
  }

  ConservationReport report() const { return read_report(*hdr_); }
  TelemetrySnapshot telemetry() const { return merged_telemetry(*hdr_); }
  const ChannelHeader& header() const { return *hdr_; }
  std::size_t registry_index() const { return index_; }
  bool valid() const { return hdr_ != nullptr; }
  bool consumer_dead() const;

  /// Leaves the registry (clean detach).  Called by the destructor.
  void detach();

 private:
  void maybe_heartbeat();
  void ring_doorbell();

  ShmSegment segment_;
  ChannelHeader* hdr_ = nullptr;
  IpcSlot* slots_ = nullptr;
  VarIpcRing* ring_ = nullptr;  ///< this producer's payload ring (plane armed)
  std::size_t index_ = SIZE_MAX;
  ProducerConfig config_;
  std::int64_t last_heartbeat_ns_ = 0;
  std::uint64_t span_every_ = 0;  ///< cached hdr_->span_sample_every
  std::function<void(CrashPoint)> crash_hook_;
};

}  // namespace pcpc::ipc
