// Chaos harness for the simulation host.
//
// Wires one FaultInjector into a full PBPL simulation run: producer
// bursts and stalls become trace transforms, slow handlers inflate
// virtual service time, slot deadlines pick up scheduling jitter, and
// pool pressure seizes global-buffer segments before the run starts.
// Everything stays deterministic — same traces, config and fault seed
// reproduce the run bit-for-bit, which is what lets the chaos tests
// assert exact item conservation under arbitrary fault mixes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pcpc/core/config.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/fault/fault_injector.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::fault {

/// Applies producer-side faults to one trace: each arrival may burst
/// into `burst_factor` items, and each arrival may stall, shifting that
/// and every later arrival of this producer by `stall_duration`.  The
/// result stays time-sorted.
trace::Trace apply_producer_faults(const trace::Trace& original, FaultInjector& injector);

/// Outcome of one chaos simulation run.
struct ChaosRunResult {
  core::PbplResult pbpl;          ///< the usual aggregate counters
  FaultStats faults;              ///< what the injector actually did
  std::size_t offered_items = 0;  ///< post-fault items within the horizon
};

/// run_pbpl with faults: transforms every trace through `injector`,
/// installs deadline jitter on the simulator, inflates slow batches'
/// service time and applies pool pressure, then runs to `horizon`.
ChaosRunResult run_pbpl_under_faults(std::span<const trace::Trace> traces,
                                     SimDuration horizon, const core::PbplConfig& config,
                                     FaultInjector& injector);

/// One named entry of the chaos scenario matrix.
struct Scenario {
  std::string name;
  FaultConfig faults;
};

/// The standard scenario matrix exercised by tests and the overload
/// bench: ×10 producer bursts, 50 ms producer stalls, a slow consumer
/// handler, buffer-pool pressure, slot-clock jitter, and all of them at
/// once.  `seed` seeds every scenario's injector.
std::vector<Scenario> standard_scenarios(std::uint64_t seed);

}  // namespace pcpc::fault
