// Deterministic fault injection for both PBPL hosts.
//
// The paper's evaluation (and the seed reproduction) measures the steady
// state: producers whose rate the h-window predictor can track.  The
// EXCESS reports and the Jiffy queue paper both stress that overload and
// contention — not the steady state — decide whether a concurrent design
// survives production.  This module supplies the misbehaviour: producer
// bursts and stalls, slow consumer handlers, slot-deadline clock jitter
// and buffer-pool pressure, all drawn from seeded xoshiro streams so a
// chaos run is exactly reproducible from its seed.
//
// One FaultInjector instance serves either host.  The simulation host
// transforms traces and inflates virtual service times (fault/chaos.hpp);
// the thread host (pcpc::runtime) calls the same queries from producer
// and manager threads, so every mutating query takes an internal lock.
// Each fault class draws from its own forked stream: enabling one fault
// never changes the decision sequence of another.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/types.hpp"
#include "pcpc/obs/obs.hpp"

namespace pcpc::fault {

/// Knobs of one chaos scenario.  All probabilities are per-opportunity
/// (per produced item, per batch, per scheduled deadline); everything
/// defaults to off so a default-constructed config is a no-op.
struct FaultConfig {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// Producer bursts: with `burst_probability` per produced item, the
  /// item arrives as a burst of `burst_factor` items (the original plus
  /// factor-1 extras at the same instant) — the ×10 mispredicted spike
  /// the moving average cannot see coming.
  double burst_probability = 0.0;
  std::size_t burst_factor = 10;

  /// Producer stalls: with `stall_probability` per item, the producer
  /// pauses for `stall_duration` before delivering.  On the thread host
  /// the producer thread sleeps; on the simulation host the stall shifts
  /// this and every later arrival of that producer.
  double stall_probability = 0.0;
  SimDuration stall_duration = milliseconds(50);

  /// Slow consumer: with `slow_handler_probability` per drained batch,
  /// the handler takes an extra `handler_delay` (thread host: the manager
  /// thread sleeps holding its core; sim host: the batch's virtual
  /// service time grows).
  double slow_handler_probability = 0.0;
  SimDuration handler_delay = milliseconds(5);

  /// Slot-deadline clock jitter: each scheduled slot wakeup lands within
  /// ±`deadline_jitter` of its nominal time (uniform), modelling timer
  /// coalescing and clock skew.  0 disables.
  SimDuration deadline_jitter = 0;

  /// Buffer-pool pressure: this fraction of the global pool's segments is
  /// seized at startup and never returned, so elastic resizing and
  /// emergency borrows fight over the remainder.  Clamped to [0, 1).
  double pool_pressure = 0.0;

  /// Process kill (pcpc::ipc hosts): with `kill_probability` per push
  /// opportunity, the producer process SIGKILLs itself at a crash point
  /// drawn uniformly from the slot protocol's steps (after-claim,
  /// mid-publish, after-publish) — the harness wires the decision into
  /// Producer::set_crash_hook.  In-process hosts ignore it.
  double kill_probability = 0.0;

  /// Process suspend: with `stop_probability` per push opportunity, the
  /// producer is SIGSTOPped for `stop_duration`, then SIGCONTed — alive
  /// the whole time, so its leases must survive (no reclaim).
  double stop_probability = 0.0;
  SimDuration stop_duration = milliseconds(20);

  /// Attach delay: with `attach_delay_probability` per attach attempt,
  /// the attaching process sleeps `attach_delay` first, exercising the
  /// bounded-retry/backoff attach path.
  double attach_delay_probability = 0.0;
  SimDuration attach_delay = milliseconds(10);

  /// Load swing: a seeded utilization wave the fleet controller must
  /// track.  load_scale(now) returns a multiplicative factor around 1.0
  /// (clamped to [0, 2]) — a sinusoid by default, a square wave with
  /// `load_swing_step` — with a seeded phase, so harnesses that scale
  /// arrival rates by it exercise park/unpark and migration churn
  /// reproducibly.  amplitude 0 disables.
  double load_swing_amplitude = 0.0;
  SimDuration load_swing_period = seconds(1);
  bool load_swing_step = false;

  /// True when any fault class is active.
  bool any() const {
    return burst_probability > 0.0 || stall_probability > 0.0 ||
           slow_handler_probability > 0.0 || deadline_jitter > 0 ||
           pool_pressure > 0.0 || kill_probability > 0.0 ||
           stop_probability > 0.0 || attach_delay_probability > 0.0 ||
           load_swing_amplitude > 0.0;
  }
};

/// What the injector actually did; read after a run to qualify results.
struct FaultStats {
  std::uint64_t bursts = 0;            ///< burst events triggered
  std::uint64_t burst_items = 0;       ///< extra items injected by bursts
  std::uint64_t stalls = 0;            ///< producer stalls triggered
  std::uint64_t slow_batches = 0;      ///< batches given a handler delay
  std::uint64_t jittered_deadlines = 0;  ///< deadlines perturbed
  SimDuration total_stall = 0;         ///< summed stall time
  SimDuration total_handler_delay = 0; ///< summed handler delay
  std::size_t seized_segments = 0;     ///< pool segments held by pressure
  std::uint64_t process_kills = 0;     ///< SIGKILL crash points fired
  std::uint64_t process_stops = 0;     ///< SIGSTOP/SIGCONT suspensions
  std::uint64_t attach_delays = 0;     ///< delayed shm attach attempts
  SimDuration total_stop = 0;          ///< summed suspension time
  SimDuration total_attach_delay = 0;  ///< summed attach delay
  std::uint64_t load_swings = 0;       ///< load-swing period boundaries crossed
};

/// Seeded, thread-safe fault oracle.  Deterministic: the decision
/// sequence is a pure function of (seed, call order per fault class).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : config_(config),
        burst_rng_(mix(config.seed, 1)),
        stall_rng_(mix(config.seed, 2)),
        handler_rng_(mix(config.seed, 3)),
        jitter_rng_(mix(config.seed, 4)),
        kill_rng_(mix(config.seed, 5)),
        stop_rng_(mix(config.seed, 6)),
        attach_rng_(mix(config.seed, 7)),
        swing_rng_(mix(config.seed, 8)),
        swing_phase_(swing_rng_.uniform(0.0, 1.0)) {}

  const FaultConfig& config() const { return config_; }

  /// Extra items to inject for this produced item (0 = no burst).
  std::size_t burst_items() {
    if (config_.burst_probability <= 0.0 || config_.burst_factor < 2) return 0;
    std::scoped_lock lock(mutex_);
    if (!burst_rng_.bernoulli(config_.burst_probability)) return 0;
    const std::size_t extra = config_.burst_factor - 1;
    ++stats_.bursts;
    stats_.burst_items += extra;
    obs::note_fault(obs::FaultKind::kBurst, static_cast<std::int64_t>(extra));
    return extra;
  }

  /// How long the producer should stall before this delivery (0 = none).
  SimDuration producer_stall() {
    if (config_.stall_probability <= 0.0 || config_.stall_duration <= 0) return 0;
    std::scoped_lock lock(mutex_);
    if (!stall_rng_.bernoulli(config_.stall_probability)) return 0;
    ++stats_.stalls;
    stats_.total_stall += config_.stall_duration;
    obs::note_fault(obs::FaultKind::kStall, config_.stall_duration);
    return config_.stall_duration;
  }

  /// Extra handler time for this drained batch (0 = none).
  SimDuration handler_delay() {
    if (config_.slow_handler_probability <= 0.0 || config_.handler_delay <= 0) return 0;
    std::scoped_lock lock(mutex_);
    if (!handler_rng_.bernoulli(config_.slow_handler_probability)) return 0;
    ++stats_.slow_batches;
    stats_.total_handler_delay += config_.handler_delay;
    obs::note_fault(obs::FaultKind::kSlowHandler, config_.handler_delay);
    return config_.handler_delay;
  }

  /// Signed perturbation for one scheduled slot deadline, uniform in
  /// [-deadline_jitter, +deadline_jitter].
  SimDuration deadline_jitter() {
    if (config_.deadline_jitter <= 0) return 0;
    std::scoped_lock lock(mutex_);
    const auto span = static_cast<double>(config_.deadline_jitter);
    const auto jitter = static_cast<SimDuration>(jitter_rng_.uniform(-span, span));
    if (jitter != 0) {
      ++stats_.jittered_deadlines;
      obs::note_fault(obs::FaultKind::kDeadlineJitter, jitter);
    }
    return jitter;
  }

  /// How many of `total_segments` pool segments pressure should seize.
  std::size_t pressure_segments(std::size_t total_segments) const {
    const double p = std::clamp(config_.pool_pressure, 0.0, 0.99);
    return static_cast<std::size_t>(p * static_cast<double>(total_segments));
  }

  /// Records the segments actually seized (host-side bookkeeping).
  void note_seized(std::size_t segments) {
    std::scoped_lock lock(mutex_);
    stats_.seized_segments = segments;
    if (segments > 0) {
      obs::note_fault(obs::FaultKind::kPoolPressure,
                      static_cast<std::int64_t>(segments));
    }
  }

  /// Crash point for this push opportunity: -1 = none, else 0..2 mapping
  /// onto pcpc::ipc::CrashPoint (after-claim, mid-publish,
  /// after-publish).  The caller (a forked producer) SIGKILLs itself
  /// when its push reaches that point.
  int process_crash_point() {
    if (config_.kill_probability <= 0.0) return -1;
    std::scoped_lock lock(mutex_);
    if (!kill_rng_.bernoulli(config_.kill_probability)) return -1;
    const int point = static_cast<int>(kill_rng_.next_below(3));
    ++stats_.process_kills;
    obs::note_fault(obs::FaultKind::kProcKill, point);
    return point;
  }

  /// How long this process should be suspended (SIGSTOP…SIGCONT) before
  /// the next push (0 = none).  The parent harness applies the signals;
  /// the decision is drawn here so it replays by seed.
  SimDuration process_stop() {
    if (config_.stop_probability <= 0.0 || config_.stop_duration <= 0) return 0;
    std::scoped_lock lock(mutex_);
    if (!stop_rng_.bernoulli(config_.stop_probability)) return 0;
    ++stats_.process_stops;
    stats_.total_stop += config_.stop_duration;
    obs::note_fault(obs::FaultKind::kProcStop, config_.stop_duration);
    return config_.stop_duration;
  }

  /// Delay to impose before this shm attach attempt (0 = none).
  SimDuration attach_delay() {
    if (config_.attach_delay_probability <= 0.0 || config_.attach_delay <= 0) return 0;
    std::scoped_lock lock(mutex_);
    if (!attach_rng_.bernoulli(config_.attach_delay_probability)) return 0;
    ++stats_.attach_delays;
    stats_.total_attach_delay += config_.attach_delay;
    obs::note_fault(obs::FaultKind::kAttachDelay, config_.attach_delay);
    return config_.attach_delay;
  }

  /// Multiplicative load factor at `now` (1.0 when the swing is off).
  /// A pure function of (seed, now) — safe to evaluate from any thread,
  /// at any cadence, without perturbing other fault streams.  The lock
  /// only guards the period-crossing bookkeeping in stats.
  double load_scale(SimTime now) {
    if (config_.load_swing_amplitude <= 0.0 || config_.load_swing_period <= 0) {
      return 1.0;
    }
    std::scoped_lock lock(mutex_);
    const double cycles =
        to_seconds(now) / to_seconds(config_.load_swing_period) + swing_phase_;
    const auto crossed = static_cast<std::uint64_t>(std::max(cycles, 0.0));
    if (crossed > stats_.load_swings) {
      stats_.load_swings = crossed;
      obs::note_fault(obs::FaultKind::kLoadSwing,
                      static_cast<std::int64_t>(crossed));
    }
    const double frac = cycles - std::floor(cycles);
    const double wave = config_.load_swing_step
                            ? (frac < 0.5 ? 1.0 : -1.0)
                            : std::sin(2.0 * 3.141592653589793 * frac);
    return std::clamp(1.0 + config_.load_swing_amplitude * wave, 0.0, 2.0);
  }

  /// Snapshot of everything injected so far.
  FaultStats stats() const {
    std::scoped_lock lock(mutex_);
    return stats_;
  }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t s = seed + 0x632be59bd9b4e019ULL * stream;
    return splitmix64(s);
  }

  const FaultConfig config_;
  mutable std::mutex mutex_;
  Rng burst_rng_;
  Rng stall_rng_;
  Rng handler_rng_;
  Rng jitter_rng_;
  Rng kill_rng_;
  Rng stop_rng_;
  Rng attach_rng_;
  Rng swing_rng_;
  double swing_phase_;
  FaultStats stats_;
};

}  // namespace pcpc::fault
