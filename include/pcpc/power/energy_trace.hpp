// Power time series and idle-state residency analytics.
//
// The paper's measurement instrument is an oscilloscope sampling the
// board's supply: its Figure 1 argues visually that grouped activity
// peaks cost less than scattered ones.  This module produces the model's
// equivalent artifacts from a finalized core timeline:
//   * a sampled power trace P(t) (for plotting / Figure 1 reproduction);
//   * per-C-state residency: how much idle time the core actually spent
//     in each ladder state — the quantity `cpupower idle-info` reports
//     and the mechanism behind the grouping gain.
#pragma once

#include <string>
#include <vector>

#include "pcpc/power/core_timeline.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::power {

/// One sample of the power trace.
struct PowerSample {
  SimTime time = 0;
  double watts = 0.0;
};

/// Samples the modeled instantaneous power of a finalized timeline at
/// `resolution` intervals.  Idle power descends through the C-state
/// ladder within each gap, exactly as the energy ledger integrates it;
/// wakeup energy is spread over the sample containing the transition.
std::vector<PowerSample> sample_power(const CoreTimeline& timeline,
                                      const PowerModelParams& params,
                                      SimDuration resolution);

/// Writes a power trace as "time_s,watts" CSV.  Returns false on IO error.
bool save_power_trace(const std::vector<PowerSample>& samples, const std::string& path);

/// Idle-state residency of one timeline.
struct Residency {
  std::string state;            ///< C-state name ("C1-wfi", ...)
  SimDuration time = 0;         ///< total residency
  double fraction_of_idle = 0;  ///< share of all idle time
};

/// Splits every idle gap along the ladder's demotion schedule and sums
/// residency per state.  Also reports active time under the pseudo-state
/// name "C0-active" (fraction_of_idle = 0 for it).
std::vector<Residency> idle_residency(const CoreTimeline& timeline,
                                      const CStateModel& ladder);

/// Distribution of idle-gap lengths (log-ish fixed buckets), for the
/// "contiguous idle" analysis: count of gaps in [0,100µs), [100µs,1ms),
/// [1ms,10ms), [10ms,100ms), [100ms,∞).
struct GapBucket {
  std::string label;
  std::size_t count = 0;
  SimDuration total = 0;
};
std::vector<GapBucket> idle_gap_distribution(const CoreTimeline& timeline);

}  // namespace pcpc::power
