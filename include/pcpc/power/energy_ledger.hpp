// Energy accounting over recorded core activity.
//
// Reproduces the paper's measurement methodology in model form: the scope
// measured *extra* watts drawn by the system while an implementation ran,
// relative to the idle baseline.  Here the same quantity is the integral
// of modeled power over the recorded timeline minus the energy the core
// would have drawn had it stayed idle the whole time.
#pragma once

#include <cstdint>
#include <span>

#include "pcpc/power/core_timeline.hpp"
#include "pcpc/power/cstate.hpp"

namespace pcpc::power {

/// Calibrated power/energy constants of the modeled platform.
struct PowerModelParams {
  /// Power drawn by one core while executing (C0), in watts.
  double active_power_w = 1.10;

  /// Energy charged per paid idle→active transition (the paper's ω):
  /// pipeline refill, cache warmup, voltage ramp.  Joules.
  double wakeup_energy_j = 8e-6;

  /// Board-level energy of moving one data item through the memory system
  /// (DRAM, interconnect, caches) — identical for every synchronization
  /// strategy.  The paper's series-resistor setup measures the whole
  /// board, so this common term is part of every reported number; without
  /// it a model that only counts core activity overstates the *relative*
  /// gaps between implementations.
  double item_transport_energy_j = 25e-6;

  /// Idle-state ladder used for idle gaps.
  CStateModel cstates = CStateModel::arndale_like();

  /// The paper's simplified two-state variant (Section IV-A assumption).
  static PowerModelParams simplified(double active_w = 1.10, double idle_w = 0.18,
                                     double wakeup_j = 8e-6);
};

/// How long the consumer's CPU work takes; converts item counts into
/// active time on the timeline (so per-item energy e(x) emerges from
/// active_power * time rather than being double-counted).
struct ServiceModel {
  /// CPU time to process one data item.
  SimDuration per_item = microseconds(2);

  /// Fixed CPU time per consumer invocation (scheduler + synchronization
  /// overhead paid whether the batch has 1 item or 100).
  SimDuration per_invocation = microseconds(5);

  /// Total busy time of an invocation processing `items` items.
  SimDuration batch_time(std::size_t items) const {
    return per_invocation + static_cast<SimDuration>(items) * per_item;
  }
};

/// Integrates modeled power over finalized timelines.
class EnergyLedger {
 public:
  explicit EnergyLedger(PowerModelParams params = {});

  const PowerModelParams& params() const { return params_; }

  /// Total energy of one finalized timeline, joules.  `active_scale`
  /// scales active power: <1 models DVFS dropping the frequency under a
  /// cooperative load (the paper attributes Yield's small saving over
  /// busy-wait to exactly this effect).
  double energy_joules(const CoreTimeline& timeline, double active_scale = 1.0) const;

  /// Energy the core would consume staying idle for the same span.
  double baseline_joules(const CoreTimeline& timeline) const;

  /// Mean extra power above the idle baseline, watts — the paper's
  /// reported "Power (watts)" / "Power (mWatts)" metric.
  double extra_power_watts(const CoreTimeline& timeline, double active_scale = 1.0) const;

  /// Sum of extra power across cores (multi-core experiments).
  double extra_power_watts(std::span<const CoreTimeline> timelines,
                           double active_scale = 1.0) const;

  /// The paper's per-item processing energy e(x) for x items, derived
  /// from the service model; used by the PBPL reservation cost function.
  double item_energy_j(const ServiceModel& service, std::size_t items) const;

  /// Mean board-level power of transporting `items` items over `span`
  /// (see PowerModelParams::item_transport_energy_j).
  double transport_power_watts(std::uint64_t items, SimDuration span) const;

 private:
  PowerModelParams params_;
};

}  // namespace pcpc::power
