// Per-core activity timeline: the ground truth every power metric in this
// library is derived from.
//
// The paper's formal model (Section IV) defines a wakeup as an idle→active
// transition of the core a consumer runs on, charged ω only when the core
// was idle.  Implementations record exactly those transitions here; the
// energy ledger then integrates power over the recorded intervals and the
// PowerTop-style report derives wakeups/s and usage ms/s — the same three
// metrics the paper measures.
#pragma once

#include <cstdint>
#include <vector>

#include "pcpc/common/types.hpp"

namespace pcpc::power {

/// The paper's simplified two-state core model: idle or active.
enum class CoreState { Idle, Active };

/// A maximal run of constant core state.
struct Interval {
  SimTime begin = 0;
  SimTime end = 0;
  CoreState state = CoreState::Idle;

  SimDuration length() const { return end - begin; }
};

/// Records idle/active transitions of one core over an experiment.
///
/// Transition calls must be monotone in time.  wake() on an active core and
/// sleep() on an idle core are no-ops, mirroring the paper's w(τ) which
/// charges nothing when the core is already awake — that no-op *is* the
/// latching benefit PBPL exploits.
class CoreTimeline {
 public:
  /// Starts the timeline idle at `start`.
  explicit CoreTimeline(SimTime start = 0);

  /// Idle→active transition at time t.  Counts one wakeup.  No-op when
  /// already active (returns false: no wakeup was paid).
  bool wake(SimTime t);

  /// Active→idle transition at time t.  No-op when already idle.
  bool sleep(SimTime t);

  /// Re-activates the core at time t *without* charging a wakeup, but only
  /// when no idle time has actually elapsed (t equals the last transition,
  /// i.e. the core slept and resumed at the same instant — back-to-back
  /// work).  When real idle time passed this falls back to wake() and the
  /// wakeup is charged.  Returns true when a wakeup was charged.
  bool resume(SimTime t);

  /// Closes the timeline at `end`; further transitions are forbidden.
  void finalize(SimTime end);

  /// Current state (before finalize) / final state (after).
  CoreState state() const { return state_; }
  bool is_active() const { return state_ == CoreState::Active; }

  /// Number of paid idle→active transitions so far.
  std::uint64_t wakeups() const { return wakeups_; }

  /// Total active time.  Before finalize, counts up to the last transition.
  SimDuration active_time() const { return active_time_; }

  /// Total idle time; valid after finalize().
  SimDuration idle_time() const;

  /// Total timeline span; valid after finalize().
  SimDuration duration() const;

  SimTime start_time() const { return start_; }
  SimTime end_time() const { return end_; }
  bool finalized() const { return finalized_; }

  /// All maximal constant-state intervals; valid after finalize().
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Active milliseconds per second of timeline — PowerTop's "usage".
  double usage_ms_per_s() const;

  /// Wakeups per second of timeline — PowerTop's "wakeups/s".
  double wakeups_per_s() const;

 private:
  void close_interval(SimTime t);

  SimTime start_;
  SimTime last_transition_;
  SimTime end_ = 0;
  CoreState state_ = CoreState::Idle;
  std::uint64_t wakeups_ = 0;
  SimDuration active_time_ = 0;
  std::vector<Interval> intervals_;
  bool finalized_ = false;
};

}  // namespace pcpc::power
