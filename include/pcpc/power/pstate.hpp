// CPU P-state (performance state) model and DVFS governors.
//
// Section II of the paper: DVFS scales frequency and voltage so that
// dynamic power follows P_d = C·V²·f, and "race-to-idle" argues that
// finishing the batch at a high P-state and parking in a deep C-state
// often beats crawling at a low frequency.  The paper's own system model
// deliberately excludes frequency scaling ("the system does not support
// frequency scaling and operates at two states"), so the main experiments
// run on the two-state model — this substrate exists to *test* that
// simplification: the race-to-idle ablation bench sweeps P-states and
// shows where the paper's assumption is and is not conservative.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pcpc/common/types.hpp"

namespace pcpc::power {

/// One frequency/voltage operating point.
struct PState {
  std::string name;
  double frequency_hz = 0.0;   ///< core clock
  double voltage_v = 0.0;      ///< supply voltage at that clock
};

/// A table of operating points with the P_d = C·V²·f dynamic-power law
/// plus a frequency-independent leakage term.
class PStateModel {
 public:
  /// `switched_capacitance` is the effective C in farads;
  /// `leakage_w` is static power drawn while the core is powered on.
  PStateModel(std::vector<PState> states, double switched_capacitance,
              double leakage_w);

  /// A Cortex-A15-flavoured five-point table (600 MHz .. 1.6 GHz).
  static PStateModel arndale_like();

  std::size_t size() const { return states_.size(); }
  const PState& state(std::size_t i) const { return states_.at(i); }

  /// Index of the highest-frequency state.
  std::size_t fastest() const { return states_.size() - 1; }

  /// Active power at state i: C·V²·f + leakage.
  double active_power_w(std::size_t i) const;

  /// Time to execute `work` cycles at state i.
  SimDuration execution_time(double work_cycles, std::size_t i) const;

  /// Energy to execute `work` cycles at state i (power × time).
  double execution_energy_j(double work_cycles, std::size_t i) const;

  /// The slowest state that still finishes `work_cycles` within
  /// `deadline`; falls back to the fastest when none fits.
  std::size_t slowest_meeting(double work_cycles, SimDuration deadline) const;

 private:
  std::vector<PState> states_;  // sorted by ascending frequency
  double capacitance_f_;
  double leakage_w_;
};

/// Outcome of one execute-then-idle strategy evaluation.
struct RaceToIdleOutcome {
  std::size_t pstate = 0;        ///< operating point used
  SimDuration busy = 0;          ///< execution time
  SimDuration idle = 0;          ///< remaining window spent idle
  double energy_j = 0.0;         ///< execution + idle + wakeup energy
};

/// Evaluates executing `work_cycles` inside a window of length `window`
/// at P-state `i`, idling the remainder on `idle_ladder` (one wakeup ω is
/// charged when any idle remains).  The race-to-idle question is whether
/// energy is minimized at the fastest state — see best_pstate().
class CStateModel;  // from cstate.hpp
RaceToIdleOutcome evaluate_window(const PStateModel& pstates, const CStateModel& idle,
                                  double work_cycles, SimDuration window,
                                  double wakeup_j, std::size_t pstate);

/// The energy-minimal P-state for the given window (exhaustive over the
/// table — the table is tiny).
RaceToIdleOutcome best_pstate(const PStateModel& pstates, const CStateModel& idle,
                              double work_cycles, SimDuration window, double wakeup_j);

}  // namespace pcpc::power
