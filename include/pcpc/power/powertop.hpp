// PowerTop-style per-implementation report.
//
// The paper reports three metrics per implementation (Section III-B):
// Power (extra watts), Wakeups/s, and Usage (ms/s).  This builds that
// report from finalized core timelines the same way PowerTop derives it
// from kernel counters.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pcpc/power/core_timeline.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::power {

/// One implementation's row in the report.
struct PowerTopRow {
  std::string name;
  double wakeups_per_s = 0.0;
  double usage_ms_per_s = 0.0;
  double extra_power_w = 0.0;
};

/// Builds the report row for an implementation that used the given cores.
/// Wakeups and usage are summed across cores, power via the ledger.
PowerTopRow powertop_row(std::string name, std::span<const CoreTimeline> timelines,
                         const EnergyLedger& ledger);

/// Renders rows as the aligned table the bench binaries print.
std::string render_report(std::span<const PowerTopRow> rows, const std::string& title);

}  // namespace pcpc::power
