// CPU C-state (idle state) model.
//
// Section II of the paper: cores save power in idle by descending through
// C-states (C1, C2, ...), but each deeper state needs a minimum residency
// to amortize its exit cost — which is exactly why *contiguous* idle time
// is worth more than the same total idle time chopped into short gaps
// (paper Fig. 1), and therefore why grouping wakeups saves power beyond
// the per-wakeup energy ω.
//
// The model mirrors the Linux cpuidle governor's ladder: for an idle gap
// of length L the core demotes stepwise, entering each deeper state once
// the remaining gap exceeds that state's target residency.
#pragma once

#include <string>
#include <vector>

#include "pcpc/common/types.hpp"

namespace pcpc::power {

/// One idle state of the ladder.
struct CState {
  std::string name;
  double power_w = 0.0;            ///< core power while resident
  SimDuration target_residency = 0;  ///< minimum gap to be worth entering
  SimDuration exit_latency = 0;      ///< time to wake from this state
};

/// A ladder of idle states ordered from shallowest to deepest.
class CStateModel {
 public:
  /// Builds a ladder; states must be ordered by increasing depth (non-
  /// increasing power, non-decreasing target residency).
  explicit CStateModel(std::vector<CState> states);

  /// The paper's simplified model: a single idle state with fixed power.
  static CStateModel two_state(double idle_power_w);

  /// A four-level ladder with Cortex-A15-flavoured magnitudes
  /// (WFI / core retention / core off / cluster off).
  static CStateModel arndale_like();

  /// Energy in joules consumed during one contiguous idle gap of length
  /// `gap`, following the demotion ladder.  Monotone and subadditive in
  /// `gap`: splitting a gap in two never saves energy.
  double idle_energy(SimDuration gap) const;

  /// Mean power over one contiguous idle gap.
  double idle_power(SimDuration gap) const;

  /// The deepest state reached during a gap of the given length.
  const CState& deepest_reached(SimDuration gap) const;

  const std::vector<CState>& states() const { return states_; }

 private:
  std::vector<CState> states_;
};

}  // namespace pcpc::power
