// Pending-event set for the discrete-event simulator.
//
// A binary min-heap ordered by (time, sequence number) — the sequence
// number makes simultaneous events fire in scheduling order, which keeps
// every experiment fully deterministic.  Cancellation is lazy: cancelled
// entries stay in the heap and are skipped on pop.
//
// Liveness is tracked by a flag-stamped dense array instead of a hash
// set: event ids are handed out sequentially, so `states_[id - base_]`
// resolves a cancel()/pending() probe with one bounds check and one byte
// load — no hashing, no buckets, no per-operation allocation (the seed
// kept an unordered_set of live ids, which put a hash insert+erase on
// every schedule/fire pair).  Retired prefixes of the array are trimmed
// amortized, and the array resets entirely whenever the queue drains, so
// memory stays proportional to the live+recently-retired window rather
// than to all ids ever issued.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "pcpc/common/types.hpp"

namespace pcpc::sim {

/// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

/// Callback invoked when an event fires.  Receives the firing time.
using EventFn = std::function<void(SimTime)>;

/// Min-heap of timed events with lazy cancellation.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a handle for cancel().
  EventId schedule(SimTime t, EventFn fn);

  /// Cancels a pending event.  Returns false when the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when the given event is still pending.
  bool pending(EventId id) const { return is_pending(id); }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kNever when empty.
  SimTime next_time() const;

  /// A fired event: its scheduled time, handle and callback.
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Removes and returns the earliest live event.  Must not be empty.
  Fired pop();

  /// Drops every pending event.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Moved out on pop; mutable because priority_queue::top() is const.
    mutable EventFn fn;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Liveness stamp of one issued id.  One byte; never goes back to
  /// Pending, so a stale heap entry can only be skipped, never revived.
  enum class State : std::uint8_t { Pending, Fired, Cancelled };

  bool is_pending(EventId id) const {
    // Ids below base_ were retired and trimmed; ids at or above next_id_
    // were never issued.  Both probe as "not pending", which is exactly
    // the contract cancel()/pending() had with the id set.
    return id >= base_ && id < next_id_ &&
           states_[static_cast<std::size_t>(id - base_)] == State::Pending;
  }

  void retire(EventId id, State to);
  void drop_cancelled() const;
  void compact();

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  /// states_[i] stamps event id base_ + i.
  std::vector<State> states_;
  EventId base_ = 1;         ///< id of states_[0]
  std::size_t live_ = 0;     ///< entries stamped Pending
  std::size_t retired_ = 0;  ///< retirements since the last compact()
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace pcpc::sim
