// Pending-event set for the discrete-event simulator.
//
// A binary min-heap ordered by (time, sequence number) — the sequence
// number makes simultaneous events fire in scheduling order, which keeps
// every experiment fully deterministic.  Cancellation is lazy: cancelled
// entries stay in the heap and are skipped on pop; a side set of pending
// ids keeps cancel() exact (cancelling a fired event is a no-op).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "pcpc/common/types.hpp"

namespace pcpc::sim {

/// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

/// Callback invoked when an event fires.  Receives the firing time.
using EventFn = std::function<void(SimTime)>;

/// Min-heap of timed events with lazy cancellation.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a handle for cancel().
  EventId schedule(SimTime t, EventFn fn);

  /// Cancels a pending event.  Returns false when the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when the given event is still pending.
  bool pending(EventId id) const { return pending_.contains(id); }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of live events.
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; kNever when empty.
  SimTime next_time() const;

  /// A fired event: its scheduled time, handle and callback.
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Removes and returns the earliest live event.  Must not be empty.
  Fired pop();

  /// Drops every pending event.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Moved out on pop; mutable because priority_queue::top() is const.
    mutable EventFn fn;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace pcpc::sim
