// Replays a sequence of timestamps as simulator events.
//
// Used by every implementation to turn a workload trace into producer
// events.  The replay chains one event at a time (each firing schedules
// the next), so memory stays O(1) per producer regardless of trace size.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "pcpc/sim/simulator.hpp"

namespace pcpc::sim {

/// Schedules `fn(t)` for every timestamp in `timestamps` that is strictly
/// before `horizon`.  Timestamps must be sorted ascending and not precede
/// the simulator's current time.
void replay(Simulator& simulator, std::span<const SimTime> timestamps, SimTime horizon,
            std::function<void(SimTime)> fn);

}  // namespace pcpc::sim
