// Discrete-event simulator with a virtual nanosecond clock.
//
// All producer-consumer implementations in pcpc::impls and the PBPL system
// in pcpc::core run as event callbacks on this engine.  Virtual time makes
// a 50-second experiment run in milliseconds and — more importantly for a
// power study — makes wakeup counts and idle intervals exact rather than
// subject to host-scheduler noise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "pcpc/common/assert.hpp"
#include "pcpc/sim/event_queue.hpp"

namespace pcpc::sim {

/// Single-threaded discrete-event engine.
class Simulator {
 public:
  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t >= now()`.
  EventId at(SimTime t, EventFn fn) {
    PCPC_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    return queue_.schedule(t, std::move(fn));
  }

  /// Schedules `fn` after a non-negative delay.
  EventId after(SimDuration delay, EventFn fn) {
    PCPC_ASSERT_MSG(delay >= 0, "negative delay");
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Like at(), but the target time picks up the installed wakeup
  /// perturbation (fault-injected clock jitter / timer coalescing),
  /// clamped so the event never lands in the past.  Used for *wakeup*
  /// scheduling (slot deadlines); workload replay keeps exact at().
  EventId at_perturbed(SimTime t, EventFn fn) {
    if (perturbation_) t = std::max(now_, t + perturbation_());
    return at(t, std::move(fn));
  }

  /// Installs (or clears, with {}) the wakeup perturbation drawn by
  /// at_perturbed(); returns a signed offset in virtual nanoseconds.
  void set_wakeup_perturbation(std::function<SimDuration()> perturbation) {
    perturbation_ = std::move(perturbation);
  }

  /// True when a wakeup perturbation is installed (fault injection on).
  bool perturbed() const { return static_cast<bool>(perturbation_); }

  /// Cancels a pending event; false when it already fired or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True when the given event is still pending.
  bool pending(EventId id) const { return queue_.pending(id); }

  /// Time of the next scheduled event; kNever when idle.
  SimTime next_event_time() const { return queue_.next_time(); }

  /// Number of pending events.
  std::size_t pending_events() const { return queue_.size(); }

  /// Fires exactly one event (the earliest).  Returns false when no
  /// events are pending.
  bool step();

  /// Runs until the queue drains or until the first event strictly after
  /// `until` would fire; `now()` ends at max(now, min(until, last event)).
  /// Events scheduled exactly at `until` do fire.
  void run_until(SimTime until);

  /// Runs until the event queue drains completely.
  void run();

  /// Total number of events dispatched so far.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Pushes the dispatched-event count into the obs registry.  step()
  /// batches this (one bulk add every few thousand events instead of one
  /// instrumentation call per event — the dispatch loop is the hottest
  /// path in the sim host); run()/run_until() flush on exit so the
  /// counter is exact whenever a harness can observe it.
  void flush_obs();

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t obs_flushed_ = 0;
  std::function<SimDuration()> perturbation_;
};

}  // namespace pcpc::sim
