// Arrival traces: the workload representation consumed by every
// producer-consumer implementation in this library.
//
// A trace is a monotonically non-decreasing sequence of virtual timestamps,
// one per produced data item — the in-memory equivalent of the web-server
// request log the paper replays (Arlitt & Jin's 1998 World Cup logs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pcpc/common/types.hpp"

namespace pcpc::trace {

/// Summary statistics of a trace; used by tests and by workload
/// characterization in the experiment reports.
struct TraceStats {
  std::size_t items = 0;
  SimDuration duration = 0;
  double mean_rate_hz = 0.0;       ///< items per second over the whole trace
  double peak_rate_hz = 0.0;       ///< max rate over 100 ms windows
  double min_rate_hz = 0.0;        ///< min rate over 100 ms windows
  double interarrival_cv = 0.0;    ///< coefficient of variation of gaps
};

/// An immutable, time-sorted sequence of item production timestamps.
class Trace {
 public:
  Trace() = default;

  /// Takes ownership of timestamps; they are sorted if needed.
  explicit Trace(std::vector<SimTime> timestamps);

  std::size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// Timestamp of item i (0-based, in production order).
  SimTime at(std::size_t i) const { return timestamps_[i]; }

  /// All timestamps, sorted ascending.
  std::span<const SimTime> timestamps() const { return timestamps_; }

  /// Time of the last item; 0 for an empty trace.
  SimTime end_time() const { return timestamps_.empty() ? 0 : timestamps_.back(); }

  /// Number of items with timestamp in [from, to).
  std::size_t count_in(SimTime from, SimTime to) const;

  /// Computes summary statistics with the given rate-estimation window.
  TraceStats stats(SimDuration window = milliseconds(100)) const;

  /// Returns the sub-trace with timestamps in [from, to), re-based to 0.
  Trace slice(SimTime from, SimTime to) const;

  /// Returns this trace cyclically rotated so it starts `offset` into the
  /// original timeline, preserving total duration.  This reproduces the
  /// paper's multi-producer setup where "each consumer is shifted one
  /// M-th further into the dataset" (Section VI-A).
  Trace phase_shift(SimDuration offset, SimDuration total_duration) const;

 private:
  std::vector<SimTime> timestamps_;
};

/// Convenience: evenly spaced arrivals (`n` items, `gap` apart, first at
/// `start`).  Used heavily in unit tests.
Trace uniform_trace(std::size_t n, SimDuration gap, SimTime start = 0);

/// Merges multiple traces into one sorted trace.
Trace merge(std::span<const Trace> traces);

}  // namespace pcpc::trace
