// Common Log Format (CLF) parser.
//
// The paper replays "a web server's incoming HTTP requests log" — the
// 1998 World Cup access logs.  Users who have such a log (CLF or combined
// format, the near-universal Apache/nginx default) can feed it straight
// into the library with this parser:
//
//   host ident user [10/Oct/2000:13:55:36 -0700] "GET /x HTTP/1.0" 200 2326
//
// Only the timestamp matters for a producer trace; everything else is
// validated loosely and skipped.
#pragma once

#include <cstddef>
#include <istream>
#include <optional>
#include <string>
#include <string_view>

#include "pcpc/common/types.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::trace {

/// Outcome of a CLF parse.
struct ClfParseResult {
  Trace trace;                 ///< timestamps re-based so the first is 0
  std::size_t lines = 0;       ///< total lines seen
  std::size_t parsed = 0;      ///< lines converted into items
  std::size_t malformed = 0;   ///< lines skipped
};

/// Parses one CLF timestamp field ("10/Oct/2000:13:55:36 -0700", without
/// brackets) into seconds since the Unix epoch.  Returns nullopt on
/// malformed input.  The zone offset is applied (result is UTC).
std::optional<std::int64_t> parse_clf_timestamp(std::string_view field);

/// Extracts the bracketed timestamp from one CLF log line.
std::optional<std::int64_t> parse_clf_line(std::string_view line);

/// Parses a whole log stream.  `time_scale` compresses or stretches time
/// (e.g. 0.001 replays an hour-long log in 3.6 s — the paper replays its
/// dataset far faster than real time).  Out-of-order lines are tolerated
/// (the trace sorts).
ClfParseResult parse_clf(std::istream& in, double time_scale = 1.0);

/// Convenience: parse a file on disk.  `ok` is false when the file could
/// not be opened.
ClfParseResult parse_clf_file(const std::string& path, double time_scale = 1.0,
                              bool* ok = nullptr);

}  // namespace pcpc::trace
