// Trace transformations: thinning, scaling, jittering, splitting.
//
// Experiment hygiene tools: derive controlled workload variants from one
// base trace so comparisons change exactly one property at a time (rate
// but not shape, shape but not rate, ...).
#pragma once

#include <cstddef>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/types.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::trace {

/// Keeps each item independently with probability `keep`; scales the
/// rate by `keep` while preserving the temporal shape exactly.
Trace thin(const Trace& t, double keep, Rng& rng);

/// Multiplies every timestamp by `factor`: factor < 1 compresses time
/// (raises the rate), factor > 1 stretches it.  Shape is preserved.
Trace time_scale(const Trace& t, double factor);

/// Adds zero-mean uniform jitter of half-width `magnitude` to every
/// timestamp (clamped at 0).  Models measurement/delivery noise.
Trace jitter(const Trace& t, SimDuration magnitude, Rng& rng);

/// Deals items round-robin into `ways` traces (a load balancer splitting
/// one stream across workers — each keeps 1/ways of the rate and the
/// burst structure).
std::vector<Trace> split_round_robin(const Trace& t, std::size_t ways);

/// Deals items into `ways` traces by independent uniform choice.
std::vector<Trace> split_random(const Trace& t, std::size_t ways, Rng& rng);

/// Repeats the trace end-to-end until `total` is covered (cyclic replay,
/// the standard way to stretch a short log over a long experiment).
Trace repeat(const Trace& t, SimDuration period, SimDuration total);

}  // namespace pcpc::trace
