// Time-varying arrival-rate functions and stochastic arrival processes.
//
// The paper stresses that its dataset "exhibits sporadic changes in the
// rate of production of items".  We model such workloads as non-homogeneous
// Poisson processes whose intensity λ(t) is a composable rate function,
// plus a Markov-modulated Poisson process (MMPP) for bursty traffic.
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/types.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::trace {

/// An intensity function λ(t) in items/second over virtual time, together
/// with a tight upper bound needed by the thinning sampler.
class RateFunction {
 public:
  virtual ~RateFunction() = default;

  /// Instantaneous rate at time t, in items per second.  Never negative.
  virtual double rate_at(SimTime t) const = 0;

  /// An upper bound on rate_at over [0, horizon]; the thinning algorithm's
  /// majorant.  Tighter bounds sample faster but any valid bound works.
  virtual double max_rate(SimDuration horizon) const = 0;
};

/// λ(t) = rate (constant).
class ConstantRate final : public RateFunction {
 public:
  explicit ConstantRate(double rate_hz);
  double rate_at(SimTime) const override { return rate_; }
  double max_rate(SimDuration) const override { return rate_; }

 private:
  double rate_;
};

/// λ(t) = base + amplitude * sin(2π t / period + phase), clamped at 0.
/// Models the diurnal swing of web traffic.
class SinusoidRate final : public RateFunction {
 public:
  SinusoidRate(double base_hz, double amplitude_hz, SimDuration period, double phase = 0.0);
  double rate_at(SimTime t) const override;
  double max_rate(SimDuration) const override { return base_ + std::abs(amplitude_); }

 private:
  double base_;
  double amplitude_;
  SimDuration period_;
  double phase_;
};

/// A train of flash-crowd bursts: each burst adds `amplitude` items/s over
/// [start, start+duration) with linear rise and fall inside the window.
class BurstTrain final : public RateFunction {
 public:
  struct Burst {
    SimTime start = 0;
    SimDuration duration = 0;
    double amplitude_hz = 0.0;
  };

  explicit BurstTrain(std::vector<Burst> bursts);
  double rate_at(SimTime t) const override;
  double max_rate(SimDuration horizon) const override;

 private:
  std::vector<Burst> bursts_;
};

/// Sum of component rate functions.
class CompositeRate final : public RateFunction {
 public:
  explicit CompositeRate(std::vector<std::shared_ptr<const RateFunction>> parts);
  double rate_at(SimTime t) const override;
  double max_rate(SimDuration horizon) const override;

 private:
  std::vector<std::shared_ptr<const RateFunction>> parts_;
};

/// Samples a non-homogeneous Poisson process with intensity `rate` over
/// [0, horizon) by Lewis-Shedler thinning.  Deterministic given `rng`.
Trace sample_nhpp(const RateFunction& rate, SimDuration horizon, Rng& rng);

/// Parameters of a two-state Markov-modulated Poisson process.
struct MmppParams {
  double low_rate_hz = 100.0;     ///< intensity in the quiet state
  double high_rate_hz = 2000.0;   ///< intensity in the bursty state
  SimDuration mean_low_dwell = seconds(1);    ///< mean sojourn in quiet state
  SimDuration mean_high_dwell = milliseconds(100);  ///< mean sojourn in burst
};

/// Samples a two-state MMPP over [0, horizon).  The state path is sampled
/// first (exponential dwell times), then arrivals are Poisson within each
/// dwell.  Models on/off bursty sources such as router ingress traffic.
Trace sample_mmpp(const MmppParams& params, SimDuration horizon, Rng& rng);

/// Parameters of a Pareto ON/OFF source: heavy-tailed ON and OFF periods
/// produce the self-similar (long-range-dependent) behaviour measured in
/// real web/LAN traffic — burstiness at every time scale, unlike MMPP's
/// single characteristic scale.
struct ParetoOnOffParams {
  double on_rate_hz = 5000.0;     ///< arrival intensity during ON periods
  double shape = 1.5;             ///< Pareto α ∈ (1, 2): infinite variance
  SimDuration min_on = milliseconds(10);   ///< ON-period scale parameter
  SimDuration min_off = milliseconds(20);  ///< OFF-period scale parameter
  SimDuration max_period = seconds(10);    ///< truncation (keeps runs finite)
};

/// Samples a Pareto ON/OFF source over [0, horizon): alternating ON/OFF
/// dwells with Pareto(shape, min) lengths, Poisson arrivals while ON.
Trace sample_pareto_on_off(const ParetoOnOffParams& params, SimDuration horizon,
                           Rng& rng);

}  // namespace pcpc::trace
