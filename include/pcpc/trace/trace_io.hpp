// Trace persistence: binary (compact, exact) and CSV (interoperable).
//
// Lets experiments snapshot the generated workload so a run can be replayed
// or inspected offline, and lets users feed in their own request logs.
#pragma once

#include <string>

#include "pcpc/trace/trace.hpp"

namespace pcpc::trace {

/// Writes the trace as little-endian int64 nanosecond timestamps preceded
/// by a magic/version header and a count.  Returns false on IO error.
bool save_binary(const Trace& t, const std::string& path);

/// Reads a trace written by save_binary.  Returns an empty trace and sets
/// *ok=false on malformed input or IO error.
Trace load_binary(const std::string& path, bool* ok = nullptr);

/// Writes one "timestamp_ns" column CSV.  Returns false on IO error.
bool save_csv(const Trace& t, const std::string& path);

/// Reads a one-column CSV of nanosecond timestamps (header optional).
Trace load_csv(const std::string& path, bool* ok = nullptr);

}  // namespace pcpc::trace
