// Synthetic web-server request-log workload.
//
// Substitutes the 1998 World Cup access logs (Arlitt & Jin) the paper
// replays.  The paper relies on exactly two properties of that dataset —
// a strongly time-varying ("non-linear") request rate and sporadic flash
// crowds — so the generator composes a diurnal sinusoid, a slow secondary
// modulation, and a randomly placed train of flash-crowd bursts, then
// samples a non-homogeneous Poisson process from it.  Deterministic by seed.
#pragma once

#include <cstdint>

#include "pcpc/common/rng.hpp"
#include "pcpc/common/types.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::trace {

/// Tunable shape of the synthetic web workload.
struct WebWorkloadParams {
  SimDuration duration = seconds(50);   ///< paper runs each experiment 50 s
  double base_rate_hz = 800.0;          ///< average request rate
  double diurnal_fraction = 0.55;       ///< sinusoid amplitude / base rate
  SimDuration diurnal_period = seconds(20);  ///< compressed "day" cycle
  double secondary_fraction = 0.25;     ///< slower secondary modulation
  SimDuration secondary_period = seconds(7);
  double bursts_per_minute = 6.0;       ///< expected flash-crowd frequency
  double burst_amplitude_factor = 3.0;  ///< burst peak relative to base rate
  SimDuration mean_burst_duration = milliseconds(800);
  std::uint64_t seed = 0x5eedf00dULL;
};

/// Generates one synthetic web-server request trace.
Trace make_web_workload(const WebWorkloadParams& params = {});

/// Generates the M phase-shifted producer traces used in the paper's
/// multi producer-consumer evaluation: producer i replays the same trace
/// shifted i/M into the dataset (Section VI-A).
std::vector<Trace> make_shifted_workloads(const WebWorkloadParams& params,
                                          std::size_t producers);

}  // namespace pcpc::trace
