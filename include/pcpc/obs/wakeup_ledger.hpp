// The wakeup ledger: paid/free attribution of every core wakeup.
//
// Section IV's objective is Σ_i Σ_j w(τ_{i,j}) — each consumer invocation
// charges ω only when its core had to leave idle.  Both hosts report a
// single aggregate today; the ledger keeps the per-consumer and per-core
// breakdown so "which pair is burning the wakeups" is a query, not a
// guess.  record() sits on the wakeup hot path of both hosts, so it uses
// the same discipline as the metrics registry: one fixed-size shard per
// writing thread (single-writer cells, relaxed load+store — no lock, no
// lock-prefixed RMW), merged under a mutex only when somebody reads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pcpc/common/assert.hpp"

namespace pcpc::obs {

namespace detail {
/// Stamps ledger instances so a thread-local shard cache can recognise a
/// new ledger that reuses a freed one's address.
inline std::atomic<std::uint64_t> g_ledger_generation{0};
}  // namespace detail

/// Accumulates paid/free wakeup attributions per consumer and per core.
class WakeupLedger {
 public:
  static constexpr std::size_t kMaxConsumers = 1024;
  static constexpr std::size_t kMaxCores = 256;

  struct Attribution {
    std::uint64_t paid = 0;
    std::uint64_t free = 0;
    std::uint64_t total() const { return paid + free; }
  };

  WakeupLedger()
      : generation_(detail::g_ledger_generation.fetch_add(1) + 1) {}

  WakeupLedger(const WakeupLedger&) = delete;
  WakeupLedger& operator=(const WakeupLedger&) = delete;

  /// One consumer invocation at a core wakeup.  `paid` follows the
  /// paper's w: true iff this invocation woke an idle core.
  void record(std::uint16_t core, std::uint32_t consumer, bool paid) {
    PCPC_ASSERT(core < kMaxCores);
    Shard& shard = local_shard();
    bump(shard.totals, paid);
    bump(shard.cores[core], paid);
    if (consumer != 0xffffffffu) {
      PCPC_ASSERT(consumer < kMaxConsumers);
      bump(shard.consumers[consumer], paid);
    }
  }

  /// Σ w(τ): total paid wakeups.
  std::uint64_t paid_total() const {
    std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += load(shard->totals).paid;
    return total;
  }

  /// Invocations that latched onto an already-awake core.
  std::uint64_t free_total() const {
    std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += load(shard->totals).free;
    return total;
  }

  /// Attribution indexed by consumer id, trimmed past the last consumer
  /// with any wakeups (holes are zero).
  std::vector<Attribution> per_consumer() const {
    return merged([](const Shard& s) { return s.consumers.data(); }, kMaxConsumers);
  }

  /// Attribution indexed by core, trimmed likewise.
  std::vector<Attribution> per_core() const {
    return merged([](const Shard& s) { return s.cores.data(); }, kMaxCores);
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> paid{0};
    std::atomic<std::uint64_t> free{0};
  };

  struct Shard {
    Cell totals;
    std::array<Cell, kMaxCores> cores{};
    std::array<Cell, kMaxConsumers> consumers{};
  };

  /// Single-writer increment: each shard belongs to one thread, so a
  /// relaxed load+store is race-free and skips the lock prefix.
  static void bump(Cell& cell, bool paid) {
    std::atomic<std::uint64_t>& c = paid ? cell.paid : cell.free;
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  static Attribution load(const Cell& cell) {
    return {cell.paid.load(std::memory_order_relaxed),
            cell.free.load(std::memory_order_relaxed)};
  }

  Shard& local_shard() {
    struct Cache {
      const WakeupLedger* owner = nullptr;
      std::uint64_t generation = 0;
      Shard* shard = nullptr;
    };
    thread_local Cache tls;
    if (tls.owner == this && tls.generation == generation_) return *tls.shard;
    std::scoped_lock lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    tls = {this, generation_, shards_.back().get()};
    return *tls.shard;
  }

  template <typename CellsOf>
  std::vector<Attribution> merged(CellsOf cells_of, std::size_t capacity) const {
    std::scoped_lock lock(mutex_);
    std::vector<Attribution> out(capacity);
    for (const auto& shard : shards_) {
      const Cell* cells = cells_of(*shard);
      for (std::size_t i = 0; i < capacity; ++i) {
        const Attribution a = load(cells[i]);
        out[i].paid += a.paid;
        out[i].free += a.free;
      }
    }
    while (!out.empty() && out.back().total() == 0) out.pop_back();
    return out;
  }

  const std::uint64_t generation_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pcpc::obs
