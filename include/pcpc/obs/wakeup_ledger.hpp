// The wakeup ledger: paid/free attribution of every core wakeup.
//
// Section IV's objective is Σ_i Σ_j w(τ_{i,j}) — each consumer invocation
// charges ω only when its core had to leave idle.  Both hosts report a
// single aggregate today; the ledger keeps the per-consumer and per-core
// breakdown so "which pair is burning the wakeups" is a query, not a
// guess.  record() sits on the wakeup hot path of both hosts, so it uses
// the same discipline as the metrics registry: one fixed-size shard per
// writing thread (single-writer cells, relaxed load+store — no lock, no
// lock-prefixed RMW), merged under a mutex only when somebody reads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pcpc/common/assert.hpp"

namespace pcpc::obs {

namespace detail {
/// Stamps ledger instances so a thread-local shard cache can recognise a
/// new ledger that reuses a freed one's address.
inline std::atomic<std::uint64_t> g_ledger_generation{0};
}  // namespace detail

/// Accumulates paid/free wakeup attributions per consumer and per core.
class WakeupLedger {
 public:
  static constexpr std::size_t kMaxConsumers = 1024;
  static constexpr std::size_t kMaxCores = 256;

  struct Attribution {
    std::uint64_t paid = 0;
    std::uint64_t free = 0;
    std::uint64_t total() const { return paid + free; }
  };

  /// Work accounting alongside the wakeups: how many items, batch
  /// invocations, and drops each consumer/core generated.  Joined with
  /// Attribution by the attribution report into joules/item and
  /// items/paid-wake per pair and per core.
  struct Work {
    std::uint64_t items = 0;
    std::uint64_t batches = 0;
    std::uint64_t drops = 0;
  };

  WakeupLedger()
      : generation_(detail::g_ledger_generation.fetch_add(1) + 1) {}

  WakeupLedger(const WakeupLedger&) = delete;
  WakeupLedger& operator=(const WakeupLedger&) = delete;

  /// One consumer invocation at a core wakeup.  `paid` follows the
  /// paper's w: true iff this invocation woke an idle core.
  void record(std::uint16_t core, std::uint32_t consumer, bool paid) {
    PCPC_ASSERT(core < kMaxCores);
    Shard& shard = local_shard();
    bump(shard.totals, paid);
    bump(shard.cores[core], paid);
    if (consumer != 0xffffffffu) {
      PCPC_ASSERT(consumer < kMaxConsumers);
      bump(shard.consumers[consumer], paid);
    }
  }

  /// Σ w(τ): total paid wakeups.
  std::uint64_t paid_total() const {
    std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += load(shard->totals).paid;
    return total;
  }

  /// Invocations that latched onto an already-awake core.
  std::uint64_t free_total() const {
    std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += load(shard->totals).free;
    return total;
  }

  /// Attribution indexed by consumer id, trimmed past the last consumer
  /// with any wakeups (holes are zero).
  std::vector<Attribution> per_consumer() const {
    return merged([](const Shard& s) { return s.consumers.data(); }, kMaxConsumers);
  }

  /// Attribution indexed by core, trimmed likewise.
  std::vector<Attribution> per_core() const {
    return merged([](const Shard& s) { return s.cores.data(); }, kMaxCores);
  }

  /// One drained batch: `items` popped in one invocation of `consumer`
  /// on `core`.  Called per batch (not per item) from note_slot_batch.
  void record_batch(std::uint16_t core, std::uint32_t consumer, std::uint64_t items) {
    PCPC_ASSERT(core < kMaxCores);
    Shard& shard = local_shard();
    bump_work(shard.core_work[core], items, 1, 0);
    if (consumer != 0xffffffffu) {
      PCPC_ASSERT(consumer < kMaxConsumers);
      bump_work(shard.consumer_work[consumer], items, 1, 0);
    }
  }

  /// One dropped item charged to `consumer` (core unknown at drop time).
  void record_drop(std::uint32_t consumer) {
    if (consumer == 0xffffffffu) return;
    PCPC_ASSERT(consumer < kMaxConsumers);
    bump_work(local_shard().consumer_work[consumer], 0, 0, 1);
  }

  /// Work indexed by consumer id, trimmed like per_consumer().
  std::vector<Work> per_consumer_work() const {
    return merged_work([](const Shard& s) { return s.consumer_work.data(); },
                       kMaxConsumers);
  }

  /// Work indexed by core, trimmed likewise.
  std::vector<Work> per_core_work() const {
    return merged_work([](const Shard& s) { return s.core_work.data(); }, kMaxCores);
  }

  /// Σ items drained across all consumers.
  std::uint64_t items_total() const {
    std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      for (const auto& cell : shard->consumer_work)
        total += cell.items.load(std::memory_order_relaxed);
    return total;
  }

  /// Σ drops across all consumers.
  std::uint64_t drops_total() const {
    std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      for (const auto& cell : shard->consumer_work)
        total += cell.drops.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> paid{0};
    std::atomic<std::uint64_t> free{0};
  };

  struct WorkCell {
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> drops{0};
  };

  struct Shard {
    Cell totals;
    std::array<Cell, kMaxCores> cores{};
    std::array<Cell, kMaxConsumers> consumers{};
    std::array<WorkCell, kMaxCores> core_work{};
    std::array<WorkCell, kMaxConsumers> consumer_work{};
  };

  /// Single-writer increment: each shard belongs to one thread, so a
  /// relaxed load+store is race-free and skips the lock prefix.
  static void bump(Cell& cell, bool paid) {
    std::atomic<std::uint64_t>& c = paid ? cell.paid : cell.free;
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  static Attribution load(const Cell& cell) {
    return {cell.paid.load(std::memory_order_relaxed),
            cell.free.load(std::memory_order_relaxed)};
  }

  /// Single-writer work increment, same discipline as bump().
  static void bump_work(WorkCell& cell, std::uint64_t items, std::uint64_t batches,
                        std::uint64_t drops) {
    const auto add = [](std::atomic<std::uint64_t>& c, std::uint64_t n) {
      if (n != 0)
        c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    };
    add(cell.items, items);
    add(cell.batches, batches);
    add(cell.drops, drops);
  }

  static Work load_work(const WorkCell& cell) {
    return {cell.items.load(std::memory_order_relaxed),
            cell.batches.load(std::memory_order_relaxed),
            cell.drops.load(std::memory_order_relaxed)};
  }

  Shard& local_shard() {
    struct Cache {
      const WakeupLedger* owner = nullptr;
      std::uint64_t generation = 0;
      Shard* shard = nullptr;
    };
    thread_local Cache tls;
    if (tls.owner == this && tls.generation == generation_) return *tls.shard;
    std::scoped_lock lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    tls = {this, generation_, shards_.back().get()};
    return *tls.shard;
  }

  template <typename CellsOf>
  std::vector<Attribution> merged(CellsOf cells_of, std::size_t capacity) const {
    std::scoped_lock lock(mutex_);
    std::vector<Attribution> out(capacity);
    for (const auto& shard : shards_) {
      const Cell* cells = cells_of(*shard);
      for (std::size_t i = 0; i < capacity; ++i) {
        const Attribution a = load(cells[i]);
        out[i].paid += a.paid;
        out[i].free += a.free;
      }
    }
    while (!out.empty() && out.back().total() == 0) out.pop_back();
    return out;
  }

  template <typename CellsOf>
  std::vector<Work> merged_work(CellsOf cells_of, std::size_t capacity) const {
    std::scoped_lock lock(mutex_);
    std::vector<Work> out(capacity);
    for (const auto& shard : shards_) {
      const WorkCell* cells = cells_of(*shard);
      for (std::size_t i = 0; i < capacity; ++i) {
        const Work w = load_work(cells[i]);
        out[i].items += w.items;
        out[i].batches += w.batches;
        out[i].drops += w.drops;
      }
    }
    while (!out.empty() && out.back().items == 0 && out.back().batches == 0 &&
           out.back().drops == 0)
      out.pop_back();
    return out;
  }

  const std::uint64_t generation_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pcpc::obs
