// wakeup→energy attribution and per-pair SLO accounting.
//
// Joins three sources the obs layer already collects — the wakeup
// ledger's paid/free counts, its per-pair/per-core work accounting
// (items, batches, drops), and the sampled lifecycle spans — with
// pcpc::power's calibrated energy model into the paper's decision
// quantities: joules/item, joules/paid-wake and items/paid-wake per
// pair and per core, plus Δ-budget compliance per pair (violation
// counts and log-binned slack/overrun histograms from the sampled
// end-to-end latencies).
//
// Identities the test suite pins:
//   - Σ_pairs items == ledger items total == the host's conservation
//     total (produced == items + dropped);
//   - Σ_pairs paid + Σ_pairs free == ledger wakeup totals (pair rows are
//     the ledger rows, not a re-count);
//   - the energy join is a pure function of those counts, so the same
//     identities hold for the joules columns.
//
// This is the machine-readable input ROADMAP item 1's autoscaler and
// item 3's admission control consume (--slo-report=FILE on pcpc_cli).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "pcpc/obs/spans.hpp"
#include "pcpc/obs/wakeup_ledger.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::obs {

class Session;

/// Inputs of the energy join + SLO accounting.
struct AttributionOptions {
  power::PowerModelParams power;  ///< ω, active watts, transport J/item
  power::ServiceModel service;    ///< per-item / per-invocation CPU time
  std::int64_t delta_ns = 0;      ///< per-pair Δ budget; 0 disables SLO rows
};

/// One producer-consumer pair's attribution row.
struct PairAttribution {
  std::uint32_t pair = 0;
  std::uint64_t paid = 0;
  std::uint64_t free = 0;
  std::uint64_t items = 0;
  std::uint64_t batches = 0;
  std::uint64_t drops = 0;
  double joules = 0.0;
  double joules_per_item = 0.0;
  double joules_per_paid_wake = 0.0;
  double items_per_paid_wake = 0.0;
  // Δ-budget SLO accounting over the sampled spans of this pair.
  std::uint64_t slo_samples = 0;
  std::uint64_t slo_violations = 0;
  StageHistogram slack;    ///< Δ - end_to_end for met samples
  StageHistogram overrun;  ///< end_to_end - Δ for violations
};

/// One core's attribution row (no SLO — budgets are per pair).
struct CoreAttribution {
  std::uint16_t core = 0;
  std::uint64_t paid = 0;
  std::uint64_t free = 0;
  std::uint64_t items = 0;
  std::uint64_t batches = 0;
  double joules = 0.0;
  double joules_per_item = 0.0;
  double items_per_paid_wake = 0.0;
};

/// The full joined report.
struct AttributionReport {
  std::int64_t delta_ns = 0;
  std::vector<PairAttribution> pairs;
  std::vector<CoreAttribution> cores;
  SpanFold spans;

  // Totals (sums of the pair rows; `produced` is the conservation total).
  std::uint64_t items = 0;
  std::uint64_t drops = 0;
  std::uint64_t produced = 0;
  std::uint64_t paid = 0;
  std::uint64_t free = 0;
  std::uint64_t slo_samples = 0;
  std::uint64_t slo_violations = 0;
  double joules = 0.0;
  double joules_per_item = 0.0;
  double joules_per_paid_wake = 0.0;
  double items_per_paid_wake = 0.0;

  // Varlen payload plane (filled by hosts that ran record traffic;
  // payload_bytes == 0 leaves the section out of the report).  Energy
  // density is the host's attributed joules over the payload megabytes
  // actually delivered.
  std::uint64_t payload_records = 0;
  std::uint64_t payload_bytes = 0;
  double payload_bytes_per_s = 0.0;
  double joules_per_mb = 0.0;
};

/// Energy of one row under the model: paid wakeups at ω each, items at
/// transport + per-item active CPU, invocations at per-invocation active
/// CPU.  Pure — the identities above follow from the counts.
double attributed_joules(const AttributionOptions& opt, std::uint64_t paid,
                         std::uint64_t items, std::uint64_t batches);

/// Computes the energy columns, SLO rows (from `report.spans`) and the
/// totals for rows already filled in.  Used directly by hosts (the ipc
/// path) that assemble pair rows from shm telemetry instead of a ledger.
void finalize_attribution(AttributionReport& report, const AttributionOptions& opt);

/// Builds the whole report off the installed session: ledger rows,
/// span fold of Session::events(), energy join, SLO accounting.
AttributionReport build_attribution(Session& session, const AttributionOptions& opt);

/// Writes the machine-readable report (one JSON object).
void write_slo_report(std::ostream& out, const AttributionReport& report);

/// File variant; false + `*error` on I/O failure.
bool write_slo_report(const std::string& path, const AttributionReport& report,
                      std::string* error = nullptr);

}  // namespace pcpc::obs
