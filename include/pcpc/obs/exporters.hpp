// Exporters: Chrome/Perfetto trace JSON, metrics JSON/CSV.
//
// The trace exporter writes the legacy Chrome trace-event format, which
// ui.perfetto.dev (and chrome://tracing) load directly: cores become
// tracks (tid), slot batches become duration events, and wakeups /
// reservations / faults / drops become instant events carrying their
// attribution in args.  The metrics exporters flatten the registry, the
// wakeup ledger and the trace drop accounting into one flat document —
// Σ w(τ) from Section IV is the "wakeups.paid" field.
#pragma once

#include <ostream>
#include <string>

#include "pcpc/obs/obs.hpp"

namespace pcpc::obs {

/// Writes the session's archived events as Perfetto-loadable JSON.
void write_perfetto_trace(std::ostream& out, Session& session);

/// File variant; returns false (with *error set) on I/O failure.
bool write_perfetto_trace(const std::string& path, Session& session,
                          std::string* error = nullptr);

/// Writes counters, gauges, histograms, the wakeup ledger and trace drop
/// accounting as one JSON object.
void write_metrics_json(std::ostream& out, Session& session);
bool write_metrics_json(const std::string& path, Session& session,
                        std::string* error = nullptr);

/// Flat `metric,kind,value` CSV of the same data.
void write_metrics_csv(std::ostream& out, Session& session);
bool write_metrics_csv(const std::string& path, Session& session,
                       std::string* error = nullptr);

}  // namespace pcpc::obs
