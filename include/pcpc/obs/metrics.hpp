// Metrics registry with thread-local sharding.
//
// Named counters, gauges and log2 histograms.  The write path touches
// only the calling thread's shard (one relaxed atomic add — no contended
// cache line, no lock), and collect() merges every shard on demand.
// Shard capacity is fixed at construction so a reader can walk shards
// while writers append observations: nothing ever reallocates under a
// live writer.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pcpc/common/assert.hpp"

namespace pcpc::obs {

/// Registry of named metrics; cheap to write from any thread.
class Registry {
 public:
  using Id = std::uint32_t;

  static constexpr std::size_t kMaxCounters = 128;
  static constexpr std::size_t kMaxGauges = 32;
  static constexpr std::size_t kMaxHistograms = 16;
  /// Histogram bins hold log2(value); bin i counts values in [2^i, 2^{i+1})
  /// nanoseconds (bin 0 also takes 0).  64 bins cover every int64 value.
  static constexpr std::size_t kHistogramBins = 64;

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or looks up) a metric by name.  Idempotent per name and
  /// kind; asserts when the fixed capacity is exhausted.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  Id histogram(const std::string& name);

  /// Write paths: thread-local shard, relaxed atomics.
  void add(Id id, std::uint64_t delta = 1);
  void set_gauge(Id id, std::int64_t value);
  void observe(Id id, std::int64_t value);  ///< histogram sample

  /// Direct pointers into the calling thread's shard — for callers hot
  /// enough to cache them (the note_* hot path caches every well-known
  /// cell).  Valid until the registry dies; revalidate through a
  /// generation check before use.
  std::atomic<std::uint64_t>* counter_cell(Id id);
  /// First of the kHistogramBins cells for histogram `id`.
  std::atomic<std::uint64_t>* histogram_bins(Id id);

  /// Bin index for a histogram sample: log2(value), clamping <=0 to 0.
  static std::size_t log2_bin(std::int64_t value) {
    if (value <= 0) return 0;
    return static_cast<std::size_t>(
        std::bit_width(static_cast<std::uint64_t>(value)) - 1);
  }

  /// Merged view of all shards.
  struct Snapshot {
    struct Counter {
      std::string name;
      std::uint64_t value = 0;
    };
    struct Gauge {
      std::string name;
      std::int64_t value = 0;  ///< most recent write across shards
    };
    struct Hist {
      std::string name;
      std::uint64_t total = 0;
      std::array<std::uint64_t, kHistogramBins> bins{};
    };
    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<Hist> histograms;

    /// Counter value by name; 0 when absent.
    std::uint64_t counter_value(const std::string& name) const;
  };

  /// Sums every thread's shard.  Safe concurrently with writers (values
  /// may trail in-flight increments by design).
  Snapshot collect() const;

  /// Number of thread shards created so far (tests).
  std::size_t shard_count() const;

 private:
  struct Shard;
  friend struct ShardAccess;

  Shard& local_shard();

  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t generation_ = 0;  ///< distinguishes registries reusing an address
};

}  // namespace pcpc::obs
