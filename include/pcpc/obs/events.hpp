// Event taxonomy of the pcpc::obs trace layer.
//
// Every observable action in either host — a slot batch drain, a core
// wakeup with its paid/free attribution (the paper's w(τ_{i,j})), a
// reservation move, an overflow-policy action, a watchdog escalation, an
// injected fault, a dropped item — reduces to one fixed-size POD Event so
// the per-thread trace rings can stay lock-free and allocation-free.
// Timestamps are host time: virtual nanoseconds on the simulation host,
// wall nanoseconds since the run epoch on the thread host.
#pragma once

#include <cstdint>

namespace pcpc::obs {

/// What happened.  The numeric values are part of the exported trace
/// format; append, never renumber.
enum class EventKind : std::uint8_t {
  kWakeup = 0,       ///< consumer invocation at a core wakeup (paid/free flag)
  kSlotBatch = 1,    ///< one consumer's batch drain (span: ts .. ts+dur)
  kReservation = 2,  ///< consumer booked a slot (arg0 = slot, arg1 = latched)
  kOverflow = 3,     ///< overflow-policy action (arg0 = OverflowAction)
  kWatchdog = 4,     ///< deadline watchdog escalation (arg0 = overrun ns)
  kFault = 5,        ///< injected fault fired (arg0 = FaultKind, arg1 = magnitude)
  kDrop = 6,         ///< item dropped (arg0 = DropPath)
  kQueueResize = 7,  ///< hand-off queue capacity changed (arg0 = old, arg1 = new)
  kItemStage = 8,    ///< sampled item-lifecycle stage (arg0 = item id, arg1 = ItemStage)
  kFleet = 9,        ///< fleet action (arg0 = FleetAction, arg1 = destination core)
};

/// What the fleet controller did (EventKind::kFleet, arg0).  For
/// kMigrate, `consumer` is the migrated pair, `core` the source core and
/// arg1 the destination; park/unpark carry the core in both fields and
/// kNoConsumer.
enum class FleetAction : std::uint8_t {
  kMigrate = 0,  ///< a pair moved between cores
  kPark = 1,     ///< a core's manager retired (core fully idle)
  kUnpark = 2,   ///< a parked core's manager respawned
};

/// Lifecycle stage of a sampled item (EventKind::kItemStage, arg1).
/// The wake stage is not stamped directly: the span fold joins each
/// drain-start against the last kWakeup event on the same (origin, core)
/// track, so sampled wakes are by construction a subset of the ledger's.
enum class ItemStage : std::uint8_t {
  kProduce = 0,      ///< producer entered push/produce
  kEnqueue = 1,      ///< item published into the hand-off queue
  kDrainStart = 2,   ///< consumer began draining the batch holding it
  kHandlerDone = 3,  ///< handler finished the batch holding it
};

/// Which overflow-handling path fired.
enum class OverflowAction : std::uint8_t {
  kEmergencyBorrow = 0,  ///< pool segments absorbed the overflow
  kForcedDrain = 1,      ///< unscheduled wakeup raised to drain the buffer
};

/// Which drop path lost the item (mirrors ThreadPbplStats).
enum class DropPath : std::uint8_t {
  kOldest = 0,  ///< evicted under OverflowPolicy::DropOldest
  kNewest = 1,  ///< rejected under OverflowPolicy::DropNewest
  kOnStop = 2,  ///< lost to a stop() race
};

/// Which fault class the injector fired (mirrors pcpc::fault).
enum class FaultKind : std::uint8_t {
  kBurst = 0,
  kStall = 1,
  kSlowHandler = 2,
  kDeadlineJitter = 3,
  kPoolPressure = 4,
  kProcKill = 5,     ///< producer process SIGKILLed mid-protocol (pcpc::ipc)
  kProcStop = 6,     ///< producer process SIGSTOP/SIGCONT suspended
  kAttachDelay = 7,  ///< shm attach artificially delayed
  kLoadSwing = 8,    ///< seeded utilization swing crossed a period boundary
};

/// Sentinel consumer id for events not tied to one consumer.
inline constexpr std::uint32_t kNoConsumer = 0xffffffffu;

/// Sentinel slot for events outside the slot grid (overflow drains,
/// baseline wakeups).
inline constexpr std::int64_t kNoSlot = INT64_MIN;

/// Event::flags bits.
inline constexpr std::uint8_t kFlagPaid = 1u << 0;       ///< wakeup paid ω
inline constexpr std::uint8_t kFlagScheduled = 1u << 1;  ///< slot-scheduled (not overflow)

/// Sentinel origin: the event was recorded by this process.
inline constexpr std::uint16_t kOriginLocal = 0;

/// One fixed-size trace record.  `arg0`/`arg1` are kind-specific: slot
/// index and batch size for kSlotBatch, slot and latched for
/// kReservation, see EventKind.  `origin` identifies the recording
/// process in a merged cross-process trace: kOriginLocal for events this
/// process recorded, k+1 for events drained from ipc producer registry
/// slot k's shm trace ring (exporters map origins to Perfetto pids).
struct Event {
  std::int64_t ts_ns = 0;   ///< host time
  std::int64_t dur_ns = 0;  ///< span length; 0 = instant
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::uint32_t consumer = kNoConsumer;
  std::uint16_t core = 0;
  EventKind kind = EventKind::kWakeup;
  std::uint8_t flags = 0;
  std::uint16_t origin = kOriginLocal;

  bool paid() const { return (flags & kFlagPaid) != 0; }
  bool scheduled() const { return (flags & kFlagScheduled) != 0; }
};
static_assert(sizeof(Event) == 48, "Event is shared-memory ABI (pcpc::ipc)");

/// Stable name of a lifecycle stage (trace export, reports).
const char* item_stage_name(ItemStage stage);

/// Stable name of an event kind (trace export, snapshots, tests).
const char* event_kind_name(EventKind kind);

/// Stable names of the enum payloads.
const char* overflow_action_name(OverflowAction action);
const char* drop_path_name(DropPath path);
const char* fault_kind_name(FaultKind kind);
const char* fleet_action_name(FleetAction action);

}  // namespace pcpc::obs
