// Lock-free single-producer single-consumer trace ring.
//
// Each instrumented thread owns one ring: the thread pushes Events with
// two relaxed/release atomic operations and no allocation, and the
// exporter (or the periodic snapshot thread) drains from the other end.
// Memory is bounded at construction; when the ring is full the event is
// dropped and *counted* — telemetry must never stall or distort the
// system it observes, and a silent gap would be worse than a counted one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/events.hpp"

namespace pcpc::obs {

/// Bounded SPSC ring of trace events with drop accounting.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Producer side.  Returns false (and counts the drop) when full.
  /// The consumer's tail is re-read (acquire) only when the cached copy
  /// says the ring looks full, and the pushed/dropped counters are
  /// producer-owned single-writer cells — the common-case push is two
  /// plain stores and one release store, no RMW.
  bool push(const Event& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ >= slots_.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= slots_.size()) {
        dropped_.store(dropped_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
        return false;
      }
    }
    slots_[head & (slots_.size() - 1)] = event;
    head_.store(head + 1, std::memory_order_release);
    pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    return true;
  }

  /// Consumer side: invokes `fn(const Event&)` on everything currently
  /// buffered and frees the space.  Single consumer at a time.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::size_t n = 0;
    for (; tail != head; ++tail, ++n) {
      fn(slots_[tail & (slots_.size() - 1)]);
    }
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  /// Events currently buffered.
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Events accepted / rejected since construction.
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::vector<Event> slots_;
  std::uint64_t tail_cache_ = 0;  ///< producer's last view of tail_
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace pcpc::obs
