// pcpc::obs — the observability session.
//
// One Session owns the metrics registry, the per-thread trace rings, the
// wakeup ledger and (optionally) a PowerTop-style periodic stderr
// snapshot thread.  Constructing a Session installs it globally and arms
// instrumentation across the whole library; destroying it disarms first,
// then tears down.  At most one session is active at a time.
//
// Hot-path contract: every note_*() helper is an inline wrapper whose
// disabled cost is a single relaxed atomic load and a predictable branch.
// Instrumentation is always compiled — there is no build flag to get
// wrong — and near-zero when no session is installed.
//
// Lifetime contract: destroy the session only after the instrumented
// threads have stopped (every harness in this repo joins its workers
// before exporting, so this falls out naturally).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pcpc/obs/events.hpp"
#include "pcpc/obs/metrics.hpp"
#include "pcpc/obs/trace_ring.hpp"
#include "pcpc/obs/wakeup_ledger.hpp"

namespace pcpc::obs {

namespace detail {
/// Armed flag, split from the session pointer so the disabled fast path
/// is one relaxed load with no pointer chase.
extern std::atomic<bool> g_enabled;
/// Item-lifecycle sampling period (0 = spans disarmed).  Split out for
/// the same reason: the per-item sampling decision is one relaxed load.
extern std::atomic<std::uint64_t> g_span_every;
}  // namespace detail

/// True when a session is installed and recording.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Sampling period of the item-lifecycle spans; 0 when disarmed.
inline std::uint64_t span_sample_every() {
  return detail::g_span_every.load(std::memory_order_relaxed);
}

/// True iff item sequence number `seq` is lifecycle-sampled.  Every host
/// uses the same rule (seq % N == 0) on a per-item sequence that both
/// sides of the hand-off can derive, so producer-side and consumer-side
/// stages of the same item agree without tagging the payload.
inline bool span_sampled(std::uint64_t seq) {
  const std::uint64_t every = span_sample_every();
  return every != 0 && seq % every == 0;
}

/// Session tuning knobs.
struct SessionOptions {
  /// Events per thread ring; rounded up to a power of two.
  std::size_t ring_capacity = 1u << 15;

  /// Central archive cap (events); rings drained past it are counted as
  /// archive drops.  Bounds total trace memory for unbounded runs.
  std::size_t archive_capacity = 1u << 20;

  /// When > 0, a snapshot thread prints wakeups/s, CPU ms/s, items/s and
  /// drops/s to stderr every `snapshot_period_ms` milliseconds.
  std::int64_t snapshot_period_ms = 0;

  /// When > 0, every Nth item gets lifecycle-stage span events
  /// (produce → enqueue → drain-start → handler-done) on all hosts.
  /// 0 disarms the span path entirely (its disabled cost is one relaxed
  /// load folded into the enabled() check).
  std::uint64_t span_sample_every = 0;
};

/// Metric ids the instrumentation points hit; pre-registered so hot
/// paths never take the name-lookup mutex.
struct WellKnownMetrics {
  Registry::Id wakeups_paid;
  Registry::Id wakeups_free;
  Registry::Id items;
  Registry::Id batches;
  Registry::Id reservations;
  Registry::Id latched_reservations;
  Registry::Id overflow_borrows;
  Registry::Id overflow_drains;
  Registry::Id drops;
  Registry::Id queue_resizes;
  Registry::Id watchdog_escalations;
  Registry::Id faults_injected;
  Registry::Id fleet_migrations;
  Registry::Id fleet_parks;
  Registry::Id fleet_unparks;
  Registry::Id sim_events;
  Registry::Id span_stages;  ///< counter: lifecycle stage events recorded
  Registry::Id batch_ns;     ///< histogram: batch drain duration
  Registry::Id batch_items;  ///< histogram: items per batch
};

/// The active observability capture.
class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  WakeupLedger& ledger() { return ledger_; }
  const WakeupLedger& ledger() const { return ledger_; }
  const WellKnownMetrics& well() const { return well_; }
  const SessionOptions& options() const { return options_; }

  /// Host clock used for events without an explicit timestamp (fault
  /// injection, baselines).  Defaults to wall time since construction;
  /// the simulation harness points it at the virtual clock.
  void set_clock(std::function<std::int64_t()> now_ns);
  std::int64_t now_ns() const;

  /// Pushes one event into the calling thread's ring.
  void emit(const Event& event);

  /// Drains every thread ring into the central archive (bounded by
  /// archive_capacity; the periodic snapshot thread also does this so
  /// long runs keep early events).
  void archive_now();

  /// archive_now() + the archived events sorted by timestamp.
  std::vector<Event> events();

  /// Drop accounting across all rings plus the archive.
  std::uint64_t ring_dropped() const;
  std::uint64_t archive_dropped() const;
  std::uint64_t total_events_recorded() const;

  /// The installed session, or nullptr.
  static Session* current();

 private:
  friend struct RingAccess;
  TraceRing& local_ring();
  void snapshot_loop();
  void print_snapshot(double dt_s);

  SessionOptions options_;
  Registry registry_;
  WakeupLedger ledger_;
  WellKnownMetrics well_;

  mutable std::mutex mutex_;  // guards rings_ list and archive_
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<Event> archive_;
  std::uint64_t archive_dropped_ = 0;
  std::uint64_t generation_ = 0;

  std::function<std::int64_t()> clock_;
  std::chrono::steady_clock::time_point epoch_;

  std::atomic<bool> snapshot_stop_{false};
  std::thread snapshot_thread_;
  std::uint64_t snap_prev_wakeups_ = 0;
  std::uint64_t snap_prev_items_ = 0;
  std::uint64_t snap_prev_drops_ = 0;
  std::int64_t snap_prev_cpu_ns_ = 0;
};

namespace detail {
// Out-of-line slow paths; called only when enabled().
void note_wakeup_impl(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                      bool paid, bool scheduled, std::int64_t ts_ns);
void note_slot_batch_impl(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                          std::uint64_t batch, std::int64_t ts_ns, std::int64_t dur_ns);
void note_reservation_impl(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                           bool latched, std::int64_t ts_ns);
void note_overflow_impl(std::uint16_t core, std::uint32_t consumer, OverflowAction action,
                        std::int64_t ts_ns);
void note_watchdog_impl(std::uint16_t core, std::int64_t overrun_ns, std::int64_t ts_ns);
void note_fault_impl(FaultKind kind, std::int64_t magnitude);
void note_drop_impl(std::uint32_t consumer, DropPath path, std::int64_t ts_ns);
void note_queue_resize_impl(std::uint32_t consumer, std::size_t old_slots,
                            std::size_t new_slots);
void note_fleet_impl(FleetAction action, std::uint32_t pair, std::uint16_t from_core,
                     std::uint16_t to_core, std::int64_t ts_ns);
void count_sim_events_impl(std::uint64_t n);
void note_item_stage_impl(std::uint32_t consumer, std::uint16_t core,
                          std::uint64_t item_id, ItemStage stage, std::int64_t ts_ns);
}  // namespace detail

/// One consumer invocation at a core wakeup; feeds the ledger, the
/// paid/free counters and the trace ring.
inline void note_wakeup(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                        bool paid, bool scheduled, std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_wakeup_impl(core, consumer, slot, paid, scheduled, ts_ns);
}

/// One batch drain (span event + batch histograms + item counter).
inline void note_slot_batch(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                            std::uint64_t batch, std::int64_t ts_ns,
                            std::int64_t dur_ns) {
  if (!enabled()) return;
  detail::note_slot_batch_impl(core, consumer, slot, batch, ts_ns, dur_ns);
}

/// A consumer booked (or moved to) a slot.
inline void note_reservation(std::uint16_t core, std::uint32_t consumer,
                             std::int64_t slot, bool latched, std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_reservation_impl(core, consumer, slot, latched, ts_ns);
}

/// An overflow-policy action fired.
inline void note_overflow(std::uint16_t core, std::uint32_t consumer,
                          OverflowAction action, std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_overflow_impl(core, consumer, action, ts_ns);
}

/// The deadline watchdog escalated a slot overrun.
inline void note_watchdog(std::uint16_t core, std::int64_t overrun_ns,
                          std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_watchdog_impl(core, overrun_ns, ts_ns);
}

/// The fault injector fired (timestamp comes from the session clock —
/// the injector has no clock of its own).
inline void note_fault(FaultKind kind, std::int64_t magnitude = 0) {
  if (!enabled()) return;
  detail::note_fault_impl(kind, magnitude);
}

/// An item was dropped.
inline void note_drop(std::uint32_t consumer, DropPath path, std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_drop_impl(consumer, path, ts_ns);
}

/// A hand-off queue's capacity changed (elastic resize on any backend).
/// Timestamp comes from the session clock: resizes happen on the consumer
/// control path, never per item, so the clock lookup is off the hot path.
inline void note_queue_resize(std::uint32_t consumer, std::size_t old_slots,
                              std::size_t new_slots) {
  if (!enabled()) return;
  detail::note_queue_resize_impl(consumer, old_slots, new_slots);
}

/// A fleet-controller action: a pair migrated (`pair`, from→to cores), a
/// core parked, or a parked core came back.  Park/unpark pass the core in
/// both core fields and kNoConsumer as the pair.  Control-plane rate —
/// never per item — so there is no hot-path concern here.
inline void note_fleet(FleetAction action, std::uint32_t pair, std::uint16_t from_core,
                       std::uint16_t to_core, std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_fleet_impl(action, pair, from_core, to_core, ts_ns);
}

/// `n` simulator events dispatched (a pure counter — no ring traffic).
/// The event loop is the hottest path in the sim host, so the simulator
/// batches: one bulk add per flush quantum instead of one call per event.
inline void count_sim_events(std::uint64_t n) {
  if (n == 0 || !enabled()) return;
  detail::count_sim_events_impl(n);
}

/// One simulator event dispatched.
inline void count_sim_event() { count_sim_events(1); }

/// One lifecycle stage of a sampled item.  `item_id` must be identical
/// across all stages of the same item (ipc host: the ring ticket; thread
/// and sim hosts: consumer << 32 | per-pair sequence).  Callers guard
/// with span_sampled(seq) so the per-item cost when spans are disarmed is
/// the one relaxed load inside span_sampled().
inline void note_item_stage(std::uint32_t consumer, std::uint16_t core,
                            std::uint64_t item_id, ItemStage stage,
                            std::int64_t ts_ns) {
  if (!enabled()) return;
  detail::note_item_stage_impl(consumer, core, item_id, stage, ts_ns);
}

}  // namespace pcpc::obs
