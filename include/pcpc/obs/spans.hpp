// Folding sampled item-lifecycle spans out of a merged event stream.
//
// Each sampled item leaves up to four kItemStage events (produce,
// enqueue, drain-start, handler-done) keyed by one item id, possibly
// recorded by different processes (origin field).  The wake stage is not
// stamped: it is *joined* here against the kWakeup events the wakeup
// ledger already records — the latest wakeup on the draining (origin,
// core) track at or before the item's drain-start.  Joining instead of
// stamping keeps the identity "sampled paid wakes ⊆ ledger wakes" true
// by construction: a span can never claim a wake the ledger didn't see.
//
// Items whose stages only partially match (producer sampled seq k but
// the consumer's kth pop was a different item because drops shifted the
// stream) are counted as orphans, not guessed at — the stage histograms
// only ever contain latencies between stages of provably the same item.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "pcpc/obs/events.hpp"
#include "pcpc/obs/metrics.hpp"

namespace pcpc::obs {

/// One log2-binned latency histogram (bin i counts values in
/// [2^(i-1), 2^i), bin 0 counts <= 1 ns; same binning as the registry).
struct StageHistogram {
  std::uint64_t count = 0;
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
  std::array<std::uint64_t, Registry::kHistogramBins> bins{};

  void add(std::int64_t ns);
};

/// One fully- or partially-joined sampled item.
struct ItemSpan {
  std::uint64_t item_id = 0;
  std::uint32_t pair = kNoConsumer;  ///< from the produce stage when present
  std::uint16_t produce_origin = kOriginLocal;
  std::int64_t produce_ns = -1;
  std::int64_t enqueue_ns = -1;
  std::int64_t wake_ns = -1;  ///< joined ledger wakeup; -1 = drained awake
  bool wake_paid = false;
  std::int64_t drain_start_ns = -1;
  std::int64_t handler_done_ns = -1;

  bool complete() const {
    return produce_ns >= 0 && enqueue_ns >= 0 && drain_start_ns >= 0 &&
           handler_done_ns >= 0;
  }
  /// End-to-end latency; valid only when complete().
  std::int64_t end_to_end_ns() const { return handler_done_ns - produce_ns; }
};

/// The folded result.
struct SpanFold {
  std::vector<ItemSpan> items;  ///< all sampled items, complete or not

  std::uint64_t stage_events = 0;    ///< kItemStage events consumed
  std::uint64_t complete_items = 0;  ///< all four stamped stages joined
  std::uint64_t orphan_stages = 0;   ///< stages of items that never completed
  std::uint64_t joined_wakes = 0;    ///< spans that adopted a ledger wakeup
  std::uint64_t joined_paid_wakes = 0;  ///< ... of which the wake was paid

  StageHistogram produce_to_enqueue;
  StageHistogram enqueue_to_drain;
  StageHistogram wake_to_drain;  ///< only spans with a joined wake
  StageHistogram drain_to_done;
  StageHistogram end_to_end;
};

/// Folds a timestamp-sorted event stream (Session::events() order).
/// Non-span events other than kWakeup are ignored.
SpanFold fold_spans(const std::vector<Event>& events);

}  // namespace pcpc::obs
