// Parameters shared by the baseline implementations.
#pragma once

#include <cstdint>
#include <string>

#include "pcpc/common/types.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::impls {

/// The implementations studied in the paper.  The first seven are the
/// Section III single-pair study; all of Mutex/Sem/BP/PBPL also run as
/// the Section VI multi-pair evaluation.
enum class ImplKind {
  BusyWait,            ///< BW  — consumer spins on head != tail
  Yield,               ///< Yield — spin with sched_yield (DVFS discount)
  Mutex,               ///< Mutex + condition variables, per-item signaling
  Semaphore,           ///< Sem — two counting semaphores, per-item signaling
  Batch,               ///< BP  — consumer runs when the buffer fills
  PeriodicBatch,       ///< PBP — nanosleep()-timed batches (jittery timer)
  SignalPeriodicBatch, ///< SPBP — SIGALRM-timed batches (accurate timer)
  /// CPBP — SPBP with kernel-style timer coalescing: every pair's timer
  /// snaps to one global k·T grid (Linux timer slack / deferrable
  /// timers).  Groups wakeups like PBPL but with *fixed* periods — the
  /// pre-existing mechanism the paper's predictive latching improves on.
  CoalescedPeriodicBatch,
  Pbpl,                ///< the paper's contribution (Section V)
};

/// Short display name ("BW", "Mutex", "PBPL", ...).
std::string impl_name(ImplKind kind);

/// Knobs of the baseline implementations.
struct BaselineParams {
  /// Cores available; pairs are assigned round-robin (consumer isolation:
  /// no background load shares these cores, per Section IV-A).
  std::size_t cores = 2;

  /// Buffer capacity B per pair, items.
  std::size_t buffer_capacity = 64;

  /// PBP/SPBP batch period.
  SimDuration period = milliseconds(1);

  /// Lognormal sigma of nanosleep() oversleep jitter (PBP).  The paper
  /// attributes PBP's extra wakeups over SPBP to exactly this jitter
  /// causing buffer overflows before the late timer fires.
  double nanosleep_jitter_sigma = 0.25;

  /// Lognormal sigma of SIGALRM jitter (SPBP) — an order of magnitude
  /// more accurate.
  double sigalrm_jitter_sigma = 0.02;

  /// Per-invocation synchronization overhead: a mutex+condvar handoff
  /// costs two futex syscalls, a semaphore one, and the batch variants a
  /// timer/signal delivery.
  SimDuration mutex_overhead = microseconds(6);
  SimDuration sem_overhead = microseconds(4);
  SimDuration batch_overhead = microseconds(5);

  /// Active-power scale for Yield (DVFS drops the clock when the spinning
  /// thread keeps yielding; Section III-C2).
  double yield_power_scale = 0.85;

  /// Fraction of wall time the Yield consumer is scheduled out (the gaps
  /// are too short for C-states but reduce usage below BW's ~1000 ms/s).
  double yield_usage_fraction = 0.95;

  /// How long consumer work takes.
  power::ServiceModel service{};

  /// Seed for timer jitter.
  std::uint64_t seed = 0x7001;
};

}  // namespace pcpc::impls
