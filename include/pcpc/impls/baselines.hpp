// Simulation-hosted implementations of the paper's baseline
// producer-consumer variants (Section III-A), single- or multi-pair.
//
// Each function replays one trace per pair on the shared DES substrate,
// records core activity on pcpc::core::SimCore instances (pairs assigned
// round-robin to cores), and returns the uniform RunResult.
#pragma once

#include <span>

#include "pcpc/impls/params.hpp"
#include "pcpc/impls/run_result.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::impls {

/// BW: the consumer spins until the buffer is non-empty.  The hosting
/// cores never idle; items are consumed the instant they arrive.
RunResult run_busy_wait(std::span<const trace::Trace> traces, SimDuration horizon,
                        const BaselineParams& params);

/// Yield: busy-waiting with sched_yield().  Identical consumption
/// behaviour to BW, but DVFS lowers the clock (active_power_scale) and
/// the yield gaps shave a little usage.
RunResult run_yield(std::span<const trace::Trace> traces, SimDuration horizon,
                    const BaselineParams& params);

/// Mutex (kind==ImplKind::Mutex) or Sem (kind==ImplKind::Semaphore):
/// per-item signaling — the producer wakes the consumer for every item;
/// items arriving while the consumer is still processing coalesce into
/// the next drain without a fresh wakeup.
RunResult run_signaled(ImplKind kind, std::span<const trace::Trace> traces,
                       SimDuration horizon, const BaselineParams& params);

/// BP: the consumer is woken only when the buffer is full and processes
/// all B items as one batch; every invocation is by definition a buffer
/// overflow (Section VI-C).
RunResult run_batch(std::span<const trace::Trace> traces, SimDuration horizon,
                    const BaselineParams& params);

/// PBP (nanosleep jitter), SPBP (SIGALRM accuracy) or CPBP (SPBP with
/// all pairs' timers snapped to one global k·T grid, as kernel timer
/// coalescing does): a periodic timer drains the buffer; a buffer
/// filling before the timer raises an immediate unscheduled invocation.
/// PBP/SPBP pairs start phase-staggered (independent threads); CPBP's
/// grid alignment is what lets one core wakeup serve several pairs.
RunResult run_periodic(ImplKind kind, std::span<const trace::Trace> traces,
                       SimDuration horizon, const BaselineParams& params);

}  // namespace pcpc::impls
