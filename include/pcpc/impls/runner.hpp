// Uniform dispatch over every implementation, including PBPL.
#pragma once

#include <span>

#include "pcpc/core/config.hpp"
#include "pcpc/core/pbpl_system.hpp"
#include "pcpc/impls/baselines.hpp"
#include "pcpc/impls/params.hpp"
#include "pcpc/impls/run_result.hpp"
#include "pcpc/trace/trace.hpp"

namespace pcpc::impls {

/// Parameters of one experiment across all implementations.  The runner
/// copies the shared knobs (cores, service model, buffer size) from
/// `baseline` into the PBPL configuration so every implementation is
/// compared under identical conditions.
struct ExperimentSetup {
  BaselineParams baseline;
  core::PbplConfig pbpl;

  /// PBPL config with cores / service / B0 synchronized to the baseline.
  core::PbplConfig synchronized_pbpl() const;
};

/// Runs `kind` over one trace per pair and returns the uniform result.
RunResult run_implementation(ImplKind kind, std::span<const trace::Trace> traces,
                             SimDuration horizon, const ExperimentSetup& setup);

/// Converts a PBPL system result into the uniform record.
RunResult to_run_result(core::PbplResult&& pbpl, SimDuration horizon);

}  // namespace pcpc::impls
