// The uniform outcome record of one producer-consumer experiment run.
//
// Every implementation — the seven from the paper's Section III study,
// their multi-pair variants, and PBPL — reduces to this, so the benches
// compare apples to apples with the paper's three metrics (power,
// wakeups/s, usage ms/s) plus the internal counters of Section VI-B.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcpc/common/latency_recorder.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/power/core_timeline.hpp"
#include "pcpc/power/energy_ledger.hpp"

namespace pcpc::impls {

/// Aggregated metrics of one run.
struct RunResult {
  std::string name;

  /// Finalized activity of every core used.
  std::vector<power::CoreTimeline> timelines;

  SimDuration duration = 0;              ///< experiment span

  std::uint64_t items = 0;               ///< items consumed
  std::uint64_t invocations = 0;         ///< consumer activations
  std::uint64_t overflows = 0;           ///< buffer-full events
  std::uint64_t scheduled_wakeups = 0;   ///< timer/slot wakeups (batch impls)
  std::uint64_t paid_wakeups = 0;        ///< idle→active transitions

  // PBPL-only extras (zero elsewhere):
  std::uint64_t latched_reservations = 0;
  std::uint64_t reservations = 0;
  std::uint64_t emergency_borrows = 0;

  /// Models DVFS dropping the clock under a cooperative load; only the
  /// Yield implementation sets this below 1 (Section III-C2).
  double active_power_scale = 1.0;

  /// Scale on the reported usage metric; Yield's sched_yield gaps keep it
  /// slightly below busy-wait without producing C-state-worthy idle time.
  double usage_scale = 1.0;

  OnlineStats batch_sizes;
  LatencyRecorder latency_s;
  OnlineStats buffer_capacity;           ///< PBPL average-buffer-size metric

  /// PowerTop metric: wakeups per second, summed across cores.
  double wakeups_per_s() const;

  /// PowerTop metric: active milliseconds per second, summed across cores.
  double usage_ms_per_s() const;

  /// The paper's power metric: extra watts above the idle baseline,
  /// including the board-level item-transport term.
  double extra_power_w(const power::EnergyLedger& ledger) const;
};

}  // namespace pcpc::impls
