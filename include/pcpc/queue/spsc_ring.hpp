// Cache-optimized wait-free single-producer/single-consumer ring.
//
// Torquati, "Single-Producer/Single-Consumer Queues on Shared Cache
// Multi-Core Systems": the two costs of a naive SPSC ring are (1) each
// side re-loading the *other* side's index on every operation and (2) the
// producer's index store invalidating the consumer's cache line per item.
// This ring removes both:
//
//   - head/tail live on their own cache lines, and each side keeps a
//     *cached* copy of the opposite index, refreshed only when the cached
//     value says the ring looks full/empty (amortizing the coherence miss
//     over capacity-many operations);
//   - the producer may *batch index publication*: items are written to
//     their slots immediately, but the shared tail is stored once every
//     `publish_batch` pushes (or on flush()), so a burst of k items costs
//     one invalidation of the consumer's line instead of k.
//
// Both operations are wait-free: a bounded number of instructions, no
// CAS, no retry loop.  Capacity is *logical* on top of a fixed physical
// slot array, so the PBPL hosts can keep the paper's elastic resizing
// (Section V-C) by moving logical capacity between consumers while the
// storage itself stays preallocated — exactly the spirit of the paper's
// preallocated global buffer Bg.
//
// Slot storage is placement-agnostic (placement.hpp): HeapSlots (the
// default, owned array) or OffsetSlots (caller-placed, self-relative —
// how the pcpc::ipc host puts ring segments in shared memory).  The
// admission/index logic is byte-identical across placements.
//
// Thread contract: try_push/flush from ONE producer thread at a time;
// try_pop/size-from-consumer/set_capacity from ONE consumer thread at a
// time.  Either role may migrate between threads if the migration itself
// is synchronized (e.g. the runtime's manager lock).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>

#include "pcpc/common/assert.hpp"
#include "pcpc/queue/placement.hpp"

namespace pcpc::queue {

template <typename T, template <typename> class SlotsTmpl = HeapSlots>
class SpscRing {
 public:
  /// `max_capacity` bounds the logical capacity forever (physical slots
  /// are allocated once, rounded up to a power of two).  The initial
  /// logical capacity is `capacity`, clamped into [1, max_capacity].
  /// `placement` selects where the slot array lives (see placement.hpp).
  explicit SpscRing(std::size_t capacity, std::size_t max_capacity = 0,
                    Placement placement = {})
      : max_capacity_(max_capacity == 0 ? capacity : max_capacity),
        mask_(round_up_pow2(max_capacity_) - 1),
        slots_(mask_ + 1, placement) {
    PCPC_ASSERT_MSG(capacity > 0, "spsc ring capacity must be positive");
    PCPC_ASSERT_MSG(capacity <= max_capacity_, "capacity above max_capacity");
    logical_capacity_.store(capacity, std::memory_order_relaxed);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // -- producer side ------------------------------------------------------

  /// Appends an item; false (item kept by caller) when logically full.
  /// A full ring flushes any unpublished items first, so the consumer can
  /// always drain everything that was accepted.
  bool try_push(T value) {
    const std::uint64_t t = prod_.tail_local;
    if (t - prod_.cached_head >= cap64()) {
      prod_.cached_head = head_.index.load(std::memory_order_acquire);
      if (t - prod_.cached_head >= cap64()) {
        flush();
        return false;
      }
    }
    slot(static_cast<std::size_t>(t) & mask_) = std::move(value);
    prod_.tail_local = t + 1;
    if (++prod_.pending >= prod_.publish_batch) flush();
    return true;
  }

  /// Appends a volley: accepts the longest prefix of `items` that fits
  /// the logical capacity and publishes the shared tail ONCE for the
  /// whole volley, so a burst of k items costs the consumer one cache
  /// invalidation instead of k.  Returns the number accepted.
  std::size_t try_push_bulk(std::span<const T> items) {
    const std::uint64_t t = prod_.tail_local;
    std::uint64_t used = t - prod_.cached_head;
    if (used + items.size() > cap64()) {
      prod_.cached_head = head_.index.load(std::memory_order_acquire);
      used = t - prod_.cached_head;
    }
    const std::uint64_t space = used >= cap64() ? 0 : cap64() - used;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(items.size(), space));
    for (std::size_t i = 0; i < n; ++i) {
      slot(static_cast<std::size_t>(t + i) & mask_) = items[i];
    }
    prod_.tail_local = t + n;
    prod_.pending += n;
    if (prod_.pending > 0) flush();
    return n;
  }

  /// Publishes every accepted-but-unpublished item to the consumer.
  void flush() {
    if (prod_.pending == 0) return;
    tail_.index.store(prod_.tail_local, std::memory_order_release);
    prod_.pending = 0;
  }

  /// Publish the shared tail once every `n` pushes (1 = per item, the
  /// default).  Larger batches trade item visibility latency for fewer
  /// coherence invalidations; call flush() to bound the delay.
  void set_publish_batch(std::size_t n) {
    flush();
    prod_.publish_batch = n == 0 ? 1 : n;
  }

  // -- consumer side ------------------------------------------------------

  /// Removes the oldest published item; nullopt when none is visible.
  std::optional<T> try_pop() {
    const std::uint64_t h = cons_.head_local;
    if (h == cons_.cached_tail) {
      cons_.cached_tail = tail_.index.load(std::memory_order_acquire);
      if (h == cons_.cached_tail) return std::nullopt;
    }
    T value = std::move(slot(static_cast<std::size_t>(h) & mask_));
    cons_.head_local = h + 1;
    head_.index.store(h + 1, std::memory_order_release);
    return value;
  }

  /// Removes up to `out.size()` published items in FIFO order, writing
  /// them into `out` and returning the count.  The whole chunk is taken
  /// with one cached-tail refresh, at most two contiguous slot copies
  /// (wrap-around split) and a SINGLE head publication — Torquati's
  /// batching argument applied to the consumer side: k items cost one
  /// producer-visible cache invalidation instead of k.
  std::size_t pop_bulk(std::span<T> out) {
    std::size_t n = 0;
    while (n < out.size()) {
      const std::uint64_t h = cons_.head_local;
      if (h == cons_.cached_tail) {
        // Same refresh point as try_pop: when the cached view runs dry,
        // re-read the shared tail once — so a single pop_bulk call
        // returns exactly what out.size() repeated try_pops would.
        cons_.cached_tail = tail_.index.load(std::memory_order_acquire);
        if (h == cons_.cached_tail) break;
      }
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(out.size() - n, cons_.cached_tail - h));
      const std::size_t start = static_cast<std::size_t>(h) & mask_;
      const std::size_t first = std::min(take, mask_ + 1 - start);
      for (std::size_t i = 0; i < first; ++i) out[n + i] = std::move(slot(start + i));
      for (std::size_t i = first; i < take; ++i) out[n + i] = std::move(slot(i - first));
      cons_.head_local = h + take;
      n += take;
    }
    if (n > 0) head_.index.store(cons_.head_local, std::memory_order_release);
    return n;
  }

  /// Raises or lowers the logical capacity, clamped into
  /// [1, max_capacity()].  Items already accepted stay; a capacity below
  /// the current fill level just fails pushes until the consumer drains.
  /// Returns the capacity actually set.
  std::size_t set_capacity(std::size_t n) {
    const std::size_t clamped = n == 0 ? 1 : (n > max_capacity_ ? max_capacity_ : n);
    logical_capacity_.store(clamped, std::memory_order_release);
    return clamped;
  }

  // -- either side (approximate between operations) -----------------------

  /// Published items currently buffered.
  std::size_t size() const {
    const std::uint64_t t = tail_.index.load(std::memory_order_acquire);
    const std::uint64_t h = head_.index.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  bool empty() const { return size() == 0; }

  std::size_t capacity() const {
    return logical_capacity_.load(std::memory_order_acquire);
  }

  std::size_t max_capacity() const { return max_capacity_; }

  /// Physical slot count for a given max capacity (shm layout sizing).
  static std::size_t physical_slots(std::size_t max_capacity) {
    return round_up_pow2(max_capacity);
  }

  /// Bytes an OffsetSlots placement region must provide.
  static std::size_t placement_bytes(std::size_t max_capacity) {
    return physical_slots(max_capacity) * sizeof(T);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::uint64_t cap64() const {
    return static_cast<std::uint64_t>(logical_capacity_.load(std::memory_order_relaxed));
  }

  /// Shared index on its own cache line; nothing else shares the line.
  struct alignas(64) SharedIndex {
    std::atomic<std::uint64_t> index{0};
  };

  /// Producer-private state: one line, written only by the producer.
  struct alignas(64) ProducerState {
    std::uint64_t tail_local = 0;   ///< includes unpublished pushes
    std::uint64_t cached_head = 0;  ///< last observed consumer index
    std::size_t pending = 0;        ///< pushes since the last publication
    std::size_t publish_batch = 1;
  };

  /// Consumer-private state, likewise isolated.
  struct alignas(64) ConsumerState {
    std::uint64_t head_local = 0;
    std::uint64_t cached_tail = 0;
  };

  T& slot(std::size_t i) { return slots_.data()[i]; }

  const std::size_t max_capacity_;
  const std::size_t mask_;
  SlotsTmpl<T> slots_;
  SharedIndex head_;  ///< consumer publishes consumption here
  SharedIndex tail_;  ///< producer publishes production here
  alignas(64) std::atomic<std::size_t> logical_capacity_;
  ProducerState prod_;
  ConsumerState cons_;
};

}  // namespace pcpc::queue
