// Handoff — the host-facing face of a queue backend.
//
// Both hosts (sim and thread) move items from producers to one consumer
// through exactly one object per consumer.  Handoff is the small virtual
// interface that lets that object be the seed's mutex-guarded
// ElasticBuffer, the Torquati SPSC ring or the Jiffy-style MPSC queue
// without the hosts caring which — while keeping the three behaviours the
// paper's evaluation depends on:
//
//   - *elastic capacity*: resize() moves whole pool segments between
//     consumers (Section V-C), also for the lock-free backends, where the
//     storage is fixed and only the logical admission bound moves;
//   - *drop accounting*: every rejected push is counted, so the hosts'
//     produced == consumed + dropped identities keep holding exactly;
//   - *observability*: capacity changes emit obs::kQueueResize and feed
//     the capacity_samples() average the figures report.
//
// Locking contract: the interface itself is lock-agnostic.  For
// BackendKind::Mutex the host must hold its own lock around every call
// (the seed behaviour).  For the lock-free backends, try_push and
// try_push_bulk are safe from producer threads without any lock (one
// producer for SpscRing, any number for MpscSeg), while
// try_pop/pop_bulk/resize/flush remain single-consumer operations the
// host already serializes on its manager lock.  The
// accessors (size/capacity/overflows/high_water) are safe anywhere but
// only approximate while producers are live.  Pool segment accounting
// inside resize() is NOT thread-safe — both hosts call resize() on the
// same control path that already guards the pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/stats.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/queue/backend.hpp"
#include "pcpc/queue/bounded_buffer.hpp"
#include "pcpc/queue/elastic_buffer.hpp"
#include "pcpc/queue/mpsc_queue.hpp"
#include "pcpc/queue/placement.hpp"
#include "pcpc/queue/spsc_ring.hpp"
#include "pcpc/queue/varlen.hpp"

namespace pcpc::queue {

/// Chunk size of Handoff::drain: one virtual pop_bulk call per this many
/// items, staged through a stack buffer.
inline constexpr std::size_t kDrainChunk = 128;

template <typename T>
class Handoff {
 public:
  virtual ~Handoff() = default;

  virtual BackendKind kind() const = 0;

  /// True when try_push needs no host lock.
  virtual bool lock_free() const = 0;

  /// Producer side.  False = rejected (full); the reject is counted in
  /// overflows() and the item stays with the caller.
  virtual bool try_push(T value) = 0;

  /// Producer side, volley form: accepts the longest prefix of `items`
  /// that fits and returns its length.  Each rejected item counts one
  /// overflow, like `items.size() - n` single pushes would.  The lock-free
  /// backends take the whole volley with O(1) shared-state updates (one
  /// tail publication / one admission claim) instead of per-item ones.
  virtual std::size_t try_push_bulk(std::span<const T> items) {
    // Per-item fallback: every leftover item is still offered (and its
    // reject counted) so the overflow accounting matches what
    // items.size() single pushes would have recorded.  Capacity cannot
    // grow mid-call, so acceptance stays a prefix.  The failing push
    // that ended the prefix already counted item n's reject; offer the
    // items after it so each of their rejects is counted exactly once.
    std::size_t n = 0;
    while (n < items.size() && try_push(items[n])) ++n;
    for (std::size_t i = n + 1; i < items.size(); ++i) {
      const bool stored = try_push(items[i]);
      PCPC_ASSERT_MSG(!stored, "bulk push accepted out of prefix order");
    }
    return n;
  }

  /// Consumer side; nullopt when nothing is visible.
  virtual std::optional<T> try_pop() = 0;

  /// Consumer side, bulk form: removes up to `out.size()` items in FIFO
  /// order and returns the count — the same item sequence repeated
  /// try_pop would yield, minus the per-item virtual dispatch (and, on
  /// the lock-free backends, with one shared-index publication per chunk
  /// instead of per item).
  virtual std::size_t pop_bulk(std::span<T> out) {
    std::size_t n = 0;
    while (n < out.size()) {
      auto item = try_pop();
      if (!item.has_value()) break;
      out[n++] = std::move(*item);
    }
    return n;
  }

  /// Consumer side: drains everything currently visible through `fn`
  /// (called once per item, FIFO order), chunking pop_bulk through a
  /// stack buffer.  Returns the number of items drained.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    T chunk[kDrainChunk];
    std::size_t total = 0;
    for (;;) {
      const std::size_t n = pop_bulk(std::span<T>(chunk, kDrainChunk));
      if (n == 0) return total;
      total += n;
      for (std::size_t i = 0; i < n; ++i) fn(std::move(chunk[i]));
    }
  }

  /// Consumer side: publish any batched pushes (SPSC publication
  /// batching); no-op elsewhere.
  virtual void flush() {}

  /// Consumer side: elastic resize toward `target` slots, clamped by the
  /// pool's free space (growth), the live fill level (shrink) and the
  /// backend's physical bound.  Returns the capacity actually set.
  virtual std::size_t resize(std::size_t target) = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
  virtual std::uint64_t overflows() const = 0;
  virtual std::size_t high_water() const = 0;
  virtual const OnlineStats& capacity_samples() const = 0;

  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity(); }
};

/// The seed path: an ElasticBuffer under the host's own lock.
template <typename T>
class ElasticHandoff final : public Handoff<T> {
 public:
  ElasticHandoff(BufferPool<T>& pool, std::uint32_t consumer)
      : consumer_(consumer), buffer_(pool.make_buffer()) {}

  BackendKind kind() const override { return BackendKind::Mutex; }
  bool lock_free() const override { return false; }

  bool try_push(T value) override { return buffer_.push(std::move(value)); }
  std::optional<T> try_pop() override { return buffer_.pop(); }

  /// Devirtualized bulk pop: one virtual call per chunk, direct
  /// ElasticBuffer::pop inside.
  std::size_t pop_bulk(std::span<T> out) override {
    std::size_t n = 0;
    while (n < out.size()) {
      auto item = buffer_.pop();
      if (!item.has_value()) break;
      out[n++] = std::move(*item);
    }
    return n;
  }

  std::size_t resize(std::size_t target) override {
    const std::size_t old_cap = buffer_.capacity();
    const std::size_t new_cap = buffer_.resize(target);
    if (new_cap != old_cap) obs::note_queue_resize(consumer_, old_cap, new_cap);
    return new_cap;
  }

  std::size_t size() const override { return buffer_.size(); }
  std::size_t capacity() const override { return buffer_.capacity(); }
  std::uint64_t overflows() const override { return buffer_.overflows(); }
  std::size_t high_water() const override { return buffer_.high_water(); }
  const OnlineStats& capacity_samples() const override {
    return buffer_.capacity_samples();
  }

 private:
  std::uint32_t consumer_;
  ElasticBuffer<T> buffer_;
};

/// Shared scaffolding of the two lock-free adapters: pool segment
/// accounting (mirroring ElasticBuffer::resize's clamping), atomic
/// overflow/high-water tracking from concurrent producers, and the
/// resize obs event.  `Queue` is SpscRing<T> or MpscSegQueue<T>.
template <typename T, typename Queue>
class LockFreeHandoff : public Handoff<T> {
 public:
  bool lock_free() const override { return true; }

  bool try_push(T value) override {
    if (!queue_.try_push(std::move(value))) {
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Approximate high-water mark: size() sampled right after our push.
    const std::size_t s = queue_.size();
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (s > hw &&
           !high_water_.compare_exchange_weak(hw, s, std::memory_order_relaxed)) {
    }
    return true;
  }

  std::size_t try_push_bulk(std::span<const T> items) override {
    const std::size_t n = queue_.try_push_bulk(items);
    if (n < items.size()) {
      overflows_.fetch_add(items.size() - n, std::memory_order_relaxed);
    }
    if (n > 0) {
      const std::size_t s = queue_.size();
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (s > hw &&
             !high_water_.compare_exchange_weak(hw, s, std::memory_order_relaxed)) {
      }
    }
    return n;
  }

  std::optional<T> try_pop() override { return queue_.try_pop(); }

  std::size_t pop_bulk(std::span<T> out) override { return queue_.pop_bulk(out); }

  std::size_t resize(std::size_t target) override {
    const std::size_t old_cap = queue_.capacity();
    std::size_t new_cap;
    if (pool_ != nullptr) {
      // Same clamping as ElasticBuffer::resize, against a single size
      // snapshot (producers may push concurrently; a snapshot taken once
      // cannot strand capacity below what we decided to keep).
      const std::size_t seg = pool_->segment_size();
      const std::size_t live = queue_.size();
      const std::size_t min_slots = std::max<std::size_t>(live, 1);
      const std::size_t want_slots = std::max(target, min_slots);
      const std::size_t want_segments = (want_slots + seg - 1) / seg;
      if (want_segments > segments_) {
        segments_ += pool_->grant_segments(want_segments - segments_);
      } else if (want_segments < segments_) {
        pool_->return_segments(segments_ - want_segments);
        segments_ = want_segments;
      }
      // set_capacity clamps to the physical bound; in the (emergency
      // overcommit) corner where granted segments exceed it, the logical
      // capacity saturates and the extra segments return on teardown.
      new_cap = queue_.set_capacity(segments_ * seg);
    } else {
      new_cap = queue_.set_capacity(target);
    }
    capacity_samples_.add(static_cast<double>(new_cap));
    if (new_cap != old_cap) obs::note_queue_resize(consumer_, old_cap, new_cap);
    return new_cap;
  }

  std::size_t size() const override { return queue_.size(); }
  std::size_t capacity() const override { return queue_.capacity(); }
  std::uint64_t overflows() const override {
    return overflows_.load(std::memory_order_relaxed);
  }
  std::size_t high_water() const override {
    return high_water_.load(std::memory_order_relaxed);
  }
  const OnlineStats& capacity_samples() const override { return capacity_samples_; }

  ~LockFreeHandoff() override {
    if (pool_ != nullptr) pool_->return_segments(segments_);
  }

 protected:
  /// Pool-backed: starts at the consumer's B0 share, max capacity Bg.
  /// `placement` selects where the queue's slot array lives (heap by
  /// default; an OffsetSlots queue type takes a caller-placed region).
  LockFreeHandoff(BufferPool<T>& pool, std::uint32_t consumer,
                  std::size_t base_segments, Placement placement = {})
      : queue_(base_segments * pool.segment_size(),
               std::max(pool.total_slots(), base_segments * pool.segment_size()),
               placement),
        pool_(&pool),
        consumer_(consumer),
        segments_(base_segments) {}

  /// Standalone fixed-capacity (baseline host): no pool accounting.
  LockFreeHandoff(std::size_t capacity, std::uint32_t consumer)
      : queue_(capacity, capacity, Placement{}), pool_(nullptr), consumer_(consumer) {}

  Queue queue_;

 private:
  BufferPool<T>* pool_;
  std::uint32_t consumer_;
  std::size_t segments_ = 0;
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::size_t> high_water_{0};
  OnlineStats capacity_samples_;
};

template <typename T, template <typename> class SlotsTmpl = HeapSlots>
class SpscHandoff final : public LockFreeHandoff<T, SpscRing<T, SlotsTmpl>> {
  using Base = LockFreeHandoff<T, SpscRing<T, SlotsTmpl>>;

 public:
  SpscHandoff(BufferPool<T>& pool, std::uint32_t consumer, Placement placement = {})
      : Base(pool, consumer, pool.grant_base_segments(), placement) {}
  SpscHandoff(std::size_t capacity, std::uint32_t consumer)
      : Base(capacity, consumer) {}

  BackendKind kind() const override { return BackendKind::SpscRing; }
  void flush() override { this->queue_.flush(); }
};

template <typename T, template <typename> class SlotsTmpl = HeapSlots>
class MpscHandoff final
    : public LockFreeHandoff<T, MpscSegQueue<T, 64, SlotsTmpl>> {
  using Base = LockFreeHandoff<T, MpscSegQueue<T, 64, SlotsTmpl>>;

 public:
  MpscHandoff(BufferPool<T>& pool, std::uint32_t consumer, Placement placement = {})
      : Base(pool, consumer, pool.grant_base_segments(), placement) {}
  MpscHandoff(std::size_t capacity, std::uint32_t consumer)
      : Base(capacity, consumer) {}

  BackendKind kind() const override { return BackendKind::MpscSeg; }
};

/// Standalone mutex-backend hand-off for hosts without a pool (the
/// baselines): a fixed-capacity BoundedBuffer under the host's lock.
template <typename T>
class BoundedHandoff final : public Handoff<T> {
 public:
  explicit BoundedHandoff(std::size_t capacity) : buffer_(capacity) {}

  BackendKind kind() const override { return BackendKind::Mutex; }
  bool lock_free() const override { return false; }

  bool try_push(T value) override { return buffer_.push(std::move(value)); }
  std::optional<T> try_pop() override { return buffer_.pop(); }

  /// Devirtualized bulk pop over the ring (see ElasticHandoff).
  std::size_t pop_bulk(std::span<T> out) override {
    std::size_t n = 0;
    while (n < out.size()) {
      auto item = buffer_.pop();
      if (!item.has_value()) break;
      out[n++] = std::move(*item);
    }
    return n;
  }

  /// Fixed capacity: resize is a no-op reporting the unchanged bound.
  std::size_t resize(std::size_t) override { return buffer_.capacity(); }

  std::size_t size() const override { return buffer_.size(); }
  std::size_t capacity() const override { return buffer_.capacity(); }
  std::uint64_t overflows() const override { return buffer_.overflows(); }
  std::size_t high_water() const override { return buffer_.high_water(); }
  const OnlineStats& capacity_samples() const override { return capacity_samples_; }

 private:
  BoundedBuffer<T> buffer_;
  OnlineStats capacity_samples_;  ///< stays empty; capacity never moves
};

/// Pool-backed hand-off for the elastic hosts (PBPL sim + thread).
template <typename T>
std::unique_ptr<Handoff<T>> make_pool_handoff(BackendKind kind, BufferPool<T>& pool,
                                              std::uint32_t consumer) {
  switch (kind) {
    case BackendKind::Mutex: return std::make_unique<ElasticHandoff<T>>(pool, consumer);
    case BackendKind::SpscRing: return std::make_unique<SpscHandoff<T>>(pool, consumer);
    case BackendKind::MpscSeg: return std::make_unique<MpscHandoff<T>>(pool, consumer);
  }
  return nullptr;
}

/// Worst-case slot-array bytes a placed pool hand-off may need for this
/// pool (max capacity saturates at Bg; one extra segment covers the
/// emergency-overcommit corner where a base grant exceeds the pool).
template <typename T>
std::size_t placed_handoff_bytes(BackendKind kind, const BufferPool<T>& pool) {
  const std::size_t max_cap = pool.total_slots() + pool.segment_size();
  switch (kind) {
    case BackendKind::Mutex: return 0;  // deque storage cannot be placed
    case BackendKind::SpscRing: return SpscRing<T>::placement_bytes(max_cap);
    case BackendKind::MpscSeg: return MpscSegQueue<T>::placement_bytes(max_cap);
  }
  return 0;
}

/// Pool-backed hand-off whose slot array lives in a caller-placed region
/// (e.g. a shared-memory mapping) instead of the heap — the placement-
/// agnostic face of the lock-free backends.  Size the region with
/// placed_handoff_bytes().  Mutex has no placed variant (deque storage);
/// callers get nullptr and should fall back to make_pool_handoff.
template <typename T>
std::unique_ptr<Handoff<T>> make_placed_pool_handoff(BackendKind kind,
                                                     BufferPool<T>& pool,
                                                     std::uint32_t consumer,
                                                     Placement placement) {
  switch (kind) {
    case BackendKind::Mutex: return nullptr;
    case BackendKind::SpscRing:
      return std::make_unique<SpscHandoff<T, OffsetSlots>>(pool, consumer, placement);
    case BackendKind::MpscSeg:
      return std::make_unique<MpscHandoff<T, OffsetSlots>>(pool, consumer, placement);
  }
  return nullptr;
}

/// Fixed-capacity hand-off for the baseline host.
template <typename T>
std::unique_ptr<Handoff<T>> make_handoff(BackendKind kind, std::size_t capacity,
                                         std::uint32_t consumer = 0) {
  switch (kind) {
    case BackendKind::Mutex: return std::make_unique<BoundedHandoff<T>>(capacity);
    case BackendKind::SpscRing:
      return std::make_unique<SpscHandoff<T>>(capacity, consumer);
    case BackendKind::MpscSeg:
      return std::make_unique<MpscHandoff<T>>(capacity, consumer);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// VarHandoff — the host-facing face of the varlen record rings.
//
// Same role Handoff<T> plays for fixed-size items, but the payload is a
// byte span carved from the ring itself: producers reserve/commit (or
// try_push_record for the one-copy convenience path), the consumer
// claims zero-copy views and releases them once its handlers are done.
// The two-cursor consumer contract of varlen.hpp is exposed verbatim —
// claim_front()/drop_oldest() advance the claim cursor,
// release_until(target) returns bytes below a previously captured
// target, and the two may run concurrently (the thread host claims
// under its core lock and releases after handlers, outside it).
//
// Locking contract mirrors Handoff: Mutex kind — the host holds its own
// lock around every call; lock-free kinds — producer calls need no lock
// (one producer for SpscRing, any number for MpscSeg), consumer calls
// stay single-consumer.
// ---------------------------------------------------------------------------

class VarHandoff {
 public:
  virtual ~VarHandoff() = default;

  virtual BackendKind kind() const = 0;
  virtual bool lock_free() const = 0;

  /// Producer side.  A failed reserve counts one overflow (and the
  /// payload bytes it carried) like Handoff::try_push counts rejects.
  virtual bool try_reserve(std::uint32_t payload_bytes, VarReservation& out) = 0;
  virtual bool commit(VarReservation& r) = 0;
  virtual bool try_push_record(std::span<const std::byte> payload) = 0;

  /// Consumer side (see varlen.hpp for the two-cursor contract).
  virtual std::optional<VarRecordView> claim_front() = 0;
  virtual std::uint64_t claim_offset() const = 0;
  virtual void release_until(std::uint64_t target) = 0;
  virtual bool drop_oldest(std::uint64_t& footprint, std::uint32_t& payload) = 0;

  /// Scatter-free drain: every visible record is handed to `fn` as an
  /// in-ring span, then the run is released with one cursor publication.
  template <typename Fn>
  std::size_t drain_records(Fn&& fn, std::size_t max_records = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max_records) {
      auto view = claim_front();
      if (!view.has_value()) break;
      fn(std::span<const std::byte>(view->data, view->size));
      ++n;
    }
    if (n > 0) release_until(claim_offset());
    return n;
  }

  /// Elastic resize toward `target` footprint bytes, clamped by the
  /// ring's physical bound.  Returns the capacity actually set.
  virtual std::size_t resize_bytes(std::size_t target) = 0;

  virtual std::size_t capacity_bytes() const = 0;
  virtual std::size_t size_bytes() const = 0;
  virtual std::uint32_t max_record_payload() const = 0;
  virtual VarCounters counters() const = 0;
  virtual void set_owner(std::uint16_t owner_plus1) = 0;

  std::uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow_bytes() const {
    return overflow_bytes_.load(std::memory_order_relaxed);
  }

 protected:
  void note_overflow(std::uint64_t payload_bytes) {
    overflows_.fetch_add(1, std::memory_order_relaxed);
    overflow_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> overflow_bytes_{0};
};

/// One adapter covers all three backends: the Mutex kind is the SPSC
/// ring driven under the host's lock (same admission arithmetic, so the
/// differential harness can demand bit-identical trajectories), the
/// lock-free kinds are the rings on their native contracts.
template <typename Ring, BackendKind kKind, bool kLockFree>
class VarRingHandoff final : public VarHandoff {
 public:
  VarRingHandoff(std::size_t capacity_bytes, std::size_t max_bytes,
                 std::uint32_t max_record_payload, Placement placement = {})
      : ring_(capacity_bytes, max_bytes, max_record_payload, placement) {}

  BackendKind kind() const override { return kKind; }
  bool lock_free() const override { return kLockFree; }

  bool try_reserve(std::uint32_t payload_bytes, VarReservation& out) override {
    if (!ring_.try_reserve(payload_bytes, out)) {
      note_overflow(payload_bytes);
      return false;
    }
    return true;
  }
  bool commit(VarReservation& r) override { return ring_.commit(r); }
  bool try_push_record(std::span<const std::byte> payload) override {
    VarReservation r;
    if (!try_reserve(static_cast<std::uint32_t>(payload.size()), r)) return false;
    std::memcpy(r.data, payload.data(), payload.size());
    return commit(r);
  }

  std::optional<VarRecordView> claim_front() override { return ring_.claim_front(); }
  std::uint64_t claim_offset() const override { return ring_.claim_offset(); }
  void release_until(std::uint64_t target) override { ring_.release_until(target); }
  bool drop_oldest(std::uint64_t& footprint, std::uint32_t& payload) override {
    return ring_.drop_oldest(footprint, payload);
  }

  std::size_t resize_bytes(std::size_t target) override {
    return ring_.set_capacity_bytes(target);
  }
  std::size_t capacity_bytes() const override { return ring_.capacity_bytes(); }
  std::size_t size_bytes() const override { return ring_.size_bytes(); }
  std::uint32_t max_record_payload() const override {
    return ring_.max_record_payload();
  }
  VarCounters counters() const override { return ring_.counters(); }
  void set_owner(std::uint16_t owner_plus1) override { ring_.set_owner(owner_plus1); }

  Ring& ring() { return ring_; }

 private:
  Ring ring_;
};

/// Varlen hand-off on heap storage.  `max_bytes` bounds the elastic
/// footprint capacity forever; `max_record_payload` bounds a single
/// record's payload.
inline std::unique_ptr<VarHandoff> make_var_handoff(
    BackendKind kind, std::size_t capacity_bytes, std::size_t max_bytes = 0,
    std::uint32_t max_record_payload = kDefaultMaxVarRecordBytes) {
  switch (kind) {
    case BackendKind::Mutex:
      return std::make_unique<
          VarRingHandoff<VarSpscRing<HeapSlots>, BackendKind::Mutex, false>>(
          capacity_bytes, max_bytes, max_record_payload);
    case BackendKind::SpscRing:
      return std::make_unique<
          VarRingHandoff<VarSpscRing<HeapSlots>, BackendKind::SpscRing, true>>(
          capacity_bytes, max_bytes, max_record_payload);
    case BackendKind::MpscSeg:
      return std::make_unique<
          VarRingHandoff<VarMpscRing<HeapSlots>, BackendKind::MpscSeg, true>>(
          capacity_bytes, max_bytes, max_record_payload);
  }
  return nullptr;
}

/// Bytes an OffsetSlots placement region must provide for
/// make_placed_var_handoff.  Unlike the item queues, every kind has a
/// placed variant (the Mutex kind shares the SPSC ring's storage).
inline std::size_t placed_var_handoff_bytes(
    BackendKind kind, std::size_t max_bytes,
    std::uint32_t max_record_payload = kDefaultMaxVarRecordBytes) {
  switch (kind) {
    case BackendKind::Mutex:
    case BackendKind::SpscRing:
      return VarSpscRing<OffsetSlots>::placement_bytes(max_bytes, max_record_payload);
    case BackendKind::MpscSeg:
      return VarMpscRing<OffsetSlots>::placement_bytes(max_bytes, max_record_payload);
  }
  return 0;
}

/// Varlen hand-off whose ring storage lives in a caller-placed region
/// (e.g. a shared-memory mapping).  Size the region with
/// placed_var_handoff_bytes().
inline std::unique_ptr<VarHandoff> make_placed_var_handoff(
    BackendKind kind, std::size_t capacity_bytes, std::size_t max_bytes,
    std::uint32_t max_record_payload, Placement placement) {
  switch (kind) {
    case BackendKind::Mutex:
      return std::make_unique<
          VarRingHandoff<VarSpscRing<OffsetSlots>, BackendKind::Mutex, false>>(
          capacity_bytes, max_bytes, max_record_payload, placement);
    case BackendKind::SpscRing:
      return std::make_unique<
          VarRingHandoff<VarSpscRing<OffsetSlots>, BackendKind::SpscRing, true>>(
          capacity_bytes, max_bytes, max_record_payload, placement);
    case BackendKind::MpscSeg:
      return std::make_unique<
          VarRingHandoff<VarMpscRing<OffsetSlots>, BackendKind::MpscSeg, true>>(
          capacity_bytes, max_bytes, max_record_payload, placement);
  }
  return nullptr;
}

}  // namespace pcpc::queue
