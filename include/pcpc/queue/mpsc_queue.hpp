// Linked-segment multi-producer/single-consumer queue.
//
// Shaped after Jiffy (Adas & Friedman, "Jiffy: A Fast, Memory Efficient,
// Wait-Free Multi-Producer Single-Consumer Queue"): storage is a sequence
// of fixed-size segments, producers claim slots with a single fetch_add
// on a global ticket and publish each item with one release store to the
// slot's sequence word, and the lone consumer walks the segments in
// order.  Two deliberate divergences, both motivated by the paper this
// repo reproduces:
//
//   - Segments are preallocated at construction instead of allocated on
//     demand.  The paper's Section V-C insists the global buffer Bg be
//     preallocated ("using linked lists … not actual contiguous
//     resizing"), and a bounded ring makes the queue allocation-free and
//     reclamation-free on the hot path — no hazard pointers, no epoch
//     scheme, nothing for a sanitizer to find.
//   - The queue is bounded by a *logical* capacity enforced with an
//     admission counter, adjustable at runtime, so the PBPL hosts keep
//     elastic resizing and the four overflow policies working unchanged
//     on top of it.
//
// Storage note: the preallocated segments form one contiguous slot array
// addressed by `ticket % n_slots` — pure offset arithmetic, no pointers
// — so the array can be carried by any placement policy (placement.hpp):
// the heap by default, or a caller-placed region for the pcpc::ipc
// shared-memory host.  Segment boundaries survive only as the kSegSlots
// rounding of the physical slot count.
//
// Slot handoff uses per-slot sequence numbers (the Vyukov bounded-queue
// handshake): the producer holding ticket t waits for seq == t, writes,
// then stores seq = t+1; the consumer waits for seq == t+1, reads, then
// stores seq = t + N_slots, which is precisely what admits the producer
// holding ticket t + N_slots to reuse the slot.  Sequence numbers are
// monotone, so a stale read can only mean "keep waiting" — there is no
// ABA window.  The admission counter makes the producer's wait provably
// short: the array holds max_capacity + producer_slack + 1 slots, so a
// ticket N_slots ahead can only be issued after the consumer has already
// popped (and re-sequenced) the slot's previous occupant; the wait only
// covers cache propagation of that store.
//
// A push is therefore two fetch_adds, one (normally satisfied-on-first-
// load) acquire wait and two stores; a pop is one acquire load and two
// stores.  The consumer consumes in strict ticket order and reports
// "nothing visible" while the head slot's producer is still between
// claiming and publishing (Jiffy instead skips such holes; strict order
// keeps the differential semantics identical to the other backends, and
// the hole window is a few instructions wide).
//
// Thread contract: try_push from any number of threads (≤ producer_slack
// concurrently); try_pop/set_capacity from one consumer thread at a time
// (migration allowed if externally synchronized).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>

#include "pcpc/common/assert.hpp"
#include "pcpc/queue/placement.hpp"

namespace pcpc::queue {

/// One ticket's cell: the Vyukov sequence word plus the payload.
template <typename T>
struct MpscSlot {
  std::atomic<std::uint64_t> seq{0};
  T value{};
};

template <typename T, std::size_t kSegSlots = 64,
          template <typename> class SlotsTmpl = HeapSlots>
class MpscSegQueue {
 public:
  using Slot = MpscSlot<T>;

  /// `capacity` is the initial logical bound, `max_capacity` the largest
  /// it may ever be raised to (0 = same as capacity).  `producer_slack`
  /// bounds how many producer threads may be inside try_push at once.
  /// `placement` selects where the slot array lives (see placement.hpp).
  explicit MpscSegQueue(std::size_t capacity, std::size_t max_capacity = 0,
                        std::size_t producer_slack = 128, Placement placement = {})
      : max_capacity_(max_capacity == 0 ? capacity : max_capacity),
        slack_(producer_slack),
        n_slots_(physical_slots_u64(max_capacity_, producer_slack)),
        slots_(static_cast<std::size_t>(n_slots_), placement) {
    PCPC_ASSERT_MSG(capacity > 0, "mpsc queue capacity must be positive");
    PCPC_ASSERT_MSG(capacity <= max_capacity_, "capacity above max_capacity");
    // Physical slot p expects its first producer to hold ticket p.
    for (std::uint64_t p = 0; p < n_slots_; ++p) {
      slots_.data()[static_cast<std::size_t>(p)].seq.store(p, std::memory_order_relaxed);
    }
    logical_capacity_.store(capacity, std::memory_order_relaxed);
  }

  /// Placement with the default producer slack — the uniform
  /// (capacity, max, placement) shape the Handoff adapters construct
  /// through for every lock-free queue type.
  MpscSegQueue(std::size_t capacity, std::size_t max_capacity, Placement placement)
      : MpscSegQueue(capacity, max_capacity, 128, placement) {}

  MpscSegQueue(const MpscSegQueue&) = delete;
  MpscSegQueue& operator=(const MpscSegQueue&) = delete;

  // -- producer side (any thread) -----------------------------------------

  /// Appends an item; false (item kept by caller) when logically full.
  bool try_push(T value) {
    const std::uint64_t admitted = size_.fetch_add(1, std::memory_order_acquire);
    if (admitted >= cap64()) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    const std::uint64_t ticket = tail_ticket_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slot_of(ticket);
    // Wait for the consumer's re-sequencing store to reach us (see the
    // header comment: it has already been issued by the time this ticket
    // exists, so this loop only covers coherence latency).
    std::size_t spins = 0;
    while (slot.seq.load(std::memory_order_acquire) != ticket) {
      if (++spins > 1024) std::this_thread::yield();
    }
    slot.value = std::move(value);
    slot.seq.store(ticket + 1, std::memory_order_release);
    return true;
  }

  /// Appends a volley: one admission fetch_add and one ticket fetch_add
  /// claim a contiguous run for the whole volley (instead of 2k RMWs for
  /// k items), then the slots are filled with the usual per-slot
  /// handshake.  Accepts the longest prefix that fits the logical
  /// capacity; returns the number accepted.
  std::size_t try_push_bulk(std::span<const T> items) {
    if (items.empty()) return 0;
    const std::uint64_t admitted =
        size_.fetch_add(items.size(), std::memory_order_acquire);
    const std::uint64_t cap = cap64();
    const std::size_t n =
        admitted >= cap ? 0
                        : static_cast<std::size_t>(
                              std::min<std::uint64_t>(items.size(), cap - admitted));
    if (n < items.size()) {
      size_.fetch_sub(items.size() - n, std::memory_order_relaxed);
    }
    if (n == 0) return 0;
    const std::uint64_t first = tail_ticket_.fetch_add(n, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t ticket = first + i;
      Slot& slot = slot_of(ticket);
      std::size_t spins = 0;
      while (slot.seq.load(std::memory_order_acquire) != ticket) {
        if (++spins > 1024) std::this_thread::yield();
      }
      slot.value = items[i];
      slot.seq.store(ticket + 1, std::memory_order_release);
    }
    return n;
  }

  // -- consumer side ------------------------------------------------------

  /// Removes the oldest published item, in strict ticket order; nullopt
  /// when the head slot has no published item (empty queue, or its
  /// producer is mid-publication).
  std::optional<T> try_pop() {
    Slot& slot = slot_of(head_);
    if (slot.seq.load(std::memory_order_acquire) != head_ + 1) return std::nullopt;
    T value = std::move(slot.value);
    // Re-sequence the slot for its next producer, one ring revolution
    // ahead; this store is the handshake that makes our read above safe
    // against the eventual overwrite.
    slot.seq.store(head_ + n_slots_, std::memory_order_release);
    ++head_;
    size_.fetch_sub(1, std::memory_order_release);
    return value;
  }

  /// Removes up to `out.size()` published items in strict ticket order,
  /// walking the preallocated slots in place and adjusting the admission
  /// counter ONCE for the whole run (the per-slot re-sequencing stores
  /// stay — they are the producer handshake).  Stops early at the first
  /// unpublished slot, exactly like repeated try_pop would.
  std::size_t pop_bulk(std::span<T> out) {
    std::size_t n = 0;
    while (n < out.size()) {
      Slot& slot = slot_of(head_);
      if (slot.seq.load(std::memory_order_acquire) != head_ + 1) break;
      out[n++] = std::move(slot.value);
      slot.seq.store(head_ + n_slots_, std::memory_order_release);
      ++head_;
    }
    if (n > 0) size_.fetch_sub(n, std::memory_order_release);
    return n;
  }

  /// Raises or lowers the logical capacity, clamped into
  /// [1, max_capacity()].  Items already admitted stay; a capacity below
  /// the current fill level just fails pushes until the consumer drains.
  /// Returns the capacity actually set.
  std::size_t set_capacity(std::size_t n) {
    const std::size_t clamped = n == 0 ? 1 : (n > max_capacity_ ? max_capacity_ : n);
    logical_capacity_.store(clamped, std::memory_order_release);
    return clamped;
  }

  // -- either side (approximate between operations) -----------------------

  /// Admitted items (consumed items excluded; includes items whose
  /// producers are still mid-publication and transient admission
  /// overshoot from concurrent failed pushes).
  std::size_t size() const {
    return static_cast<std::size_t>(size_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }

  std::size_t capacity() const {
    return logical_capacity_.load(std::memory_order_acquire);
  }

  std::size_t max_capacity() const { return max_capacity_; }

  /// Physical slot count for a (max_capacity, producer_slack) pair —
  /// exposed so a shm layout can size an OffsetSlots placement region.
  static std::size_t physical_slots(std::size_t max_capacity,
                                    std::size_t producer_slack = 128) {
    return static_cast<std::size_t>(physical_slots_u64(max_capacity, producer_slack));
  }

  /// Bytes an OffsetSlots placement region must provide.
  static std::size_t placement_bytes(std::size_t max_capacity,
                                     std::size_t producer_slack = 128) {
    return physical_slots(max_capacity, producer_slack) * sizeof(Slot);
  }

 private:
  static std::uint64_t physical_slots_u64(std::size_t max_capacity,
                                          std::size_t producer_slack) {
    const std::size_t slots_needed = max_capacity + producer_slack + 1;
    const std::size_t nsegs = (slots_needed + kSegSlots - 1) / kSegSlots;
    return static_cast<std::uint64_t>(nsegs * kSegSlots);
  }

  std::uint64_t cap64() const {
    return static_cast<std::uint64_t>(logical_capacity_.load(std::memory_order_relaxed));
  }

  Slot& slot_of(std::uint64_t ticket) {
    return slots_.data()[static_cast<std::size_t>(ticket % n_slots_)];
  }

  const std::size_t max_capacity_;
  const std::size_t slack_;
  const std::uint64_t n_slots_;
  SlotsTmpl<Slot> slots_;

  alignas(64) std::atomic<std::uint64_t> size_{0};         ///< admission counter
  alignas(64) std::atomic<std::uint64_t> tail_ticket_{0};  ///< slot tickets
  alignas(64) std::atomic<std::size_t> logical_capacity_{1};
  alignas(64) std::uint64_t head_ = 0;  ///< consumer-private position
};

}  // namespace pcpc::queue
