// Queue backend selection for the producer→consumer hand-off path.
//
// The paper's PBPL batches wakeups, but a mutex-guarded buffer still
// serializes every producer on one lock — the scaling bottleneck of the
// "multiple producer" regime.  This header names the pluggable backends
// the hosts can run the hand-off on; the implementations live in
// spsc_ring.hpp / mpsc_queue.hpp and are threaded through both hosts via
// the Handoff adapters in handoff.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pcpc::queue {

/// Which concurrent queue carries items from producers to a consumer.
enum class BackendKind : std::uint8_t {
  /// The seed behaviour: an ElasticBuffer / BoundedBuffer guarded by the
  /// host's own mutex.  Producers and the consumer serialize per item.
  Mutex = 0,
  /// Cache-line-padded wait-free SPSC ring with cached head/tail indices
  /// and optional batched index publication (Torquati).  One producer
  /// thread per consumer; pushes never touch the host lock.
  SpscRing = 1,
  /// Linked-segment wait-free MPSC queue (Jiffy-style fan-in): any number
  /// of producer threads feed one consumer without a lock.
  MpscSeg = 2,
};

/// Every backend, in config/CLI order.
inline constexpr BackendKind kAllBackends[] = {BackendKind::Mutex, BackendKind::SpscRing,
                                               BackendKind::MpscSeg};

/// Default bound on a single varlen record's payload (see varlen.hpp /
/// VarHandoff in handoff.hpp): every backend kind also carries a
/// byte-granular variable-size record plane — the Mutex kind drives the
/// SPSC byte ring under the host lock, the lock-free kinds keep their
/// native contracts at byte granularity.
inline constexpr std::uint32_t kDefaultMaxVarRecordBytes = 16u << 10;

/// Stable config/CLI name ("mutex", "spsc", "mpsc").
inline const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Mutex: return "mutex";
    case BackendKind::SpscRing: return "spsc";
    case BackendKind::MpscSeg: return "mpsc";
  }
  return "?";
}

/// Inverse of backend_name(); nullopt on an unknown name.
inline std::optional<BackendKind> parse_backend(const std::string& name) {
  if (name == "mutex") return BackendKind::Mutex;
  if (name == "spsc") return BackendKind::SpscRing;
  if (name == "mpsc") return BackendKind::MpscSeg;
  return std::nullopt;
}

}  // namespace pcpc::queue
