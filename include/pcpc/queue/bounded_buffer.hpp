// Bounded FIFO with overflow accounting.
//
// The buffer every baseline producer-consumer implementation uses.  An
// overflow (push on a full buffer) is a first-class event here because the
// paper's batch implementations treat it as a forced, unscheduled consumer
// wakeup — one of the headline metrics of Section VI.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "pcpc/common/ring_buffer.hpp"

namespace pcpc::queue {

/// Fixed-capacity FIFO that counts drops and tracks a high-water mark.
/// Not thread-safe; pcpc::runtime wraps it for the thread host.
template <typename T>
class BoundedBuffer {
 public:
  explicit BoundedBuffer(std::size_t capacity) : ring_(capacity) {}

  std::size_t capacity() const { return ring_.capacity(); }
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  bool full() const { return ring_.full(); }

  /// Inserts an item.  On a full buffer the item is dropped, the overflow
  /// counter increments, and false is returned.
  bool push(T value) {
    if (!ring_.push(std::move(value))) {
      ++overflows_;
      return false;
    }
    high_water_ = std::max(high_water_, ring_.size());
    return true;
  }

  /// Removes the oldest item; nullopt when empty.
  std::optional<T> pop() { return ring_.pop(); }

  /// Oldest item without removal; buffer must be non-empty.
  const T& front() const { return ring_.front(); }

  /// Number of rejected pushes so far.
  std::uint64_t overflows() const { return overflows_; }

  /// Largest size ever reached.
  std::size_t high_water() const { return high_water_; }

  void clear() { ring_.clear(); }

 private:
  RingBuffer<T> ring_;
  std::uint64_t overflows_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace pcpc::queue
