// Placement-agnostic slot storage for the lock-free queues.
//
// The cross-process host (pcpc::ipc) needs ring storage that can live in
// a memory-mapped segment shared between processes, where the mapping
// base address differs per process — so the storage must be *pointer-
// free*: either owned on the heap (the in-process default) or addressed
// by a self-relative offset that stays valid wherever the containing
// object is mapped.  Both queues (SpscRing, MpscSegQueue) take a slot
// storage policy:
//
//   - HeapSlots<E>: the seed behaviour, an owned value-initialized array;
//   - OffsetSlots<E>: a non-owning view of caller-placed slots, stored as
//     a byte offset relative to the policy object itself.  As long as the
//     queue object and its slot array live in the same mapping (the shm
//     layout guarantees this), every process reads the same offset and
//     resolves its own local address.
//
// The policy is a *storage* decision only: admission, handshake and
// index arithmetic are identical across placements, which is what the
// differential test (heap vs shm, bit-identical trajectories) pins down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>

#include "pcpc/common/assert.hpp"

namespace pcpc::queue {

/// Where a queue's slot array should live.  Default (base == nullptr)
/// means "allocate on the heap"; a non-null base means "the caller has
/// reserved `bytes_available` bytes at `base` — construct the slots
/// there".  The base must be suitably aligned for the slot type (the shm
/// layout aligns regions to cache lines).
struct Placement {
  void* base = nullptr;
  std::size_t bytes_available = 0;
};

/// Owned heap array (the in-process default).  Accepts and ignores a
/// default Placement so queue constructors can thread one placement
/// parameter through both policies.
template <typename E>
class HeapSlots {
 public:
  explicit HeapSlots(std::size_t count, Placement placement = {})
      : slots_(new E[count]()) {
    PCPC_ASSERT_MSG(placement.base == nullptr,
                    "HeapSlots cannot adopt external placement");
  }

  E* data() { return slots_.get(); }
  const E* data() const { return slots_.get(); }

 private:
  std::unique_ptr<E[]> slots_;
};

/// Non-owning, self-relative view of externally placed slots.  The slots
/// are value-constructed in place at construction; the policy stores only
/// the byte distance from itself to the array, so the pair (queue object,
/// slot array) can be memcpy'd or mapped at any address — in particular a
/// shared-memory segment mapped at different addresses per process.
template <typename E>
class OffsetSlots {
 public:
  explicit OffsetSlots(std::size_t count, Placement placement) {
    PCPC_ASSERT_MSG(placement.base != nullptr, "OffsetSlots needs a placement base");
    PCPC_ASSERT_MSG(placement.bytes_available >= count * sizeof(E),
                    "placement region too small for slot array");
    PCPC_ASSERT_MSG(reinterpret_cast<std::uintptr_t>(placement.base) % alignof(E) == 0,
                    "placement base misaligned for slot type");
    E* base = static_cast<E*>(placement.base);
    for (std::size_t i = 0; i < count; ++i) ::new (static_cast<void*>(base + i)) E();
    count_ = count;
    offset_ = reinterpret_cast<const char*>(base) - reinterpret_cast<const char*>(this);
  }

  OffsetSlots(const OffsetSlots&) = delete;
  OffsetSlots& operator=(const OffsetSlots&) = delete;

  ~OffsetSlots() {
    if constexpr (!std::is_trivially_destructible_v<E>) {
      E* base = data();
      for (std::size_t i = 0; i < count_; ++i) base[i].~E();
    }
  }

  E* data() {
    return reinterpret_cast<E*>(reinterpret_cast<char*>(this) + offset_);
  }
  const E* data() const {
    return reinterpret_cast<const E*>(reinterpret_cast<const char*>(this) + offset_);
  }

 private:
  std::ptrdiff_t offset_ = 0;
  std::size_t count_ = 0;
};

}  // namespace pcpc::queue
