// Elastic per-consumer buffers over a shared, preallocated global pool.
//
// Section V-C, "Dynamic buffer resizing": every consumer starts with B0
// slots carved out of a global buffer of size Bg = B0 × M.  A consumer that
// predicts a small batch *downsizes* (returning slots to the pool); one
// whose predicted rate would overflow before its reserved slot *upsizes*,
// taking min(free pool space, predicted need).  The paper implements the
// elastic walls "using linked lists … not actual contiguous resizing" —
// we do the same: capacity moves between buffers as fixed-size segments,
// never by copying items.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/logging.hpp"
#include "pcpc/common/stats.hpp"

namespace pcpc::queue {

template <typename T>
class ElasticBuffer;

/// The global preallocated buffer Bg, managed as fixed-size segments.
///
/// Segment accounting is atomic (CAS on the free count), so the thread
/// host's per-core managers can acquire/release segments concurrently
/// without a shared lock; the simulation host just never contends.  The
/// individual ElasticBuffers stay single-consumer (their own host lock).
template <typename T>
class BufferPool {
 public:
  /// Preallocates Bg = `consumers × base_capacity` slots, with each
  /// consumer's share rounded up to whole segments of `segment_size`
  /// slots (so make_buffer() can always hand out the base share).
  BufferPool(std::size_t consumers, std::size_t base_capacity, std::size_t segment_size = 8)
      : segment_size_(segment_size),
        base_capacity_(base_capacity),
        total_segments_(consumers *
                        ((base_capacity + segment_size - 1) / segment_size)),
        free_segments_(total_segments_.load(std::memory_order_relaxed)) {
    PCPC_ASSERT_MSG(consumers > 0, "pool needs at least one consumer");
    PCPC_ASSERT_MSG(base_capacity > 0, "base capacity must be positive");
    PCPC_ASSERT_MSG(segment_size > 0, "segment size must be positive");
  }

  /// Total slot count Bg (rounded up to segment granularity).
  std::size_t total_slots() const { return total_segments() * segment_size_; }

  /// Total segment count Bg / segment_size.
  std::size_t total_segments() const {
    return total_segments_.load(std::memory_order_relaxed);
  }

  /// Slots not currently owned by any buffer.
  std::size_t free_slots() const {
    return free_segments_.load(std::memory_order_relaxed) * segment_size_;
  }

  /// The per-consumer initial capacity B0.
  std::size_t base_capacity() const { return base_capacity_; }

  std::size_t segment_size() const { return segment_size_; }

  /// Creates a buffer initially owning ~B0 slots (rounded up to whole
  /// segments).  Call once per consumer.
  ElasticBuffer<T> make_buffer();

  /// Times make_buffer() found the pool empty and had to over-commit an
  /// emergency segment (capacity degradation, not an abort).
  std::uint64_t exhausted_grants() const {
    return exhausted_grants_.load(std::memory_order_relaxed);
  }

  /// Fault injection / admission control: takes up to `want` free
  /// segments out of circulation and returns how many were seized.
  /// Buffers keep what they already own; resizing and emergency borrows
  /// compete for the rest.  Undo with restore_segments().
  std::size_t seize_segments(std::size_t want) { return acquire_segments(want); }

  /// Returns previously seized segments to the free list.
  void restore_segments(std::size_t n) { release_segments(n); }

  /// Segment accounting for hand-off adapters that manage a *logical*
  /// capacity over their own storage (the lock-free backends) instead of
  /// owning an ElasticBuffer.  Same free-list as ElasticBuffer resizing;
  /// the caller owns the granted segments until it returns them.
  std::size_t grant_segments(std::size_t want) { return acquire_segments(want); }
  void return_segments(std::size_t n) { release_segments(n); }

  /// Grants a consumer's initial ~B0 share (rounded up to whole
  /// segments) with the same emergency-overcommit semantics as
  /// make_buffer(): never returns zero.
  std::size_t grant_base_segments() {
    const std::size_t want = (base_capacity_ + segment_size_ - 1) / segment_size_;
    std::size_t granted = acquire_segments(want);
    if (granted == 0) {
      // Pool exhausted (over-subscribed consumers or fault-injected
      // pressure).  Aborting here turns a sizing mistake into an outage;
      // instead the pool over-commits one emergency segment so the
      // consumer can still run — degraded to minimum capacity — and the
      // event is counted and logged for the operator.
      total_segments_.fetch_add(1, std::memory_order_relaxed);
      granted = 1;
      const std::uint64_t exhausted =
          exhausted_grants_.fetch_add(1, std::memory_order_relaxed) + 1;
      PCPC_WARN << "BufferPool exhausted: over-committing one emergency segment ("
                << exhausted << " so far); Bg grew to " << total_slots()
                << " slots";
    }
    return granted;
  }

 private:
  friend class ElasticBuffer<T>;

  /// Takes up to `want` segments from the pool; returns how many granted.
  /// Lock-free: a CAS loop against the free count, so per-core managers
  /// can resize concurrently without sharing a lock.
  std::size_t acquire_segments(std::size_t want) {
    std::size_t free = free_segments_.load(std::memory_order_relaxed);
    std::size_t granted;
    do {
      granted = std::min(want, free);
      if (granted == 0) return 0;
    } while (!free_segments_.compare_exchange_weak(
        free, free - granted, std::memory_order_acq_rel, std::memory_order_relaxed));
    return granted;
  }

  void release_segments(std::size_t n) {
    const std::size_t now_free =
        free_segments_.fetch_add(n, std::memory_order_acq_rel) + n;
    PCPC_ASSERT_MSG(now_free <= total_segments(), "segment double-release");
  }

  std::size_t segment_size_;
  std::size_t base_capacity_;
  std::atomic<std::size_t> total_segments_;
  std::atomic<std::size_t> free_segments_;
  std::atomic<std::uint64_t> exhausted_grants_{0};
};

/// One consumer's resizable buffer; capacity is a whole number of pool
/// segments.  FIFO semantics with overflow counting like BoundedBuffer.
template <typename T>
class ElasticBuffer {
 public:
  std::size_t capacity() const { return segments_ * pool_->segment_size_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity(); }

  /// Inserts an item; counts an overflow and returns false when full.
  bool push(T value) {
    if (full()) {
      ++overflows_;
      return false;
    }
    items_.push_back(std::move(value));
    high_water_ = std::max(high_water_, items_.size());
    return true;
  }

  /// Removes the oldest item; nullopt when empty.
  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Attempts to change capacity to hold at least `target` items.
  ///
  /// Growth is limited by the pool's free space; shrinkage by the items
  /// currently buffered (live items are never dropped).  Returns the new
  /// capacity in slots.  This is the paper's
  ///   B_i = min(Bg − ΣB_q , r̂·Δt)  (upsizing)
  ///   B_i = r̂·Δt                   (downsizing)
  /// with both directions clamped to whole segments.
  /// Concurrency contract: the caller must hold whatever lock also guards
  /// push()/pop() for the entire call — the live size is read once up
  /// front and every clamping decision below derives from that snapshot,
  /// so a push interleaved mid-resize could otherwise strand the buffer
  /// with capacity < size (items stuck behind a shrunken wall).  The
  /// thread host serializes resize with its manager mutex; the sim host
  /// is single-threaded.
  std::size_t resize(std::size_t target) {
    const std::size_t seg = pool_->segment_size_;
    // Snapshot the fill level ONCE; never below one segment, never below
    // what is currently buffered.
    const std::size_t live = items_.size();
    const std::size_t min_slots = std::max<std::size_t>(live, 1);
    const std::size_t want_slots = std::max(target, min_slots);
    const std::size_t want_segments = (want_slots + seg - 1) / seg;
    if (want_segments > segments_) {
      segments_ += pool_->acquire_segments(want_segments - segments_);
    } else if (want_segments < segments_) {
      pool_->release_segments(segments_ - want_segments);
      segments_ = want_segments;
    }
    PCPC_ASSERT_MSG(capacity() >= live, "resize shrank below live items");
    capacity_samples_.add(static_cast<double>(capacity()));
    return capacity();
  }

  /// Number of rejected pushes.
  std::uint64_t overflows() const { return overflows_; }

  /// Largest item count ever held.
  std::size_t high_water() const { return high_water_; }

  /// Capacity observations recorded at each resize; the paper's "average
  /// buffer size" metric is the mean of these.
  const OnlineStats& capacity_samples() const { return capacity_samples_; }

  /// Returns all owned segments beyond live items to the pool.
  void trim() { resize(items_.size()); }

  ~ElasticBuffer() {
    if (pool_ != nullptr) pool_->release_segments(segments_);
  }

  ElasticBuffer(ElasticBuffer&& other) noexcept
      : pool_(other.pool_),
        segments_(other.segments_),
        items_(std::move(other.items_)),
        overflows_(other.overflows_),
        high_water_(other.high_water_),
        capacity_samples_(other.capacity_samples_) {
    other.pool_ = nullptr;
    other.segments_ = 0;
  }
  ElasticBuffer& operator=(ElasticBuffer&&) = delete;
  ElasticBuffer(const ElasticBuffer&) = delete;
  ElasticBuffer& operator=(const ElasticBuffer&) = delete;

 private:
  friend class BufferPool<T>;

  ElasticBuffer(BufferPool<T>* pool, std::size_t segments)
      : pool_(pool), segments_(segments) {}

  BufferPool<T>* pool_;
  std::size_t segments_;
  std::deque<T> items_;
  std::uint64_t overflows_ = 0;
  std::size_t high_water_ = 0;
  OnlineStats capacity_samples_;
};

template <typename T>
ElasticBuffer<T> BufferPool<T>::make_buffer() {
  return ElasticBuffer<T>(this, grant_base_segments());
}

}  // namespace pcpc::queue
