// In-ring variable-size records: reserve/commit producers, scatter-free
// consumers.
//
// ROADMAP item 1: the fixed-size item queues force every real payload
// (request body, sensor frame) through a copy between the producer's
// write and the handler's read.  This header carves length-prefixed
// records *directly out of the ring storage* instead:
//
//   VarReservation r;
//   ring.try_reserve(bytes, r);      // claim bytes in the ring
//   fill(r.data, r.size);            // write the payload ONCE, in place
//   ring.commit(r);                  // publish to the consumer
//   ...
//   ring.drain([](std::span<const std::byte> p) { read(p); });  // in place
//
// Record layout (all offsets 8-byte aligned):
//
//   [ header word ][ payload … ][ pad to 8 ]
//
// The header is ONE 64-bit word — state (8 bits) | owner+1 (16 bits) |
// payload size (32 bits) — so every state transition is a single atomic
// store/CAS, which is what makes the cross-process lease protocol (a
// reaper reclaiming a dead producer's reservation races the zombie's
// commit) a one-word CAS exactly like the ipc slot protocol.
//
// Wrap-padding rule: a record never straddles the physical end of the
// ring.  A claim that would cross publishes the tail gap as a *padding
// record* (consumers skip it) and the real record starts at offset 0.
// Because every claim and the ring size are 8-byte aligned, the gap is
// always >= 8 bytes, so the padding header always fits.
//
// Capacity is *logical* and counted in record footprint bytes (header +
// aligned payload, padding excluded), so elastic resizing keeps working
// at byte granularity; the physical ring is sized with a 4x-max-record
// margin which bounds the padding + in-flight claims that live outside
// the logical account (see physical_bytes()).
//
// Two rings share the format:
//
//   - VarSpscRing: Torquati discipline — producer-private tail, cached
//     released-counter refreshed only on apparent-full, zero RMW on the
//     hot path.  Publication is batched per commit (optionally eager at
//     reserve for the crash-safe shm plane, where claims must be
//     recoverable by a reaper).
//   - VarMpscRing: Jiffy discipline — admission is one fetch_add on a
//     byte counter, the position claim is one fetch_add on a byte
//     ticket.  A claim that would cross the physical end cannot hold a
//     contiguous record, so its owner publishes the whole claim as
//     padding and re-claims (at most one crossing per ring revolution;
//     the hot path stays FAA-only, the crossing path is lock-free).
//
// Consumer side is two-cursor: claim_front() hands out an in-ring view
// and advances the *claim* cursor; release_until() later returns the
// bytes to producers.  The gap is what lets a host run handlers on
// zero-copy views outside its lock while overflow policies (drop-oldest
// = mark-reclaim at the claim cursor) keep operating on the same ring.
//
// Thread contract: VarSpscRing — reserve/commit/try_push_record from one
// producer at a time; VarMpscRing — any number of producers.  Both:
// claim_front/drop_oldest/release_until/resize from one consumer at a
// time, except that release_until(target) may run concurrently with
// claim-cursor operations above `target` (disjoint byte ranges; the
// hosts exploit exactly this split).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "pcpc/common/assert.hpp"
#include "pcpc/queue/placement.hpp"

namespace pcpc::queue {

inline constexpr std::size_t kVarAlign = 8;
inline constexpr std::size_t kVarHeaderBytes = 8;

/// Record lifecycle, stored in the low byte of the header word.  kFree
/// must be 0: freshly value-initialized (or consumer-zeroed) storage
/// reads as "nothing published here".
enum class VarState : std::uint8_t {
  kFree = 0,       ///< no record starts here (yet)
  kReserved = 1,   ///< claimed, payload being written
  kCommitted = 2,  ///< published, consumable
  kPadding = 3,    ///< wrap gap: skip, never handed to handlers
  kReclaimed = 4,  ///< dropped (policy) or dead-owner reclaim: skip, count
};

constexpr std::uint64_t var_word(VarState state, std::uint16_t owner_plus1,
                                 std::uint32_t size) {
  return static_cast<std::uint64_t>(state) |
         (static_cast<std::uint64_t>(owner_plus1) << 8) |
         (static_cast<std::uint64_t>(size) << 32);
}
constexpr VarState var_state(std::uint64_t word) {
  return static_cast<VarState>(word & 0xff);
}
constexpr std::uint16_t var_owner_plus1(std::uint64_t word) {
  return static_cast<std::uint16_t>((word >> 8) & 0xffff);
}
constexpr std::uint32_t var_size(std::uint64_t word) {
  return static_cast<std::uint32_t>(word >> 32);
}

constexpr std::uint64_t var_align_up(std::uint64_t n) {
  return (n + (kVarAlign - 1)) & ~static_cast<std::uint64_t>(kVarAlign - 1);
}

/// Full footprint of a record with `payload` payload bytes: header plus
/// payload rounded up to the 8-byte grain.  Also the skip distance the
/// consumer walks, for every state including padding.
constexpr std::uint64_t var_record_bytes(std::uint64_t payload) {
  return kVarHeaderBytes + var_align_up(payload);
}

/// Zero-copy consumer view: payload bytes still inside the ring.  Valid
/// until the byte range is released (release_until past `offset`).
struct VarRecordView {
  const std::byte* data = nullptr;
  std::uint32_t size = 0;
  std::uint64_t offset = 0;  ///< logical byte offset of the record header
};

/// Producer-side claim between reserve and commit.  `data` is writable
/// in-ring storage owned by this producer until commit.
struct VarReservation {
  std::byte* data = nullptr;
  std::uint32_t size = 0;
  std::uint64_t offset = 0;  ///< logical byte offset of the record header
  std::uint64_t end = 0;     ///< logical offset one past the record
  std::uint16_t owner_plus1 = 0;
};

/// Counter snapshot; all byte counts are monotonic.  "footprint" =
/// header + aligned payload (the unit the logical capacity is charged
/// in); "payload" = the bytes handlers actually see.
struct VarCounters {
  std::uint64_t committed_records = 0;
  std::uint64_t committed_payload_bytes = 0;
  std::uint64_t committed_footprint_bytes = 0;
  std::uint64_t padding_bytes = 0;  ///< claimed as wrap padding
  std::uint64_t consumed_records = 0;
  std::uint64_t consumed_payload_bytes = 0;
  std::uint64_t consumed_footprint_bytes = 0;
  std::uint64_t reclaimed_records = 0;
  std::uint64_t reclaimed_payload_bytes = 0;
  std::uint64_t reclaimed_footprint_bytes = 0;
  std::uint64_t released_padding_bytes = 0;
  std::uint64_t lease_lost = 0;      ///< commits that lost to a reclaim
  std::uint64_t tail_bytes = 0;      ///< published claim cursor
  std::uint64_t head_bytes = 0;      ///< released cursor
};

namespace detail {

/// Storage + consumer side shared by both varlen rings (CRTP: the
/// derived ring supplies the producer discipline and the release hook).
/// Cells are plain uint64_t so payload bytes can be written with plain
/// stores; header words are accessed through std::atomic_ref.
template <typename Derived, template <typename> class SlotsTmpl, bool kZeroOnRelease>
class VarRingBase {
 public:
  // -- consumer side ------------------------------------------------------

  /// Hands out the oldest committed record as an in-ring view and moves
  /// the claim cursor past it (skipping padding / reclaimed records).
  /// nullopt when nothing consumable is visible — empty, or the record
  /// at the cursor is still being published (strict order, like the
  /// item MPSC queue: holes are waited out, not skipped).
  std::optional<VarRecordView> claim_front() {
    for (;;) {
      const std::uint64_t c = cons_.claim;
      if (c == cons_.cached_tail) {
        cons_.cached_tail = derived().tail_visible();
        if (c == cons_.cached_tail) return std::nullopt;
      }
      const std::uint64_t w = word_ref(pos_of(c)).load(std::memory_order_acquire);
      const VarState s = var_state(w);
      if (s == VarState::kPadding || s == VarState::kReclaimed) {
        cons_.claim = c + var_record_bytes(var_size(w));
        continue;
      }
      if (s != VarState::kCommitted) return std::nullopt;  // kFree/kReserved
      cons_.claim = c + var_record_bytes(var_size(w));
      return VarRecordView{payload_ptr(pos_of(c)), var_size(w), c};
    }
  }

  /// Like claim_front() but leaves the committed record unclaimed: the
  /// cursor advances over padding / reclaimed records only and the view
  /// of the oldest committed record is returned without moving past it.
  /// The shm host uses this to match a record against its announcement
  /// before consuming it (a mismatch means the record died with its
  /// producer and the announcement resolves as a loss, not a view).
  std::optional<VarRecordView> peek_front() {
    for (;;) {
      const std::uint64_t c = cons_.claim;
      if (c == cons_.cached_tail) {
        cons_.cached_tail = derived().tail_visible();
        if (c == cons_.cached_tail) return std::nullopt;
      }
      const std::uint64_t w = word_ref(pos_of(c)).load(std::memory_order_acquire);
      const VarState s = var_state(w);
      if (s == VarState::kPadding || s == VarState::kReclaimed) {
        cons_.claim = c + var_record_bytes(var_size(w));
        continue;
      }
      if (s != VarState::kCommitted) return std::nullopt;
      return VarRecordView{payload_ptr(pos_of(c)), var_size(w), c};
    }
  }

  /// Producer-side withdrawal of an own committed-but-never-announced
  /// record (the shm host's orphan path: the record published but its
  /// control-ring announcement could not): flips it to kReclaimed so the
  /// consumer's record<->announcement correspondence stays exact.  False
  /// when the record is no longer committed (a reaper got there first).
  bool abandon(const VarReservation& r) {
    std::uint64_t expected = var_word(VarState::kCommitted, r.owner_plus1, r.size);
    return word_ref(pos_of(r.offset))
        .compare_exchange_strong(
            expected, var_word(VarState::kReclaimed, r.owner_plus1, r.size),
            std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Dead-owner sweep (consumer/reaper only): resolves every record
  /// between the claim cursor and the visible tail — committed records
  /// are marked reclaimed, reserved records are CASed to reclaimed so a
  /// racing zombie commit loses its lease — and advances the claim
  /// cursor to the tail.  Returns records resolved (padding excluded).
  /// Call release_until(claim_offset()) afterwards to return the bytes.
  std::size_t reclaim_all() {
    std::size_t n = 0;
    std::uint64_t c = cons_.claim;
    const std::uint64_t tail = derived().tail_visible();
    while (c < tail) {
      auto ref = word_ref(pos_of(c));
      std::uint64_t w = ref.load(std::memory_order_acquire);
      for (;;) {
        const VarState s = var_state(w);
        if (s == VarState::kPadding || s == VarState::kReclaimed) break;
        PCPC_ASSERT_MSG(s == VarState::kCommitted || s == VarState::kReserved,
                        "unwritten header inside the published window");
        if (ref.compare_exchange_strong(
                w, var_word(VarState::kReclaimed, var_owner_plus1(w), var_size(w)),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          ++n;
          break;
        }
        // Lost the CAS to the owner's commit; re-read and reclaim that.
      }
      c += var_record_bytes(var_size(w));
    }
    cons_.claim = c;
    return n;
  }

  /// Overflow-policy hook (drop-oldest at record granularity): marks the
  /// oldest *unclaimed* committed record reclaimed and advances the
  /// claim cursor past it, so its bytes return to producers at the next
  /// release.  False when nothing is reclaimable (empty, or the head
  /// record is mid-publication).
  bool drop_oldest(std::uint64_t& footprint, std::uint32_t& payload) {
    for (;;) {
      const std::uint64_t c = cons_.claim;
      if (c == cons_.cached_tail) {
        cons_.cached_tail = derived().tail_visible();
        if (c == cons_.cached_tail) return false;
      }
      const std::uint64_t w = word_ref(pos_of(c)).load(std::memory_order_acquire);
      const VarState s = var_state(w);
      if (s == VarState::kPadding || s == VarState::kReclaimed) {
        cons_.claim = c + var_record_bytes(var_size(w));
        continue;
      }
      if (s != VarState::kCommitted) return false;
      word_ref(pos_of(c)).store(
          var_word(VarState::kReclaimed, var_owner_plus1(w), var_size(w)),
          std::memory_order_release);
      cons_.claim = c + var_record_bytes(var_size(w));
      footprint = var_record_bytes(var_size(w));
      payload = var_size(w);
      return true;
    }
  }

  /// Logical offset of the claim cursor — the release_until() target
  /// that returns every byte claimed so far.
  std::uint64_t claim_offset() const { return cons_.claim; }

  /// Returns the bytes in [head, target) to the producers, tallying each
  /// record walked (consumed / reclaimed / padding).  `target` must be a
  /// record boundary previously reached by the claim cursor.  May run
  /// concurrently with claim-cursor operations above `target`.
  void release_until(std::uint64_t target) {
    std::uint64_t h = cons_.head_local;
    PCPC_ASSERT_MSG(target >= h, "release target behind the released cursor");
    if (target == h) return;
    std::uint64_t released_need = 0;
    std::uint64_t consumed_r = 0, consumed_pl = 0, consumed_fp = 0;
    std::uint64_t reclaimed_r = 0, reclaimed_pl = 0, reclaimed_fp = 0;
    std::uint64_t pad = 0;
    while (h < target) {
      const std::uint64_t w = word_ref(pos_of(h)).load(std::memory_order_relaxed);
      const std::uint64_t fp = var_record_bytes(var_size(w));
      switch (var_state(w)) {
        case VarState::kPadding:
          pad += fp;
          break;
        case VarState::kReclaimed:
          ++reclaimed_r;
          reclaimed_pl += var_size(w);
          reclaimed_fp += fp;
          released_need += fp;
          break;
        case VarState::kCommitted:
          ++consumed_r;
          consumed_pl += var_size(w);
          consumed_fp += fp;
          released_need += fp;
          break;
        default:
          PCPC_ASSERT_MSG(false, "released an unpublished record");
      }
      if constexpr (kZeroOnRelease) {
        // Multi-producer rings gate the consumer on the claimed (not
        // committed) tail, so a claim whose header is not yet written
        // must read as kFree — zero what we release before any producer
        // can re-claim it (ordered by the admission counter handshake).
        std::memset(cell_ptr(pos_of(h)), 0, static_cast<std::size_t>(fp));
      }
      h += fp;
    }
    PCPC_ASSERT_MSG(h == target, "release target is not a record boundary");
    consumed_records_.fetch_add(consumed_r, std::memory_order_relaxed);
    consumed_payload_bytes_.fetch_add(consumed_pl, std::memory_order_relaxed);
    consumed_footprint_bytes_.fetch_add(consumed_fp, std::memory_order_relaxed);
    reclaimed_records_.fetch_add(reclaimed_r, std::memory_order_relaxed);
    reclaimed_payload_bytes_.fetch_add(reclaimed_pl, std::memory_order_relaxed);
    reclaimed_footprint_bytes_.fetch_add(reclaimed_fp, std::memory_order_relaxed);
    released_padding_bytes_.fetch_add(pad, std::memory_order_relaxed);
    cons_.head_local = h;
    derived().on_release(released_need);  // return capacity to producers
    head_.index.store(h, std::memory_order_release);
  }

  /// Convenience: claim + immediately release one record (copies nothing;
  /// the view passed to `fn` dies with the call).
  template <typename Fn>
  bool pop_front(Fn&& fn) {
    auto view = claim_front();
    if (!view.has_value()) return false;
    fn(std::span<const std::byte>(view->data, view->size));
    release_until(cons_.claim);
    return true;
  }

  /// Scatter-free bulk drain: every visible record is handed to `fn` as
  /// an in-ring span, then the whole run is released with ONE cursor
  /// publication (Torquati's batching argument on the consumer side).
  /// Returns the number of records drained.
  template <typename Fn>
  std::size_t drain(Fn&& fn, std::size_t max_records = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max_records) {
      auto view = claim_front();
      if (!view.has_value()) break;
      fn(std::span<const std::byte>(view->data, view->size));
      ++n;
    }
    if (n > 0) release_until(cons_.claim);
    return n;
  }

  // -- capacity -----------------------------------------------------------

  /// Raises or lowers the logical capacity (record footprint bytes),
  /// clamped into [kVarHeaderBytes, max_capacity_bytes()].  Returns the
  /// capacity actually set.
  std::size_t set_capacity_bytes(std::size_t n) {
    const std::size_t clamped =
        n < kVarHeaderBytes ? kVarHeaderBytes
                            : (n > max_bytes_ ? max_bytes_ : n);
    logical_bytes_.store(clamped, std::memory_order_release);
    return clamped;
  }

  std::size_t capacity_bytes() const {
    return logical_bytes_.load(std::memory_order_acquire);
  }
  std::size_t max_capacity_bytes() const { return max_bytes_; }
  std::uint32_t max_record_payload() const { return max_record_payload_; }

  /// Claimed-but-unreleased bytes (records in flight + padding).
  std::size_t size_bytes() const {
    return static_cast<std::size_t>(tail_bytes() - head_bytes());
  }
  bool empty() const { return size_bytes() == 0; }

  std::uint64_t tail_bytes() const {
    return const_cast<VarRingBase*>(this)->derived().tail_visible();
  }
  std::uint64_t head_bytes() const {
    return head_.index.load(std::memory_order_acquire);
  }

  /// Producer identity stamped into header words (ipc lease protocol;
  /// 0 = anonymous in-process producer).
  void set_owner(std::uint16_t owner_plus1) { owner_plus1_ = owner_plus1; }

  VarCounters counters() const {
    VarCounters c;
    c.committed_records = committed_records_.load(std::memory_order_relaxed);
    c.committed_payload_bytes =
        committed_payload_bytes_.load(std::memory_order_relaxed);
    c.committed_footprint_bytes =
        committed_footprint_bytes_.load(std::memory_order_relaxed);
    c.padding_bytes = padding_bytes_.load(std::memory_order_relaxed);
    c.consumed_records = consumed_records_.load(std::memory_order_relaxed);
    c.consumed_payload_bytes =
        consumed_payload_bytes_.load(std::memory_order_relaxed);
    c.consumed_footprint_bytes =
        consumed_footprint_bytes_.load(std::memory_order_relaxed);
    c.reclaimed_records = reclaimed_records_.load(std::memory_order_relaxed);
    c.reclaimed_payload_bytes =
        reclaimed_payload_bytes_.load(std::memory_order_relaxed);
    c.reclaimed_footprint_bytes =
        reclaimed_footprint_bytes_.load(std::memory_order_relaxed);
    c.released_padding_bytes =
        released_padding_bytes_.load(std::memory_order_relaxed);
    c.lease_lost = lease_lost_.load(std::memory_order_relaxed);
    c.tail_bytes = tail_bytes();
    c.head_bytes = head_bytes();
    return c;
  }

  /// Physical ring bytes for a (max logical bytes, max record payload)
  /// pair: power of two covering the logical capacity plus a 4x-max-
  /// record margin.  The margin bounds everything that occupies storage
  /// without being charged to the logical account: at most one wrap pad
  /// and one abandoned crossing claim per revolution, and a window
  /// shorter than one revolution holds at most two boundary events.
  static std::size_t physical_bytes(std::size_t max_bytes,
                                    std::uint32_t max_record_payload) {
    const std::uint64_t margin = 4 * var_record_bytes(max_record_payload);
    std::size_t p = 64;
    while (p < max_bytes + margin) p <<= 1;
    return p;
  }

  /// Bytes an OffsetSlots placement region must provide.
  static std::size_t placement_bytes(std::size_t max_bytes,
                                     std::uint32_t max_record_payload) {
    return physical_bytes(max_bytes, max_record_payload);
  }

 protected:
  VarRingBase(std::size_t capacity_bytes, std::size_t max_bytes,
              std::uint32_t max_record_payload, Placement placement)
      : max_bytes_(max_bytes == 0 ? capacity_bytes : max_bytes),
        max_record_payload_(max_record_payload),
        n_bytes_(physical_bytes(max_bytes_, max_record_payload_)),
        mask_(n_bytes_ - 1),
        cells_(n_bytes_ / kVarAlign, placement) {
    PCPC_ASSERT_MSG(capacity_bytes > 0, "varlen ring capacity must be positive");
    PCPC_ASSERT_MSG(capacity_bytes <= max_bytes_, "capacity above max_bytes");
    PCPC_ASSERT_MSG(var_record_bytes(max_record_payload_) * 4 <= n_bytes_,
                    "max record too large for the ring");
    logical_bytes_.store(capacity_bytes, std::memory_order_relaxed);
  }

  VarRingBase(const VarRingBase&) = delete;
  VarRingBase& operator=(const VarRingBase&) = delete;

  Derived& derived() { return *static_cast<Derived*>(this); }

  std::size_t pos_of(std::uint64_t offset) const {
    return static_cast<std::size_t>(offset) & mask_;
  }

  std::atomic_ref<std::uint64_t> word_ref(std::size_t pos) {
    return std::atomic_ref<std::uint64_t>(cells_.data()[pos / kVarAlign]);
  }

  std::byte* payload_ptr(std::size_t pos) {
    return reinterpret_cast<std::byte*>(cells_.data() + pos / kVarAlign + 1);
  }
  std::byte* cell_ptr(std::size_t pos) {
    return reinterpret_cast<std::byte*>(cells_.data() + pos / kVarAlign);
  }

  std::uint64_t cap64() const {
    return static_cast<std::uint64_t>(
        logical_bytes_.load(std::memory_order_relaxed));
  }

  /// Shared index on its own cache line (same shape as the item rings).
  struct alignas(64) SharedIndex {
    std::atomic<std::uint64_t> index{0};
  };

  /// Consumer-private cursors: claim (views handed out) ahead of the
  /// released head, cached tail refreshed only when the walk runs dry.
  struct alignas(64) ConsumerState {
    std::uint64_t claim = 0;
    std::uint64_t head_local = 0;
    std::uint64_t cached_tail = 0;
  };

  const std::size_t max_bytes_;
  const std::uint32_t max_record_payload_;
  const std::size_t n_bytes_;
  const std::size_t mask_;
  SlotsTmpl<std::uint64_t> cells_;
  SharedIndex head_;  ///< released cursor (telemetry + shm recovery)
  alignas(64) std::atomic<std::size_t> logical_bytes_{1};
  ConsumerState cons_;
  std::uint16_t owner_plus1_ = 0;

  // Monotonic tallies (relaxed; exactness comes from single-writer or
  // RMW updates, not ordering).
  std::atomic<std::uint64_t> committed_records_{0};
  std::atomic<std::uint64_t> committed_payload_bytes_{0};
  std::atomic<std::uint64_t> committed_footprint_bytes_{0};
  std::atomic<std::uint64_t> padding_bytes_{0};
  std::atomic<std::uint64_t> consumed_records_{0};
  std::atomic<std::uint64_t> consumed_payload_bytes_{0};
  std::atomic<std::uint64_t> consumed_footprint_bytes_{0};
  std::atomic<std::uint64_t> reclaimed_records_{0};
  std::atomic<std::uint64_t> reclaimed_payload_bytes_{0};
  std::atomic<std::uint64_t> reclaimed_footprint_bytes_{0};
  std::atomic<std::uint64_t> released_padding_bytes_{0};
  std::atomic<std::uint64_t> lease_lost_{0};
};

}  // namespace detail

/// Single-producer varlen ring (Torquati discipline: producer-private
/// tail, cached admission refresh, zero RMW on the hot path).
///
/// `eager_publish = false` (default): the claimed tail is published at
/// commit, so consumers only ever see committed records — the pure
/// in-process mode.  `eager_publish = true`: the tail is published at
/// reserve (after the kReserved header store), which is what the
/// crash-safe shm plane needs — every claim a dead producer made is
/// visible to the reaper, and a new producer recovers its private state
/// with producer_attach().
template <template <typename> class SlotsTmpl = HeapSlots>
class VarSpscRing
    : public detail::VarRingBase<VarSpscRing<SlotsTmpl>, SlotsTmpl, false> {
  using Base = detail::VarRingBase<VarSpscRing<SlotsTmpl>, SlotsTmpl, false>;
  friend Base;

 public:
  explicit VarSpscRing(std::size_t capacity_bytes, std::size_t max_bytes = 0,
                       std::uint32_t max_record_payload = (16u << 10),
                       Placement placement = {}, bool eager_publish = false)
      : Base(capacity_bytes, max_bytes, max_record_payload, placement),
        eager_publish_(eager_publish) {}

  // -- producer side ------------------------------------------------------

  /// Claims `payload_bytes` in the ring; false when the record does not
  /// fit the logical capacity (after one admission refresh) or exceeds
  /// the max record payload.  On success the caller owns out.data until
  /// commit().
  bool try_reserve(std::uint32_t payload_bytes, VarReservation& out) {
    if (payload_bytes > this->max_record_payload_) return false;
    const std::uint64_t need = var_record_bytes(payload_bytes);
    if (prod_.admitted + need - prod_.cached_released > this->cap64()) {
      prod_.cached_released =
          released_need_.index.load(std::memory_order_acquire);
      if (prod_.admitted + need - prod_.cached_released > this->cap64()) {
        return false;
      }
    }
    std::uint64_t t = prod_.tail_local;
    const std::size_t pos = this->pos_of(t);
    const std::uint64_t pad =
        pos + need > this->n_bytes_ ? this->n_bytes_ - pos : 0;
    if (pad != 0) {
      this->word_ref(pos).store(
          var_word(VarState::kPadding, 0,
                   static_cast<std::uint32_t>(pad - kVarHeaderBytes)),
          std::memory_order_release);
      this->padding_bytes_.fetch_add(pad, std::memory_order_relaxed);
      t += pad;
    }
    const std::size_t rpos = this->pos_of(t);
    this->word_ref(rpos).store(
        var_word(VarState::kReserved, this->owner_plus1_, payload_bytes),
        std::memory_order_release);
    out.data = this->payload_ptr(rpos);
    out.size = payload_bytes;
    out.offset = t;
    out.end = t + need;
    out.owner_plus1 = this->owner_plus1_;
    prod_.tail_local = t + need;
    prod_.admitted += need;
    admitted_pub_.index.store(prod_.admitted, std::memory_order_relaxed);
    if (eager_publish_) {
      tail_.index.store(prod_.tail_local, std::memory_order_release);
    }
    return true;
  }

  /// Publishes a reservation.  False when the record was reclaimed in
  /// the meantime (a reaper decided this producer was dead — the shm
  /// lease protocol); the bytes stay claimed and are counted reclaimed
  /// at release.
  bool commit(VarReservation& r) {
    std::uint64_t expected =
        var_word(VarState::kReserved, r.owner_plus1, r.size);
    const bool won = this->word_ref(this->pos_of(r.offset))
                         .compare_exchange_strong(
                             expected,
                             var_word(VarState::kCommitted, r.owner_plus1, r.size),
                             std::memory_order_acq_rel,
                             std::memory_order_acquire);
    if (won) {
      this->committed_records_.fetch_add(1, std::memory_order_relaxed);
      this->committed_payload_bytes_.fetch_add(r.size,
                                               std::memory_order_relaxed);
      this->committed_footprint_bytes_.fetch_add(r.end - r.offset,
                                                 std::memory_order_relaxed);
    } else {
      this->lease_lost_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!eager_publish_) {
      tail_.index.store(prod_.tail_local, std::memory_order_release);
    }
    return won;
  }

  /// One-call copy-in convenience (the "single copy" producer path):
  /// reserve + memcpy + commit.
  bool try_push_record(std::span<const std::byte> payload) {
    VarReservation r;
    if (!try_reserve(static_cast<std::uint32_t>(payload.size()), r)) return false;
    std::memcpy(r.data, payload.data(), payload.size());
    return commit(r);
  }

  /// Rebuilds the producer-private cursors from the shared state — how a
  /// producer process attaches to a ring that already lives in shared
  /// memory (possibly after its predecessor died mid-record).
  void producer_attach() {
    prod_.tail_local = tail_.index.load(std::memory_order_acquire);
    prod_.admitted = admitted_pub_.index.load(std::memory_order_acquire);
    prod_.cached_released =
        released_need_.index.load(std::memory_order_acquire);
  }

  /// Reaper-side admission reconciliation (consumer/reaper only): after
  /// a producer died, the shared admission counter may be one record
  /// stale; recompute it exactly by walking the live window.
  void reconcile_admitted() {
    const std::uint64_t head = this->head_bytes();
    const std::uint64_t tail = tail_.index.load(std::memory_order_acquire);
    std::uint64_t live_need = 0;
    for (std::uint64_t o = head; o < tail;) {
      const std::uint64_t w =
          this->word_ref(this->pos_of(o)).load(std::memory_order_acquire);
      const std::uint64_t fp = var_record_bytes(var_size(w));
      if (var_state(w) != VarState::kPadding) live_need += fp;
      o += fp;
    }
    const std::uint64_t released =
        released_need_.index.load(std::memory_order_acquire);
    admitted_pub_.index.store(released + live_need, std::memory_order_release);
  }

 private:
  std::uint64_t tail_visible() {
    return tail_.index.load(std::memory_order_acquire);
  }

  void on_release(std::uint64_t released_need) {
    released_need_.index.store(
        released_need_.index.load(std::memory_order_relaxed) + released_need,
        std::memory_order_release);
  }

  /// Producer-private state (lives with the ring so a shm producer can
  /// recover it; see producer_attach).
  struct alignas(64) ProducerState {
    std::uint64_t tail_local = 0;
    std::uint64_t admitted = 0;         ///< record footprint bytes admitted
    std::uint64_t cached_released = 0;  ///< last observed released counter
  };

  typename Base::SharedIndex tail_;           ///< published claim cursor
  typename Base::SharedIndex released_need_;  ///< released record footprints
  typename Base::SharedIndex admitted_pub_;   ///< shadow of prod_.admitted
  ProducerState prod_;
  const bool eager_publish_;
};

/// Multi-producer varlen ring (Jiffy discipline): admission is one
/// fetch_add on the in-flight byte counter, the position claim one
/// fetch_add on the byte ticket.  A crossing claim is converted to
/// padding by its owner and re-claimed — the only non-FAA event, at most
/// once per ring revolution.  Consumers are gated on the claimed (not
/// committed) ticket, so released storage is zeroed to make unwritten
/// headers read as kFree (the Vyukov-handshake role the item queue's seq
/// words play, folded into the record headers).
template <template <typename> class SlotsTmpl = HeapSlots>
class VarMpscRing
    : public detail::VarRingBase<VarMpscRing<SlotsTmpl>, SlotsTmpl, true> {
  using Base = detail::VarRingBase<VarMpscRing<SlotsTmpl>, SlotsTmpl, true>;
  friend Base;

 public:
  explicit VarMpscRing(std::size_t capacity_bytes, std::size_t max_bytes = 0,
                       std::uint32_t max_record_payload = (16u << 10),
                       Placement placement = {})
      : Base(capacity_bytes, max_bytes, max_record_payload, placement) {}

  // -- producer side (any thread) -----------------------------------------

  bool try_reserve(std::uint32_t payload_bytes, VarReservation& out) {
    if (payload_bytes > this->max_record_payload_) return false;
    const std::uint64_t need = var_record_bytes(payload_bytes);
    const std::uint64_t admitted =
        inflight_.fetch_add(need, std::memory_order_acquire);
    if (admitted + need > this->cap64()) {
      inflight_.fetch_sub(need, std::memory_order_relaxed);
      return false;
    }
    for (;;) {
      const std::uint64_t t = tail_.fetch_add(need, std::memory_order_relaxed);
      const std::size_t pos = this->pos_of(t);
      if (pos + need <= this->n_bytes_) {
        this->word_ref(pos).store(
            var_word(VarState::kReserved, this->owner_plus1_, payload_bytes),
            std::memory_order_release);
        out.data = this->payload_ptr(pos);
        out.size = payload_bytes;
        out.offset = t;
        out.end = t + need;
        out.owner_plus1 = this->owner_plus1_;
        return true;
      }
      // Crossing claim: it cannot hold a contiguous record, so publish
      // the whole claim as padding (back half to the ring end, front
      // half after the wrap) and re-claim.  Only the claim that contains
      // the revolution boundary takes this path.
      const std::uint64_t back = this->n_bytes_ - pos;
      this->word_ref(pos).store(
          var_word(VarState::kPadding, 0,
                   static_cast<std::uint32_t>(back - kVarHeaderBytes)),
          std::memory_order_release);
      const std::uint64_t front = need - back;
      if (front != 0) {
        this->word_ref(0).store(
            var_word(VarState::kPadding, 0,
                     static_cast<std::uint32_t>(front - kVarHeaderBytes)),
            std::memory_order_release);
      }
      this->padding_bytes_.fetch_add(need, std::memory_order_relaxed);
    }
  }

  bool commit(VarReservation& r) {
    std::uint64_t expected =
        var_word(VarState::kReserved, r.owner_plus1, r.size);
    const bool won = this->word_ref(this->pos_of(r.offset))
                         .compare_exchange_strong(
                             expected,
                             var_word(VarState::kCommitted, r.owner_plus1, r.size),
                             std::memory_order_acq_rel,
                             std::memory_order_acquire);
    if (won) {
      this->committed_records_.fetch_add(1, std::memory_order_relaxed);
      this->committed_payload_bytes_.fetch_add(r.size,
                                               std::memory_order_relaxed);
      this->committed_footprint_bytes_.fetch_add(r.end - r.offset,
                                                 std::memory_order_relaxed);
    } else {
      this->lease_lost_.fetch_add(1, std::memory_order_relaxed);
    }
    return won;
  }

  bool try_push_record(std::span<const std::byte> payload) {
    VarReservation r;
    if (!try_reserve(static_cast<std::uint32_t>(payload.size()), r)) return false;
    std::memcpy(r.data, payload.data(), payload.size());
    return commit(r);
  }

 private:
  std::uint64_t tail_visible() {
    return tail_.load(std::memory_order_acquire);
  }

  void on_release(std::uint64_t released_need) {
    inflight_.fetch_sub(released_need, std::memory_order_release);
  }

  alignas(64) std::atomic<std::uint64_t> tail_{0};      ///< byte ticket
  alignas(64) std::atomic<std::uint64_t> inflight_{0};  ///< admission counter
};

}  // namespace pcpc::queue
