#include "pcpc/common/csv.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  PCPC_ASSERT_MSG(columns_ > 0, "CSV requires at least one column");
  if (!out_.good()) return;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  PCPC_ASSERT_MSG(cells.size() == columns_, "CSV row width must match header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace pcpc
